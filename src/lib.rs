//! # wcoj — worst-case optimal join algorithms
//!
//! A from-scratch Rust implementation of
//! *Ngo, Porat, Ré, Rudra: Worst-case Optimal Join Algorithms* (PODS 2012,
//! arXiv:1203.1952): the first join algorithms whose running time matches
//! the AGM fractional-cover bound on the output size for **every** natural
//! join query — provably beating any binary-join plan on adversarial
//! inputs.
//!
//! This facade re-exports the workspace crates:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`core`] (`wcoj-core`) | the NPRR algorithm (§5), the Loomis–Whitney algorithm (§4), arity-≤2 star/cycle joins (§7.1), relaxed joins (§7.2), full CQs + FDs (§7.3), algorithmic BT/LW (§3) |
//! | [`exec`] (`wcoj-exec`) | the partition-parallel execution engine: two-level root-domain sharding over a worker pool — heavy root values split further into anchor sub-shards (`par_join`, `ExecConfig`, `Algorithm::NprrParallel`) |
//! | [`service`] (`wcoj-service`) | the shared-pool concurrent query scheduler: one global worker pool serving many in-flight queries with bounded admission (shed or block under overload) and round-robin fair dispatch (`Service`, `QueryHandle`, `SubmitError`) |
//! | [`storage`] | relations, relational algebra, the counted-trie search tree |
//! | [`hypergraph`] | query hypergraphs, fractional covers, AGM bounds, Lemma 3.2 tightening, Lemma 7.2 half-integrality |
//! | [`lp`] | the two-phase simplex solver (f64 + exact rational) |
//! | [`rational`] | exact `i128` rationals |
//! | [`baselines`] | hash/sort-merge/nested-loop joins, binary plans, a System-R-style optimizer |
//! | [`datagen`] | every instance family the paper's claims use |
//! | [`query`] | a Datalog-style text front-end and CSV loader |
//! | [`server`] (`wcoj-server`) | a std-only TCP/HTTP front end: blocking accept loop + connection threads over the shared service, with incremental chunked row streaming, `429`+`Retry-After` under overload, and `/metrics` exposition |
//! | [`obs`] (`wcoj-obs`) | std-only observability: the process-wide metrics registry with Prometheus exposition, per-query profiles' histogram/percentile machinery, and the `WCOJ_TRACE` scheduler event ring |
//!
//! ## Quickstart
//!
//! ```
//! use wcoj::prelude::*;
//!
//! // R(A,B) ⋈ S(B,C) ⋈ T(A,C) — the paper's motivating triangle query.
//! let r = Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[1, 3]]);
//! let s = Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 4], &[3, 4]]);
//! let t = Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[1, 4]]);
//! let out = join(&[r, s, t]).unwrap();
//! assert_eq!(out.len(), 2);
//! ```

pub use wcoj_baselines as baselines;
pub use wcoj_core as core;
pub use wcoj_datagen as datagen;
pub use wcoj_exec as exec;
pub use wcoj_hypergraph as hypergraph;
pub use wcoj_lp as lp;
pub use wcoj_obs as obs;
pub use wcoj_query as query;
pub use wcoj_rational as rational;
pub use wcoj_server as server;
pub use wcoj_service as service;
pub use wcoj_storage as storage;

pub use wcoj_core::{agm_cover, Algorithm, JoinOutput, JoinQuery, JoinStats};
pub use wcoj_exec::{par_join, ExecConfig, ShardSplit};
pub use wcoj_obs::{TraceEvent, TraceLevel};
pub use wcoj_service::{
    QueryHandle, QueryProfile, Service, ServiceConfig, ServiceCounters, ShardProfile, SubmitError,
};

/// Computes the natural join of `relations` with automatic algorithm
/// selection (see [`wcoj_core::join`]). The facade wrapper additionally
/// makes sure the partition-parallel engine is installed, so
/// [`Algorithm::NprrParallel`] is always dispatchable.
///
/// # Errors
/// See [`wcoj_core::join`].
pub fn join(relations: &[storage::Relation]) -> Result<storage::Relation, wcoj_core::QueryError> {
    wcoj_exec::install();
    wcoj_core::join(relations)
}

/// Computes the natural join with an explicit algorithm and optional
/// cover (see [`wcoj_core::join_with`]); [`Algorithm::NprrParallel`] runs
/// on the `wcoj-exec` worker pool.
///
/// # Errors
/// See [`wcoj_core::join_with`].
pub fn join_with(
    relations: &[storage::Relation],
    algorithm: Algorithm,
    cover: Option<&[f64]>,
) -> Result<JoinOutput, wcoj_core::QueryError> {
    wcoj_exec::install();
    wcoj_core::join_with(relations, algorithm, cover)
}

/// The names most programs need.
pub mod prelude {
    pub use crate::core::{agm_cover, Algorithm, JoinQuery};
    pub use crate::exec::{par_join, ExecConfig, ShardSplit};
    pub use crate::query::{execute, execute_profiled, load_csv, parse_query, Catalog};
    pub use crate::service::{
        QueryHandle, QueryProfile, Service, ServiceConfig, ServiceCounters, SubmitError,
    };
    pub use crate::storage::{Attr, Datum, Dictionary, Relation, Schema, Value};
    pub use crate::{join, join_with};
}
