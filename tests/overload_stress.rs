//! Overload, backpressure, fairness, and cancellation tests for the
//! shared-pool query service (`wcoj-service`).
//!
//! `tests/service_stress.rs` pins the scheduler's *correctness* contract
//! (bit-identical outputs under arbitrary interleaving); this suite pins
//! its *overload* contract:
//!
//! * **bounded admission** — a flood past `ServiceConfig::queue_depth`
//!   is shed with `SubmitError::Overloaded`, and every shed is reported
//!   in the counters, never silently dropped;
//! * **no correctness under pressure trade-off** — every *accepted*
//!   handle still resolves bit-identically (including row order) to the
//!   sequential `join_nprr`;
//! * **round-robin fairness** — a small query submitted right after a
//!   huge one completes long before the huge one finishes, instead of
//!   head-of-line-blocking behind its thousands of tasks;
//! * **blocking submission** — `submit_blocking` waits out the overload
//!   instead of shedding, and all its queries land;
//! * **cancellation** — dropping handles mid-flood skips the abandoned
//!   work and frees admission slots.
//!
//! Scheduling races only really surface with optimizations on; CI runs
//! this suite again in release mode (`cargo test --release --test
//! overload_stress`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use wcoj::core::nprr::PreparedQuery;
use wcoj::core::JoinStats;
use wcoj::datagen as gen;
use wcoj::prelude::*;
use wcoj::storage::{FlatIndex, SearchTree, TrieIndex};
use wcoj::{join_with, Algorithm, SubmitError};

/// Asserts rows are identical *including order* — `Relation` equality
/// already covers it (schema + row vector), the explicit row-by-row
/// check documents the bit-identical claim.
fn assert_bit_identical(got: &Relation, want: &Relation, ctx: &str) {
    assert_eq!(got.schema(), want.schema(), "{ctx}: schema");
    assert_eq!(got.len(), want.len(), "{ctx}: cardinality");
    for (i, (g, w)) in got.iter_rows().zip(want.iter_rows()).enumerate() {
        assert_eq!(g, w, "{ctx}: row {i} (order matters)");
    }
    assert_eq!(got, want, "{ctx}");
}

/// Accepted-under-overload queries still carry complete, internally
/// consistent profiles: every shard reported, nothing skipped, phase
/// timestamps monotone, and per-shard rows/stats summing exactly to the
/// final output — admission pressure must not corrupt observability.
fn assert_profile_consistent(
    profile: &wcoj::service::QueryProfile,
    out: &wcoj::core::JoinOutput,
    ctx: &str,
) {
    assert!(!profile.cancelled, "{ctx}: not cancelled");
    assert!(profile.is_complete(), "{ctx}: every shard reported");
    for (slot, shard) in profile.shards.iter().enumerate() {
        assert_eq!(shard.slot, slot, "{ctx}: slot order");
        assert!(!shard.skipped, "{ctx}: nothing skipped");
    }
    assert_eq!(
        profile.total_rows(),
        out.relation.len() as u64,
        "{ctx}: per-shard rows sum to the output"
    );
    let mut stats = JoinStats::default();
    for shard in &profile.shards {
        stats.absorb(&shard.stats);
    }
    assert_eq!(
        stats.case_a + stats.case_b,
        out.stats.case_a + out.stats.case_b,
        "{ctx}: per-shard stats absorb to the total"
    );
    if profile.total_shards > 0 {
        let planned = profile.planned.unwrap_or_else(|| panic!("{ctx}: planned"));
        let first = profile
            .first_dispatch
            .unwrap_or_else(|| panic!("{ctx}: first_dispatch"));
        let last = profile
            .last_finish
            .unwrap_or_else(|| panic!("{ctx}: last_finish"));
        let reassembled = profile
            .reassembled
            .unwrap_or_else(|| panic!("{ctx}: reassembled"));
        assert!(
            profile.admitted <= planned && planned <= first && first <= last && last <= reassembled,
            "{ctx}: monotone phases: {profile:?}"
        );
    }
}

/// A small mixed workload: name, relations, sequential oracle.
fn flood_instances() -> Vec<(String, Vec<Relation>, Relation)> {
    let mut out: Vec<(String, Vec<Relation>)> = Vec::new();
    for i in 0..2u64 {
        out.push((format!("triangle_hard/{i}"), gen::example_2_2(32 + 16 * i)));
        out.push((format!("agm_tight/{i}"), gen::agm_tight_triangle(4 + i)));
        out.push((format!("lw4/{i}"), gen::random_lw(11 + i, 4, 80, 8)));
        out.push((format!("figure2/{i}"), gen::worked_example(31 + i, 60, 6)));
        out.push((
            format!("zipf_triangle/{i}"),
            vec![
                gen::zipf_relation(71 + i, &[0, 1], 120, 20, 1.3),
                gen::zipf_relation(81 + i, &[1, 2], 120, 20, 1.3),
                gen::zipf_relation(91 + i, &[0, 2], 120, 20, 1.3),
            ],
        ));
    }
    out.into_iter()
        .map(|(name, rels)| {
            let oracle = join_with(&rels, Algorithm::Nprr, None)
                .expect("sequential oracle")
                .relation;
            (name, rels, oracle)
        })
        .collect()
}

/// Satellite (a) + (b): 8 submitter threads flood a 2-worker pool with a
/// queue bound far below the offered load. Every submission either yields
/// a handle that resolves bit-identically to `join_nprr`, or a reported
/// `Overloaded` shed that the submitter retries — and the service's own
/// counters agree exactly with what the submitters observed.
#[test]
fn flood_past_queue_bound_sheds_and_stays_correct() {
    const QUEUE_DEPTH: usize = 6;
    const SUBMITTERS: usize = 8;
    const PER_SUBMITTER: usize = 12;
    let instances = flood_instances();
    let prepared: Vec<Arc<PreparedQuery>> = instances
        .iter()
        .map(|(_, rels, _)| Arc::new(PreparedQuery::new(rels).expect("well-formed instance")))
        .collect();

    let service = Arc::new(Service::new(
        ServiceConfig::with_workers(2).with_queue_depth(QUEUE_DEPTH),
    ));
    let cfg = ExecConfig {
        shard_min_size: 1,
        ..service.exec_config()
    };

    // Phase 1 — deterministic overload: pin every admission slot with a
    // long-running blocker (precomputed cover: submission itself is
    // microseconds, the engine run tens of milliseconds), then flood from
    // 8 threads. The first wave of flood submissions is *guaranteed* to
    // be shed — and shed loudly, not dropped.
    let blocker_rels = gen::cycle_instance(43, 5, 150, 15);
    let blocker = Arc::new(PreparedQuery::new(&blocker_rels).expect("well-formed"));
    let (bx, _) = blocker.resolve_cover(None).expect("cover");
    let blocker_seq = join_with(&blocker_rels, Algorithm::Nprr, None)
        .unwrap()
        .relation;
    let blockers: Vec<QueryHandle> = (0..QUEUE_DEPTH)
        .map(|_| {
            service
                .submit_with_cover(&blocker, Some(&bx), &cfg)
                .expect("blockers fill the queue exactly")
        })
        .collect();
    match service.submit_with_cover(&blocker, Some(&bx), &cfg) {
        Err(SubmitError::Overloaded {
            in_flight,
            queue_depth,
        }) => {
            assert_eq!(in_flight, QUEUE_DEPTH);
            assert_eq!(queue_depth, QUEUE_DEPTH);
        }
        other => panic!("full queue must shed: {other:?}"),
    }

    // Phase 2 — the flood: each submitter pushes its queries with
    // shed-and-retry, so overload slows it down but loses nothing.
    let shed_seen = AtomicU64::new(1); // the probe shed above
    let accepted_seen = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for submitter in 0..SUBMITTERS {
            let service = Arc::clone(&service);
            let cfg = cfg.clone();
            let prepared = &prepared;
            let instances = &instances;
            let shed_seen = &shed_seen;
            let accepted_seen = &accepted_seen;
            scope.spawn(move || {
                for j in 0..PER_SUBMITTER {
                    let q = (submitter + j * SUBMITTERS) % prepared.len();
                    let handle = loop {
                        match service.submit(&prepared[q], &cfg) {
                            Ok(handle) => break handle,
                            Err(SubmitError::Overloaded {
                                in_flight,
                                queue_depth,
                            }) => {
                                // The shed is *reported*, with a coherent
                                // snapshot, not silently dropped.
                                assert_eq!(queue_depth, QUEUE_DEPTH);
                                assert!(in_flight >= QUEUE_DEPTH, "shed only at the bound");
                                shed_seen.fetch_add(1, Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                    };
                    accepted_seen.fetch_add(1, Ordering::Relaxed);
                    let (out, profile) = handle.wait_profiled().expect("accepted query evaluates");
                    let ctx = format!("{} by submitter {submitter}", instances[q].0);
                    assert_bit_identical(&out.relation, &instances[q].2, &ctx);
                    assert_profile_consistent(&profile, &out, &ctx);
                }
            });
        }
    });
    for b in blockers {
        assert_bit_identical(&b.wait().unwrap().relation, &blocker_seq, "blocker");
    }

    let shed = shed_seen.load(Ordering::Relaxed);
    let accepted = accepted_seen.load(Ordering::Relaxed) + QUEUE_DEPTH as u64;
    assert_eq!(
        accepted,
        (SUBMITTERS * PER_SUBMITTER + QUEUE_DEPTH) as u64,
        "retries land every query despite the overload"
    );
    let counters = service.counters();
    assert_eq!(counters.shed, shed, "service agrees on the shed count");
    assert_eq!(counters.submitted, accepted, "shed submissions don't count");
    assert_eq!(
        counters.completed, accepted,
        "every accepted query finished"
    );
    assert_eq!(counters.in_flight, 0);
    assert_eq!(counters.queued_tasks, 0);
    assert!(shed >= 1, "the flood actually overloaded the service");
}

/// Blocking submitters never shed: under the same flood, every
/// submission waits out the overload and all queries land, bit-identical.
/// Generic over the index backend so the flat columnar layout takes the
/// same beating as the pointer trie.
fn blocking_flood_delays_instead_of_shedding_impl<S>()
where
    S: SearchTree + Send + Sync + 'static,
{
    let instances = flood_instances();
    let prepared: Vec<Arc<PreparedQuery<S>>> = instances
        .iter()
        .map(|(_, rels, _)| {
            Arc::new(PreparedQuery::<S>::new_indexed(rels).expect("well-formed instance"))
        })
        .collect();
    let service = Arc::new(Service::new(
        ServiceConfig::with_workers(2).with_queue_depth(3),
    ));
    let cfg = ExecConfig {
        shard_min_size: 1,
        ..service.exec_config()
    };
    const SUBMITTERS: usize = 8;
    const PER_SUBMITTER: usize = 6;
    std::thread::scope(|scope| {
        for submitter in 0..SUBMITTERS {
            let service = Arc::clone(&service);
            let cfg = cfg.clone();
            let prepared = &prepared;
            let instances = &instances;
            scope.spawn(move || {
                for j in 0..PER_SUBMITTER {
                    let q = (submitter * PER_SUBMITTER + j) % prepared.len();
                    let (out, profile) = service
                        .submit_blocking(&prepared[q], &cfg)
                        .expect("blocking submit never sheds")
                        .wait_profiled()
                        .expect("query evaluates");
                    let ctx = format!("{} blocking submitter {submitter}", instances[q].0);
                    assert_bit_identical(&out.relation, &instances[q].2, &ctx);
                    assert_profile_consistent(&profile, &out, &ctx);
                }
            });
        }
    });
    let counters = service.counters();
    assert_eq!(counters.shed, 0, "blocking submissions never shed");
    assert_eq!(counters.submitted, (SUBMITTERS * PER_SUBMITTER) as u64);
    assert_eq!(counters.completed, counters.submitted);
    assert_eq!(counters.in_flight, 0);
}

#[test]
fn blocking_flood_delays_instead_of_shedding() {
    blocking_flood_delays_instead_of_shedding_impl::<TrieIndex>();
}

#[test]
fn blocking_flood_delays_instead_of_shedding_flat() {
    blocking_flood_delays_instead_of_shedding_impl::<FlatIndex>();
}

/// Satellite (c): round-robin dispatch. A huge multi-task query is
/// submitted first, a tiny triangle right behind it; under the old FIFO
/// injector the triangle would wait for *every* huge task, under
/// round-robin it completes while the huge query still has most of its
/// tasks outstanding — and both outputs stay bit-identical.
#[test]
fn small_query_behind_huge_one_finishes_first() {
    for workers in [1usize, 2] {
        let service = Service::new(ServiceConfig::with_workers(workers));
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };

        // Gate: a moderate query that pins the whole pool while the two
        // rings below are enqueued. Without it, a single-core host can
        // schedule the worker for a full timeslice right after the huge
        // submission and drain its entire ring before the small query is
        // even submitted — the race this test exists to rule out must
        // not sneak back in through the test harness itself.
        let gate_rels = gen::cycle_instance(43, 5, 150, 15);
        let gate_prepared = Arc::new(PreparedQuery::new(&gate_rels).expect("well-formed"));
        let (gx, _) = gate_prepared.resolve_cover(None).expect("cover");

        // Huge: a 5-cycle with a multi-task plan and ~100 ms of engine
        // work (release mode) — after the small query lands, several
        // tasks' worth of work remain, orders of magnitude more than the
        // waiter's wake-up latency. Submitted with a precomputed cover so
        // the small query can chase it within microseconds.
        let huge_rels = gen::cycle_instance(47, 5, 300, 15);
        let huge_prepared = Arc::new(PreparedQuery::new(&huge_rels).expect("well-formed"));
        let (x, _) = huge_prepared.resolve_cover(None).expect("cover");
        let huge_seq = join_with(&huge_rels, Algorithm::Nprr, None)
            .unwrap()
            .relation;
        let huge_tasks = service.shard_layout(&*huge_prepared, &cfg).len();
        assert!(
            huge_tasks >= 4,
            "huge query is multi-task ({huge_tasks} tasks at {workers} workers)"
        );

        // Small: the 3-row triangle (a single-task plan).
        let small_rels = vec![
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[1, 3]]),
            Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 4], &[3, 4]]),
            Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[1, 4]]),
        ];
        let small_prepared = Arc::new(PreparedQuery::new(&small_rels).expect("well-formed"));
        let (sx, _) = small_prepared.resolve_cover(None).expect("cover");
        let small_seq = join_with(&small_rels, Algorithm::Nprr, None)
            .unwrap()
            .relation;

        let gate = service
            .submit_with_cover(&gate_prepared, Some(&gx), &cfg)
            .unwrap();
        let huge = service
            .submit_with_cover(&huge_prepared, Some(&x), &cfg)
            .unwrap();
        let small = service
            .submit_with_cover(&small_prepared, Some(&sx), &cfg)
            .unwrap();

        // Round-robin across the three rings reaches the small query's
        // single task within a couple of turns; the huge ring still holds
        // most of its tasks when the small result lands.
        let small_out = small.wait().expect("small query evaluates");
        assert!(
            !huge.is_finished(),
            "round-robin: the small query finished while the huge one \
             ({huge_tasks} tasks) still runs ({workers} workers)"
        );
        assert_bit_identical(
            &small_out.relation,
            &small_seq,
            &format!("small @ {workers} workers"),
        );
        // Fairness never costs correctness: the huge query's output is
        // still bit-identical after the interleaving.
        let huge_out = huge.wait().expect("huge query evaluates");
        assert_bit_identical(
            &huge_out.relation,
            &huge_seq,
            &format!("huge @ {workers} workers"),
        );
        gate.wait().expect("gate query evaluates");
    }
}

/// Dropping handles mid-flood cancels their queries: the pool skips the
/// abandoned tasks, admission slots free up for later submissions, and
/// surviving queries stay bit-identical.
#[test]
fn cancellation_under_load_frees_the_pool() {
    // Runs on the flat columnar backend: cancellation mid-flood must
    // behave identically regardless of index layout.
    let instances = flood_instances();
    let prepared: Vec<Arc<PreparedQuery<FlatIndex>>> = instances
        .iter()
        .map(|(_, rels, _)| {
            Arc::new(PreparedQuery::<FlatIndex>::new_indexed(rels).expect("well-formed instance"))
        })
        .collect();
    let service = Arc::new(Service::new(ServiceConfig::with_workers(2)));
    let cfg = ExecConfig {
        shard_min_size: 1,
        ..service.exec_config()
    };

    // Submit everything twice; keep every other handle, drop the rest.
    let kept: Mutex<Vec<(usize, QueryHandle)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for submitter in 0..4usize {
            let service = Arc::clone(&service);
            let cfg = cfg.clone();
            let prepared = &prepared;
            let kept = &kept;
            scope.spawn(move || {
                for j in 0..prepared.len() {
                    let q = (submitter + j) % prepared.len();
                    let handle = service.submit(&prepared[q], &cfg).expect("unbounded");
                    if j % 2 == 0 {
                        kept.lock().unwrap().push((q, handle));
                    } // else: dropped right here — cancelled
                }
            });
        }
    });

    let kept = kept.into_inner().unwrap();
    assert!(!kept.is_empty());
    for (q, handle) in kept {
        let (out, profile) = handle.wait_profiled().expect("kept query evaluates");
        let ctx = format!("kept {}", instances[q].0);
        assert_bit_identical(&out.relation, &instances[q].2, &ctx);
        // Cancellations of *other* queries must not leak into the kept
        // queries' profiles.
        assert_profile_consistent(&profile, &out, &ctx);
    }
    // Every query (kept or cancelled) eventually drains and releases its
    // admission slot.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let c = service.counters();
        if c.in_flight == 0 && c.queued_tasks == 0 {
            assert_eq!(c.completed, c.submitted, "cancelled queries drain too");
            assert!(c.cancelled > 0, "some handles were dropped: {c:?}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "cancelled queries never drained: {c:?}"
        );
        std::thread::yield_now();
    }
}

/// Deadline submissions under a steady drain: some eventually get
/// through, none hang past their deadline by orders of magnitude, and
/// results are bit-identical.
#[test]
fn deadline_submission_flood() {
    // Deadline path on the flat columnar backend.
    let instances = flood_instances();
    let prepared: Vec<Arc<PreparedQuery<FlatIndex>>> = instances
        .iter()
        .map(|(_, rels, _)| {
            Arc::new(PreparedQuery::<FlatIndex>::new_indexed(rels).expect("well-formed instance"))
        })
        .collect();
    let service = Arc::new(Service::new(
        ServiceConfig::with_workers(2).with_queue_depth(2),
    ));
    let cfg = ExecConfig {
        shard_min_size: 1,
        ..service.exec_config()
    };
    let accepted = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for submitter in 0..4usize {
            let service = Arc::clone(&service);
            let cfg = cfg.clone();
            let prepared = &prepared;
            let instances = &instances;
            let accepted = &accepted;
            scope.spawn(move || {
                for j in 0..8usize {
                    let q = (submitter * 3 + j) % prepared.len();
                    match service.try_submit_timeout(
                        &prepared[q],
                        &cfg,
                        std::time::Duration::from_secs(30),
                    ) {
                        Ok(handle) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                            let out = handle.wait().expect("query evaluates");
                            assert_bit_identical(
                                &out.relation,
                                &instances[q].2,
                                &format!("{} deadline submitter {submitter}", instances[q].0),
                            );
                        }
                        Err(SubmitError::Overloaded { .. }) => {
                            // a 30s deadline expiring would mean the pool
                            // stalled — treat as failure
                            panic!("30s deadline expired under a steady drain");
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
            });
        }
    });
    assert_eq!(accepted.load(Ordering::Relaxed), 32);
    let counters = service.counters();
    assert_eq!(counters.submitted, 32);
    assert_eq!(counters.completed, 32);
    assert_eq!(counters.in_flight, 0);
}
