//! Assertions of the *exact* numbers and structures printed in the paper:
//! worked examples, counting identities, and named special cases.

use wcoj::core::nprr::qptree::build_qp_tree;
use wcoj::core::nprr::total_order::{check_to1, check_to2, total_order};
use wcoj::core::relaxed::relaxed_join;
use wcoj::hypergraph::lw::{bt_regularity, is_lw_instance, lw_hypergraph};
use wcoj::prelude::*;
use wcoj::rational::Rational;
use wcoj::storage::ops::natural_join;

/// Example 2.2: |R| = |S| = |T| = N, every pairwise join N²/4 + N/2, and
/// the triangle join empty — for several N.
#[test]
fn example_2_2_exact_counts() {
    for n in [4u64, 10, 50, 100] {
        let rels = wcoj::datagen::example_2_2(n);
        for r in &rels {
            assert_eq!(r.len() as u64, n);
        }
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            let j = natural_join(&rels[a], &rels[b]);
            assert_eq!(j.len() as u64, n * n / 4 + n / 2, "pair ({a},{b}), N={n}");
        }
        assert!(join(&rels).unwrap().is_empty());
    }
}

/// §2: the triangle LP optimum is x = (1/2, 1/2, 1/2) with objective
/// (3/2)·log N, giving sup |q(I)| ≤ N^{3/2}.
#[test]
fn triangle_cover_is_exactly_half() {
    let rels = wcoj::datagen::agm_tight_triangle(8); // N = 64
    let cover = agm_cover(&rels).unwrap();
    assert_eq!(cover.exact, vec![Rational::ONE_HALF; 3]);
    assert!((cover.bound() - 64f64.powf(1.5)).abs() < 1e-6);
    // and the grid instance attains it
    assert_eq!(join(&rels).unwrap().len(), 512);
}

/// §5.2: the worked example's total order is 1, 4, 2, 5, 3, 6 and the QP
/// tree satisfies TO1/TO2.
#[test]
fn worked_example_total_order() {
    let rels = wcoj::datagen::worked_example(0, 5, 3);
    let q = JoinQuery::new(&rels).unwrap();
    let tree = build_qp_tree(q.hypergraph()).unwrap();
    let order = total_order(&tree);
    assert_eq!(order, vec![0, 3, 1, 4, 2, 5]); // = 1,4,2,5,3,6 one-based
    assert!(check_to1(&tree, &order));
    assert!(check_to2(&tree, &order));
    // root anchored at e (edge 5): splits V into {1,2,4} / {3,5,6}
    assert_eq!(tree.left.as_ref().unwrap().univ, vec![0, 1, 3]);
    assert_eq!(tree.right.as_ref().unwrap().univ, vec![2, 4, 5]);
}

/// Lemma 6.1's instance arithmetic: |R_i| = N and
/// |⋈ R_i| = N + (N−1)/(n−1) > N.
#[test]
fn lemma_6_1_cardinalities() {
    for n in [3usize, 4, 6] {
        // choose cap so (cap-1) divides evenly: cap = (n-1)*d + 1
        let d = 20u64;
        let cap = (n as u64 - 1) * d + 1;
        let rels = wcoj::datagen::simple_lw(n, cap);
        for r in &rels {
            assert_eq!(r.len() as u64, cap, "|R_i| = N for n={n}");
        }
        let out = join(&rels).unwrap();
        assert_eq!(out.len() as u64, cap + d, "|⋈| = N + (N−1)/(n−1)");
    }
}

/// §3: LW hypergraphs are (n−1)-regular BT families, recognised as such.
#[test]
fn lw_is_bt_regular() {
    for n in 2..7usize {
        let h = lw_hypergraph(n);
        assert!(is_lw_instance(&h));
        assert_eq!(bt_regularity(&h), Some(n - 1));
    }
}

/// §7.2 lower-bound instance: q_r has exactly N + Nⁿ tuples at r = n, and
/// C*(q, r) has the two classes the paper names.
#[test]
fn relaxed_lower_bound_instance() {
    let n = 2u32;
    let cap = 5u64;
    let rels = wcoj::datagen::relaxed_tight(n, cap);
    let out = relaxed_join(&rels, n as usize).unwrap();
    assert_eq!(out.relation.len() as u64, cap + cap.pow(n));
    assert_eq!(out.classes, 2, "C* = {{ {{n+1}}, [n] }}");
}

/// §7.1: the paper's statement that any basic feasible cover of a graph is
/// half-integral — across every connected graph shape on ≤ 5 vertices with
/// uniform weights.
#[test]
fn half_integrality_small_graph_sweep() {
    use wcoj::hypergraph::{agm::optimal_cover, half_integral::decompose, Hypergraph};
    // enumerate all connected graphs on 4 vertices (up to our edge-set
    // representation), solve, and decompose
    let all_pairs: Vec<(usize, usize)> = (0..4)
        .flat_map(|a| (a + 1..4).map(move |b| (a, b)))
        .collect();
    let mut tested = 0;
    for mask in 1u32..(1 << all_pairs.len()) {
        let edges: Vec<Vec<usize>> = all_pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &(a, b))| vec![a, b])
            .collect();
        // every vertex covered?
        let mut covered = [false; 4];
        for e in &edges {
            covered[e[0]] = true;
            covered[e[1]] = true;
        }
        if !covered.iter().all(|&c| c) {
            continue;
        }
        let h = Hypergraph::new(4, edges).unwrap();
        let m = h.num_edges();
        let sol = optimal_cover(&h, &vec![16; m]).unwrap();
        let d = decompose(&h, &sol.exact);
        assert!(d.is_ok(), "mask {mask:b}: {:?} → {:?}", sol.exact, d.err());
        tested += 1;
    }
    assert!(tested > 20, "swept {tested} covered graphs");
}

/// §1's headline: on Example 2.2 instances our algorithm is sub-quadratic
/// while the pairwise join is provably quadratic — checked as a counting
/// statement (intermediates), not a timing one, so the test is robust.
#[test]
fn headline_gap_as_counting_statement() {
    let n = 512u64;
    let rels = wcoj::datagen::example_2_2(n);
    let out = join_with(&rels, Algorithm::Nprr, None).unwrap();
    // Any binary plan materialises N²/4 + N/2 tuples:
    let quadratic = n * n / 4 + n / 2;
    assert!(
        out.stats.intermediate_tuples < quadratic / 8,
        "NPRR intermediates {} should be ≪ {quadratic}",
        out.stats.intermediate_tuples
    );
}
