//! Concurrency, determinism, and differential tests for the shared-pool
//! query service (`wcoj-service`).
//!
//! The scheduler's contract is brutal and simple: no matter how many
//! queries are in flight, how many workers the pool has, which index
//! backend a query prepared, or how the injector interleaves shard
//! tasks, every query's output is **bit-identical** to the sequential
//! `join_nprr` — same rows, same order — and its absorbed `JoinStats`
//! match a shard-by-shard sequential re-run of the same plan. These
//! tests pin all of that down across every seed query family.
//!
//! Interleavings only really shake out with optimizations on; CI runs
//! this suite in release mode (`cargo test --release --test
//! service_stress`) in addition to the plain debug `cargo test`.

use std::sync::Arc;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use wcoj::core::nprr::PreparedQuery;
use wcoj::core::JoinStats;
use wcoj::datagen as gen;
use wcoj::prelude::*;
use wcoj::storage::{FlatIndex, HashTrieIndex, SearchTree, TrieIndex};

/// The seed query families, `variants` instances each, with sizes small
/// enough that the full matrix stays debug-mode friendly.
fn seed_family_instances(variants: u64) -> Vec<(String, Vec<Relation>)> {
    let mut out = Vec::new();
    for i in 0..variants {
        out.push((format!("triangle_hard/{i}"), gen::example_2_2(32 + 16 * i)));
        out.push((format!("agm_tight/{i}"), gen::agm_tight_triangle(4 + i)));
        out.push((format!("lw4/{i}"), gen::random_lw(11 + i, 4, 80, 8)));
        out.push((
            format!("cycle5/{i}"),
            gen::cycle_instance(23 + i, 5, 50, 10),
        ));
        out.push((format!("figure2/{i}"), gen::worked_example(31 + i, 60, 6)));
        out.push((
            format!("random_triangle/{i}"),
            vec![
                gen::random_relation(41 + i, &[0, 1], 100, 12),
                gen::random_relation(51 + i, &[1, 2], 100, 12),
                gen::random_relation(61 + i, &[0, 2], 100, 12),
            ],
        ));
        out.push((
            format!("zipf_triangle/{i}"),
            vec![
                gen::zipf_relation(71 + i, &[0, 1], 120, 20, 1.3),
                gen::zipf_relation(81 + i, &[1, 2], 120, 20, 1.3),
                gen::zipf_relation(91 + i, &[0, 2], 120, 20, 1.3),
            ],
        ));
        out.push((
            format!("mixed_hypergraph/{i}"),
            vec![
                gen::random_relation(101 + i, &[0, 1, 2], 60, 7),
                gen::random_relation(111 + i, &[2, 3], 60, 7),
                gen::random_relation(121 + i, &[0, 3], 60, 7),
                gen::random_relation(131 + i, &[1, 3], 60, 7),
            ],
        ));
    }
    out
}

/// Asserts rows are identical *including order* — `Relation` equality
/// already covers it (schema + row vector), the explicit row-by-row
/// check documents the bit-identical claim.
fn assert_bit_identical(got: &Relation, want: &Relation, ctx: &str) {
    assert_eq!(got.schema(), want.schema(), "{ctx}: schema");
    assert_eq!(got.len(), want.len(), "{ctx}: cardinality");
    for (i, (g, w)) in got.iter_rows().zip(want.iter_rows()).enumerate() {
        assert_eq!(g, w, "{ctx}: row {i} (order matters)");
    }
    assert_eq!(got, want, "{ctx}");
}

/// The observability contract for a finished, uncancelled query: the
/// profile covers every scheduled shard in slot order, lifecycle phases
/// are monotone, per-shard rows sum to the output's cardinality, and
/// per-shard `JoinStats` absorb to the output's engine totals.
fn assert_profile_consistent(
    profile: &wcoj::service::QueryProfile,
    out: &wcoj::core::JoinOutput,
    ctx: &str,
) {
    assert!(!profile.cancelled, "{ctx}: not cancelled");
    assert!(profile.is_complete(), "{ctx}: every shard reported");
    assert_eq!(profile.shards.len(), profile.total_shards, "{ctx}");
    for (slot, shard) in profile.shards.iter().enumerate() {
        assert_eq!(shard.slot, slot, "{ctx}: slot order");
        assert!(!shard.skipped, "{ctx}: nothing skipped");
    }
    assert_eq!(
        profile.total_rows(),
        out.relation.len() as u64,
        "{ctx}: per-shard rows sum to the output"
    );
    let mut stats = JoinStats::default();
    for shard in &profile.shards {
        stats.absorb(&shard.stats);
    }
    assert_eq!(stats.shards, out.stats.shards, "{ctx}: shard count");
    assert_eq!(
        stats.case_a + stats.case_b,
        out.stats.case_a + out.stats.case_b,
        "{ctx}: per-shard stats absorb to the total"
    );
    assert_eq!(
        stats.intermediate_tuples, out.stats.intermediate_tuples,
        "{ctx}: intermediate tuples"
    );
    if profile.total_shards > 0 {
        let planned = profile.planned.unwrap_or_else(|| panic!("{ctx}: planned"));
        let first = profile
            .first_dispatch
            .unwrap_or_else(|| panic!("{ctx}: first_dispatch"));
        let last = profile
            .last_finish
            .unwrap_or_else(|| panic!("{ctx}: last_finish"));
        let reassembled = profile
            .reassembled
            .unwrap_or_else(|| panic!("{ctx}: reassembled"));
        assert!(
            profile.admitted <= planned && planned <= first && first <= last && last <= reassembled,
            "{ctx}: monotone phases: {profile:?}"
        );
    }
}

/// 32+ queries across all seed families, submitted concurrently from
/// multiple client threads onto small shared pools, every result
/// bit-identical to sequential `join_nprr` — repeated over shuffle
/// seeds so submission order (and hence injector interleaving) varies.
#[test]
fn stress_concurrent_mixed_queries_match_sequential() {
    let instances = seed_family_instances(4);
    assert!(instances.len() >= 32, "all seed families represented");
    let prepared: Vec<(String, Arc<PreparedQuery>)> = instances
        .iter()
        .map(|(name, rels)| {
            (
                name.clone(),
                Arc::new(PreparedQuery::new(rels).expect("well-formed instance")),
            )
        })
        .collect();
    let expected: Vec<Relation> = instances
        .iter()
        .map(|(_, rels)| {
            join_with(rels, Algorithm::Nprr, None)
                .expect("sequential oracle")
                .relation
        })
        .collect();

    for workers in [2usize, 4, 8] {
        let service = Arc::new(Service::new(ServiceConfig::with_workers(workers)));
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        for round in 0..2u64 {
            // Deterministically shuffled submission order per round.
            let mut order: Vec<usize> = (0..prepared.len()).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(round * 1000 + workers as u64);
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let submitters = 4;
            std::thread::scope(|scope| {
                for s in 0..submitters {
                    let order = &order;
                    let prepared = &prepared;
                    let expected = &expected;
                    let service = Arc::clone(&service);
                    let cfg = cfg.clone();
                    scope.spawn(move || {
                        // Submit this thread's whole slice first, then
                        // wait: keeps many queries in flight at once.
                        let mine: Vec<usize> =
                            order.iter().copied().skip(s).step_by(submitters).collect();
                        let handles: Vec<(usize, QueryHandle)> = mine
                            .iter()
                            .map(|&q| (q, service.submit(&prepared[q].1, &cfg).expect("submit")))
                            .collect();
                        for (q, handle) in handles {
                            let (out, profile) = handle.wait_profiled().expect("join");
                            let ctx =
                                format!("{} @ {workers} workers, round {round}", prepared[q].0);
                            assert_bit_identical(&out.relation, &expected[q], &ctx);
                            // Profiles stay consistent under full
                            // concurrency, not just in isolation.
                            assert_profile_consistent(&profile, &out, &ctx);
                        }
                    });
                }
            });
        }
        assert_eq!(service.submitted(), 2 * prepared.len() as u64);
    }
}

/// Submitting a query concurrently with itself (plus background noise)
/// yields identical row order: the deterministic root-order merge must
/// survive the shared injector.
#[test]
fn determinism_same_query_twice_concurrently() {
    let rels = vec![
        gen::zipf_relation(5, &[0, 1], 150, 18, 1.2),
        gen::zipf_relation(6, &[1, 2], 150, 18, 1.2),
        gen::zipf_relation(7, &[0, 2], 150, 18, 1.2),
    ];
    let seq = join_with(&rels, Algorithm::Nprr, None).unwrap().relation;
    let prepared = Arc::new(PreparedQuery::new(&rels).unwrap());
    let noise = Arc::new(PreparedQuery::new(&gen::example_2_2(48)).unwrap());
    let service = Service::new(ServiceConfig::with_workers(3));
    let cfg = ExecConfig {
        shard_min_size: 1,
        ..service.exec_config()
    };
    for _ in 0..8 {
        let n1 = service.submit(&noise, &cfg).unwrap();
        let a = service.submit(&prepared, &cfg).unwrap();
        let b = service.submit(&prepared, &cfg).unwrap();
        let n2 = service.submit(&noise, &cfg).unwrap();
        let (a, b) = (a.wait().unwrap(), b.wait().unwrap());
        assert_bit_identical(&a.relation, &b.relation, "self-race");
        assert_bit_identical(&a.relation, &seq, "vs sequential");
        assert_eq!(a.stats.shards, b.stats.shards, "same plan both times");
        n1.wait().unwrap();
        n2.wait().unwrap();
    }
}

/// Zero-shard plans through the service path: empty inputs and an empty
/// root-candidate intersection return cleanly, with no shard ever run.
/// (The exec-path twin lives in `wcoj-exec`'s unit tests.)
#[test]
fn zero_shard_plans_resolve_cleanly() {
    let service = Service::new(ServiceConfig::with_workers(4));
    let cfg = ExecConfig {
        shard_min_size: 1,
        ..service.exec_config()
    };

    // Empty root domain: π_root intersection is empty though every
    // relation is populated.
    let rels = vec![
        Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[10, 1], &[10, 2], &[11, 3]]),
        Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[7, 20], &[8, 20], &[9, 21]]),
        Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[10, 20], &[11, 21]]),
    ];
    let prepared = Arc::new(PreparedQuery::new(&rels).unwrap());
    assert!(service.shard_layout(&*prepared, &cfg).is_empty());
    let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
    let seq = join_with(&rels, Algorithm::Nprr, None).unwrap().relation;
    assert_bit_identical(&out.relation, &seq, "empty root domain");
    assert!(out.relation.is_empty());
    assert_eq!(out.stats.shards, 0, "no shard task scheduled");
    assert_eq!(out.stats.case_a + out.stats.case_b, 0, "engine never ran");

    // All-empty / one-empty relations.
    let rels = vec![
        Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2]]),
        Relation::empty(Schema::of(&[1, 2])),
    ];
    let prepared = Arc::new(PreparedQuery::new(&rels).unwrap());
    let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
    assert!(out.relation.is_empty());
    assert_eq!(out.relation.arity(), 3);
    assert_eq!(out.stats.shards, 0);

    // The parallel exec path agrees end to end.
    let par = par_join(
        &[
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[10, 1], &[10, 2], &[11, 3]]),
            Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[7, 20], &[8, 20], &[9, 21]]),
            Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[10, 20], &[11, 21]]),
        ],
        &ExecConfig {
            threads: 4,
            shard_min_size: 1,
            ..ExecConfig::default()
        },
    )
    .unwrap();
    assert!(par.relation.is_empty());
    assert_eq!(par.stats.shards, 0);
}

/// Repeat-submission rounds through the catalog front end on a live
/// service: the prepared plan (cover LP + flat indexes) is built exactly
/// once, every later round is a plan-cache hit, outputs stay
/// bit-identical across rounds, and replacing a relation mid-stream
/// forces a rebuild with zero stale hits.
#[test]
fn repeat_submissions_reuse_cached_plans_through_the_service() {
    let rels = vec![
        gen::zipf_relation(301, &[0, 1], 140, 18, 1.3),
        gen::zipf_relation(302, &[1, 2], 140, 18, 1.3),
        gen::zipf_relation(303, &[0, 2], 140, 18, 1.3),
    ];
    let seq = join_with(&rels, Algorithm::Nprr, None).unwrap().relation;
    let mut catalog = Catalog::new();
    for (name, rel) in ["R", "S", "T"].iter().zip(rels.iter().cloned()) {
        catalog.insert(*name, rel);
    }
    let service = Arc::new(Service::new(ServiceConfig::with_workers(4)));
    catalog.set_service(Some(Arc::clone(&service)));
    let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();

    let first = execute(&q, &catalog).unwrap();
    assert_bit_identical(&first.relation, &seq, "first round vs sequential");
    assert_eq!(catalog.plan_cache_stats(), (0, 1), "first round builds");
    for round in 1..=5u64 {
        let out = execute(&q, &catalog).unwrap();
        assert_bit_identical(&out.relation, &seq, &format!("round {round}"));
        assert_eq!(
            catalog.plan_cache_stats(),
            (round, 1),
            "round {round} served from the plan cache"
        );
    }
    assert_eq!(service.submitted(), 6, "every round still hit the pool");

    // Replace a relation mid-stream: the next round must rebuild (no
    // stale hit) and reflect the new contents.
    catalog.insert("R", gen::zipf_relation(999, &[0, 1], 140, 18, 1.3));
    let replaced = execute(&q, &catalog).unwrap();
    assert_eq!(
        catalog.plan_cache_stats(),
        (5, 2),
        "replacement invalidated the cached plan"
    );
    let oracle_rels = vec![
        catalog.get("R").unwrap().clone(),
        catalog.get("S").unwrap().clone(),
        catalog.get("T").unwrap().clone(),
    ];
    let oracle = join_with(&oracle_rels, Algorithm::Nprr, None)
        .unwrap()
        .relation;
    assert_bit_identical(&replaced.relation, &oracle, "post-replace round");
}

/// A random query instance in the style of the exec proptests: 2–5
/// relations of arity ≤ 3 over 2–5 attributes.
fn random_instance(seed: u64) -> Vec<Relation> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n_attr = rng.gen_range(2..6u32);
    let n_rel = rng.gen_range(2..5usize);
    let mut rels = Vec::new();
    for i in 0..n_rel {
        let arity = rng.gen_range(1..=3.min(n_attr));
        let mut attrs: Vec<u32> = (0..n_attr).collect();
        for j in (1..attrs.len()).rev() {
            attrs.swap(j, rng.gen_range(0..=j));
        }
        attrs.truncate(arity as usize);
        attrs.sort_unstable();
        let count = rng.gen_range(5..40);
        let dom = rng.gen_range(2..8u64);
        rels.push(gen::random_relation(
            seed.wrapping_mul(31).wrapping_add(i as u64),
            &attrs,
            count,
            dom,
        ));
    }
    rels
}

/// Service output and stats for one prepared query, checked against the
/// sequential oracle and a shard-by-shard sequential re-run of the same
/// plan (`JoinStats::absorb` totals must not depend on pool
/// interleaving).
fn check_service_run<S>(
    service: &Service,
    rels: &[Relation],
    seq: &Relation,
    cfg: &ExecConfig,
    ctx: &str,
) where
    S: SearchTree + Send + Sync + 'static,
{
    let prepared = Arc::new(PreparedQuery::<S>::new_indexed(rels).expect("prepare"));
    let (out, profile) = service
        .submit(&prepared, cfg)
        .expect("submit")
        .wait_profiled()
        .expect("join");
    assert_bit_identical(&out.relation, seq, ctx);
    assert_profile_consistent(&profile, &out, ctx);

    if rels.iter().any(Relation::is_empty) {
        return; // degenerate: resolved at submit, no stats to re-run
    }
    // Re-run the exact shard layout sequentially and fold stats the way
    // the service does.
    let (x, log2_bound) = prepared.resolve_cover(None).expect("cover");
    let mut expect_stats = JoinStats {
        algorithm_used: "nprr-service",
        log2_agm_bound: log2_bound,
        cover: x.clone(),
        ..JoinStats::default()
    };
    for shard in service.shard_layout(&*prepared, cfg) {
        let (_, shard_stats) = prepared.run_shard(&x, log2_bound, shard);
        expect_stats.absorb(&shard_stats);
    }
    assert_eq!(
        out.stats.algorithm_used, expect_stats.algorithm_used,
        "{ctx}"
    );
    assert_eq!(out.stats.shards, expect_stats.shards, "{ctx}: shards");
    assert_eq!(out.stats.case_a, expect_stats.case_a, "{ctx}: case_a");
    assert_eq!(out.stats.case_b, expect_stats.case_b, "{ctx}: case_b");
    assert_eq!(
        out.stats.intermediate_tuples, expect_stats.intermediate_tuples,
        "{ctx}: intermediate_tuples"
    );
    assert_eq!(out.stats.cover, expect_stats.cover, "{ctx}: cover");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random query mixes × pool sizes × both index backends: the
    /// service always equals the sequential engine, and absorbed stats
    /// equal a sequential shard-by-shard re-run.
    #[test]
    fn prop_service_equals_sequential(seed in 0u64..10_000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(7919));
        let mix: Vec<Vec<Relation>> = (0..3)
            .map(|i| random_instance(seed.wrapping_add(i * 1009)))
            .collect();
        let oracles: Vec<Relation> = mix
            .iter()
            .map(|rels| join_with(rels, Algorithm::Nprr, None).unwrap().relation)
            .collect();
        let workers = [1usize, 2, 4, 8][rng.gen_range(0..4usize)];
        let service = Service::new(ServiceConfig::with_workers(workers));
        let cfg = ExecConfig { shard_min_size: 1, ..service.exec_config() };
        for (rels, seq) in mix.iter().zip(&oracles) {
            let ctx = format!("seed {seed}, {workers} workers");
            check_service_run::<TrieIndex>(&service, rels, seq, &cfg, &format!("{ctx}, sorted"));
            check_service_run::<HashTrieIndex>(&service, rels, seq, &cfg, &format!("{ctx}, hashed"));
            check_service_run::<FlatIndex>(&service, rels, seq, &cfg, &format!("{ctx}, flat"));
        }
    }

    /// Zipf-skewed data across pool sizes: the work-based splitter's
    /// heavy-hitter isolation must stay invisible in the output.
    #[test]
    fn prop_service_zipf_skew(seed in 0u64..2_000) {
        let rels = vec![
            gen::zipf_relation(seed, &[0, 1], 120, 16, 1.4),
            gen::zipf_relation(seed + 1, &[1, 2], 120, 16, 1.4),
            gen::zipf_relation(seed + 2, &[0, 2], 120, 16, 1.4),
        ];
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap().relation;
        for workers in [1usize, 2, 4, 8] {
            let service = Service::new(ServiceConfig::with_workers(workers));
            let cfg = ExecConfig { shard_min_size: 1, ..service.exec_config() };
            let ctx = format!("zipf seed {seed}, {workers} workers");
            check_service_run::<TrieIndex>(&service, &rels, &seq, &cfg, &format!("{ctx}, sorted"));
            check_service_run::<FlatIndex>(&service, &rels, &seq, &cfg, &format!("{ctx}, flat"));
        }
    }
}
