//! Release-mode loopback stress for the HTTP front end: the e2e
//! incremental-streaming window (a first chunk on the wire *before* the
//! last shard finishes) and an admission flood where every shed
//! submission is an exactly-accounted 429.
//!
//! Timing-sensitive on purpose: run in release mode (CI does), where
//! shard execution and admission checks race for real.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wcoj::core::nprr::PreparedQuery;
use wcoj::query::Catalog;
use wcoj::server::{Server, ServerConfig};
use wcoj::service::{Service, ServiceConfig};
use wcoj::storage::TrieIndex;

// ---------------------------------------------------------------- client

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    chunks: usize,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("UTF-8 body")
    }
}

fn parse_response(raw: &[u8]) -> Response {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .expect("status line")
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .map(|l| {
            let (k, v) = l.split_once(':').expect("header line");
            (k.to_ascii_lowercase(), v.trim().to_owned())
        })
        .collect();
    let raw_body = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked");
    if !chunked {
        return Response {
            status,
            headers,
            body: raw_body.to_vec(),
            chunks: 0,
        };
    }
    let mut body = Vec::new();
    let mut chunks = 0;
    let mut rest = raw_body;
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size = usize::from_str_radix(
            std::str::from_utf8(&rest[..line_end])
                .expect("UTF-8 size")
                .trim(),
            16,
        )
        .expect("hex chunk size");
        rest = &rest[line_end + 2..];
        if size == 0 {
            break;
        }
        assert!(rest.len() >= size + 2, "truncated chunk");
        body.extend_from_slice(&rest[..size]);
        rest = &rest[size + 2..];
        chunks += 1;
    }
    Response {
        status,
        headers,
        body,
        chunks,
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: stress\r\n");
    if let Some(body) = body {
        req.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    req.push_str("\r\n");
    if let Some(body) = body {
        req.push_str(body);
    }
    stream.write_all(req.as_bytes()).expect("send request");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read response");
    parse_response(&out)
}

fn extract_id(json: &str) -> u64 {
    json.split("\"id\":")
        .nth(1)
        .expect("id field")
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric id")
}

// --------------------------------------------------------------- fixture

fn edge_csv(rows: usize) -> String {
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut csv = String::new();
    for _ in 0..rows {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        csv.push_str(&format!("{},{}\n", (x >> 33) % 40, (x >> 13) % 40));
    }
    csv
}

/// The rows a sequential (service-less) run streams for `query` — the
/// bit-identity oracle, order included.
fn sequential_rows(csv: &str, query: &str) -> String {
    let mut catalog = Catalog::new();
    let rel = wcoj::query::load_csv(csv, catalog.dictionary()).unwrap();
    catalog.insert("E", rel);
    let q = wcoj::query::parse_query(query).unwrap();
    let result = wcoj::query::execute(&q, &catalog).unwrap();
    let mut body = String::new();
    for row in result.decoded_rows(&catalog) {
        let line: Vec<String> = row.iter().map(|d| format!("{d}")).collect();
        body.push_str(&line.join(","));
        body.push('\n');
    }
    body
}

fn server_on(workers: usize, queue_depth: usize, conn_threads: usize) -> (Server, Arc<Service>) {
    let service = Arc::new(Service::new(ServiceConfig {
        exec: wcoj::ExecConfig {
            shard_min_size: 1,
            ..wcoj::ExecConfig::default()
        },
        queue_depth,
        ..ServiceConfig::with_workers(workers)
    }));
    let mut catalog = Catalog::new();
    catalog.set_service(Some(Arc::clone(&service)));
    let cfg = ServerConfig {
        bind: "127.0.0.1:0".parse().unwrap(),
        conn_threads,
        ..ServerConfig::default()
    };
    let server = Server::start_with(cfg, catalog).expect("bind loopback");
    (server, service)
}

fn blocker(seed: u64) -> Arc<PreparedQuery<TrieIndex>> {
    let rels = wcoj::datagen::cycle_instance(seed, 5, 200, 15);
    Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap())
}

// ------------------------------------------------------------------ e2e

/// The ISSUE's acceptance scenario: a multi-shard query streams its
/// first chunk while later shards are still queued behind a heavy
/// competitor, and the concatenated stream is bit-identical (rows *and*
/// order) to the sequential engine.
#[test]
fn multi_shard_query_streams_rows_before_the_last_shard_finishes() {
    let (server, service) = server_on(1, 0, 4);
    let addr = server.addr();
    let csv = edge_csv(220);
    let query = "q(x, y) :- E(x, y).";
    let expected = sequential_rows(&csv, query);

    let r = request(addr, "PUT", "/relation/E", Some(&csv));
    assert_eq!(r.status, 200, "{}", r.text());

    // A heavy 5-cycle occupies the single worker; round-robin dispatch
    // interleaves its shards with the streamed query's, so slots settle
    // one at a time with real gaps between them.
    let guard = service
        .submit_with_cover(&blocker(41), None, &service.exec_config())
        .unwrap();

    let r = request(addr, "POST", "/query", Some(query));
    assert_eq!(r.status, 202, "{}", r.text());
    assert!(r.text().contains("\"streaming\":true"), "{}", r.text());
    let id = extract_id(r.text());

    // Read incrementally off the raw socket until one full chunk frame
    // has arrived.
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.write_all(format!("GET /query/{id}/rows HTTP/1.1\r\n\r\n").as_bytes())
        .unwrap();
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(30);
    while !has_complete_chunk(&buf) {
        assert!(Instant::now() < deadline, "first chunk never arrived");
        let n = sock.read(&mut scratch).unwrap();
        assert!(n > 0, "stream ended before the first chunk");
        buf.extend_from_slice(&scratch[..n]);
    }

    // THE window: a chunk is on the wire, yet the query has unfinished
    // shards (the blocker still owns the worker between our slots).
    let status = request(addr, "GET", &format!("/query/{id}"), None);
    assert!(
        status.text().contains("\"state\":\"streaming\""),
        "{}",
        status.text()
    );
    let mid_flight = service.counters();
    assert!(
        mid_flight.in_flight >= 1,
        "no query in flight while a chunk was already streamed: {mid_flight:?}"
    );

    // Drain the rest and verify bit-identity.
    sock.read_to_end(&mut buf).unwrap();
    drop(guard);
    let streamed = parse_response(&buf);
    assert_eq!(streamed.status, 200);
    assert_eq!(streamed.header("x-streaming"), Some("incremental"));
    assert!(
        streamed.chunks >= 2,
        "multi-shard plan produced {} chunk(s)",
        streamed.chunks
    );
    assert_eq!(streamed.text(), expected, "stream differs from join_nprr");

    let done = request(addr, "GET", &format!("/query/{id}"), None);
    assert!(
        done.text().contains("\"state\":\"done\""),
        "{}",
        done.text()
    );
}

/// `true` once `raw` holds complete response headers plus at least one
/// complete non-empty chunk frame.
fn has_complete_chunk(raw: &[u8]) -> bool {
    let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n") else {
        return false;
    };
    let mut rest = &raw[head_end + 4..];
    let Some(line_end) = rest.windows(2).position(|w| w == b"\r\n") else {
        return false;
    };
    let Ok(size_str) = std::str::from_utf8(&rest[..line_end]) else {
        return false;
    };
    let Ok(size) = usize::from_str_radix(size_str.trim(), 16) else {
        return false;
    };
    rest = &rest[line_end + 2..];
    size > 0 && rest.len() >= size + 2
}

// ---------------------------------------------------------------- flood

/// Concurrent clients flooding past the admission bound: every response
/// is a 202 or a 429-with-Retry-After, the 429 count matches the
/// service's shed counter *exactly*, accepted queries all stream rows
/// bit-identical to the sequential engine, and `/metrics` stays a valid
/// Prometheus exposition mid-flood.
#[test]
fn admission_flood_accounts_every_shed_as_a_429() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 8;

    let (server, service) = server_on(1, 2, 8);
    let addr = server.addr();
    let csv = edge_csv(220);
    let query = "q(x, y) :- E(x, y).";
    let expected = sequential_rows(&csv, query);

    let r = request(addr, "PUT", "/relation/E", Some(&csv));
    assert_eq!(r.status, 200, "{}", r.text());
    let shed_before = service.counters().shed;

    // One prober hits /metrics throughout the flood and checks the
    // exposition always parses.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let prober = std::thread::spawn({
        let stop = Arc::clone(&stop);
        move || {
            let mut probes = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let r = request(addr, "GET", "/metrics", None);
                assert_eq!(r.status, 200);
                wcoj::obs::check_exposition(r.text())
                    .expect("mid-flood exposition must stay valid");
                probes += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            probes
        }
    });

    let flood: Vec<std::thread::JoinHandle<(Vec<u64>, usize)>> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut accepted = Vec::new();
                let mut shed = 0usize;
                for _ in 0..PER_CLIENT {
                    let r = request(addr, "POST", "/query", Some("q(x, y) :- E(x, y)."));
                    match r.status {
                        202 => accepted.push(extract_id(r.text())),
                        429 => {
                            assert_eq!(
                                r.header("retry-after"),
                                Some("1"),
                                "429 without Retry-After"
                            );
                            shed += 1;
                        }
                        s => panic!("unexpected status {s}: {}", r.text()),
                    }
                }
                (accepted, shed)
            })
        })
        .collect();
    let mut accepted: Vec<u64> = Vec::new();
    let mut shed_seen = 0usize;
    for t in flood {
        let (ids, shed) = t.join().expect("flood client");
        accepted.extend(ids);
        shed_seen += shed;
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let probes = prober.join().expect("metrics prober");
    assert!(probes > 0, "prober never ran");

    // Exact accounting: every submission is either accepted or a 429,
    // and the 429s are exactly the service's sheds.
    assert_eq!(accepted.len() + shed_seen, CLIENTS * PER_CLIENT);
    assert!(
        shed_seen > 0,
        "flood never overloaded the queue_depth=2 service"
    );
    assert!(!accepted.is_empty(), "flood starved every submission");
    assert_eq!(
        service.counters().shed,
        shed_before + shed_seen as u64,
        "HTTP 429s and service sheds disagree"
    );

    // The global shed counter in /metrics moved by the same amount.
    let metrics = request(addr, "GET", "/metrics", None);
    let exposed = metric_value(metrics.text(), "wcoj_service_shed_total");
    assert!(
        exposed >= shed_seen as u64,
        "wcoj_service_shed_total={exposed} < {shed_seen}"
    );

    // Accepted queries all finished server-side (admission slots freed
    // without anyone fetching rows yet) and stream the exact rows.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let c = service.counters();
        if c.in_flight == 0 && c.queued_tasks == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "service never drained: {c:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
    for &id in &accepted {
        let r = request(addr, "GET", &format!("/query/{id}/rows"), None);
        assert_eq!(r.status, 200, "job {id}: {}", r.text());
        assert_eq!(r.text(), expected, "job {id} rows differ from join_nprr");
    }
    drop(server);
}

fn metric_value(exposition: &str, name: &str) -> u64 {
    exposition
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_ascii_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{name} not exposed"))
}
