//! Property-based tests of the relational algebra and the AGM machinery —
//! invariants the paper's proofs lean on, checked on random instances.

use proptest::prelude::*;
use wcoj::hypergraph::{agm, cover, Hypergraph};
use wcoj::prelude::*;
use wcoj::storage::ops::{difference, intersect, natural_join, project, reorder, semijoin, union};

fn arb_relation(
    attrs: &'static [u32],
    max_rows: usize,
    dom: u64,
) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0..dom, attrs.len()), 0..max_rows).prop_map(
        move |rows| {
            let vrows: Vec<Vec<Value>> = rows
                .into_iter()
                .map(|r| r.into_iter().map(Value).collect())
                .collect();
            Relation::from_rows(Schema::of(attrs), vrows).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Join is commutative and associative as a set.
    #[test]
    fn join_commutative_associative(
        r in arb_relation(&[0, 1], 20, 5),
        s in arb_relation(&[1, 2], 20, 5),
        t in arb_relation(&[2, 0], 20, 5),
    ) {
        let rs_t = natural_join(&natural_join(&r, &s), &t);
        let r_st = natural_join(&r, &natural_join(&s, &t));
        let r_st = reorder(&r_st, rs_t.schema()).unwrap();
        prop_assert_eq!(rs_t.clone(), r_st);
        let sr = natural_join(&s, &r);
        let rs = natural_join(&r, &s);
        prop_assert_eq!(reorder(&sr, rs.schema()).unwrap(), rs);
    }

    /// Semijoin = projection of the join onto the left schema.
    #[test]
    fn semijoin_is_projected_join(
        r in arb_relation(&[0, 1], 25, 5),
        s in arb_relation(&[1, 2], 25, 5),
    ) {
        let sj = semijoin(&r, &s);
        let pj = project(&natural_join(&r, &s), r.schema().attrs()).unwrap();
        prop_assert_eq!(sj, pj);
    }

    /// Set-algebra laws: union/intersection/difference over aligned
    /// schemas.
    #[test]
    fn set_laws(
        a in arb_relation(&[0, 1], 25, 4),
        b in arb_relation(&[0, 1], 25, 4),
    ) {
        let u = union(&a, &b).unwrap();
        let i = intersect(&a, &b).unwrap();
        let d = difference(&a, &b).unwrap();
        // |A ∪ B| = |A| + |B| − |A ∩ B|
        prop_assert_eq!(u.len() + i.len(), a.len() + b.len());
        // A = (A − B) ∪ (A ∩ B)
        let back = union(&d, &i).unwrap();
        prop_assert_eq!(back, a);
    }

    /// Projection is monotone and never grows cardinality.
    #[test]
    fn projection_shrinks(r in arb_relation(&[0, 1, 2], 30, 4)) {
        for attrs in [&[0u32][..], &[0, 1], &[2, 0]] {
            let keep: Vec<Attr> = attrs.iter().map(|&a| Attr(a)).collect();
            let p = project(&r, &keep).unwrap();
            prop_assert!(p.len() <= r.len());
        }
    }

    /// AGM bound holds for the triangle (via the actual join) and the
    /// all-ones cover is always valid.
    #[test]
    fn agm_inequality_on_random_triangles(
        r in arb_relation(&[0, 1], 30, 6),
        s in arb_relation(&[1, 2], 30, 6),
        t in arb_relation(&[0, 2], 30, 6),
    ) {
        let j = natural_join(&natural_join(&r, &s), &t);
        let bound = ((r.len() * s.len() * t.len()) as f64).sqrt();
        prop_assert!((j.len() as f64) <= bound + 1e-9);

        if !r.is_empty() && !s.is_empty() && !t.is_empty() {
            let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
            prop_assert!(cover::validate_cover(&h, &cover::all_ones(&h)).is_ok());
            let sol = agm::optimal_cover(&h, &[r.len(), s.len(), t.len()]).unwrap();
            prop_assert!(agm::within_bound(j.len(), sol.log2_bound));
        }
    }

    /// The wcoj join agrees with the pairwise reference on random chains.
    #[test]
    fn wcoj_equals_pairwise_on_chains(
        r in arb_relation(&[0, 1], 20, 4),
        s in arb_relation(&[1, 2], 20, 4),
        t in arb_relation(&[2, 3], 20, 4),
    ) {
        let expect = natural_join(&natural_join(&r, &s), &t);
        let got = join(&[r, s, t]).unwrap();
        let expect = reorder(&expect, got.schema()).unwrap();
        prop_assert_eq!(got, expect);
    }
}
