//! Cross-crate integration tests: the full pipeline from text query or
//! generator output down to verified join results, exercising every crate
//! through the facade.

use wcoj::baselines::pairwise::{hash_join, nested_loop_join, sort_merge_join};
use wcoj::baselines::plan::{execute, JoinImpl, JoinPlan};
use wcoj::core::{naive, relaxed};
use wcoj::hypergraph::agm;
use wcoj::prelude::*;
use wcoj::storage::ops::reorder;

#[test]
fn facade_quickstart_compiles_and_runs() {
    let r = Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[1, 3]]);
    let s = Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 4], &[3, 4]]);
    let t = Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[1, 4]]);
    let out = join(&[r, s, t]).unwrap();
    assert_eq!(out.len(), 2);
}

#[test]
fn all_algorithms_and_all_baselines_agree() {
    for seed in 0..5u64 {
        let rels = [
            wcoj::datagen::random_relation(seed, &[0, 1], 60, 8),
            wcoj::datagen::random_relation(seed + 10, &[1, 2], 60, 8),
            wcoj::datagen::random_relation(seed + 20, &[0, 2], 60, 8),
        ];
        let expected = naive::join(&rels);

        for algo in [Algorithm::Lw, Algorithm::Nprr, Algorithm::GraphJoin] {
            let out = join_with(&rels, algo, None).unwrap();
            let exp = reorder(&expected, out.relation.schema()).unwrap();
            assert_eq!(out.relation, exp, "seed {seed}, {algo:?}");
        }
        for imp in [JoinImpl::Hash, JoinImpl::SortMerge, JoinImpl::NestedLoop] {
            let (out, _) = execute(&JoinPlan::left_deep(&[0, 1, 2]), &rels, imp).unwrap();
            let exp = reorder(&expected, out.schema()).unwrap();
            assert_eq!(out, exp, "seed {seed}, {imp:?}");
        }
    }
}

#[test]
fn agm_bound_invariant_across_generators() {
    // Every generated instance obeys |J| ≤ AGM bound, with equality for the
    // tight generator.
    let tight = wcoj::datagen::agm_tight_triangle(6);
    let q = JoinQuery::new(&tight).unwrap();
    let sol = q.optimal_cover().unwrap();
    let out = join(&tight).unwrap();
    assert!((out.len() as f64 - sol.bound()).abs() / sol.bound() < 1e-6);

    let hard = wcoj::datagen::example_2_2(64);
    let out = join(&hard).unwrap();
    assert!(out.is_empty());

    for seed in 0..3u64 {
        let rels = wcoj::datagen::random_lw(seed, 4, 200, 8);
        let q = JoinQuery::new(&rels).unwrap();
        let sol = q.optimal_cover().unwrap();
        let out = join(&rels).unwrap();
        if !out.is_empty() {
            assert!((out.len() as f64).log2() <= sol.log2_bound + 1e-6);
        }
    }
}

#[test]
fn csv_to_datalog_to_join_pipeline() {
    let mut catalog = Catalog::new();
    let csv = "\
alice,bob\n\
bob,carol\n\
alice,carol\n\
carol,dave\n\
bob,dave\n\
carol,bob\n";
    let edges = load_csv(csv, catalog.dictionary()).unwrap();
    catalog.insert("follows", edges);

    let q = parse_query("Mutual(a, b) :- follows(a, b), follows(b, a)").unwrap();
    let out = wcoj::query::execute(&q, &catalog).unwrap();
    // bob↔carol both directions
    assert_eq!(out.relation.len(), 2);

    let q2 = parse_query("Tri(x, y, z) :- follows(x, y), follows(y, z), follows(x, z)").unwrap();
    let out2 = wcoj::query::execute(&q2, &catalog).unwrap();
    let decoded = out2.decoded_rows(&catalog);
    assert!(decoded.contains(&vec![
        Datum::str("alice"),
        Datum::str("bob"),
        Datum::str("carol")
    ]));
}

#[test]
fn lower_bound_gap_is_visible_at_small_scale() {
    // Lemma 6.1 at N = 256, n = 3: the best binary plan materialises a
    // quadratic intermediate; NPRR's working set stays linear.
    let rels = wcoj::datagen::simple_lw(3, 256);
    let (_, stats) = wcoj::baselines::best_actual_left_deep(&rels);
    let out = join_with(&rels, Algorithm::Nprr, None).unwrap();
    let d = (256 - 1) / 2;
    assert!(stats.max_intermediate as u64 >= (d + 1) * (d + 1));
    assert!(
        out.stats.intermediate_tuples < stats.max_intermediate as u64 / 4,
        "NPRR intermediates ({}) should be far below the binary blow-up ({})",
        out.stats.intermediate_tuples,
        stats.max_intermediate
    );
}

#[test]
fn pairwise_joins_commute_with_wcoj_on_two_relations() {
    for seed in 0..4u64 {
        let l = wcoj::datagen::random_relation(seed, &[0, 1], 50, 6);
        let r = wcoj::datagen::random_relation(seed + 5, &[1, 2], 50, 6);
        let h = hash_join(&l, &r);
        let s = reorder(&sort_merge_join(&l, &r), h.schema()).unwrap();
        let n = reorder(&nested_loop_join(&l, &r), h.schema()).unwrap();
        let w = join(&[l, r]).unwrap();
        let w = reorder(&w, h.schema()).unwrap();
        assert_eq!(h, s);
        assert_eq!(h, n);
        assert_eq!(h, w);
    }
}

#[test]
fn relaxed_join_tightness_instance() {
    let rels = wcoj::datagen::relaxed_tight(3, 5);
    let out = relaxed::relaxed_join(&rels, 3).unwrap();
    assert_eq!(out.relation.len() as u64, 5 + 5u64.pow(3));
}

#[test]
fn cover_lp_agrees_with_hand_computed_bounds() {
    // path query: bound = N·M (integral cover)
    let r = wcoj::datagen::random_relation_exact(1, &[0, 1], 100, 50);
    let s = wcoj::datagen::random_relation_exact(2, &[1, 2], 80, 50);
    let q = JoinQuery::new(&[r, s]).unwrap();
    let sol = q.optimal_cover().unwrap();
    assert!((sol.bound() - 8000.0).abs() < 1.0);

    // LW(4) uniform: bound = N^{4/3}
    let rels = wcoj::datagen::random_lw(3, 4, 100, 64);
    let rels: Vec<Relation> = rels;
    let sizes: Vec<usize> = rels.iter().map(Relation::len).collect();
    let q = JoinQuery::new(&rels).unwrap();
    let sol = q.optimal_cover().unwrap();
    let expect: f64 = sizes.iter().map(|&s| (s as f64).ln()).sum::<f64>() / 3.0;
    assert!((sol.log2_bound * std::f64::consts::LN_2 - expect).abs() < 1e-6);
}

#[test]
fn agm_module_reachable_through_facade() {
    let h = wcoj::hypergraph::Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
    let b = agm::best_bound(&h, &[100, 100, 100]).unwrap();
    assert!((b - 1000.0).abs() < 1e-6);
}
