//! Skew-focused stress/property suite for intra-value parallelism.
//!
//! NPRR's worst-case optimality hinges on handling skew; this suite pins
//! the runtime's side of that bargain. A Zipf or single-hot-key workload
//! must not change *anything* observable: across thread counts
//! {1, 2, 4, 8}, both index backends, both `ShardSplit` modes, and any
//! `heavy_split_factor`, the parallel engines produce rows bit-identical
//! (including row order) to the sequential `join_nprr`, and the absorbed
//! `JoinStats` are bit-identical to a deterministic shard-by-shard
//! sequential re-run of the same plan — i.e. independent of pool size,
//! scheduling, and interleaving. A heavy-keyed query racing itself
//! through the shared service pool is the regression for the latter.
//!
//! Interleavings only really shake out with optimizations on; CI runs
//! this suite in release mode (`cargo test --release --test skew_stress`)
//! in addition to the plain debug `cargo test`.

use std::sync::Arc;

use proptest::prelude::*;
use wcoj::core::nprr::PreparedQuery;
use wcoj::core::JoinStats;
use wcoj::datagen as gen;
use wcoj::exec::{par_join_prepared, ShardPlan, OVERSPLIT};
use wcoj::prelude::*;
use wcoj::storage::{FlatIndex, HashTrieIndex, SearchTree, TrieIndex};

/// The skewed instance families: high-exponent Zipf triangles (many
/// moderately hot keys) and the single-hot-key triangle (one root value
/// carrying ≥ 90% of the estimated work — the shape intra-value
/// parallelism exists for).
fn skewed_instances() -> Vec<(String, Vec<Relation>)> {
    let mut out = Vec::new();
    for i in 0..2u64 {
        out.push((
            format!("zipf_hot/{i}"),
            vec![
                gen::zipf_relation(201 + i, &[0, 1], 150, 16, 1.6),
                gen::zipf_relation(211 + i, &[1, 2], 150, 16, 1.6),
                gen::zipf_relation(221 + i, &[0, 2], 150, 16, 1.6),
            ],
        ));
        out.push((
            format!("single_hot_key/{i}"),
            gen::hot_key_triangle(231 + i, 80 + 16 * i as usize, 5),
        ));
    }
    out
}

/// Asserts rows are identical *including order* — `Relation` equality
/// already covers it (schema + row vector); the explicit row-by-row
/// check documents the bit-identical claim.
fn assert_bit_identical(got: &Relation, want: &Relation, ctx: &str) {
    assert_eq!(got.schema(), want.schema(), "{ctx}: schema");
    assert_eq!(got.len(), want.len(), "{ctx}: cardinality");
    for (i, (g, w)) in got.iter_rows().zip(want.iter_rows()).enumerate() {
        assert_eq!(g, w, "{ctx}: row {i} (order matters)");
    }
    assert_eq!(got, want, "{ctx}");
}

/// The observability contract under skew: even when a hot root value is
/// split into anchor sub-shards, the profile covers every task, phases
/// are monotone, and per-shard rows/stats reassemble exactly — the
/// sub-shards partition the hot key's output, so nothing double-counts.
fn assert_profile_consistent(
    profile: &wcoj::service::QueryProfile,
    out: &wcoj::core::JoinOutput,
    ctx: &str,
) {
    assert!(profile.is_complete(), "{ctx}: every shard reported");
    assert!(
        profile.shards.iter().all(|s| !s.skipped),
        "{ctx}: nothing skipped"
    );
    assert_eq!(
        profile.total_rows(),
        out.relation.len() as u64,
        "{ctx}: sub-shard rows sum to the output without double counting"
    );
    let mut stats = JoinStats::default();
    for shard in &profile.shards {
        stats.absorb(&shard.stats);
    }
    assert_eq!(stats.shards, out.stats.shards, "{ctx}: shard count");
    assert_eq!(stats.case_a, out.stats.case_a, "{ctx}: case_a");
    assert_eq!(stats.case_b, out.stats.case_b, "{ctx}: case_b");
    if profile.total_shards > 0 {
        let planned = profile.planned.expect("planned");
        let first = profile.first_dispatch.expect("first_dispatch");
        let last = profile.last_finish.expect("last_finish");
        let reassembled = profile.reassembled.expect("reassembled");
        assert!(
            profile.admitted <= planned && planned <= first && first <= last && last <= reassembled,
            "{ctx}: monotone phases: {profile:?}"
        );
    }
}

/// Field-by-field `JoinStats` equality (`JoinStats` has no `PartialEq`;
/// the explicit fields document exactly what must be deterministic).
fn assert_stats_identical(got: &JoinStats, want: &JoinStats, ctx: &str) {
    assert_eq!(got.algorithm_used, want.algorithm_used, "{ctx}: algorithm");
    assert_eq!(got.shards, want.shards, "{ctx}: shards");
    assert_eq!(got.case_a, want.case_a, "{ctx}: case_a");
    assert_eq!(got.case_b, want.case_b, "{ctx}: case_b");
    assert_eq!(
        got.intermediate_tuples, want.intermediate_tuples,
        "{ctx}: intermediate_tuples"
    );
    assert_eq!(got.cover, want.cover, "{ctx}: cover");
    assert!(
        (got.log2_agm_bound - want.log2_agm_bound).abs() < 1e-12,
        "{ctx}: log2_agm_bound"
    );
}

/// The `JoinStats` a parallel run must report: a sequential
/// shard-by-shard re-run of exactly the plan `par_join_prepared`
/// schedules for `cfg` — fully deterministic, so pool interleaving can
/// never show through in the absorbed totals.
fn expected_par_stats<S>(prepared: &PreparedQuery<S>, cfg: &ExecConfig) -> JoinStats
where
    S: SearchTree + Sync,
{
    let (x, log2_bound) = prepared.resolve_cover(None).expect("cover");
    let mut stats = JoinStats {
        algorithm_used: "nprr-parallel",
        log2_agm_bound: log2_bound,
        cover: x.clone(),
        ..JoinStats::default()
    };
    if cfg.threads <= 1 {
        // par_join runs the sequential engine in place for one thread
        let (_, run) = prepared.run_shard(&x, log2_bound, None);
        stats.absorb(&run);
        return stats;
    }
    let plan = ShardPlan::plan(prepared, cfg.threads * OVERSPLIT, cfg);
    if plan.root_domain_is_empty(prepared) {
        return stats;
    }
    for shard in plan.tasks() {
        let (_, run) = prepared.run_shard(&x, log2_bound, shard);
        stats.absorb(&run);
    }
    stats
}

/// One prepared query through `par_join_prepared`, checked for
/// bit-identical rows against the sequential oracle and bit-identical
/// stats against the deterministic shard-by-shard re-run — twice, so a
/// scheduling-dependent wobble between repeat runs also fails.
fn check_par_run<S>(prepared: &PreparedQuery<S>, seq: &Relation, cfg: &ExecConfig, ctx: &str)
where
    S: SearchTree + Sync,
{
    let expect_stats = expected_par_stats(prepared, cfg);
    let first = par_join_prepared(prepared, None, cfg).expect("par join");
    assert_bit_identical(&first.relation, seq, ctx);
    assert_stats_identical(&first.stats, &expect_stats, ctx);
    let again = par_join_prepared(prepared, None, cfg).expect("par join repeat");
    assert_bit_identical(&again.relation, &first.relation, &format!("{ctx}: repeat"));
    assert_stats_identical(&again.stats, &expect_stats, &format!("{ctx}: repeat"));
}

/// The full matrix: skewed families × threads {1, 2, 4, 8} × all three
/// index backends × both `ShardSplit` modes, rows and stats
/// bit-identical.
#[test]
fn skew_matrix_matches_sequential() {
    for (name, rels) in skewed_instances() {
        let seq = join_with(&rels, Algorithm::Nprr, None)
            .expect("sequential oracle")
            .relation;
        let sorted = PreparedQuery::<TrieIndex>::new_indexed(&rels).expect("prepare");
        let hashed = PreparedQuery::<HashTrieIndex>::new_indexed(&rels).expect("prepare");
        let flat = PreparedQuery::<FlatIndex>::new_indexed(&rels).expect("prepare");
        for threads in [1usize, 2, 4, 8] {
            for split in [ShardSplit::Work, ShardSplit::Candidates] {
                let cfg = ExecConfig {
                    threads,
                    shard_min_size: 1,
                    split,
                    ..ExecConfig::default()
                };
                let ctx = format!("{name}, t={threads}, {split:?}");
                check_par_run(&sorted, &seq, &cfg, &format!("{ctx}, sorted"));
                check_par_run(&hashed, &seq, &cfg, &format!("{ctx}, hashed"));
                check_par_run(&flat, &seq, &cfg, &format!("{ctx}, flat"));
            }
        }
    }
}

/// Acceptance shape, exec path: a single-hot-key workload (one root
/// value with ≥ 90% of the estimated work) yields a multi-task plan
/// with anchor sub-shards, and its parallel output is bit-identical to
/// `join_nprr`.
#[test]
fn single_hot_key_produces_multi_task_plan_exec() {
    let rels = gen::hot_key_triangle(77, 120, 6);
    let prepared = PreparedQuery::<TrieIndex>::new_indexed(&rels).expect("prepare");
    let weights = prepared.root_candidate_weights();
    let total: u64 = weights.iter().map(|&(_, w)| w).sum();
    let hot = weights.iter().map(|&(_, w)| w).max().expect("non-empty");
    assert!(
        hot as f64 / total as f64 >= 0.9,
        "one root value carries ≥ 90% of the work: {hot}/{total}"
    );
    let cfg = ExecConfig {
        threads: 4,
        shard_min_size: 1,
        ..ExecConfig::default()
    };
    let plan = ShardPlan::plan(&prepared, cfg.threads * OVERSPLIT, &cfg);
    assert!(plan.len() > 1, "multi-task plan: {:?}", plan.shards());
    let subs = plan.shards().iter().filter(|s| s.anchor.is_some()).count();
    assert!(
        subs >= 2,
        "the hot key is split into anchor sub-shards: {:?}",
        plan.shards()
    );
    let seq = join_with(&rels, Algorithm::Nprr, None)
        .expect("sequential oracle")
        .relation;
    check_par_run(&prepared, &seq, &cfg, "hot key, exec path");
}

/// Acceptance shape, service path: the same hot-key workload through
/// `Service::submit` schedules the sub-shards as ordinary injector tasks
/// and reassembles bit-identically across pool sizes.
#[test]
fn single_hot_key_produces_multi_task_plan_service() {
    let rels = gen::hot_key_triangle(78, 120, 6);
    let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).expect("prepare"));
    let seq = join_with(&rels, Algorithm::Nprr, None)
        .expect("sequential oracle")
        .relation;
    for workers in [1usize, 2, 4, 8] {
        let service = Service::new(ServiceConfig::with_workers(workers));
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let layout = service.shard_layout(&*prepared, &cfg);
        assert!(layout.len() > 1, "multi-task layout @ {workers} workers");
        assert!(
            layout
                .iter()
                .filter(|t| t.is_some_and(|s| s.anchor.is_some()))
                .count()
                >= 2,
            "sub-shard tasks on the injector @ {workers} workers"
        );
        let (out, profile) = service
            .submit(&prepared, &cfg)
            .expect("submit")
            .wait_profiled()
            .expect("join");
        assert_bit_identical(&out.relation, &seq, &format!("service @ {workers} workers"));
        // One task per layout entry, including the anchor sub-shards.
        assert_eq!(
            profile.total_shards,
            layout.len(),
            "profile covers the whole layout @ {workers} workers"
        );
        assert_profile_consistent(&profile, &out, &format!("service @ {workers} workers"));

        // absorbed stats equal a shard-by-shard sequential re-run of the
        // exact layout the pool interleaved
        let (x, log2_bound) = prepared.resolve_cover(None).expect("cover");
        let mut expect_stats = JoinStats {
            algorithm_used: "nprr-service",
            log2_agm_bound: log2_bound,
            cover: x.clone(),
            ..JoinStats::default()
        };
        for shard in layout {
            let (_, run) = prepared.run_shard(&x, log2_bound, shard);
            expect_stats.absorb(&run);
        }
        assert_stats_identical(
            &out.stats,
            &expect_stats,
            &format!("service @ {workers} workers"),
        );
    }
}

/// Determinism regression: a heavy-keyed query racing itself through the
/// shared pool (with noise queries around it) must come back with
/// identical rows, row order, and stats every time.
#[test]
fn heavy_key_query_racing_itself_is_deterministic() {
    let rels = gen::hot_key_triangle(79, 100, 5);
    let seq = join_with(&rels, Algorithm::Nprr, None).unwrap().relation;
    let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
    let noise = Arc::new(
        PreparedQuery::<TrieIndex>::new_indexed(&[
            gen::zipf_relation(301, &[0, 1], 120, 14, 1.5),
            gen::zipf_relation(302, &[1, 2], 120, 14, 1.5),
            gen::zipf_relation(303, &[0, 2], 120, 14, 1.5),
        ])
        .unwrap(),
    );
    let service = Service::new(ServiceConfig::with_workers(3));
    let cfg = ExecConfig {
        shard_min_size: 1,
        ..service.exec_config()
    };
    for round in 0..8 {
        let n1 = service.submit(&noise, &cfg).unwrap();
        let a = service.submit(&prepared, &cfg).unwrap();
        let b = service.submit(&prepared, &cfg).unwrap();
        let n2 = service.submit(&noise, &cfg).unwrap();
        let (a, b) = (a.wait().unwrap(), b.wait().unwrap());
        assert_bit_identical(&a.relation, &b.relation, &format!("self-race {round}"));
        assert_bit_identical(&a.relation, &seq, &format!("vs sequential {round}"));
        assert_stats_identical(&a.stats, &b.stats, &format!("self-race stats {round}"));
        n1.wait().unwrap();
        n2.wait().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random Zipf exponents, hot-key widths, pool sizes, and
    /// `heavy_split_factor` values (including the degenerate 0, 1, and
    /// huge): the service output stays bit-identical to `join_nprr`.
    #[test]
    fn prop_skewed_service_with_random_split_factor(seed in 0u64..2_000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(9973));
        let rels = if seed % 2 == 0 {
            let s = 1.1 + f64::from(rng.gen_range(0..8u32)) / 10.0;
            vec![
                gen::zipf_relation(seed, &[0, 1], 120, 14, s),
                gen::zipf_relation(seed + 1, &[1, 2], 120, 14, s),
                gen::zipf_relation(seed + 2, &[0, 2], 120, 14, s),
            ]
        } else {
            gen::hot_key_triangle(seed, rng.gen_range(16..96), rng.gen_range(0..8))
        };
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap().relation;
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let workers = [1usize, 2, 4, 8][rng.gen_range(0..4usize)];
        let factor = [0usize, 1, 2, 8, 1 << 30][rng.gen_range(0..5usize)];
        let service = Service::new(ServiceConfig::with_workers(workers));
        let cfg = ExecConfig {
            shard_min_size: 1,
            heavy_split_factor: factor,
            ..service.exec_config()
        };
        let (out, profile) = service.submit(&prepared, &cfg).unwrap().wait_profiled().unwrap();
        let ctx = format!("seed {seed}, {workers} workers, factor {factor}");
        assert_bit_identical(&out.relation, &seq, &ctx);
        assert_profile_consistent(&profile, &out, &ctx);
        // Same instance through the flat columnar backend: still
        // bit-identical under random split factors and pool sizes.
        let flat = Arc::new(PreparedQuery::<FlatIndex>::new_indexed(&rels).unwrap());
        let (out, profile) = service.submit(&flat, &cfg).unwrap().wait_profiled().unwrap();
        assert_bit_identical(&out.relation, &seq, &format!("{ctx}, flat"));
        assert_profile_consistent(&profile, &out, &format!("{ctx}, flat"));
    }
}
