//! Long-running randomized differential tests, `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test stress -- --ignored
//! ```
//!
//! Hundreds of random queries per shape class, every algorithm against the
//! pairwise oracle, plus AGM-bound auditing on every instance.

use rand::{Rng, SeedableRng};
use wcoj::core::naive;
use wcoj::prelude::*;
use wcoj::storage::ops::reorder;

fn random_rel(rng: &mut rand::rngs::StdRng, attrs: &[u32], n: usize, dom: u64) -> Relation {
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|_| attrs.iter().map(|_| Value(rng.gen_range(0..dom))).collect())
        .collect();
    Relation::from_rows(Schema::of(attrs), rows).unwrap()
}

fn check(rels: &[Relation], algo: Algorithm, ctx: &str) {
    let out = join_with(rels, algo, None).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let expect = naive::join(rels);
    let expect = reorder(&expect, out.relation.schema()).unwrap();
    assert_eq!(out.relation, expect, "{ctx} ({algo:?})");
    if !out.relation.is_empty() && out.stats.log2_agm_bound > 0.0 {
        assert!(
            (out.relation.len() as f64).log2() <= out.stats.log2_agm_bound + 1e-6,
            "{ctx}: AGM bound violated"
        );
    }
}

#[test]
#[ignore = "stress: run with --ignored in release"]
fn stress_random_hypergraph_queries() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDEC0DE);
    for trial in 0..300 {
        let n_attr = rng.gen_range(2..7u32);
        let n_rel = rng.gen_range(2..6usize);
        let mut rels = Vec::new();
        for _ in 0..n_rel {
            let arity = rng.gen_range(1..=n_attr.min(4));
            let mut attrs: Vec<u32> = (0..n_attr).collect();
            for i in (1..attrs.len()).rev() {
                attrs.swap(i, rng.gen_range(0..=i));
            }
            attrs.truncate(arity as usize);
            attrs.sort_unstable();
            let rows = rng.gen_range(1..60);
            let dom = rng.gen_range(2..8u64);
            rels.push(random_rel(&mut rng, &attrs, rows, dom));
        }
        check(&rels, Algorithm::Nprr, &format!("hyper trial {trial}"));
        check(&rels, Algorithm::Auto, &format!("hyper trial {trial}"));
    }
}

#[test]
#[ignore = "stress: run with --ignored in release"]
fn stress_graph_queries_all_algorithms() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    for trial in 0..300 {
        let n_attr = rng.gen_range(2..8u32);
        let n_rel = rng.gen_range(2..8usize);
        let mut rels = Vec::new();
        for _ in 0..n_rel {
            let a = rng.gen_range(0..n_attr);
            let unary = rng.gen_bool(0.15);
            let attrs: Vec<u32> = if unary {
                vec![a]
            } else {
                let mut b = rng.gen_range(0..n_attr);
                if b == a {
                    b = (b + 1) % n_attr;
                }
                let mut v = vec![a, b];
                v.sort_unstable();
                v
            };
            let rows = rng.gen_range(1..50);
            rels.push(random_rel(&mut rng, &attrs, rows, 6));
        }
        check(&rels, Algorithm::GraphJoin, &format!("graph trial {trial}"));
        check(&rels, Algorithm::Nprr, &format!("graph trial {trial}"));
    }
}

#[test]
#[ignore = "stress: run with --ignored in release"]
fn stress_lw_instances() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xFACE);
    for trial in 0..150 {
        let n = rng.gen_range(2..6usize);
        let rows = rng.gen_range(1..80);
        let dom = rng.gen_range(2..7u64);
        let rels: Vec<Relation> = (0..n)
            .map(|omit| {
                let attrs: Vec<u32> = (0..n as u32).filter(|&v| v != omit as u32).collect();
                random_rel(&mut rng, &attrs, rows, dom)
            })
            .collect();
        check(&rels, Algorithm::Lw, &format!("lw trial {trial}"));
        check(&rels, Algorithm::Nprr, &format!("lw trial {trial}"));
    }
}

#[test]
#[ignore = "stress: run with --ignored in release"]
fn stress_cycles_odd_and_even() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC1C1E);
    for trial in 0..80 {
        let m = rng.gen_range(3..9usize);
        let rows = rng.gen_range(5..60);
        let dom = rng.gen_range(3..8u64);
        let rels: Vec<Relation> = (0..m)
            .map(|i| {
                let mut attrs = vec![i as u32, ((i + 1) % m) as u32];
                attrs.sort_unstable();
                random_rel(&mut rng, &attrs, rows, dom)
            })
            .collect();
        check(
            &rels,
            Algorithm::GraphJoin,
            &format!("cycle m={m} trial {trial}"),
        );
    }
}

#[test]
#[ignore = "stress: run with --ignored in release"]
fn stress_relaxed_joins() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5E1A);
    for trial in 0..40 {
        let shapes: Vec<Vec<u32>> = vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![1, 3]];
        let rels: Vec<Relation> = shapes
            .iter()
            .map(|attrs| {
                let rows = rng.gen_range(3..20);
                random_rel(&mut rng, attrs, rows, 5)
            })
            .collect();
        for r in 0..=2usize {
            let fast = wcoj::core::relaxed::relaxed_join(&rels, r).unwrap();
            let brute = wcoj::core::relaxed::relaxed_join_bruteforce(&rels, r).unwrap();
            assert_eq!(fast.relation, brute, "trial {trial}, r = {r}");
        }
    }
}
