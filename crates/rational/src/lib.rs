//! Exact rational arithmetic over `i128` numerators/denominators.
//!
//! The NPRR reproduction needs exact arithmetic in two places:
//!
//! 1. re-deriving an **exact basic feasible solution** of the fractional
//!    edge-cover LP from the basis found by the floating-point simplex
//!    (`wcoj-lp`), and
//! 2. proving the **half-integrality** structure of covers for arity-≤2
//!    queries (paper Lemma 7.2), where `x_e ∈ {0, 1/2, 1}` must be checked
//!    exactly, not up to `f64` round-off.
//!
//! Cover LPs in this workspace are tiny (tens of variables, coefficients in
//! `{0, ±1}` plus small objective weights), so `i128` components are ample.
//! All arithmetic is overflow-*checked*: the fallible API ([`Rational::checked_add`]
//! and friends) returns `None` on overflow, and the operator impls panic with
//! a descriptive message rather than wrapping. Comparison is always exact —
//! it widens to 256-bit products internally and can never overflow.
//!
//! Invariants maintained by every constructor and operation:
//! * the fraction is fully reduced (`gcd(num.abs(), den) == 1`),
//! * the denominator is strictly positive,
//! * zero is represented canonically as `0/1`.

mod wide;

pub use wide::{cmp_prod, mul_i128_wide};

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den` with `den > 0`, always reduced.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative integers.
#[must_use]
pub fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple; `None` on overflow.
#[must_use]
pub fn lcm(a: u128, b: u128) -> Option<u128> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    (a / gcd(a, b)).checked_mul(b)
}

impl Rational {
    /// The canonical zero, `0/1`.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The canonical one, `1/1`.
    pub const ONE: Rational = Rational { num: 1, den: 1 };
    /// One half, `1/2` — the magic constant of half-integral covers.
    pub const ONE_HALF: Rational = Rational { num: 1, den: 2 };

    /// Builds `num/den`, reducing and normalising signs.
    ///
    /// # Panics
    /// Panics if `den == 0` or if either component is `i128::MIN` (whose
    /// absolute value is unrepresentable).
    #[must_use]
    pub fn new(num: i128, den: i128) -> Rational {
        Rational::checked_new(num, den).expect("Rational::new: zero denominator or i128::MIN")
    }

    /// Fallible constructor: `None` if `den == 0` or a component is
    /// `i128::MIN`.
    #[must_use]
    pub fn checked_new(num: i128, den: i128) -> Option<Rational> {
        if den == 0 || num == i128::MIN || den == i128::MIN {
            return None;
        }
        let sign = if (num < 0) ^ (den < 0) { -1 } else { 1 };
        let (un, ud) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd(un, ud);
        let (rn, rd) = (un / g, ud / g);
        debug_assert!(rn <= i128::MAX as u128 && rd <= i128::MAX as u128);
        Some(Rational {
            num: sign * rn as i128,
            den: rd as i128,
        })
    }

    /// Converts an integer.
    #[must_use]
    pub const fn from_int(v: i128) -> Rational {
        Rational { num: v, den: 1 }
    }

    /// Numerator (sign-carrying).
    #[must_use]
    pub const fn num(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    #[must_use]
    pub const fn den(self) -> i128 {
        self.den
    }

    /// `true` iff this is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff this is exactly one.
    #[must_use]
    pub const fn is_one(self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// `true` iff this is an integer.
    #[must_use]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// `true` iff negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// `true` iff strictly positive.
    #[must_use]
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Sign as `-1`, `0`, or `1`.
    #[must_use]
    pub const fn signum(self) -> i128 {
        self.num.signum()
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse; `None` for zero.
    #[must_use]
    pub fn checked_recip(self) -> Option<Rational> {
        if self.num == 0 {
            return None;
        }
        Some(Rational {
            num: self.den * self.num.signum(),
            den: self.num.abs(),
        })
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    #[must_use]
    pub fn recip(self) -> Rational {
        self.checked_recip().expect("Rational::recip of zero")
    }

    /// Checked addition; `None` on `i128` overflow.
    #[must_use]
    pub fn checked_add(self, rhs: Rational) -> Option<Rational> {
        // a/b + c/d = (a*(l/b) + c*(l/d)) / l  with l = lcm(b, d); keeping the
        // intermediate products as small as possible delays overflow.
        let l = lcm(self.den as u128, rhs.den as u128)?;
        if l > i128::MAX as u128 {
            return None;
        }
        let l = l as i128;
        let left = self.num.checked_mul(l / self.den)?;
        let right = rhs.num.checked_mul(l / rhs.den)?;
        Rational::checked_new(left.checked_add(right)?, l)
    }

    /// Checked subtraction; `None` on overflow.
    #[must_use]
    pub fn checked_sub(self, rhs: Rational) -> Option<Rational> {
        self.checked_add(Rational {
            num: rhs.num.checked_neg()?,
            den: rhs.den,
        })
    }

    /// Checked multiplication; `None` on overflow.
    #[must_use]
    pub fn checked_mul(self, rhs: Rational) -> Option<Rational> {
        // Cross-reduce first so the products are as small as possible.
        let g1 = gcd(self.num.unsigned_abs(), rhs.den.unsigned_abs()).max(1) as i128;
        let g2 = gcd(rhs.num.unsigned_abs(), self.den.unsigned_abs()).max(1) as i128;
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rational { num, den })
    }

    /// Checked division; `None` on overflow or division by zero.
    #[must_use]
    pub fn checked_div(self, rhs: Rational) -> Option<Rational> {
        self.checked_mul(rhs.checked_recip()?)
    }

    /// Small non-negative integer power, checked.
    #[must_use]
    pub fn checked_pow(self, mut exp: u32) -> Option<Rational> {
        let mut acc = Rational::ONE;
        let mut base = self;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.checked_mul(base)?;
            }
            exp >>= 1;
            if exp > 0 {
                base = base.checked_mul(base)?;
            }
        }
        Some(acc)
    }

    /// Floor to an integer.
    #[must_use]
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling to an integer.
    #[must_use]
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Nearest `f64` (may round; exactness is only guaranteed for small
    /// components).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Best rational approximation of an `f64` with denominator at most
    /// `max_den`, via continued fractions.
    ///
    /// Returns `None` for non-finite inputs.
    #[must_use]
    pub fn approximate_f64(x: f64, max_den: i128) -> Option<Rational> {
        if !x.is_finite() || max_den < 1 {
            return None;
        }
        let neg = x < 0.0;
        let mut x = x.abs();
        // Continued-fraction convergents p_k/q_k with the standard seed
        // p_{-2}/q_{-2} = 0/1, p_{-1}/q_{-1} = 1/0.
        let (mut p0, mut q0, mut p1, mut q1) = (0i128, 1i128, 1i128, 0i128);
        let mut best = None;
        for _ in 0..64 {
            let a = x.floor();
            if a > i128::MAX as f64 {
                break;
            }
            let a = a as i128;
            let p2 = match a.checked_mul(p1).and_then(|v| v.checked_add(p0)) {
                Some(v) => v,
                None => break,
            };
            let q2 = match a.checked_mul(q1).and_then(|v| v.checked_add(q0)) {
                Some(v) => v,
                None => break,
            };
            if q2 > max_den {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            best = Some(Rational::new(p1, q1));
            let frac = x - a as f64;
            if frac < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        let r = best?;
        Some(if neg { -r } else { r })
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    /// Exact comparison via 256-bit cross products; never overflows.
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  (b, d > 0)  ⟺  a*d vs c*b
        cmp_prod(self.num, other.den, other.num, self.den)
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, $checked:ident, $what:literal) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$checked(rhs)
                    .unwrap_or_else(|| panic!(concat!("Rational ", $what, " overflow")))
            }
        }
    };
}
binop!(Add, add, checked_add, "addition");
binop!(Sub, sub, checked_sub, "subtraction");
binop!(Mul, mul, checked_mul, "multiplication");
binop!(Div, div, checked_div, "division");

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}
impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}
impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}
impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational::from_int(v)
    }
}
impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v as i128)
    }
}
impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_int(v as i128)
    }
}
impl From<u32> for Rational {
    fn from(v: u32) -> Self {
        Rational::from_int(v as i128)
    }
}
impl From<usize> for Rational {
    fn from(v: usize) -> Self {
        Rational::from_int(v as i128)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error parsing a [`Rational`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError(String);

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}
impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"3"`, `"-3"`, or `"3/4"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseRationalError(s.to_owned());
        match s.split_once('/') {
            None => {
                let n: i128 = s.trim().parse().map_err(|_| bad())?;
                Ok(Rational::from_int(n))
            }
            Some((n, d)) => {
                let n: i128 = n.trim().parse().map_err(|_| bad())?;
                let d: i128 = d.trim().parse().map_err(|_| bad())?;
                Rational::checked_new(n, d).ok_or_else(bad)
            }
        }
    }
}

/// Sums an iterator of rationals, `None` on overflow.
pub fn checked_sum<I: IntoIterator<Item = Rational>>(iter: I) -> Option<Rational> {
    iter.into_iter()
        .try_fold(Rational::ZERO, Rational::checked_add)
}

#[cfg(test)]
mod tests;
