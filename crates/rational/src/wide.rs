//! 256-bit signed products for overflow-free comparison of `i128` cross
//! products, used by [`Rational`](crate::Rational)'s `Ord` impl.

use std::cmp::Ordering;

/// Full 256-bit unsigned product of two `u128`s as `(high, low)`.
#[must_use]
pub fn mul_u128_wide(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);

    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;

    // low = ll + ((lh + hl) << 64), tracking carries into high.
    let (mid, c1) = lh.overflowing_add(hl);
    let mid_lo = mid << 64;
    let mid_hi = (mid >> 64) + if c1 { 1u128 << 64 } else { 0 };
    let (low, c2) = ll.overflowing_add(mid_lo);
    let high = hh + mid_hi + u128::from(c2);
    (high, low)
}

/// Full 256-bit signed product of two `i128`s as `(sign, |a*b| as (hi, lo))`.
/// Sign is `-1`, `0` or `1`.
#[must_use]
pub fn mul_i128_wide(a: i128, b: i128) -> (i8, (u128, u128)) {
    let sign = (a.signum() * b.signum()) as i8;
    let mag = mul_u128_wide(a.unsigned_abs(), b.unsigned_abs());
    (sign, mag)
}

/// Exactly compares `a*b` with `c*d` without overflow.
#[must_use]
pub fn cmp_prod(a: i128, b: i128, c: i128, d: i128) -> Ordering {
    let (s1, m1) = mul_i128_wide(a, b);
    let (s2, m2) = mul_i128_wide(c, d);
    match s1.cmp(&s2) {
        Ordering::Equal => {
            if s1 >= 0 {
                m1.cmp(&m2)
            } else {
                m2.cmp(&m1)
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products() {
        assert_eq!(mul_u128_wide(3, 4), (0, 12));
        assert_eq!(mul_u128_wide(0, u128::MAX), (0, 0));
    }

    #[test]
    fn max_product() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1 → high = 2^128 - 2, low = 1.
        assert_eq!(mul_u128_wide(u128::MAX, u128::MAX), (u128::MAX - 1, 1));
    }

    #[test]
    fn crossing_64bit_boundary() {
        let a = 1u128 << 64;
        assert_eq!(mul_u128_wide(a, a), (1, 0));
        assert_eq!(mul_u128_wide(a, 3), (0, 3 << 64));
    }

    #[test]
    fn signed_product_signs() {
        assert_eq!(mul_i128_wide(-2, 3).0, -1);
        assert_eq!(mul_i128_wide(-2, -3).0, 1);
        assert_eq!(mul_i128_wide(0, -3).0, 0);
    }

    #[test]
    fn cmp_prod_basic() {
        assert_eq!(cmp_prod(2, 3, 7, 1), Ordering::Less);
        assert_eq!(cmp_prod(2, 3, 3, 2), Ordering::Equal);
        assert_eq!(cmp_prod(-2, 3, 1, 1), Ordering::Less);
        assert_eq!(cmp_prod(-2, -3, 5, 1), Ordering::Greater);
    }

    #[test]
    fn cmp_prod_huge() {
        // i128::MAX * i128::MAX vs (i128::MAX - 1) * i128::MAX
        assert_eq!(
            cmp_prod(i128::MAX, i128::MAX, i128::MAX - 1, i128::MAX),
            Ordering::Greater
        );
        // symmetric negatives
        assert_eq!(
            cmp_prod(-i128::MAX, i128::MAX, -(i128::MAX - 1), i128::MAX),
            Ordering::Less
        );
    }
}
