use super::*;
use proptest::prelude::*;

fn r(n: i128, d: i128) -> Rational {
    Rational::new(n, d)
}

#[test]
fn construction_reduces() {
    assert_eq!(r(2, 4), r(1, 2));
    assert_eq!(r(-2, 4), r(1, -2));
    assert_eq!(r(0, 7).den(), 1);
    assert_eq!(r(6, -4), r(-3, 2));
    assert!(r(6, -4).is_negative());
}

#[test]
fn construction_rejects_zero_den() {
    assert!(Rational::checked_new(1, 0).is_none());
    assert!(Rational::checked_new(i128::MIN, 1).is_none());
    assert!(Rational::checked_new(1, i128::MIN).is_none());
}

#[test]
fn constants() {
    assert!(Rational::ZERO.is_zero());
    assert!(Rational::ONE.is_one());
    assert_eq!(Rational::ONE_HALF, r(1, 2));
    assert_eq!(Rational::default(), Rational::ZERO);
}

#[test]
fn arithmetic_basics() {
    assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
    assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
    assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
    assert_eq!(r(2, 3) / r(4, 3), r(1, 2));
    assert_eq!(-r(1, 2), r(-1, 2));
}

#[test]
fn assign_ops() {
    let mut x = r(1, 2);
    x += r(1, 2);
    assert!(x.is_one());
    x -= r(1, 4);
    assert_eq!(x, r(3, 4));
    x *= r(4, 3);
    assert!(x.is_one());
    x /= r(1, 3);
    assert_eq!(x, r(3, 1));
}

#[test]
fn recip_and_pow() {
    assert_eq!(r(3, 4).recip(), r(4, 3));
    assert_eq!(r(-3, 4).recip(), r(-4, 3));
    assert!(Rational::ZERO.checked_recip().is_none());
    assert_eq!(r(2, 3).checked_pow(0).unwrap(), Rational::ONE);
    assert_eq!(r(2, 3).checked_pow(3).unwrap(), r(8, 27));
    assert_eq!(Rational::ZERO.checked_pow(5).unwrap(), Rational::ZERO);
}

#[test]
fn floor_ceil() {
    assert_eq!(r(7, 2).floor(), 3);
    assert_eq!(r(7, 2).ceil(), 4);
    assert_eq!(r(-7, 2).floor(), -4);
    assert_eq!(r(-7, 2).ceil(), -3);
    assert_eq!(r(4, 2).floor(), 2);
    assert_eq!(r(4, 2).ceil(), 2);
}

#[test]
fn ordering() {
    assert!(r(1, 3) < r(1, 2));
    assert!(r(-1, 2) < r(-1, 3));
    assert!(r(-1, 2) < Rational::ZERO);
    assert_eq!(r(2, 4).cmp(&r(1, 2)), std::cmp::Ordering::Equal);
    // values near the i128 boundary still compare correctly
    let big = Rational::new(i128::MAX, 3);
    let bigger = Rational::new(i128::MAX, 2);
    assert!(big < bigger);
}

#[test]
fn to_f64_roundtrip_small() {
    assert!((r(1, 2).to_f64() - 0.5).abs() < 1e-15);
    assert!((r(-3, 4).to_f64() + 0.75).abs() < 1e-15);
}

#[test]
fn approximate_f64_exact_fractions() {
    assert_eq!(Rational::approximate_f64(0.5, 1000).unwrap(), r(1, 2));
    assert_eq!(Rational::approximate_f64(-0.25, 1000).unwrap(), r(-1, 4));
    assert_eq!(
        Rational::approximate_f64(1.0 / 3.0, 1_000_000).unwrap(),
        r(1, 3)
    );
    assert_eq!(Rational::approximate_f64(7.0, 10).unwrap(), r(7, 1));
    assert!(Rational::approximate_f64(f64::NAN, 10).is_none());
    assert!(Rational::approximate_f64(f64::INFINITY, 10).is_none());
}

#[test]
fn parse_roundtrip() {
    assert_eq!("3/4".parse::<Rational>().unwrap(), r(3, 4));
    assert_eq!("-3/4".parse::<Rational>().unwrap(), r(-3, 4));
    assert_eq!("5".parse::<Rational>().unwrap(), r(5, 1));
    assert_eq!(" 1 / 2 ".parse::<Rational>().unwrap(), r(1, 2));
    assert!("1/0".parse::<Rational>().is_err());
    assert!("abc".parse::<Rational>().is_err());
    assert_eq!(format!("{}", r(3, 4)), "3/4");
    assert_eq!(format!("{}", r(4, 1)), "4");
    assert_eq!(format!("{}", r(-1, 2)), "-1/2");
}

#[test]
fn gcd_lcm() {
    assert_eq!(gcd(12, 18), 6);
    assert_eq!(gcd(0, 5), 5);
    assert_eq!(gcd(5, 0), 5);
    assert_eq!(gcd(1, 1), 1);
    assert_eq!(lcm(4, 6), Some(12));
    assert_eq!(lcm(0, 6), Some(0));
    assert_eq!(lcm(u128::MAX, 2), None);
}

#[test]
fn checked_sum_works() {
    let xs = [r(1, 2), r(1, 3), r(1, 6)];
    assert_eq!(checked_sum(xs).unwrap(), Rational::ONE);
    assert_eq!(checked_sum(std::iter::empty()).unwrap(), Rational::ZERO);
}

#[test]
fn overflow_is_detected_not_wrapped() {
    let huge = Rational::new(i128::MAX, 1);
    assert!(huge.checked_add(huge).is_none());
    assert!(huge.checked_mul(huge).is_none());
    // near misses succeed
    assert!(huge.checked_mul(Rational::ONE).is_some());
}

#[test]
fn half_integral_constants_detectable() {
    // The exact checks Lemma 7.2's verification relies on.
    for x in [Rational::ZERO, Rational::ONE_HALF, Rational::ONE] {
        assert!(
            x == Rational::ZERO || x == Rational::ONE_HALF || x == Rational::ONE,
            "exact membership must hold"
        );
    }
    assert_ne!(Rational::new(499_999, 1_000_000), Rational::ONE_HALF);
}

proptest! {
    #[test]
    fn prop_reduction_invariant(n in -10_000i128..10_000, d in 1i128..10_000) {
        let x = Rational::new(n, d);
        prop_assert!(x.den() > 0);
        if x.num() == 0 {
            prop_assert_eq!(x.den(), 1);
        } else {
            prop_assert_eq!(gcd(x.num().unsigned_abs(), x.den().unsigned_abs()), 1);
        }
    }

    #[test]
    fn prop_add_commutative(a in -1000i128..1000, b in 1i128..1000, c in -1000i128..1000, d in 1i128..1000) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
    }

    #[test]
    fn prop_add_associative(a in -100i128..100, b in 1i128..100,
                            c in -100i128..100, d in 1i128..100,
                            e in -100i128..100, f in 1i128..100) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        let z = Rational::new(e, f);
        prop_assert_eq!((x + y) + z, x + (y + z));
        prop_assert_eq!((x * y) * z, x * (y * z));
        prop_assert_eq!(x * (y + z), x * y + x * z);
    }

    #[test]
    fn prop_sub_add_inverse(a in -1000i128..1000, b in 1i128..1000, c in -1000i128..1000, d in 1i128..1000) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        prop_assert_eq!((x - y) + y, x);
    }

    #[test]
    fn prop_cmp_matches_f64(a in -1000i128..1000, b in 1i128..1000, c in -1000i128..1000, d in 1i128..1000) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        let fx = a as f64 / b as f64;
        let fy = c as f64 / d as f64;
        if (fx - fy).abs() > 1e-9 {
            prop_assert_eq!(x < y, fx < fy);
        }
    }

    #[test]
    fn prop_wide_mul_matches_native(a in -1_000_000_000i128..1_000_000_000, b in -1_000_000_000i128..1_000_000_000) {
        let (sign, (hi, lo)) = mul_i128_wide(a, b);
        prop_assert_eq!(hi, 0);
        let expect = a * b;
        prop_assert_eq!(i128::from(sign).signum(), expect.signum());
        prop_assert_eq!(lo, expect.unsigned_abs());
    }

    #[test]
    fn prop_parse_display_roundtrip(a in -10_000i128..10_000, b in 1i128..10_000) {
        let x = Rational::new(a, b);
        let s = format!("{x}");
        prop_assert_eq!(s.parse::<Rational>().unwrap(), x);
    }

    #[test]
    fn prop_floor_ceil_bracket(a in -10_000i128..10_000, b in 1i128..10_000) {
        let x = Rational::new(a, b);
        let fl = Rational::from_int(x.floor());
        let ce = Rational::from_int(x.ceil());
        prop_assert!(fl <= x && x <= ce);
        prop_assert!((ce - fl) <= Rational::ONE);
    }

    #[test]
    fn prop_approximate_recovers_small_fractions(a in -100i128..100, b in 1i128..100) {
        let x = Rational::new(a, b);
        let back = Rational::approximate_f64(x.to_f64(), 10_000).unwrap();
        prop_assert_eq!(back, x);
    }
}
