//! Property-based tests: the counted trie must agree with the relational
//! algebra on every section/projection query, for random relations and
//! random attribute orders — this is the load-bearing equivalence behind
//! `Recursive-Join`'s (ST1)–(ST3) usage.

use crate::ops::{project, select_eq};
use crate::{gallop, Attr, FlatIndex, Relation, Schema, SearchTree, TrieIndex, Value};
use proptest::prelude::*;

fn arb_rel(arity: usize, max_rows: usize, dom: u64) -> impl Strategy<Value = Relation> {
    let attrs: Vec<u32> = (0..arity as u32).collect();
    prop::collection::vec(prop::collection::vec(0..dom, arity), 0..max_rows).prop_map(move |rows| {
        let vrows: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|r| r.into_iter().map(Value).collect())
            .collect();
        Relation::from_rows(Schema::of(&attrs), vrows).expect("arity consistent")
    })
}

/// Applies `σ` for each prefix value and `π` for the remaining columns —
/// the relational-algebra definition of a section.
fn section_by_ops(rel: &Relation, order: &[Attr], prefix: &[Value], extra: usize) -> Relation {
    let mut cur = rel.clone();
    for (a, v) in order.iter().zip(prefix) {
        cur = select_eq(&cur, *a, *v).expect("attr present");
    }
    let keep: Vec<Attr> = order[prefix.len()..prefix.len() + extra].to_vec();
    project(&cur, &keep).expect("attrs present")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Root-level distinct counts equal projection cardinalities for every
    /// prefix depth, under both the identity and the reversed order.
    #[test]
    fn trie_counts_match_projections(rel in arb_rel(3, 40, 5), reversed in any::<bool>()) {
        let mut order: Vec<Attr> = rel.schema().attrs().to_vec();
        if reversed {
            order.reverse();
        }
        let trie = TrieIndex::build(&rel, &order).expect("permutation");
        for depth in 1..=3usize {
            let keep: Vec<Attr> = order[..depth].to_vec();
            let p = project(&rel, &keep).expect("attrs");
            prop_assert_eq!(trie.distinct_count(trie.root(), depth), p.len());
        }
    }

    /// Sections reached by descent equal σ+π by the algebra, including
    /// their enumerations (ST3).
    #[test]
    fn trie_sections_match_algebra(rel in arb_rel(3, 40, 4)) {
        let order: Vec<Attr> = rel.schema().attrs().to_vec();
        let trie = TrieIndex::build(&rel, &order).expect("permutation");
        for v0 in 0..4u64 {
            let node = trie.descend(trie.root(), Value(v0));
            let expect1 = section_by_ops(&rel, &order, &[Value(v0)], 1);
            let expect2 = section_by_ops(&rel, &order, &[Value(v0)], 2);
            match node {
                None => prop_assert!(expect1.is_empty()),
                Some(n) => {
                    prop_assert_eq!(trie.distinct_count(n, 1), expect1.len());
                    prop_assert_eq!(trie.distinct_count(n, 2), expect2.len());
                    // enumeration must list exactly the projection
                    let listed = trie.enumerate(n, 2);
                    prop_assert_eq!(listed.len(), expect2.len());
                    for row in &listed {
                        prop_assert!(expect2.contains_row(row));
                    }
                }
            }
        }
    }

    /// (ST1) membership of full tuples agrees with the relation.
    #[test]
    fn trie_membership_matches(rel in arb_rel(2, 30, 4)) {
        let order: Vec<Attr> = rel.schema().attrs().to_vec();
        let trie = TrieIndex::build(&rel, &order).expect("permutation");
        for a in 0..4u64 {
            for b in 0..4u64 {
                let row = [Value(a), Value(b)];
                prop_assert_eq!(trie.contains_prefix(&row), rel.contains_row(&row));
            }
        }
    }

    /// The flat columnar backend is pointwise equivalent to the counted
    /// trie: same counts, same descents, same enumerations in the same
    /// order, same child slices — for random relations and both orders.
    #[test]
    fn flat_index_matches_trie(rel in arb_rel(3, 40, 4), reversed in any::<bool>()) {
        let mut order: Vec<Attr> = rel.schema().attrs().to_vec();
        if reversed {
            order.reverse();
        }
        let trie = TrieIndex::build(&rel, &order).expect("permutation");
        let flat = FlatIndex::build(&rel, &order).expect("permutation");
        for depth in 1..=3usize {
            prop_assert_eq!(
                trie.distinct_count(trie.root(), depth),
                flat.distinct_count(flat.root(), depth)
            );
        }
        prop_assert_eq!(trie.child_slice(trie.root()), flat.child_slice(flat.root()));
        for v0 in 0..4u64 {
            let tn = trie.descend(trie.root(), Value(v0));
            let fnode = flat.descend(flat.root(), Value(v0));
            prop_assert_eq!(tn.is_some(), fnode.is_some());
            let (Some(tn), Some(fnode)) = (tn, fnode) else { continue };
            prop_assert_eq!(trie.distinct_count(tn, 1), flat.distinct_count(fnode, 1));
            prop_assert_eq!(trie.distinct_count(tn, 2), flat.distinct_count(fnode, 2));
            prop_assert_eq!(trie.child_slice(tn), flat.child_slice(fnode));
            let mut t_rows = Vec::new();
            trie.for_each_extension(tn, 2, |t| t_rows.push(t.to_vec()));
            let mut f_rows = Vec::new();
            flat.for_each_extension(fnode, 2, |t| f_rows.push(t.to_vec()));
            prop_assert_eq!(t_rows, f_rows);
        }
        // full-depth enumerations agree, including order
        let mut t_all = Vec::new();
        SearchTree::for_each_extension(&trie, trie.root(), 3, |t| t_all.push(t.to_vec()));
        let mut f_all = Vec::new();
        SearchTree::for_each_extension(&flat, flat.root(), 3, |t| f_all.push(t.to_vec()));
        prop_assert_eq!(t_all, f_all);
    }

    /// Galloping lower bound agrees with std's `partition_point` from
    /// every start cursor, on sorted slices with duplicates — covering
    /// empty slices, singletons, boundary duplicates, and needles past
    /// the end (overshoot clamping).
    #[test]
    fn gallop_lower_bound_matches_partition_point(
        xs in prop::collection::vec(0..12u64, 0..40),
        start in 0..45usize,
        needle in 0..14u64,
    ) {
        let mut xs = xs;
        xs.sort_unstable();
        let s: Vec<Value> = xs.into_iter().map(Value).collect();
        let got = gallop::lower_bound_from(&s, start, Value(needle));
        let base = start.min(s.len());
        let want = base + s[base..].partition_point(|&x| x < Value(needle));
        prop_assert_eq!(got, want);
    }

    /// Galloping intersection is a drop-in for the naive two-pointer
    /// merge (the engine's original `intersect_sorted`), including
    /// duplicate multiplicities, on arbitrary sorted inputs.
    #[test]
    fn gallop_intersect_matches_naive_merge(
        a in prop::collection::vec(0..30u64, 0..60),
        b in prop::collection::vec(0..30u64, 0..400),
    ) {
        let (mut a, mut b) = (a, b);
        a.sort_unstable();
        b.sort_unstable();
        let av: Vec<Value> = a.into_iter().map(Value).collect();
        let bv: Vec<Value> = b.into_iter().map(Value).collect();
        // the naive merge oracle
        let mut want = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < av.len() && j < bv.len() {
            match av[i].cmp(&bv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    want.push(av[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        prop_assert_eq!(gallop::intersect(&av, &bv), want.clone());
        prop_assert_eq!(gallop::intersect(&bv, &av), want);
    }

    /// `TrieIndex::descend` (binary search) and `FlatIndex::descend`
    /// (galloping) agree on hit/miss and land on nodes with identical
    /// sections, for needles inside and past the key range.
    #[test]
    fn descend_lookup_sweep(rel in arb_rel(2, 30, 6)) {
        let order: Vec<Attr> = rel.schema().attrs().to_vec();
        let trie = TrieIndex::build(&rel, &order).expect("permutation");
        let flat = FlatIndex::build(&rel, &order).expect("permutation");
        for v in 0..9u64 { // domain is 0..6: values 6..9 probe past the end
            let tn = trie.descend(trie.root(), Value(v));
            let fnode = flat.descend(flat.root(), Value(v));
            prop_assert_eq!(tn.is_some(), fnode.is_some());
            if let (Some(tn), Some(fnode)) = (tn, fnode) {
                prop_assert_eq!(trie.child_slice(tn), flat.child_slice(fnode));
            }
        }
    }

    /// Deep enumeration from the root reproduces the sorted relation.
    #[test]
    fn trie_full_enumeration_roundtrip(rel in arb_rel(3, 40, 5)) {
        let order: Vec<Attr> = rel.schema().attrs().to_vec();
        let trie = TrieIndex::build(&rel, &order).expect("permutation");
        let listed = trie.enumerate(trie.root(), 3);
        prop_assert_eq!(listed.len(), rel.len());
        for row in &listed {
            prop_assert!(rel.contains_row(row));
        }
        // sortedness
        for w in listed.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}
