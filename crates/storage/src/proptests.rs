//! Property-based tests: the counted trie must agree with the relational
//! algebra on every section/projection query, for random relations and
//! random attribute orders — this is the load-bearing equivalence behind
//! `Recursive-Join`'s (ST1)–(ST3) usage.

use crate::ops::{project, select_eq};
use crate::{Attr, Relation, Schema, TrieIndex, Value};
use proptest::prelude::*;

fn arb_rel(arity: usize, max_rows: usize, dom: u64) -> impl Strategy<Value = Relation> {
    let attrs: Vec<u32> = (0..arity as u32).collect();
    prop::collection::vec(prop::collection::vec(0..dom, arity), 0..max_rows).prop_map(move |rows| {
        let vrows: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|r| r.into_iter().map(Value).collect())
            .collect();
        Relation::from_rows(Schema::of(&attrs), vrows).expect("arity consistent")
    })
}

/// Applies `σ` for each prefix value and `π` for the remaining columns —
/// the relational-algebra definition of a section.
fn section_by_ops(rel: &Relation, order: &[Attr], prefix: &[Value], extra: usize) -> Relation {
    let mut cur = rel.clone();
    for (a, v) in order.iter().zip(prefix) {
        cur = select_eq(&cur, *a, *v).expect("attr present");
    }
    let keep: Vec<Attr> = order[prefix.len()..prefix.len() + extra].to_vec();
    project(&cur, &keep).expect("attrs present")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Root-level distinct counts equal projection cardinalities for every
    /// prefix depth, under both the identity and the reversed order.
    #[test]
    fn trie_counts_match_projections(rel in arb_rel(3, 40, 5), reversed in any::<bool>()) {
        let mut order: Vec<Attr> = rel.schema().attrs().to_vec();
        if reversed {
            order.reverse();
        }
        let trie = TrieIndex::build(&rel, &order).expect("permutation");
        for depth in 1..=3usize {
            let keep: Vec<Attr> = order[..depth].to_vec();
            let p = project(&rel, &keep).expect("attrs");
            prop_assert_eq!(trie.distinct_count(trie.root(), depth), p.len());
        }
    }

    /// Sections reached by descent equal σ+π by the algebra, including
    /// their enumerations (ST3).
    #[test]
    fn trie_sections_match_algebra(rel in arb_rel(3, 40, 4)) {
        let order: Vec<Attr> = rel.schema().attrs().to_vec();
        let trie = TrieIndex::build(&rel, &order).expect("permutation");
        for v0 in 0..4u64 {
            let node = trie.descend(trie.root(), Value(v0));
            let expect1 = section_by_ops(&rel, &order, &[Value(v0)], 1);
            let expect2 = section_by_ops(&rel, &order, &[Value(v0)], 2);
            match node {
                None => prop_assert!(expect1.is_empty()),
                Some(n) => {
                    prop_assert_eq!(trie.distinct_count(n, 1), expect1.len());
                    prop_assert_eq!(trie.distinct_count(n, 2), expect2.len());
                    // enumeration must list exactly the projection
                    let listed = trie.enumerate(n, 2);
                    prop_assert_eq!(listed.len(), expect2.len());
                    for row in &listed {
                        prop_assert!(expect2.contains_row(row));
                    }
                }
            }
        }
    }

    /// (ST1) membership of full tuples agrees with the relation.
    #[test]
    fn trie_membership_matches(rel in arb_rel(2, 30, 4)) {
        let order: Vec<Attr> = rel.schema().attrs().to_vec();
        let trie = TrieIndex::build(&rel, &order).expect("permutation");
        for a in 0..4u64 {
            for b in 0..4u64 {
                let row = [Value(a), Value(b)];
                prop_assert_eq!(trie.contains_prefix(&row), rel.contains_row(&row));
            }
        }
    }

    /// Deep enumeration from the root reproduces the sorted relation.
    #[test]
    fn trie_full_enumeration_roundtrip(rel in arb_rel(3, 40, 5)) {
        let order: Vec<Attr> = rel.schema().attrs().to_vec();
        let trie = TrieIndex::build(&rel, &order).expect("permutation");
        let listed = trie.enumerate(trie.root(), 3);
        prop_assert_eq!(listed.len(), rel.len());
        for row in &listed {
            prop_assert!(rel.contains_row(row));
        }
        // sortedness
        for w in listed.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}
