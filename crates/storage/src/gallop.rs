//! Galloping (exponential) search and intersection over sorted slices.
//!
//! The flat columnar index ([`crate::FlatIndex`]) stores every trie level
//! as one contiguous sorted array, so all of its point lookups reduce to
//! "find `v` in a sorted slice". Plain binary search pays `log n`
//! comparisons scattered across the whole slice; *galloping* first probes
//! exponentially from a known cursor (`+1, +2, +4, …`), bracketing the
//! target in a window whose width is proportional to the **distance
//! moved**, then binary-searches that window. For the access patterns the
//! join engine generates — repeated lookups at nearby, ascending
//! positions (level intersections, ordered descents) — this is
//! `O(log gap)` instead of `O(log n)` per step, and degrades gracefully
//! to `≈ 2·log n` in the worst case, preserving the paper's footnote-3
//! budget for sorting-based structures.
//!
//! Edge cases these helpers must (and are tested to) get right:
//!
//! * the empty slice and the singleton slice;
//! * a needle smaller than everything / larger than everything (the
//!   galloping probe **overshoots** the end and must clamp to `len`, not
//!   index out of bounds);
//! * duplicates, including runs that straddle the probe boundary:
//!   [`lower_bound`] always returns the *first* admissible index, so
//!   intersections emit the same multiplicity as a naive sorted merge.

use crate::Value;

/// First index `i ≥ start` in sorted `slice` with `slice[i] >= v`, found
/// by galloping from `start`; `slice.len()` when no such index exists.
///
/// Requires `slice` sorted ascending (duplicates allowed). `start` past
/// the end is clamped.
#[must_use]
pub fn lower_bound_from(slice: &[Value], start: usize, v: Value) -> usize {
    let n = slice.len();
    if start >= n {
        return n;
    }
    if slice[start] >= v {
        return start;
    }
    // Invariant: slice[lo] < v. Gallop until the probe passes v (or the
    // end — the overshoot case: offset saturates rather than wrapping,
    // and the window is clamped to n below).
    let mut lo = start;
    let mut offset = 1usize;
    loop {
        let probe = start.saturating_add(offset);
        if probe >= n {
            break;
        }
        if slice[probe] >= v {
            break;
        }
        lo = probe;
        offset = offset.saturating_mul(2);
    }
    let hi = start.saturating_add(offset).min(n);
    // Binary search in (lo, hi]: first element ≥ v.
    lo + 1 + slice[lo + 1..hi].partition_point(|&x| x < v)
}

/// First index `i` in sorted `slice` with `slice[i] >= v` (the insertion
/// point); `slice.len()` when every element is `< v`.
#[must_use]
pub fn lower_bound(slice: &[Value], v: Value) -> usize {
    lower_bound_from(slice, 0, v)
}

/// Index of the **first** occurrence of `v` in sorted `slice`, if any.
#[must_use]
pub fn find(slice: &[Value], v: Value) -> Option<usize> {
    let i = lower_bound(slice, v);
    (i < slice.len() && slice[i] == v).then_some(i)
}

/// Size ratio beyond which intersecting switches from a two-pointer merge
/// to galloping the smaller side through the larger: repeated gallops only
/// beat the linear merge when one side is much shorter than the other.
const GALLOP_RATIO: usize = 8;

/// Appends the sorted intersection of `a` and `b` to `out`.
///
/// Both inputs must be sorted ascending; duplicates are allowed and a
/// common value is emitted `min(count_a, count_b)` times — exactly what a
/// naive two-pointer merge produces (the proptest differential pins
/// this). Comparable sizes take the merge path; lopsided sizes gallop
/// the smaller side through the larger one.
pub fn intersect_into(a: &[Value], b: &[Value], out: &mut Vec<Value>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    if large.len() / small.len() < GALLOP_RATIO {
        // Two-pointer merge.
        let (mut i, mut j) = (0, 0);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        return;
    }
    // Gallop each element of the smaller side through the larger,
    // advancing a cursor so probes only ever move forward.
    let mut cursor = 0usize;
    for &v in small {
        let i = lower_bound_from(large, cursor, v);
        if i == large.len() {
            return; // everything that remains in small is larger too
        }
        if large[i] == v {
            out.push(v);
            cursor = i + 1; // consume one occurrence (multiset semantics)
        } else {
            cursor = i;
        }
    }
}

/// The sorted intersection of `a` and `b` as a fresh vector
/// (see [`intersect_into`]).
#[must_use]
pub fn intersect(a: &[Value], b: &[Value]) -> Vec<Value> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_into(a, b, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(xs: &[u64]) -> Vec<Value> {
        xs.iter().copied().map(Value).collect()
    }

    #[test]
    fn lower_bound_empty_and_singleton() {
        assert_eq!(lower_bound(&[], Value(5)), 0);
        let one = vals(&[7]);
        assert_eq!(lower_bound(&one, Value(6)), 0);
        assert_eq!(lower_bound(&one, Value(7)), 0);
        assert_eq!(lower_bound(&one, Value(8)), 1);
    }

    #[test]
    fn lower_bound_is_first_occurrence_of_duplicates() {
        let s = vals(&[1, 3, 3, 3, 5, 5, 9]);
        assert_eq!(lower_bound(&s, Value(3)), 1);
        assert_eq!(lower_bound(&s, Value(5)), 4);
        assert_eq!(lower_bound(&s, Value(4)), 4);
        assert_eq!(lower_bound(&s, Value(0)), 0);
        assert_eq!(lower_bound(&s, Value(10)), 7);
    }

    #[test]
    fn lower_bound_overshoot_clamps() {
        // Needle past the end: galloping probes 1, 2, 4, 8, … overshoot
        // the slice; the answer must be len, never an out-of-bounds index.
        for n in [1usize, 2, 3, 5, 7, 8, 9, 100] {
            let s: Vec<Value> = (0..n as u64).map(Value).collect();
            assert_eq!(lower_bound(&s, Value(n as u64 + 1)), n, "len {n}");
            assert_eq!(lower_bound_from(&s, n / 2, Value(n as u64 + 1)), n);
            // start clamped past the end
            assert_eq!(lower_bound_from(&s, n + 3, Value(0)), n);
        }
    }

    #[test]
    fn lower_bound_matches_partition_point_exhaustively() {
        // Every (slice length ≤ 9 over a tiny domain, start, needle):
        // galloping from any cursor agrees with std's partition_point.
        for len in 0..=9usize {
            let s: Vec<Value> = (0..len as u64).map(|i| Value(i / 2 + 1)).collect();
            for start in 0..=len + 1 {
                for v in 0..=(len as u64 / 2 + 2) {
                    let got = lower_bound_from(&s, start, Value(v));
                    let want = (start.min(len)
                        + s[start.min(len)..].partition_point(|&x| x < Value(v)))
                    .min(len);
                    assert_eq!(got, want, "len {len}, start {start}, v {v}");
                }
            }
        }
    }

    #[test]
    fn find_hits_and_misses() {
        let s = vals(&[2, 4, 4, 8]);
        assert_eq!(find(&s, Value(2)), Some(0));
        assert_eq!(find(&s, Value(4)), Some(1), "first occurrence");
        assert_eq!(find(&s, Value(8)), Some(3));
        assert_eq!(find(&s, Value(5)), None);
        assert_eq!(find(&s, Value(9)), None);
        assert_eq!(find(&[], Value(0)), None);
    }

    /// The naive two-pointer merge (the pre-existing
    /// `intersect_sorted` in `wcoj-core`), kept as the oracle.
    fn naive_merge(a: &[Value], b: &[Value]) -> Vec<Value> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    #[test]
    fn intersect_edge_cases() {
        let e: Vec<Value> = Vec::new();
        assert_eq!(intersect(&e, &e), e);
        assert_eq!(intersect(&vals(&[1, 2]), &e), e);
        assert_eq!(intersect(&e, &vals(&[1, 2])), e);
        assert_eq!(intersect(&vals(&[5]), &vals(&[5])), vals(&[5]));
        assert_eq!(intersect(&vals(&[5]), &vals(&[6])), e);
        // duplicate at the boundary between merge windows
        assert_eq!(
            intersect(&vals(&[3, 3]), &vals(&[1, 2, 3, 3, 3, 4])),
            vals(&[3, 3])
        );
        // lopsided sizes force the galloping path
        let big: Vec<Value> = (0..200u64).map(Value).collect();
        assert_eq!(
            intersect(&vals(&[0, 99, 199, 500]), &big),
            vals(&[0, 99, 199])
        );
        assert_eq!(
            intersect(&big, &vals(&[0, 99, 199, 500])),
            vals(&[0, 99, 199])
        );
        // smaller side entirely past the larger side's end
        assert_eq!(intersect(&vals(&[900, 901]), &big), e);
    }

    #[test]
    fn intersect_matches_naive_merge_on_lopsided_inputs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for trial in 0..200 {
            let n_small = rng.gen_range(0..6usize);
            let n_large = rng.gen_range(50..120usize);
            let mut small: Vec<Value> =
                (0..n_small).map(|_| Value(rng.gen_range(0..150))).collect();
            let mut large: Vec<Value> =
                (0..n_large).map(|_| Value(rng.gen_range(0..150))).collect();
            small.sort_unstable();
            large.sort_unstable();
            assert_eq!(
                intersect(&small, &large),
                naive_merge(&small, &large),
                "trial {trial}"
            );
        }
    }
}
