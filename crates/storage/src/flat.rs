//! A cache-friendly **flat columnar** realisation of the paper's search
//! tree: the same counted-trie shape as [`crate::TrieIndex`], laid out as
//! nothing but contiguous sorted value arrays plus offset ranges.
//!
//! Per level `d` the index stores two arrays:
//!
//! * `values[i]` — the last value of the `i`-th distinct length-`(d+1)`
//!   prefix, in lexicographic order;
//! * `child_start[i]..child_start[i+1]` — entry `i`'s contiguous range at
//!   level `d+1` (absent at the deepest level).
//!
//! That is all: **no parent pointers, no node objects**. A node is a pair
//! `(depth, idx)`; every operation resolves to slice arithmetic over the
//! two arrays. The differences from [`crate::TrieIndex`] are exactly the
//! ones the engine hot path feels:
//!
//! * **(ST1)** `descend` finds the child by *galloping* (exponential
//!   search, [`crate::gallop`]) over the child slice instead of a plain
//!   binary search — `O(log gap)` for the ascending probe sequences the
//!   join's ordered intersections generate;
//! * **(ST3)** enumeration walks the level arrays **forward** through the
//!   offset ranges (a nested range scan, sequential at every level)
//!   instead of reconstructing each tuple through `extra − 1` parent-hop
//!   indirections per row — the pointer-chasing this backend exists to
//!   remove;
//! * [`FlatIndex::child_slice`] exposes a node's branch labels as a
//!   borrowed contiguous `&[Value]`, so scan sites and the shard planner
//!   intersect level slices without copying them out first.
//!
//! Counts (ST2) are identical offset-range arithmetic to the counted
//! trie: the width of the range a prefix spans at a deeper level. The
//! `ablation_index` bench compares all three backends; the release-mode
//! stress suites pin this backend bit-identical to `join_nprr`.

use crate::index::SearchTree;
use crate::{gallop, Attr, Relation, Schema, StorageError, Value};

/// One flat level: contiguous sorted values plus child offset ranges.
#[derive(Debug, Clone)]
struct FlatLevel {
    /// Last value of each distinct prefix at this level, sorted.
    values: Vec<Value>,
    /// `child_start[i]..child_start[i+1]` is entry `i`'s range at the
    /// next level; length `len + 1`. Empty at the deepest level.
    child_start: Vec<u32>,
}

/// A position in the flat index: the root (empty prefix) or an entry at
/// some level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatNode {
    /// Depth = prefix length; 0 is the root.
    depth: u32,
    /// Entry index at level `depth − 1` (unused for the root).
    idx: u32,
}

impl FlatNode {
    /// Prefix length represented by this node.
    #[must_use]
    pub fn depth(self) -> usize {
        self.depth as usize
    }
}

/// The flat columnar search tree for one relation under one attribute
/// order.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    order: Vec<Attr>,
    levels: Vec<FlatLevel>,
}

impl FlatIndex {
    /// Builds the index for `rel` under attribute order `order` (a
    /// permutation of the relation's schema). Rows are reordered, sorted,
    /// and deduplicated; construction is `O(k · N log N)` time,
    /// `O(k · N)` space — the same as the counted trie, minus the parent
    /// arrays.
    ///
    /// # Errors
    /// [`StorageError::SchemaMismatch`] if `order` is not a permutation
    /// of the relation's attributes.
    pub fn build(rel: &Relation, order: &[Attr]) -> Result<FlatIndex, StorageError> {
        let target = Schema::new(order.to_vec()).map_err(|_| StorageError::SchemaMismatch)?;
        if !rel.schema().same_set(&target) {
            return Err(StorageError::SchemaMismatch);
        }
        let positions = rel
            .schema()
            .positions_of(order)
            .expect("same_set implies positions exist");
        let k = order.len();

        let mut rows: Vec<Vec<Value>> = rel
            .iter_rows()
            .map(|r| positions.iter().map(|&p| r[p]).collect())
            .collect();
        rows.sort_unstable();
        rows.dedup();

        // A new entry at level d whenever the length-(d+1) prefix changes;
        // rows are sorted, so comparing with the previous row suffices.
        let mut levels: Vec<FlatLevel> = (0..k)
            .map(|_| FlatLevel {
                values: Vec::new(),
                child_start: Vec::new(),
            })
            .collect();
        for (ri, row) in rows.iter().enumerate() {
            let split = if ri == 0 {
                0
            } else {
                let prev = &rows[ri - 1];
                (0..k).find(|&d| row[d] != prev[d]).unwrap_or(k)
            };
            for d in split..k {
                if d + 1 < k {
                    let next_len = levels[d + 1].values.len() as u32;
                    levels[d].child_start.push(next_len);
                }
                levels[d].values.push(row[d]);
            }
        }
        for d in 0..k.saturating_sub(1) {
            let end = levels[d + 1].values.len() as u32;
            levels[d].child_start.push(end);
            debug_assert_eq!(levels[d].child_start.len(), levels[d].values.len() + 1);
        }

        Ok(FlatIndex {
            order: order.to_vec(),
            levels,
        })
    }

    /// The attribute order this index honours.
    #[must_use]
    pub fn order(&self) -> &[Attr] {
        &self.order
    }

    /// Index arity (number of levels).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.order.len()
    }

    /// Number of source rows (distinct full tuples).
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.levels.last().map_or(0, |l| l.values.len())
    }

    /// The root node (empty prefix).
    #[must_use]
    pub fn root(&self) -> FlatNode {
        FlatNode { depth: 0, idx: 0 }
    }

    /// The contiguous entry range `[lo, hi)` at level `target_depth − 1`
    /// (prefixes of length `target_depth`) extending `node` — pure
    /// offset-range composition, the arithmetic every count and
    /// enumeration reduces to.
    fn range_at(&self, node: FlatNode, target_depth: usize) -> (u32, u32) {
        let depth = node.depth as usize;
        debug_assert!(depth <= target_depth && target_depth <= self.arity());
        if target_depth == depth {
            return if depth == 0 {
                (0, 1)
            } else {
                (node.idx, node.idx + 1)
            };
        }
        let (mut lo, mut hi) = if depth == 0 {
            (0, self.levels[0].values.len() as u32)
        } else {
            let cs = &self.levels[depth - 1].child_start;
            (cs[node.idx as usize], cs[node.idx as usize + 1])
        };
        for d in depth + 1..target_depth {
            let cs = &self.levels[d - 1].child_start;
            lo = cs[lo as usize];
            hi = cs[hi as usize];
        }
        (lo, hi)
    }

    /// (ST1, one step) The child of `node` labelled `v`, found by
    /// galloping over the child slice.
    #[must_use]
    pub fn descend(&self, node: FlatNode, v: Value) -> Option<FlatNode> {
        if node.depth as usize >= self.arity() {
            return None;
        }
        let (lo, hi) = self.range_at(node, node.depth as usize + 1);
        let vals = &self.levels[node.depth as usize].values[lo as usize..hi as usize];
        let off = gallop::find(vals, v)?;
        Some(FlatNode {
            depth: node.depth + 1,
            idx: lo + off as u32,
        })
    }

    /// (ST1) Descends along a whole tuple prefix.
    #[must_use]
    pub fn descend_tuple(&self, node: FlatNode, prefix: &[Value]) -> Option<FlatNode> {
        prefix.iter().try_fold(node, |n, &v| self.descend(n, v))
    }

    /// (ST2) The number of distinct length-`extra` extensions of `node`:
    /// the width of the offset range it spans at the target level.
    #[must_use]
    pub fn distinct_count(&self, node: FlatNode, extra: usize) -> usize {
        if extra == 0 {
            return 1;
        }
        let target = node.depth as usize + extra;
        debug_assert!(target <= self.arity(), "projection beyond index arity");
        let (lo, hi) = self.range_at(node, target);
        (hi - lo) as usize
    }

    /// Branch labels of `node`, as a borrowed slice of the level's
    /// contiguous value array. Empty at full depth.
    #[must_use]
    pub fn child_slice(&self, node: FlatNode) -> &[Value] {
        if node.depth as usize >= self.arity() {
            return &[];
        }
        let (lo, hi) = self.range_at(node, node.depth as usize + 1);
        &self.levels[node.depth as usize].values[lo as usize..hi as usize]
    }

    /// (ST3), visitor form: calls `f` with each distinct length-`extra`
    /// extension of `node`, in lexicographic order. A forward nested
    /// range scan — each level is read sequentially, no parent hops.
    pub fn for_each_extension(&self, node: FlatNode, extra: usize, mut f: impl FnMut(&[Value])) {
        if extra == 0 {
            f(&[]);
            return;
        }
        let depth = node.depth as usize;
        debug_assert!(depth + extra <= self.arity());
        let (lo, hi) = self.range_at(node, depth + 1);
        let mut buf = Vec::with_capacity(extra);
        self.walk(depth, lo, hi, extra, &mut buf, &mut f);
    }

    /// Forward walk: enumerate entries `[lo, hi)` at level `level`,
    /// recursing into each entry's child range until `remaining` levels
    /// are consumed.
    fn walk(
        &self,
        level: usize,
        lo: u32,
        hi: u32,
        remaining: usize,
        buf: &mut Vec<Value>,
        f: &mut impl FnMut(&[Value]),
    ) {
        let l = &self.levels[level];
        if remaining == 1 {
            for &v in &l.values[lo as usize..hi as usize] {
                buf.push(v);
                f(buf);
                buf.pop();
            }
            return;
        }
        for i in lo..hi {
            buf.push(l.values[i as usize]);
            let cl = l.child_start[i as usize];
            let ch = l.child_start[i as usize + 1];
            self.walk(level + 1, cl, ch, remaining - 1, buf, f);
            buf.pop();
        }
    }
}

impl SearchTree for FlatIndex {
    type Node = FlatNode;

    fn build(rel: &Relation, order: &[Attr]) -> Result<Self, StorageError> {
        FlatIndex::build(rel, order)
    }
    fn root(&self) -> FlatNode {
        FlatIndex::root(self)
    }
    fn descend(&self, node: FlatNode, v: Value) -> Option<FlatNode> {
        FlatIndex::descend(self, node, v)
    }
    fn distinct_count(&self, node: FlatNode, extra: usize) -> usize {
        FlatIndex::distinct_count(self, node, extra)
    }
    fn for_each_extension(&self, node: FlatNode, extra: usize, f: impl FnMut(&[Value])) {
        FlatIndex::for_each_extension(self, node, extra, f);
    }
    fn child_values(&self, node: FlatNode) -> Vec<Value> {
        FlatIndex::child_slice(self, node).to_vec()
    }
    fn child_slice(&self, node: FlatNode) -> Option<&[Value]> {
        Some(FlatIndex::child_slice(self, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrieIndex;

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    fn attrs(ids: &[u32]) -> Vec<Attr> {
        ids.iter().map(|&v| Attr(v)).collect()
    }

    #[test]
    fn build_rejects_non_permutation() {
        let r = rel(&[0, 1], &[&[1, 2]]);
        assert!(FlatIndex::build(&r, &attrs(&[0, 2])).is_err());
        assert!(FlatIndex::build(&r, &attrs(&[0])).is_err());
        assert!(FlatIndex::build(&r, &attrs(&[0, 0])).is_err());
    }

    #[test]
    fn basic_structure_and_slices() {
        let r = rel(&[0, 1], &[&[1, 10], &[1, 20], &[2, 10]]);
        let t = FlatIndex::build(&r, &attrs(&[0, 1])).unwrap();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.distinct_count(t.root(), 1), 2);
        assert_eq!(t.distinct_count(t.root(), 2), 3);
        assert_eq!(t.child_slice(t.root()), &[Value(1), Value(2)]);
        let n1 = t.descend(t.root(), Value(1)).unwrap();
        assert_eq!(t.child_slice(n1), &[Value(10), Value(20)]);
        assert_eq!(t.distinct_count(n1, 1), 2);
        let n2 = t.descend(t.root(), Value(2)).unwrap();
        assert_eq!(t.child_slice(n2), &[Value(10)]);
        // full depth: no children
        let leaf = t.descend(n2, Value(10)).unwrap();
        assert!(t.child_slice(leaf).is_empty());
        assert!(t.descend(t.root(), Value(3)).is_none());
        assert!(t.descend(n1, Value(30)).is_none());
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(Schema::of(&[0, 1]));
        let t = FlatIndex::build(&r, &attrs(&[0, 1])).unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.distinct_count(t.root(), 1), 0);
        assert!(t.descend(t.root(), Value(0)).is_none());
        assert!(t.child_slice(t.root()).is_empty());
        let mut seen = 0;
        t.for_each_extension(t.root(), 2, |_| seen += 1);
        assert_eq!(seen, 0);
    }

    #[test]
    fn enumeration_is_forward_and_lexicographic() {
        let r = rel(
            &[0, 1, 2],
            &[&[1, 2, 3], &[1, 2, 4], &[2, 0, 0], &[1, 5, 6]],
        );
        let t = FlatIndex::build(&r, &attrs(&[0, 1, 2])).unwrap();
        let mut all = Vec::new();
        t.for_each_extension(t.root(), 3, |row| all.push(row.to_vec()));
        assert_eq!(
            all,
            vec![
                vec![Value(1), Value(2), Value(3)],
                vec![Value(1), Value(2), Value(4)],
                vec![Value(1), Value(5), Value(6)],
                vec![Value(2), Value(0), Value(0)],
            ]
        );
        // skip-level enumeration: distinct (A, B) pairs
        let mut pairs = Vec::new();
        t.for_each_extension(t.root(), 2, |row| pairs.push(row.to_vec()));
        assert_eq!(pairs.len(), 3);
        // zero-length extension is the unit
        let mut unit = 0;
        t.for_each_extension(t.root(), 0, |row| {
            assert!(row.is_empty());
            unit += 1;
        });
        assert_eq!(unit, 1);
    }

    #[test]
    fn flat_and_sorted_tries_agree_exhaustively() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for trial in 0..10 {
            let rows: Vec<Vec<Value>> = (0..60)
                .map(|_| (0..3).map(|_| Value(rng.gen_range(0..5u64))).collect())
                .collect();
            let r = Relation::from_rows(Schema::of(&[0, 1, 2]), rows).unwrap();
            let order = attrs(&[2, 0, 1]);
            let sorted = TrieIndex::build(&r, &order).unwrap();
            let flat = FlatIndex::build(&r, &order).unwrap();
            for d in 1..=3usize {
                assert_eq!(
                    SearchTree::distinct_count(&sorted, SearchTree::root(&sorted), d),
                    flat.distinct_count(flat.root(), d),
                    "trial {trial}, depth {d}"
                );
            }
            for v in 0..5u64 {
                let sn = SearchTree::descend(&sorted, SearchTree::root(&sorted), Value(v));
                let fnode = flat.descend(flat.root(), Value(v));
                assert_eq!(sn.is_some(), fnode.is_some(), "trial {trial}, v {v}");
                let (Some(sn), Some(fnode)) = (sn, fnode) else {
                    continue;
                };
                let mut s_rows = Vec::new();
                SearchTree::for_each_extension(&sorted, sn, 2, |t| s_rows.push(t.to_vec()));
                let mut f_rows = Vec::new();
                flat.for_each_extension(fnode, 2, |t| f_rows.push(t.to_vec()));
                assert_eq!(s_rows, f_rows, "trial {trial}, v {v}");
                assert_eq!(
                    SearchTree::child_values(&sorted, sn),
                    flat.child_slice(fnode).to_vec(),
                    "trial {trial}, v {v}: child slices"
                );
            }
        }
    }

    #[test]
    fn descend_tuple_prefixes() {
        let r = rel(&[0, 1, 2], &[&[1, 2, 3], &[4, 5, 6]]);
        let t = FlatIndex::build(&r, &attrs(&[0, 1, 2])).unwrap();
        assert!(t.descend_tuple(t.root(), &[]).is_some());
        assert!(t.descend_tuple(t.root(), &[Value(1), Value(2)]).is_some());
        assert!(t
            .descend_tuple(t.root(), &[Value(1), Value(2), Value(3)])
            .is_some());
        assert!(t.descend_tuple(t.root(), &[Value(1), Value(5)]).is_none());
        assert!(t.descend_tuple(t.root(), &[Value(9)]).is_none());
    }

    #[test]
    fn dedup_during_build() {
        let mut raw = Relation::empty(Schema::of(&[0, 1]));
        raw.push_row(&[Value(1), Value(1)]).unwrap();
        raw.push_row(&[Value(1), Value(1)]).unwrap();
        let t = FlatIndex::build(&raw, &attrs(&[0, 1])).unwrap();
        assert_eq!(t.num_rows(), 1);
    }
}
