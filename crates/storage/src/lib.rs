//! Relational storage substrate for the NPRR worst-case-optimal join
//! reproduction.
//!
//! The paper assumes a handful of storage facilities (§5.3.2 and footnote 3):
//!
//! * relations as sets of tuples over named attributes;
//! * hash-based natural join of two relations in time
//!   `O(|R| + |S| + |R ⋈ S|)`;
//! * per-relation **search trees** honouring a *total order* of attributes,
//!   supporting the three operations (ST1)–(ST3):
//!   1. (ST1) decide `t ∈ π_{a₁..aᵢ}(Rₑ)` by stepping down the tree,
//!   2. (ST2) query `|π_{aᵢ₊₁..aⱼ}(Rₑ[t])|` cheaply after the descent,
//!   3. (ST3) list `π_{aᵢ₊₁..aⱼ}(Rₑ[t])` in output-linear time.
//!
//! This crate provides all of them:
//!
//! * [`Value`] — dictionary-encoded machine word; [`Dictionary`] round-trips
//!   user data ([`Datum`]) at the API boundary so hot loops touch only
//!   `u64`s;
//! * [`Attr`] / [`Schema`] — attribute identifiers and ordered,
//!   duplicate-free attribute lists;
//! * [`Relation`] — row-major tuple storage with set semantics;
//! * [`ops`] — relational algebra (project / select / rename / union /
//!   difference / semijoin / natural join / cross product);
//! * [`TrieIndex`] — the paper's search tree, realised as a *counted trie*
//!   over sorted rows (sorted construction costs an extra `log` factor,
//!   which the paper's footnote 3 explicitly allows);
//! * [`FlatIndex`] — the same shape with a cache-friendly **flat columnar**
//!   layout: contiguous sorted value arrays per level plus offset ranges
//!   instead of node/parent pointers, with [`gallop`]ing lookups;
//! * [`DeltaRelation`] / [`DeltaIndex`] — a mutable view over a frozen,
//!   `Arc`-shared base: sorted insert/delete buffers merged with the base
//!   index at scan time, plus shard-parallelisable minor compaction;
//! * [`gallop`] — exponential search and adaptive intersection over sorted
//!   slices, shared by the flat backend and the engine's scan sites;
//! * [`hash`] — a fast non-cryptographic hasher (`FxHashMap`/`FxHashSet`)
//!   so join keys are not bottlenecked on SipHash.

mod delta;
mod flat;
pub mod gallop;
pub mod hash;
pub mod index;
pub mod ops;
#[cfg(test)]
mod proptests;
mod relation;
mod schema;
mod trie;
mod value;

pub use delta::{DeltaIndex, DeltaNode, DeltaRelation, MergeChunk};
pub use flat::{FlatIndex, FlatNode};
pub use index::{HashTrieIndex, SearchTree};
pub use relation::{Relation, RowSet};
pub use schema::{Attr, Schema};
pub use trie::{NodeRef, TrieIndex};
pub use value::{Datum, Dictionary, Value};

use std::fmt;

/// Errors surfaced by storage-layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A tuple's arity does not match its relation's schema.
    ArityMismatch {
        /// Arity the schema requires.
        expected: usize,
        /// Arity that was supplied.
        got: usize,
    },
    /// An attribute list contains the same attribute twice.
    DuplicateAttr(Attr),
    /// An operation referenced an attribute absent from the schema.
    UnknownAttr(Attr),
    /// Two relations were expected to share a schema but do not.
    SchemaMismatch,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            StorageError::DuplicateAttr(a) => write!(f, "duplicate attribute {a:?} in schema"),
            StorageError::UnknownAttr(a) => write!(f, "attribute {a:?} not in schema"),
            StorageError::SchemaMismatch => write!(f, "relations have different schemas"),
        }
    }
}

impl std::error::Error for StorageError {}
