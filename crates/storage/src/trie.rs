//! The paper's per-relation **search tree** (§5.3.2), realised as a
//! *counted trie* over sorted, deduplicated rows.
//!
//! Given a relation `Rₑ` and an ordering `a₁, …, a_k` of its attributes
//! (induced by the global *total order* of Algorithm 4), the trie's level
//! `d` contains the distinct length-`(d+1)` prefixes of the reordered
//! tuples, in lexicographic order. Each entry stores its value, its parent
//! at the previous level, and the start of its child range at the next
//! level; because rows are sorted, every subtree occupies a contiguous
//! range at *every* deeper level.
//!
//! This gives exactly the three operations the paper requires:
//!
//! * **(ST1)** `t ∈ π_{a₁..aᵢ}(Rₑ)` — descend with binary search, `O(i log N)`
//!   (the paper's footnote 3 allows the `log` factor of sorting-based
//!   structures);
//! * **(ST2)** `|π_{aᵢ₊₁..aⱼ}(Rₑ[t])|` — range-width composition,
//!   `O(j − i)` child-start lookups after the descent;
//! * **(ST3)** listing `π_{aᵢ₊₁..aⱼ}(Rₑ[t])` — walk the contiguous range at
//!   level `j`, reconstructing each tuple through `j − i − 1` parent hops:
//!   output-linear.
//!
//! Crucially (paper §5.2, step 2a): the subtree under the branch for a
//! tuple prefix `t` **is** the search tree of the section `Rₑ[t]`, so the
//! recursive sub-problems of `Recursive-Join` need no re-indexing.

use crate::{Attr, Relation, Schema, StorageError, Value};

/// One trie level: entry `i` is the `i`-th distinct prefix of length
/// `level + 1` in sorted order.
#[derive(Debug, Clone)]
struct Level {
    /// Last value of each prefix.
    values: Vec<Value>,
    /// Index of the parent entry at the previous level (`0` at level 0 —
    /// unused there).
    parent: Vec<u32>,
    /// `child_start[i]..child_start[i+1]` is entry `i`'s range at the next
    /// level. Present for all but the deepest level; length `len + 1`.
    child_start: Vec<u32>,
}

/// A node: either the root (the empty prefix) or an entry at some level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef {
    /// Depth = prefix length; 0 is the root.
    depth: usize,
    /// Entry index at level `depth − 1` (unused for the root).
    idx: u32,
}

impl NodeRef {
    /// Prefix length represented by this node.
    #[must_use]
    pub fn depth(self) -> usize {
        self.depth
    }
}

/// The counted-trie search tree for one relation under one attribute order.
#[derive(Debug, Clone)]
pub struct TrieIndex {
    /// Attribute order the trie is built over (a permutation of the source
    /// relation's schema).
    order: Vec<Attr>,
    levels: Vec<Level>,
}

impl TrieIndex {
    /// Builds the trie for `rel` under attribute order `order`.
    ///
    /// `order` must be a permutation of `rel`'s schema. Rows are reordered,
    /// sorted, and deduplicated during construction
    /// (`O(k · N log N)` time, `O(k · N)` space).
    ///
    /// # Errors
    /// [`StorageError::SchemaMismatch`] if `order` is not a permutation of
    /// the relation's attributes.
    pub fn build(rel: &Relation, order: &[Attr]) -> Result<TrieIndex, StorageError> {
        let target = Schema::new(order.to_vec()).map_err(|_| StorageError::SchemaMismatch)?;
        if !rel.schema().same_set(&target) {
            return Err(StorageError::SchemaMismatch);
        }
        let positions = rel
            .schema()
            .positions_of(order)
            .expect("same_set implies positions exist");
        let k = order.len();

        // Reorder and sort rows.
        let mut rows: Vec<Vec<Value>> = rel
            .iter_rows()
            .map(|r| positions.iter().map(|&p| r[p]).collect())
            .collect();
        rows.sort_unstable();
        rows.dedup();

        // Build levels: a new entry at level d whenever the length-(d+1)
        // prefix changes; by sortedness it suffices to compare with the
        // previous row.
        let mut levels: Vec<Level> = (0..k)
            .map(|_| Level {
                values: Vec::new(),
                parent: Vec::new(),
                child_start: Vec::new(),
            })
            .collect();
        for (ri, row) in rows.iter().enumerate() {
            // First level where this row differs from the previous one.
            let split = if ri == 0 {
                0
            } else {
                let prev = &rows[ri - 1];
                (0..k).find(|&d| row[d] != prev[d]).unwrap_or(k)
            };
            for d in split..k {
                let parent = if d == 0 {
                    0
                } else {
                    (levels[d - 1].values.len() - 1) as u32
                };
                // Close the child range of the previous entry chain lazily:
                // child_start is emitted when an entry is created, pointing
                // at the next level's current length.
                if d + 1 < k {
                    let next_len = levels[d + 1].values.len() as u32;
                    levels[d].child_start.push(next_len);
                }
                levels[d].values.push(row[d]);
                levels[d].parent.push(parent);
            }
        }
        // Seal child_start with sentinels.
        for d in 0..k.saturating_sub(1) {
            let end = levels[d + 1].values.len() as u32;
            levels[d].child_start.push(end);
            debug_assert_eq!(levels[d].child_start.len(), levels[d].values.len() + 1);
        }

        Ok(TrieIndex {
            order: order.to_vec(),
            levels,
        })
    }

    /// The attribute order this trie honours.
    #[must_use]
    pub fn order(&self) -> &[Attr] {
        &self.order
    }

    /// Trie arity (number of levels).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.order.len()
    }

    /// Number of source rows (distinct full tuples).
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.levels.last().map_or(0, |l| l.values.len())
    }

    /// The root node (empty prefix).
    #[must_use]
    pub fn root(&self) -> NodeRef {
        NodeRef { depth: 0, idx: 0 }
    }

    /// The contiguous entry range `[lo, hi)` at level `target_depth − 1`
    /// (prefixes of length `target_depth`) extending `node`.
    fn range_at(&self, node: NodeRef, target_depth: usize) -> (u32, u32) {
        debug_assert!(node.depth <= target_depth && target_depth <= self.arity());
        if target_depth == node.depth {
            // The node itself (or the root, which we represent as (0,1)).
            return if node.depth == 0 {
                (0, 1)
            } else {
                (node.idx, node.idx + 1)
            };
        }
        let (mut lo, mut hi) = if node.depth == 0 {
            (0, self.levels[0].values.len() as u32)
        } else {
            let cs = &self.levels[node.depth - 1].child_start;
            (cs[node.idx as usize], cs[node.idx as usize + 1])
        };
        for d in node.depth + 1..target_depth {
            let cs = &self.levels[d - 1].child_start;
            lo = cs[lo as usize];
            hi = cs[hi as usize];
        }
        (lo, hi)
    }

    /// (ST1, one step) The child of `node` labelled `v`, if present
    /// (binary search over the sorted child range).
    #[must_use]
    pub fn descend(&self, node: NodeRef, v: Value) -> Option<NodeRef> {
        if node.depth >= self.arity() {
            return None;
        }
        let (lo, hi) = self.range_at(node, node.depth + 1);
        let vals = &self.levels[node.depth].values[lo as usize..hi as usize];
        let off = vals.binary_search(&v).ok()?;
        Some(NodeRef {
            depth: node.depth + 1,
            idx: lo + off as u32,
        })
    }

    /// (ST1) Descends along a whole tuple prefix.
    #[must_use]
    pub fn descend_tuple(&self, node: NodeRef, prefix: &[Value]) -> Option<NodeRef> {
        prefix.iter().try_fold(node, |n, &v| self.descend(n, v))
    }

    /// (ST1) Is `prefix` a prefix of some tuple?
    #[must_use]
    pub fn contains_prefix(&self, prefix: &[Value]) -> bool {
        self.descend_tuple(self.root(), prefix).is_some()
    }

    /// (ST2) `|π` over the next `extra` attributes of the section at
    /// `node` `|` — the number of distinct length-`extra` extensions.
    #[must_use]
    pub fn distinct_count(&self, node: NodeRef, extra: usize) -> usize {
        if extra == 0 {
            return 1;
        }
        let target = node.depth + extra;
        debug_assert!(target <= self.arity(), "projection beyond trie arity");
        let (lo, hi) = self.range_at(node, target);
        (hi - lo) as usize
    }

    /// (ST3) Lists the distinct length-`extra` extensions of `node`, in
    /// lexicographic order. Output-linear (each tuple costs `O(extra)`
    /// parent hops).
    #[must_use]
    pub fn enumerate(&self, node: NodeRef, extra: usize) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        self.for_each_extension(node, extra, |t| out.push(t.to_vec()));
        out
    }

    /// (ST3), visitor form: calls `f` with each distinct length-`extra`
    /// extension of `node` without allocating per tuple.
    pub fn for_each_extension(&self, node: NodeRef, extra: usize, mut f: impl FnMut(&[Value])) {
        if extra == 0 {
            f(&[]);
            return;
        }
        let target = node.depth + extra;
        let (lo, hi) = self.range_at(node, target);
        let mut buf = vec![Value(0); extra];
        for e in lo..hi {
            let mut idx = e;
            for back in (0..extra).rev() {
                let level = &self.levels[node.depth + back];
                buf[back] = level.values[idx as usize];
                idx = level.parent[idx as usize];
            }
            f(&buf);
        }
    }

    /// Children values of `node` (its branch labels), in sorted order.
    #[must_use]
    pub fn child_values(&self, node: NodeRef) -> Vec<Value> {
        self.child_slice(node).to_vec()
    }

    /// Branch labels of `node` as a borrowed slice of the level's value
    /// array (trie levels are contiguous, so no copy is needed). Empty at
    /// full depth.
    #[must_use]
    pub fn child_slice(&self, node: NodeRef) -> &[Value] {
        if node.depth >= self.arity() {
            return &[];
        }
        let (lo, hi) = self.range_at(node, node.depth + 1);
        &self.levels[node.depth].values[lo as usize..hi as usize]
    }

    /// Materialises the subtree at `node` over the next `extra` attributes
    /// as a relation (schema = the corresponding slice of the order).
    #[must_use]
    pub fn section_relation(&self, node: NodeRef, extra: usize) -> Relation {
        let attrs: Vec<Attr> = self.order[node.depth..node.depth + extra].to_vec();
        let schema = Schema::new(attrs).expect("order attrs are distinct");
        let mut rel = Relation::empty(schema);
        self.for_each_extension(node, extra, |t| {
            rel.push_row(t).expect("extension arity consistent");
        });
        // Already sorted and distinct by construction.
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    fn attrs(ids: &[u32]) -> Vec<Attr> {
        ids.iter().map(|&v| Attr(v)).collect()
    }

    #[test]
    fn build_rejects_non_permutation() {
        let r = rel(&[0, 1], &[&[1, 2]]);
        assert!(TrieIndex::build(&r, &attrs(&[0, 2])).is_err());
        assert!(TrieIndex::build(&r, &attrs(&[0])).is_err());
        assert!(TrieIndex::build(&r, &attrs(&[0, 0])).is_err());
    }

    #[test]
    fn basic_structure() {
        // R(A,B) = {(1,10),(1,20),(2,10)} ordered (A,B)
        let r = rel(&[0, 1], &[&[1, 10], &[1, 20], &[2, 10]]);
        let t = TrieIndex::build(&r, &attrs(&[0, 1])).unwrap();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.num_rows(), 3);
        // level 0: distinct A values {1, 2}
        assert_eq!(t.distinct_count(t.root(), 1), 2);
        // level 1: full tuples
        assert_eq!(t.distinct_count(t.root(), 2), 3);
        assert_eq!(t.child_values(t.root()), vec![Value(1), Value(2)]);
    }

    #[test]
    fn descend_and_sections() {
        let r = rel(&[0, 1], &[&[1, 10], &[1, 20], &[2, 10]]);
        let t = TrieIndex::build(&r, &attrs(&[0, 1])).unwrap();
        let n1 = t.descend(t.root(), Value(1)).unwrap();
        assert_eq!(t.distinct_count(n1, 1), 2); // section R[1] = {10, 20}
        let n2 = t.descend(t.root(), Value(2)).unwrap();
        assert_eq!(t.distinct_count(n2, 1), 1);
        assert!(t.descend(t.root(), Value(3)).is_none());
        assert!(t.descend(n1, Value(10)).is_some());
        assert!(t.descend(n1, Value(30)).is_none());
    }

    #[test]
    fn order_matters() {
        // Same data ordered (B, A): level 0 = distinct Bs {10, 20}.
        let r = rel(&[0, 1], &[&[1, 10], &[1, 20], &[2, 10]]);
        let t = TrieIndex::build(&r, &attrs(&[1, 0])).unwrap();
        assert_eq!(t.distinct_count(t.root(), 1), 2);
        let b10 = t.descend(t.root(), Value(10)).unwrap();
        assert_eq!(t.distinct_count(b10, 1), 2); // A ∈ {1, 2}
        assert_eq!(t.enumerate(b10, 1), vec![vec![Value(1)], vec![Value(2)]]);
    }

    #[test]
    fn enumerate_full_tuples() {
        let r = rel(&[0, 1, 2], &[&[1, 2, 3], &[1, 2, 4], &[2, 0, 0]]);
        let t = TrieIndex::build(&r, &attrs(&[0, 1, 2])).unwrap();
        let all = t.enumerate(t.root(), 3);
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], vec![Value(1), Value(2), Value(3)]);
        assert_eq!(all[2], vec![Value(2), Value(0), Value(0)]);
        // skipping a level: distinct (A,B) pairs
        assert_eq!(t.distinct_count(t.root(), 2), 2);
        let pairs = t.enumerate(t.root(), 2);
        assert_eq!(
            pairs,
            vec![vec![Value(1), Value(2)], vec![Value(2), Value(0)]]
        );
    }

    #[test]
    fn contains_prefix_and_descend_tuple() {
        let r = rel(&[0, 1, 2], &[&[1, 2, 3], &[4, 5, 6]]);
        let t = TrieIndex::build(&r, &attrs(&[0, 1, 2])).unwrap();
        assert!(t.contains_prefix(&[]));
        assert!(t.contains_prefix(&[Value(1)]));
        assert!(t.contains_prefix(&[Value(1), Value(2)]));
        assert!(t.contains_prefix(&[Value(1), Value(2), Value(3)]));
        assert!(!t.contains_prefix(&[Value(1), Value(5)]));
        assert!(!t.contains_prefix(&[Value(9)]));
    }

    #[test]
    fn dedup_during_build() {
        let mut raw = Relation::empty(Schema::of(&[0, 1]));
        raw.push_row(&[Value(1), Value(1)]).unwrap();
        raw.push_row(&[Value(1), Value(1)]).unwrap();
        let t = TrieIndex::build(&raw, &attrs(&[0, 1])).unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn empty_relation_trie() {
        let r = Relation::empty(Schema::of(&[0, 1]));
        let t = TrieIndex::build(&r, &attrs(&[0, 1])).unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.distinct_count(t.root(), 1), 0);
        assert!(t.descend(t.root(), Value(0)).is_none());
        assert!(t.enumerate(t.root(), 2).is_empty());
    }

    #[test]
    fn section_relation_matches_manual_projection() {
        let r = rel(
            &[0, 1, 2],
            &[&[1, 2, 3], &[1, 2, 4], &[1, 5, 6], &[2, 2, 2]],
        );
        let t = TrieIndex::build(&r, &attrs(&[0, 1, 2])).unwrap();
        let n1 = t.descend(t.root(), Value(1)).unwrap();
        let sec = t.section_relation(n1, 2);
        assert_eq!(sec.schema(), &Schema::of(&[1, 2]));
        assert_eq!(sec.len(), 3);
        assert!(sec.contains_row(&[Value(2), Value(3)]));
        assert!(sec.contains_row(&[Value(5), Value(6)]));
        // projection onto just the next attribute
        let proj = t.section_relation(n1, 1);
        assert_eq!(proj.len(), 2); // {2, 5}
    }

    #[test]
    fn distinct_counts_compose_like_projections() {
        use crate::ops::project;
        let rows: Vec<Vec<Value>> = (0..50u64)
            .map(|i| vec![Value(i % 3), Value(i % 7), Value(i % 11)])
            .collect();
        let r = Relation::from_rows(Schema::of(&[0, 1, 2]), rows).unwrap();
        let t = TrieIndex::build(&r, &attrs(&[0, 1, 2])).unwrap();
        assert_eq!(
            t.distinct_count(t.root(), 1),
            project(&r, &[Attr(0)]).unwrap().len()
        );
        assert_eq!(
            t.distinct_count(t.root(), 2),
            project(&r, &[Attr(0), Attr(1)]).unwrap().len()
        );
        assert_eq!(t.distinct_count(t.root(), 3), r.len());
        // per-section counts
        for a in t.child_values(t.root()) {
            let n = t.descend(t.root(), a).unwrap();
            let manual = r
                .iter_rows()
                .filter(|row| row[0] == a)
                .map(|row| row[1])
                .collect::<std::collections::BTreeSet<_>>()
                .len();
            assert_eq!(t.distinct_count(n, 1), manual);
        }
    }

    #[test]
    fn subtree_is_section_search_tree() {
        // The property §5.2 step 2a relies on: descending t1 gives a node
        // whose subtree behaves exactly like the trie of R[t1].
        let r = rel(
            &[0, 1, 2],
            &[&[1, 2, 3], &[1, 2, 4], &[1, 5, 6], &[2, 7, 8]],
        );
        let t = TrieIndex::build(&r, &attrs(&[0, 1, 2])).unwrap();
        let n = t.descend(t.root(), Value(1)).unwrap();

        use crate::ops::{project, select_eq};
        let section = project(
            &select_eq(&r, Attr(0), Value(1)).unwrap(),
            &[Attr(1), Attr(2)],
        )
        .unwrap();
        let t2 = TrieIndex::build(&section, &attrs(&[1, 2])).unwrap();
        assert_eq!(t.distinct_count(n, 1), t2.distinct_count(t2.root(), 1));
        assert_eq!(t.distinct_count(n, 2), t2.distinct_count(t2.root(), 2));
        assert_eq!(t.enumerate(n, 2), t2.enumerate(t2.root(), 2));
    }
}
