//! Dictionary-encoded values.
//!
//! Join algorithms here never look *inside* a value — only equality,
//! ordering, and hashing matter — so relations store plain machine words
//! ([`Value`]) and a [`Dictionary`] translates between user-facing data
//! ([`Datum`]) and those words at the API boundary. Integers round-trip
//! without any dictionary entry (they are tagged into the value space
//! directly) so purely numeric workloads never touch the dictionary at all.

use crate::hash::FxHashMap;
use std::fmt;
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// An opaque, dictionary-encoded value. Ordering is byte-wise on the code,
/// which is what the trie index sorts by; it is *not* the ordering of the
/// decoded data (irrelevant for natural joins, which only test equality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(pub u64);

impl Value {
    /// Encodes a small non-negative integer directly (identity mapping into
    /// the integer half of the code space). Panics in debug builds if the
    /// integer collides with the string-tag space.
    #[must_use]
    pub fn from_u32(v: u32) -> Value {
        Value(u64::from(v))
    }

    /// Raw code.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value(u64::from(v))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// User-facing datum: what a [`Value`] decodes to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Datum {
    /// A 63-bit non-negative integer (encoded inline, no dictionary entry).
    Int(u64),
    /// An interned string.
    Str(Box<str>),
}

impl Datum {
    /// Convenience constructor for string data.
    #[must_use]
    pub fn str(s: &str) -> Datum {
        Datum::Str(s.into())
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Datum {
    fn from(v: u64) -> Self {
        Datum::Int(v)
    }
}
impl From<&str> for Datum {
    fn from(s: &str) -> Self {
        Datum::str(s)
    }
}
impl From<String> for Datum {
    fn from(s: String) -> Self {
        Datum::Str(s.into_boxed_str())
    }
}

/// Tag bit separating inline integers from interned strings.
///
/// Codes `< STR_TAG` are integers encoded as themselves; codes `≥ STR_TAG`
/// are indices into the intern table offset by `STR_TAG`.
const STR_TAG: u64 = 1 << 63;

/// Bidirectional mapping between [`Datum`] and [`Value`].
///
/// Thread-safe: encoding takes a write lock only on a dictionary miss, so
/// concurrent loaders scale. Integers never lock.
#[derive(Default)]
pub struct Dictionary {
    inner: RwLock<DictInner>,
}

impl Dictionary {
    /// Read lock, ignoring poisoning (the dictionary's invariants hold
    /// after any partial write: both maps are append-only).
    fn read_inner(&self) -> RwLockReadGuard<'_, DictInner> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_inner(&self) -> RwLockWriteGuard<'_, DictInner> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Default)]
struct DictInner {
    by_str: FxHashMap<Box<str>, u64>,
    strings: Vec<Box<str>>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    #[must_use]
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Encodes a datum, interning strings on first sight.
    ///
    /// # Panics
    /// Panics if an integer datum needs the tag bit (≥ 2⁶³); the workloads
    /// in this workspace use far smaller domains.
    pub fn encode(&self, d: &Datum) -> Value {
        match d {
            Datum::Int(v) => {
                assert!(*v < STR_TAG, "integer datum too large for inline encoding");
                Value(*v)
            }
            Datum::Str(s) => {
                if let Some(&idx) = self.read_inner().by_str.get(s.as_ref()) {
                    return Value(STR_TAG | idx);
                }
                let mut w = self.write_inner();
                if let Some(&idx) = w.by_str.get(s.as_ref()) {
                    return Value(STR_TAG | idx);
                }
                let idx = w.strings.len() as u64;
                w.strings.push(s.clone());
                w.by_str.insert(s.clone(), idx);
                Value(STR_TAG | idx)
            }
        }
    }

    /// Encodes a string slice.
    pub fn encode_str(&self, s: &str) -> Value {
        self.encode(&Datum::str(s))
    }

    /// Decodes a value; `None` if it references an unknown intern slot.
    #[must_use]
    pub fn decode(&self, v: Value) -> Option<Datum> {
        if v.0 & STR_TAG == 0 {
            Some(Datum::Int(v.0))
        } else {
            let idx = (v.0 & !STR_TAG) as usize;
            self.read_inner()
                .strings
                .get(idx)
                .map(|s| Datum::Str(s.clone()))
        }
    }

    /// Number of interned strings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.read_inner().strings.len()
    }

    /// `true` iff no strings are interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_without_dictionary() {
        let d = Dictionary::new();
        let v = d.encode(&Datum::Int(42));
        assert_eq!(v, Value(42));
        assert_eq!(d.decode(v), Some(Datum::Int(42)));
        assert!(d.is_empty());
    }

    #[test]
    fn strings_intern_once() {
        let d = Dictionary::new();
        let a = d.encode_str("alice");
        let b = d.encode_str("bob");
        let a2 = d.encode_str("alice");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.decode(a), Some(Datum::str("alice")));
        assert_eq!(d.decode(b), Some(Datum::str("bob")));
    }

    #[test]
    fn strings_and_ints_never_collide() {
        let d = Dictionary::new();
        let s = d.encode_str("0");
        let i = d.encode(&Datum::Int(0));
        assert_ne!(s, i);
    }

    #[test]
    fn decode_unknown_string_slot() {
        let d = Dictionary::new();
        assert_eq!(d.decode(Value(STR_TAG | 99)), None);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_int_panics() {
        let d = Dictionary::new();
        d.encode(&Datum::Int(u64::MAX));
    }

    #[test]
    fn concurrent_encoding_consistent() {
        use std::sync::Arc;
        let d = Arc::new(Dictionary::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| d.encode_str(&format!("s{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Value>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "all threads must agree on codes");
        }
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn datum_conversions_and_display() {
        assert_eq!(Datum::from(7u64), Datum::Int(7));
        assert_eq!(Datum::from("x"), Datum::str("x"));
        assert_eq!(Datum::from(String::from("y")), Datum::str("y"));
        assert_eq!(format!("{}", Datum::Int(3)), "3");
        assert_eq!(format!("{}", Datum::str("z")), "z");
        assert_eq!(format!("{}", Value(5)), "#5");
    }
}
