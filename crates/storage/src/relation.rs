//! Row-major relations with set semantics.

use crate::hash::{set_with_capacity, FxHashSet};
use crate::{Schema, StorageError, Value};
use std::cmp::Ordering;
use std::fmt;

/// A relation instance: a set of tuples over a [`Schema`].
///
/// Rows are stored row-major in one flat buffer, so iteration touches
/// contiguous memory and cloning performs a single allocation. Duplicate
/// rows may transiently exist while loading; [`Relation::sort_dedup`]
/// restores set semantics and every constructor that finalises a relation
/// calls it.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    data: Vec<Value>,
    /// Whether a *nullary* relation contains its single possible (empty)
    /// tuple; ignored for positive arities.
    nullary_present: bool,
}

impl Relation {
    /// An empty relation over `schema`.
    #[must_use]
    pub fn empty(schema: Schema) -> Relation {
        Relation {
            schema,
            data: Vec::new(),
            nullary_present: false,
        }
    }

    /// The *empty* nullary relation (logical `false`); see
    /// [`Relation::nullary_true`] for the join identity.
    #[must_use]
    pub fn unit() -> Relation {
        Relation::empty(Schema::of(&[]))
    }

    /// Builds from explicit rows, sorting and deduplicating.
    ///
    /// # Errors
    /// [`StorageError::ArityMismatch`] if any row has the wrong length.
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Result<Relation, StorageError> {
        let mut rel = Relation::empty(schema);
        rel.data.reserve(rows.len() * rel.arity());
        for row in rows {
            rel.push_row(&row)?;
        }
        rel.sort_dedup();
        Ok(rel)
    }

    /// Test/generator convenience: rows of `u32`s.
    ///
    /// # Panics
    /// Panics on arity mismatch (test helper).
    #[must_use]
    pub fn from_u32_rows(schema: Schema, rows: &[&[u32]]) -> Relation {
        let vrows = rows
            .iter()
            .map(|r| r.iter().map(|&v| Value::from(v)).collect())
            .collect();
        Relation::from_rows(schema, vrows).expect("arity mismatch in from_u32_rows")
    }

    /// Appends one row (no deduplication; call [`Relation::sort_dedup`]
    /// when done loading).
    ///
    /// # Errors
    /// [`StorageError::ArityMismatch`] on wrong arity.
    pub fn push_row(&mut self, row: &[Value]) -> Result<(), StorageError> {
        if row.len() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        if self.arity() == 0 {
            self.nullary_present = true;
        } else {
            self.data.extend_from_slice(row);
        }
        Ok(())
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of rows.
    ///
    /// For the nullary schema this is 0 or 1 ("false"/"true"): the unit
    /// relation is represented with an empty buffer, so nullary relations
    /// track their single logical row via an internal presence flag.
    #[must_use]
    pub fn len(&self) -> usize {
        if self.arity() == 0 {
            usize::from(self.nullary_present)
        } else {
            self.data.len() / self.arity()
        }
    }

    /// `true` iff there are no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `i` as a value slice.
    ///
    /// # Panics
    /// Panics if `i` is out of range or the relation is nullary.
    #[must_use]
    pub fn row(&self, i: usize) -> &[Value] {
        let k = self.arity();
        assert!(k > 0, "nullary relation has no addressable rows");
        &self.data[i * k..(i + 1) * k]
    }

    /// Iterates rows as value slices. Nullary relations yield their single
    /// empty row if present.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[Value]> + '_ {
        let k = self.arity();
        let n = self.len();
        (0..n).map(move |i| {
            if k == 0 {
                &[] as &[Value]
            } else {
                &self.data[i * k..(i + 1) * k]
            }
        })
    }

    /// Sorts rows lexicographically and removes duplicates.
    pub fn sort_dedup(&mut self) {
        let k = self.arity();
        if k == 0 || self.data.is_empty() {
            return;
        }
        let n = self.data.len() / k;
        let mut idx: Vec<usize> = (0..n).collect();
        let data = &self.data;
        idx.sort_unstable_by(|&a, &b| cmp_rows(&data[a * k..a * k + k], &data[b * k..b * k + k]));
        idx.dedup_by(|&mut a, &mut b| data[a * k..a * k + k] == data[b * k..b * k + k]);
        let mut out = Vec::with_capacity(idx.len() * k);
        for i in idx {
            out.extend_from_slice(&self.data[i * k..i * k + k]);
        }
        self.data = out;
    }

    /// Marks the nullary relation as containing the empty tuple.
    ///
    /// # Panics
    /// Panics if the schema is not nullary.
    pub fn set_nullary_present(&mut self, present: bool) {
        assert_eq!(self.arity(), 0, "only nullary relations carry this flag");
        self.nullary_present = present;
    }

    /// Membership test via linear scan of sorted data (binary search when
    /// sorted); for repeated probes build a [`RowSet`].
    #[must_use]
    pub fn contains_row(&self, row: &[Value]) -> bool {
        if row.len() != self.arity() {
            return false;
        }
        if self.arity() == 0 {
            return self.nullary_present;
        }
        self.iter_rows().any(|r| r == row)
    }

    /// Builds a hash set over the rows for O(1) membership probes.
    #[must_use]
    pub fn row_set(&self) -> RowSet {
        let mut set = set_with_capacity(self.len());
        for r in self.iter_rows() {
            set.insert(r.to_vec().into_boxed_slice());
        }
        RowSet {
            arity: self.arity(),
            set,
        }
    }

    /// Consumes and returns the sorted/deduplicated relation.
    #[must_use]
    pub fn into_sorted(mut self) -> Relation {
        self.sort_dedup();
        self
    }

    /// Direct access to the flat row-major buffer (row length =
    /// [`Relation::arity`]).
    #[must_use]
    pub fn raw_data(&self) -> &[Value] {
        &self.data
    }
}

// The nullary-presence flag lives outside the main struct body above purely
// for documentation flow; define it here.
impl Relation {
    /// Builds a nullary relation representing logical `true` (one empty
    /// tuple).
    #[must_use]
    pub fn nullary_true() -> Relation {
        let mut r = Relation::unit();
        r.nullary_present = true;
        r
    }
}

/// Lexicographic comparison of two equal-length rows.
#[must_use]
pub(crate) fn cmp_rows(a: &[Value], b: &[Value]) -> Ordering {
    a.cmp(b)
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation{} [{} rows]", self.schema, self.len())?;
        for (i, r) in self.iter_rows().enumerate() {
            if i >= 20 {
                writeln!(f, "  …")?;
                break;
            }
            writeln!(
                f,
                "  ({})",
                r.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        Ok(())
    }
}

/// Hash set over rows for O(1) membership probes during pruning steps.
pub struct RowSet {
    arity: usize,
    set: FxHashSet<Box<[Value]>>,
}

impl RowSet {
    /// `true` iff the row is present (arity mismatches are simply absent).
    #[must_use]
    pub fn contains(&self, row: &[Value]) -> bool {
        row.len() == self.arity && self.set.contains(row)
    }

    /// Number of distinct rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` iff empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    #[test]
    fn from_rows_sorts_and_dedups() {
        let r = rel(&[0, 1], &[&[2, 2], &[1, 1], &[2, 2], &[1, 0]]);
        assert_eq!(r.len(), 3);
        let rows: Vec<Vec<Value>> = r.iter_rows().map(<[Value]>::to_vec).collect();
        assert_eq!(
            rows,
            vec![
                vec![Value(1), Value(0)],
                vec![Value(1), Value(1)],
                vec![Value(2), Value(2)]
            ]
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::empty(Schema::of(&[0, 1]));
        assert_eq!(
            r.push_row(&[Value(1)]),
            Err(StorageError::ArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn unit_and_nullary_true() {
        let f = Relation::unit();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        let t = Relation::nullary_true();
        assert_eq!(t.len(), 1);
        assert!(t.contains_row(&[]));
        assert!(!f.contains_row(&[]));
        assert_eq!(t.iter_rows().count(), 1);
        assert_eq!(f.iter_rows().count(), 0);
    }

    #[test]
    fn contains_and_rowset() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        assert!(r.contains_row(&[Value(1), Value(2)]));
        assert!(!r.contains_row(&[Value(2), Value(1)]));
        assert!(!r.contains_row(&[Value(1)]));
        let s = r.row_set();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&[Value(3), Value(4)]));
        assert!(!s.contains(&[Value(3)]));
        assert!(!s.is_empty());
    }

    #[test]
    fn row_access() {
        let r = rel(&[0], &[&[5], &[3]]);
        assert_eq!(r.row(0), &[Value(3)]);
        assert_eq!(r.row(1), &[Value(5)]);
    }

    #[test]
    fn debug_format_truncates() {
        let rows: Vec<Vec<Value>> = (0..30).map(|i| vec![Value(i)]).collect();
        let r = Relation::from_rows(Schema::of(&[0]), rows).unwrap();
        let s = format!("{r:?}");
        assert!(s.contains("[30 rows]"));
        assert!(s.contains('…'));
    }

    #[test]
    fn sort_dedup_idempotent() {
        let mut r = rel(&[0, 1], &[&[1, 1], &[0, 0]]);
        let before = r.clone();
        r.sort_dedup();
        assert_eq!(r, before);
    }
}
