//! Delta-aware relation storage: a frozen, `Arc`-shared **base** plus
//! small sorted **insert/delete buffers**, merged at scan time.
//!
//! The paper's search trees ([`crate::FlatIndex`], [`crate::TrieIndex`])
//! are batch-built and immutable — the right shape for the join's hot
//! path, the wrong shape for a workload that ingests while it queries.
//! [`DeltaRelation`] makes the write path incremental without giving up
//! the frozen index:
//!
//! * the **base** is an `Arc<Relation>` (sorted, deduplicated) that
//!   queries index once and share;
//! * **`ins`** holds rows present in the view but not in the base;
//! * **`del`** holds rows present in the base but removed from the view.
//!
//! The two invariants `del ⊆ base` and `ins ∩ base = ∅` make the merge
//! arithmetic exact: the effective relation is `(base ∖ del) ∪ ins` and
//! its cardinality is `|base| − |del| + |ins|` — no overlap terms.
//! Cloning a `DeltaRelation` is the copy-on-write snapshot: one `Arc`
//! bump for the base plus copies of the (small) buffers.
//!
//! [`DeltaIndex`] is the read side: a [`SearchTree`] over the *merged*
//! view, composed from a shared base index plus two small
//! [`FlatIndex`]es over the buffers. Every (ST1)–(ST3) operation resolves
//! by counted-trie arithmetic on the three components:
//!
//! * a prefix exists in the merged view iff its **effective full count**
//!   `base − del + ins` (each at full remaining depth, an O(1) offset
//!   lookup per component) is positive;
//! * enumeration is a sorted merge-walk of the surviving base children
//!   with the ins children, delegating to the pure base (or pure ins)
//!   fast path whenever the other two components are empty below the
//!   node — so an all-base prefix still borrows the base's contiguous
//!   `child_slice`.
//!
//! **Minor compaction** folds the buffers into a fresh base once they
//! grow past a policy threshold (the caller's decision): either in one
//! call ([`DeltaRelation::compact`]) or shard-parallel through
//! [`DeltaRelation::merge_plan`] / [`DeltaRelation::merge_chunk`] /
//! [`DeltaRelation::apply_merged`], whose chunks an executor pool can
//! run independently (each chunk's output is sorted and chunk ranges are
//! disjoint, so concatenation is the sorted merge).

use crate::index::SearchTree;
use crate::{Attr, FlatIndex, FlatNode, Relation, Schema, StorageError, Value};
use std::sync::Arc;

/// Index of the first row in sorted `rel` that is `>= row`
/// (lower bound over the row-major buffer).
fn lower_bound(rel: &Relation, row: &[Value]) -> usize {
    let k = rel.arity();
    debug_assert_eq!(k, row.len());
    let data = rel.raw_data();
    let (mut lo, mut hi) = (0usize, data.len() / k.max(1));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if data[mid * k..mid * k + k] < *row {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Binary-search membership in a sorted relation (positive arity).
fn sorted_contains(rel: &Relation, row: &[Value]) -> bool {
    let k = rel.arity();
    if k == 0 {
        return !rel.is_empty();
    }
    let i = lower_bound(rel, row);
    i < rel.len() && rel.row(i) == row
}

/// One chunk of a shard-parallel compaction: half-open row ranges into
/// the base, ins, and del buffers that merge independently of every
/// other chunk (see [`DeltaRelation::merge_plan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeChunk {
    base: (usize, usize),
    ins: (usize, usize),
    del: (usize, usize),
}

/// A relation as a frozen shared base plus sorted insert/delete buffers.
///
/// Invariants (maintained by every mutator): `del ⊆ base`,
/// `ins ∩ base = ∅`, and all three components sorted + deduplicated.
#[derive(Clone)]
pub struct DeltaRelation {
    base: Arc<Relation>,
    ins: Relation,
    del: Relation,
}

impl DeltaRelation {
    /// Wraps `base` (sorted and deduplicated here) with empty buffers.
    #[must_use]
    pub fn new(base: Relation) -> DeltaRelation {
        let base = base.into_sorted();
        let schema = base.schema().clone();
        DeltaRelation {
            base: Arc::new(base),
            ins: Relation::empty(schema.clone()),
            del: Relation::empty(schema),
        }
    }

    /// The schema (shared by base and both buffers).
    #[must_use]
    pub fn schema(&self) -> &Schema {
        self.base.schema()
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.base.arity()
    }

    /// The frozen base (share it with `Arc::clone`).
    #[must_use]
    pub fn base(&self) -> &Arc<Relation> {
        &self.base
    }

    /// The insert buffer (rows in the view, not in the base).
    #[must_use]
    pub fn ins(&self) -> &Relation {
        &self.ins
    }

    /// The delete buffer (base rows removed from the view).
    #[must_use]
    pub fn del(&self) -> &Relation {
        &self.del
    }

    /// Rows in the merged view: `|base| − |del| + |ins|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.base.len() - self.del.len() + self.ins.len()
    }

    /// `true` iff the merged view has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Buffered rows pending compaction (`|ins| + |del|`) — the input to
    /// any compaction threshold policy.
    #[must_use]
    pub fn delta_len(&self) -> usize {
        self.ins.len() + self.del.len()
    }

    /// Membership in the merged view.
    #[must_use]
    pub fn contains_row(&self, row: &[Value]) -> bool {
        if row.len() != self.arity() {
            return false;
        }
        if self.arity() == 0 {
            return !self.is_empty();
        }
        sorted_contains(&self.ins, row)
            || (sorted_contains(&self.base, row) && !sorted_contains(&self.del, row))
    }

    /// Inserts `rows` into the view: a row already deleted is
    /// *resurrected* out of `del`, a row already present is a no-op, and
    /// anything new lands in `ins`. Returns how many rows actually became
    /// present.
    ///
    /// # Errors
    /// [`StorageError::ArityMismatch`] on any wrong-arity row (the view
    /// is left unchanged).
    pub fn insert_rows(&mut self, rows: &[Vec<Value>]) -> Result<usize, StorageError> {
        let incoming = self.check_sort(rows)?;
        if self.arity() == 0 {
            let was = !self.is_empty();
            if !incoming.is_empty() && !was {
                if self.base.is_empty() {
                    self.ins = Relation::nullary_true();
                } else {
                    self.del = Relation::unit();
                }
                return Ok(1);
            }
            return Ok(0);
        }
        let mut resurrect = Relation::empty(self.schema().clone());
        let mut additions = Relation::empty(self.schema().clone());
        for row in incoming.iter_rows() {
            if sorted_contains(&self.del, row) {
                resurrect.push_row(row)?;
            } else if !sorted_contains(&self.base, row) && !sorted_contains(&self.ins, row) {
                additions.push_row(row)?;
            }
        }
        let changed = resurrect.len() + additions.len();
        if !resurrect.is_empty() {
            self.del = filter_rows(&self.del, |r| !sorted_contains(&resurrect, r));
        }
        if !additions.is_empty() {
            for row in additions.iter_rows() {
                self.ins.push_row(row)?;
            }
            self.ins.sort_dedup();
        }
        self.check_invariants();
        Ok(changed)
    }

    /// Deletes `rows` from the view: a buffered insert is dropped from
    /// `ins`, a base row is recorded in `del`, an absent row is a no-op.
    /// Returns how many rows actually left the view.
    ///
    /// # Errors
    /// [`StorageError::ArityMismatch`] on any wrong-arity row.
    pub fn delete_rows(&mut self, rows: &[Vec<Value>]) -> Result<usize, StorageError> {
        let incoming = self.check_sort(rows)?;
        if self.arity() == 0 {
            let was = !self.is_empty();
            if !incoming.is_empty() && was {
                if !self.ins.is_empty() {
                    self.ins = Relation::unit();
                } else {
                    self.del = Relation::nullary_true();
                }
                return Ok(1);
            }
            return Ok(0);
        }
        let mut unbuffer = Relation::empty(self.schema().clone());
        let mut tombstones = Relation::empty(self.schema().clone());
        for row in incoming.iter_rows() {
            if sorted_contains(&self.ins, row) {
                unbuffer.push_row(row)?;
            } else if sorted_contains(&self.base, row) && !sorted_contains(&self.del, row) {
                tombstones.push_row(row)?;
            }
        }
        let changed = unbuffer.len() + tombstones.len();
        if !unbuffer.is_empty() {
            self.ins = filter_rows(&self.ins, |r| !sorted_contains(&unbuffer, r));
        }
        if !tombstones.is_empty() {
            for row in tombstones.iter_rows() {
                self.del.push_row(row)?;
            }
            self.del.sort_dedup();
        }
        self.check_invariants();
        Ok(changed)
    }

    /// The merged view `(base ∖ del) ∪ ins`, materialized (sorted).
    #[must_use]
    pub fn materialize(&self) -> Relation {
        if self.arity() == 0 {
            return if !self.is_empty() {
                Relation::nullary_true()
            } else {
                Relation::unit()
            };
        }
        let mut out = Relation::empty(self.schema().clone());
        for chunk in self.merge_plan(1) {
            let data = self.merge_chunk(chunk);
            for row in data.chunks(self.arity()) {
                out.push_row(row).expect("merged rows share the schema");
            }
        }
        out
    }

    /// Folds the buffers into a fresh base (single-threaded). Returns
    /// `false` (and does nothing) when the buffers are already empty.
    pub fn compact(&mut self) -> bool {
        if self.delta_len() == 0 {
            return false;
        }
        let merged = self.materialize();
        *self = DeltaRelation::new(merged);
        true
    }

    /// Splits the compaction merge into at most `n` independent chunks:
    /// the base is cut into contiguous row ranges, and each cut row also
    /// partitions `ins`/`del` by binary search (the buffers are sorted,
    /// so rows ordered below a cut row merge strictly left of it). Chunk
    /// outputs are sorted and range-disjoint — concatenating them in
    /// order **is** the sorted merge, so chunks can run on any pool.
    ///
    /// Always returns at least one chunk; nullary relations and empty
    /// bases return exactly one.
    #[must_use]
    pub fn merge_plan(&self, n: usize) -> Vec<MergeChunk> {
        let whole = MergeChunk {
            base: (0, self.base.len()),
            ins: (0, self.ins.len()),
            del: (0, self.del.len()),
        };
        let n = n.max(1);
        if self.arity() == 0 || n == 1 || self.base.len() < 2 {
            return vec![whole];
        }
        let per = self.base.len().div_ceil(n);
        let mut chunks = Vec::new();
        let mut prev = MergeChunk {
            base: (0, 0),
            ins: (0, 0),
            del: (0, 0),
        };
        let mut lo = 0usize;
        while lo < self.base.len() {
            let hi = (lo + per).min(self.base.len());
            let (ins_hi, del_hi) = if hi == self.base.len() {
                (self.ins.len(), self.del.len())
            } else {
                let cut = self.base.row(hi);
                (lower_bound(&self.ins, cut), lower_bound(&self.del, cut))
            };
            chunks.push(MergeChunk {
                base: (lo, hi),
                ins: (prev.ins.1, ins_hi),
                del: (prev.del.1, del_hi),
            });
            prev = *chunks.last().expect("just pushed");
            lo = hi;
        }
        chunks
    }

    /// Merges one [`MergeChunk`]: `(base[range] ∖ del[range]) ∪
    /// ins[range]` as sorted row-major data. Pure — safe to run
    /// concurrently for distinct chunks of one plan.
    #[must_use]
    pub fn merge_chunk(&self, chunk: MergeChunk) -> Vec<Value> {
        let k = self.arity();
        if k == 0 {
            return Vec::new();
        }
        let mut out =
            Vec::with_capacity((chunk.base.1 - chunk.base.0 + chunk.ins.1 - chunk.ins.0) * k);
        let (mut b, mut i, mut d) = (chunk.base.0, chunk.ins.0, chunk.del.0);
        while b < chunk.base.1 || i < chunk.ins.1 {
            let take_base = if b < chunk.base.1 && i < chunk.ins.1 {
                self.base.row(b) < self.ins.row(i)
            } else {
                b < chunk.base.1
            };
            if take_base {
                let row = self.base.row(b);
                if d < chunk.del.1 && self.del.row(d) == row {
                    d += 1; // tombstoned
                } else {
                    out.extend_from_slice(row);
                }
                b += 1;
            } else {
                out.extend_from_slice(self.ins.row(i));
                i += 1;
            }
        }
        out
    }

    /// Installs the concatenation of a full plan's [`Self::merge_chunk`]
    /// outputs (in plan order) as the new base and clears the buffers —
    /// the commit step of a shard-parallel compaction.
    ///
    /// # Panics
    /// Debug-asserts the concatenation is sorted (it is, for a complete
    /// plan applied in order).
    pub fn apply_merged(&mut self, parts: Vec<Vec<Value>>) {
        if self.arity() == 0 {
            self.compact();
            return;
        }
        let mut merged = Relation::empty(self.schema().clone());
        for part in parts {
            for row in part.chunks(self.arity()) {
                merged.push_row(row).expect("merged rows share the schema");
            }
        }
        debug_assert!(
            merged
                .iter_rows()
                .zip(merged.iter_rows().skip(1))
                .all(|(a, b)| a < b),
            "plan concatenation must be sorted and duplicate-free"
        );
        *self = DeltaRelation {
            base: Arc::new(merged),
            ins: Relation::empty(self.schema().clone()),
            del: Relation::empty(self.schema().clone()),
        };
    }

    /// Arity-checks, sorts, and dedups an incoming batch.
    fn check_sort(&self, rows: &[Vec<Value>]) -> Result<Relation, StorageError> {
        Relation::from_rows(self.schema().clone(), rows.to_vec())
    }

    #[cfg(debug_assertions)]
    fn check_invariants(&self) {
        for row in self.del.iter_rows() {
            debug_assert!(sorted_contains(&self.base, row), "del ⊆ base");
        }
        for row in self.ins.iter_rows() {
            debug_assert!(!sorted_contains(&self.base, row), "ins ∩ base = ∅");
        }
    }

    #[cfg(not(debug_assertions))]
    fn check_invariants(&self) {}
}

impl std::fmt::Debug for DeltaRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DeltaRelation{} [base {} −{} +{}]",
            self.schema(),
            self.base.len(),
            self.del.len(),
            self.ins.len()
        )
    }
}

/// Rows of `rel` satisfying `keep`, as a new relation.
fn filter_rows(rel: &Relation, mut keep: impl FnMut(&[Value]) -> bool) -> Relation {
    let mut out = Relation::empty(rel.schema().clone());
    for row in rel.iter_rows() {
        if keep(row) {
            out.push_row(row).expect("same schema");
        }
    }
    out
}

/// A position in a [`DeltaIndex`]: the component positions for one merged
/// prefix. A component is `None` when the prefix does not occur in it.
#[derive(Debug, Clone, Copy)]
pub struct DeltaNode<N> {
    depth: u32,
    base: Option<N>,
    ins: Option<FlatNode>,
    del: Option<FlatNode>,
}

impl<N> DeltaNode<N> {
    /// Prefix length represented by this node.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth as usize
    }
}

/// A [`SearchTree`] over the merged view of a [`DeltaRelation`]: a
/// shared frozen base index plus [`FlatIndex`]es over the insert/delete
/// buffers, merged by counted-trie arithmetic (see the module docs).
///
/// With empty buffers every operation delegates to the base after two
/// O(1) zero-count checks, so serving a never-mutated relation through a
/// `DeltaIndex` costs almost nothing over the base index itself — the
/// uniform read path the plan cache relies on.
#[derive(Debug, Clone)]
pub struct DeltaIndex<S: SearchTree = FlatIndex> {
    base: Arc<S>,
    ins: FlatIndex,
    del: FlatIndex,
    arity: usize,
}

impl<S: SearchTree> DeltaIndex<S> {
    /// Composes a merged view from an existing (shared) base index and
    /// the two buffers, all under attribute order `order`. The caller
    /// guarantees `base` was built under the same order and that the
    /// buffers satisfy the [`DeltaRelation`] invariants.
    ///
    /// # Errors
    /// [`StorageError::SchemaMismatch`] if a buffer does not match
    /// `order`.
    pub fn over(
        base: Arc<S>,
        ins: &Relation,
        del: &Relation,
        order: &[Attr],
    ) -> Result<DeltaIndex<S>, StorageError> {
        Ok(DeltaIndex {
            base,
            ins: FlatIndex::build(ins, order)?,
            del: FlatIndex::build(del, order)?,
            arity: order.len(),
        })
    }

    /// The shared base index.
    #[must_use]
    pub fn base_index(&self) -> &Arc<S> {
        &self.base
    }

    /// Effective number of full tuples below `node`:
    /// `base − del + ins`, each at full remaining depth (O(1) per
    /// component).
    fn effective_full(&self, node: &DeltaNode<S::Node>) -> usize {
        let rem = self.arity - node.depth as usize;
        let b = node.base.map_or(0, |n| self.base.distinct_count(n, rem));
        let d = node.del.map_or(0, |n| self.del.distinct_count(n, rem));
        let i = node.ins.map_or(0, |n| self.ins.distinct_count(n, rem));
        debug_assert!(d <= b, "del ⊆ base");
        b - d + i
    }

    /// Full-depth count of the ins component below `node`.
    fn ins_below(&self, node: &DeltaNode<S::Node>) -> usize {
        let rem = self.arity - node.depth as usize;
        node.ins.map_or(0, |n| self.ins.distinct_count(n, rem))
    }

    /// Full-depth count of the del component below `node`.
    fn del_below(&self, node: &DeltaNode<S::Node>) -> usize {
        let rem = self.arity - node.depth as usize;
        node.del.map_or(0, |n| self.del.distinct_count(n, rem))
    }

    /// Surviving merged children of `node`, in ascending label order: a
    /// sorted merge of the base children that outlive their deletions
    /// with the ins children.
    fn for_each_child(
        &self,
        node: &DeltaNode<S::Node>,
        mut f: impl FnMut(Value, DeltaNode<S::Node>),
    ) {
        let depth = node.depth as usize;
        if depth >= self.arity {
            return;
        }
        let base_vals: Vec<Value> = match node.base {
            Some(b) => match self.base.child_slice(b) {
                Some(s) => s.to_vec(),
                None => self.base.child_values(b),
            },
            None => Vec::new(),
        };
        let ins_vals: Vec<Value> = match node.ins {
            Some(i) => self.ins.child_slice(i).to_vec(),
            None => Vec::new(),
        };
        let (mut bi, mut ii) = (0usize, 0usize);
        loop {
            let v = match (base_vals.get(bi), ins_vals.get(ii)) {
                (None, None) => return,
                (Some(&b), None) => b,
                (None, Some(&i)) => i,
                (Some(&b), Some(&i)) => b.min(i),
            };
            let child = DeltaNode {
                depth: node.depth + 1,
                base: if base_vals.get(bi) == Some(&v) {
                    bi += 1;
                    node.base.and_then(|b| self.base.descend(b, v))
                } else {
                    None
                },
                ins: if ins_vals.get(ii) == Some(&v) {
                    ii += 1;
                    node.ins.and_then(|i| self.ins.descend(i, v))
                } else {
                    None
                },
                del: node.del.and_then(|d| self.del.descend(d, v)),
            };
            if self.effective_full(&child) > 0 {
                f(v, child);
            }
        }
    }

    /// Recursive (ST3) walk over merged children.
    fn walk_merged(
        &self,
        node: &DeltaNode<S::Node>,
        remaining: usize,
        buf: &mut Vec<Value>,
        f: &mut impl FnMut(&[Value]),
    ) {
        // Pure-component fast paths: when the other two components are
        // empty below `node`, the merged subtree IS that component's.
        if self.ins_below(node) == 0 && self.del_below(node) == 0 {
            if let Some(b) = node.base {
                self.base.for_each_extension(b, remaining, |ext| {
                    buf.extend_from_slice(ext);
                    f(buf);
                    buf.truncate(buf.len() - ext.len());
                });
            }
            return;
        }
        if node.base.map_or(0, |b| {
            self.base
                .distinct_count(b, self.arity - node.depth as usize)
        }) == self.del_below(node)
        {
            if let Some(i) = node.ins {
                self.ins.for_each_extension(i, remaining, |ext| {
                    buf.extend_from_slice(ext);
                    f(buf);
                    buf.truncate(buf.len() - ext.len());
                });
            }
            return;
        }
        if remaining == 1 {
            self.for_each_child(node, |v, _| {
                buf.push(v);
                f(buf);
                buf.pop();
            });
            return;
        }
        self.for_each_child(node, |v, child| {
            buf.push(v);
            self.walk_merged(&child, remaining - 1, buf, f);
            buf.pop();
        });
    }
}

impl<S: SearchTree> SearchTree for DeltaIndex<S> {
    type Node = DeltaNode<S::Node>;

    /// Batch build: a fresh base index plus empty buffers — a valid
    /// drop-in for any other backend.
    fn build(rel: &Relation, order: &[Attr]) -> Result<Self, StorageError> {
        let schema = Schema::new(order.to_vec()).map_err(|_| StorageError::SchemaMismatch)?;
        let empty = Relation::empty(schema);
        DeltaIndex::over(Arc::new(S::build(rel, order)?), &empty, &empty, order)
    }

    fn root(&self) -> Self::Node {
        DeltaNode {
            depth: 0,
            base: Some(self.base.root()),
            ins: Some(self.ins.root()),
            del: Some(self.del.root()),
        }
    }

    fn descend(&self, node: Self::Node, v: Value) -> Option<Self::Node> {
        if node.depth as usize >= self.arity {
            return None;
        }
        let child = DeltaNode {
            depth: node.depth + 1,
            base: node.base.and_then(|b| self.base.descend(b, v)),
            ins: node.ins.and_then(|i| self.ins.descend(i, v)),
            del: node.del.and_then(|d| self.del.descend(d, v)),
        };
        (self.effective_full(&child) > 0).then_some(child)
    }

    fn distinct_count(&self, node: Self::Node, extra: usize) -> usize {
        if extra == 0 {
            return 1;
        }
        let rem = self.arity - node.depth as usize;
        debug_assert!(extra <= rem, "projection beyond index arity");
        if extra == rem {
            return self.effective_full(&node);
        }
        // Partial depth: exact by merged-children recursion. The engine's
        // counts are full-depth; this path serves level-1 fanout reads
        // (shard weights) and completeness.
        if self.ins_below(&node) == 0 && self.del_below(&node) == 0 {
            return node.base.map_or(0, |b| self.base.distinct_count(b, extra));
        }
        if node.base.map_or(0, |b| self.base.distinct_count(b, rem)) == self.del_below(&node) {
            return node.ins.map_or(0, |i| self.ins.distinct_count(i, extra));
        }
        let mut total = 0usize;
        self.for_each_child(&node, |_, child| {
            total += if extra == 1 {
                1
            } else {
                self.distinct_count(child, extra - 1)
            };
        });
        total
    }

    fn for_each_extension(&self, node: Self::Node, extra: usize, mut f: impl FnMut(&[Value])) {
        if extra == 0 {
            f(&[]);
            return;
        }
        debug_assert!(node.depth as usize + extra <= self.arity);
        let mut buf = Vec::with_capacity(extra);
        self.walk_merged(&node, extra, &mut buf, &mut f);
    }

    fn child_values(&self, node: Self::Node) -> Vec<Value> {
        let mut out = Vec::new();
        self.for_each_child(&node, |v, _| out.push(v));
        out
    }

    fn child_slice(&self, node: Self::Node) -> Option<&[Value]> {
        // Borrowed views exist only when one component owns the subtree.
        if self.ins_below(&node) == 0 && self.del_below(&node) == 0 {
            return match node.base {
                Some(b) => self.base.child_slice(b),
                None => Some(&[]),
            };
        }
        let rem = self.arity - node.depth as usize;
        if node.base.map_or(0, |b| self.base.distinct_count(b, rem)) == self.del_below(&node) {
            return Some(match node.ins {
                Some(i) => self.ins.child_slice(i),
                None => &[],
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrieIndex;

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    fn vrows(rows: &[&[u32]]) -> Vec<Vec<Value>> {
        rows.iter()
            .map(|r| r.iter().map(|&v| Value::from(v)).collect())
            .collect()
    }

    fn attrs(ids: &[u32]) -> Vec<Attr> {
        ids.iter().map(|&v| Attr(v)).collect()
    }

    #[test]
    fn insert_delete_resurrect_lifecycle() {
        let mut d = DeltaRelation::new(rel(&[0, 1], &[&[1, 2], &[3, 4]]));
        assert_eq!(d.len(), 2);
        // insert: one new, one already in base
        assert_eq!(d.insert_rows(&vrows(&[&[5, 6], &[1, 2]])).unwrap(), 1);
        assert_eq!(d.len(), 3);
        assert_eq!(d.ins().len(), 1);
        assert!(d.contains_row(&[Value(5), Value(6)]));
        // delete a base row and the buffered insert
        assert_eq!(
            d.delete_rows(&vrows(&[&[1, 2], &[5, 6], &[9, 9]])).unwrap(),
            2
        );
        assert_eq!(d.len(), 1);
        assert_eq!((d.ins().len(), d.del().len()), (0, 1));
        assert!(!d.contains_row(&[Value(1), Value(2)]));
        // resurrect the deleted base row: comes back via del, not ins
        assert_eq!(d.insert_rows(&vrows(&[&[1, 2]])).unwrap(), 1);
        assert_eq!((d.ins().len(), d.del().len()), (0, 0));
        assert!(d.contains_row(&[Value(1), Value(2)]));
        // idempotent re-insert / re-delete of absent rows
        assert_eq!(d.insert_rows(&vrows(&[&[1, 2]])).unwrap(), 0);
        assert_eq!(d.delete_rows(&vrows(&[&[9, 9]])).unwrap(), 0);
        // arity mismatch rejected
        assert!(d.insert_rows(&[vec![Value(1)]]).is_err());
    }

    #[test]
    fn materialize_and_compact() {
        let mut d = DeltaRelation::new(rel(&[0, 1], &[&[1, 2], &[3, 4], &[5, 6]]));
        d.insert_rows(&vrows(&[&[0, 0], &[9, 9]])).unwrap();
        d.delete_rows(&vrows(&[&[3, 4]])).unwrap();
        let merged = d.materialize();
        assert_eq!(merged, rel(&[0, 1], &[&[0, 0], &[1, 2], &[5, 6], &[9, 9]]));
        assert_eq!(d.delta_len(), 3);
        assert!(d.compact());
        assert_eq!(d.delta_len(), 0);
        assert_eq!(**d.base(), merged);
        assert_eq!(d.len(), 4);
        assert!(!d.compact(), "nothing left to fold");
    }

    #[test]
    fn cow_clone_is_a_snapshot() {
        let mut d = DeltaRelation::new(rel(&[0], &[&[1], &[2]]));
        let snap = d.clone();
        assert!(Arc::ptr_eq(snap.base(), d.base()), "base is shared");
        d.insert_rows(&vrows(&[&[3]])).unwrap();
        d.delete_rows(&vrows(&[&[1]])).unwrap();
        assert_eq!(snap.len(), 2, "snapshot unaffected by later writes");
        assert!(snap.contains_row(&[Value(1)]));
        assert!(!snap.contains_row(&[Value(3)]));
    }

    #[test]
    fn merge_plan_chunks_equal_materialize() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let base_rows: Vec<Vec<Value>> = (0..rng.gen_range(0..60))
                .map(|_| (0..2).map(|_| Value(rng.gen_range(0..9u64))).collect())
                .collect();
            let base = Relation::from_rows(Schema::of(&[0, 1]), base_rows).unwrap();
            let mut d = DeltaRelation::new(base.clone());
            let muts: Vec<Vec<Value>> = (0..rng.gen_range(0..30))
                .map(|_| (0..2).map(|_| Value(rng.gen_range(0..9u64))).collect())
                .collect();
            d.insert_rows(&muts[..muts.len() / 2]).unwrap();
            d.delete_rows(&muts[muts.len() / 3..]).unwrap();
            let want = d.materialize();
            for n in [1usize, 2, 3, 7, 64] {
                let plan = d.merge_plan(n);
                assert!(!plan.is_empty());
                let parts: Vec<Vec<Value>> = plan.iter().map(|&c| d.merge_chunk(c)).collect();
                let mut clone = d.clone();
                clone.apply_merged(parts);
                assert_eq!(**clone.base(), want, "trial {trial}, {n} chunks");
                assert_eq!(clone.delta_len(), 0);
            }
        }
    }

    #[test]
    fn nullary_delta_relation() {
        let mut d = DeltaRelation::new(Relation::unit());
        assert_eq!(d.len(), 0);
        assert_eq!(d.insert_rows(&[vec![]]).unwrap(), 1);
        assert_eq!(d.len(), 1);
        assert!(d.contains_row(&[]));
        assert_eq!(d.insert_rows(&[vec![]]).unwrap(), 0);
        assert_eq!(d.delete_rows(&[vec![]]).unwrap(), 1);
        assert_eq!(d.len(), 0);
        assert_eq!(d.materialize().len(), 0);

        let mut t = DeltaRelation::new(Relation::nullary_true());
        assert_eq!(t.delete_rows(&[vec![]]).unwrap(), 1);
        assert_eq!(t.len(), 0);
        assert!(t.compact(), "tombstone folds into an empty base");
        assert_eq!(t.len(), 0);
        assert_eq!(t.insert_rows(&[vec![]]).unwrap(), 1);
        assert_eq!(t.materialize().len(), 1);
        assert!(t.compact());
        assert_eq!(t.len(), 1);
        // resurrect path: delete then insert cancels the tombstone in place
        t.delete_rows(&[vec![]]).unwrap();
        assert_eq!(t.insert_rows(&[vec![]]).unwrap(), 1);
        assert_eq!(t.delta_len(), 0, "resurrection leaves nothing buffered");
    }

    /// Builds the DeltaIndex for `d` under `order`, sharing `d`'s base.
    fn index_of(d: &DeltaRelation, order: &[Attr]) -> DeltaIndex<FlatIndex> {
        let base = Arc::new(FlatIndex::build(d.base(), order).unwrap());
        DeltaIndex::over(base, d.ins(), d.del(), order).unwrap()
    }

    #[test]
    fn delta_index_matches_flat_over_materialized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for trial in 0..15 {
            let base_rows: Vec<Vec<Value>> = (0..rng.gen_range(1..50))
                .map(|_| (0..3).map(|_| Value(rng.gen_range(0..5u64))).collect())
                .collect();
            let mut d =
                DeltaRelation::new(Relation::from_rows(Schema::of(&[0, 1, 2]), base_rows).unwrap());
            let muts: Vec<Vec<Value>> = (0..rng.gen_range(0..40))
                .map(|_| (0..3).map(|_| Value(rng.gen_range(0..5u64))).collect())
                .collect();
            d.insert_rows(&muts[..muts.len() / 2]).unwrap();
            d.delete_rows(&muts[muts.len() / 4..]).unwrap();

            let order = attrs(&[2, 0, 1]);
            let merged = d.materialize();
            let flat = FlatIndex::build(&merged, &order).unwrap();
            let delta = index_of(&d, &order);

            // Counts at every depth from the root.
            for extra in 1..=3usize {
                assert_eq!(
                    SearchTree::distinct_count(&delta, SearchTree::root(&delta), extra),
                    flat.distinct_count(flat.root(), extra),
                    "trial {trial}, extra {extra}"
                );
            }
            // Full enumerations at every extension length.
            for extra in 1..=3usize {
                let mut want = Vec::new();
                flat.for_each_extension(flat.root(), extra, |t| want.push(t.to_vec()));
                let mut got = Vec::new();
                SearchTree::for_each_extension(&delta, SearchTree::root(&delta), extra, |t| {
                    got.push(t.to_vec());
                });
                assert_eq!(got, want, "trial {trial}, extra {extra}");
            }
            // Descents + per-node agreement, exhaustively over the domain.
            for v0 in 0..5u64 {
                let fnode = flat.descend(flat.root(), Value(v0));
                let dnode = SearchTree::descend(&delta, SearchTree::root(&delta), Value(v0));
                assert_eq!(fnode.is_some(), dnode.is_some(), "trial {trial}, v {v0}");
                let (Some(fnode), Some(dnode)) = (fnode, dnode) else {
                    continue;
                };
                assert_eq!(
                    SearchTree::child_values(&delta, dnode),
                    flat.child_slice(fnode).to_vec(),
                    "trial {trial}, v {v0}: children"
                );
                // child_slice, when borrowed, matches child_values
                if let Some(s) = SearchTree::child_slice(&delta, dnode) {
                    assert_eq!(s.to_vec(), SearchTree::child_values(&delta, dnode));
                }
                for extra in 1..=2usize {
                    assert_eq!(
                        SearchTree::distinct_count(&delta, dnode, extra),
                        flat.distinct_count(fnode, extra),
                        "trial {trial}, v {v0}, extra {extra}"
                    );
                }
                // ghost-children check: every listed child descends
                for v1 in SearchTree::child_values(&delta, dnode) {
                    let c = SearchTree::descend(&delta, dnode, v1).expect("listed child exists");
                    assert!(SearchTree::distinct_count(&delta, c, 1) > 0);
                }
                // descend_tuple probes agree on full rows
                for v1 in 0..5u64 {
                    for v2 in 0..5u64 {
                        let probe = [Value(v1), Value(v2)];
                        assert_eq!(
                            SearchTree::descend_tuple(&delta, dnode, &probe).is_some(),
                            flat.descend_tuple(fnode, &probe).is_some(),
                            "trial {trial}, probe ({v0},{v1},{v2})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_buffers_borrow_the_base_slice() {
        let base = rel(&[0, 1], &[&[1, 10], &[1, 20], &[2, 10]]);
        let d = DeltaRelation::new(base);
        let order = attrs(&[0, 1]);
        let idx = index_of(&d, &order);
        let root = SearchTree::root(&idx);
        // No deltas: the borrowed level-0 slice is the base's.
        assert_eq!(
            SearchTree::child_slice(&idx, root).unwrap(),
            &[Value(1), Value(2)]
        );
        let n1 = SearchTree::descend(&idx, root, Value(1)).unwrap();
        assert_eq!(
            SearchTree::child_slice(&idx, n1).unwrap(),
            &[Value(10), Value(20)]
        );
    }

    #[test]
    fn fully_deleted_subtree_disappears() {
        let mut d = DeltaRelation::new(rel(&[0, 1], &[&[1, 10], &[1, 20], &[2, 30]]));
        d.delete_rows(&vrows(&[&[1, 10], &[1, 20]])).unwrap();
        let order = attrs(&[0, 1]);
        let idx = index_of(&d, &order);
        let root = SearchTree::root(&idx);
        assert_eq!(SearchTree::distinct_count(&idx, root, 1), 1);
        assert_eq!(SearchTree::child_values(&idx, root), vec![Value(2)]);
        assert!(SearchTree::descend(&idx, root, Value(1)).is_none());
        // the surviving subtree is pure-ins-free → still borrows base
        let n2 = SearchTree::descend(&idx, root, Value(2)).unwrap();
        assert_eq!(SearchTree::child_slice(&idx, n2).unwrap(), &[Value(30)]);
    }

    #[test]
    fn works_over_a_trie_base_too() {
        let mut d = DeltaRelation::new(rel(&[0, 1], &[&[1, 2], &[3, 4]]));
        d.insert_rows(&vrows(&[&[5, 6]])).unwrap();
        d.delete_rows(&vrows(&[&[1, 2]])).unwrap();
        let order = attrs(&[0, 1]);
        let base = Arc::new(TrieIndex::build(d.base(), &order).unwrap());
        let idx: DeltaIndex<TrieIndex> = DeltaIndex::over(base, d.ins(), d.del(), &order).unwrap();
        let root = SearchTree::root(&idx);
        assert_eq!(SearchTree::distinct_count(&idx, root, 2), 2);
        assert_eq!(
            SearchTree::child_values(&idx, root),
            vec![Value(3), Value(5)]
        );
        let mut rows = Vec::new();
        SearchTree::for_each_extension(&idx, root, 2, |t| rows.push(t.to_vec()));
        assert_eq!(
            rows,
            vec![vec![Value(3), Value(4)], vec![Value(5), Value(6)]]
        );
    }

    #[test]
    fn build_as_a_plain_backend() {
        // SearchTree::build gives empty buffers over a fresh base.
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let idx = <DeltaIndex as SearchTree>::build(&r, &attrs(&[1, 0])).unwrap();
        let root = SearchTree::root(&idx);
        assert_eq!(SearchTree::distinct_count(&idx, root, 2), 2);
        assert_eq!(
            SearchTree::child_values(&idx, root),
            vec![Value(2), Value(4)]
        );
    }
}
