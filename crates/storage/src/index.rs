//! The search-tree abstraction of paper §5.1 (first ingredient):
//!
//! > "We first build a 'search tree' for each relation `R_e` … We can also
//! > build a collection of hash indices which functionally can serve the
//! > same purpose."
//!
//! [`SearchTree`] captures the operations `Recursive-Join` needs
//! ((ST1)–(ST3) of §5.3.2); two implementations are provided:
//!
//! * [`TrieIndex`](crate::TrieIndex) — the sorted counted trie (comparison
//!   based, `O(log N)` per descent step, cache-friendly flat levels);
//! * [`HashTrieIndex`] — a node-arena trie with hash children (`O(1)`
//!   expected per descent step, more memory traffic).
//!
//! The NPRR engine is generic over this trait, and the
//! `ablation_index` bench compares the two.

use crate::hash::{map_with_capacity, FxHashMap};
use crate::{Attr, Relation, Schema, StorageError, Value};

/// Index interface required by the join algorithms: prefix descent,
/// O(1)-ish distinct-extension counts, and output-linear enumeration.
pub trait SearchTree: Sized {
    /// Handle to a trie position (a tuple prefix).
    type Node: Copy;

    /// Builds the index for `rel` under attribute order `order` (must be a
    /// permutation of the relation's schema).
    ///
    /// # Errors
    /// [`StorageError::SchemaMismatch`] when `order` is not a permutation.
    fn build(rel: &Relation, order: &[Attr]) -> Result<Self, StorageError>;

    /// The empty-prefix node.
    fn root(&self) -> Self::Node;

    /// (ST1, one step) child labelled `v`, if present.
    fn descend(&self, node: Self::Node, v: Value) -> Option<Self::Node>;

    /// (ST1) descend along a whole prefix.
    fn descend_tuple(&self, node: Self::Node, prefix: &[Value]) -> Option<Self::Node> {
        prefix.iter().try_fold(node, |n, &v| self.descend(n, v))
    }

    /// (ST2) number of distinct length-`extra` extensions of `node`.
    fn distinct_count(&self, node: Self::Node, extra: usize) -> usize;

    /// (ST3) visit each distinct length-`extra` extension, in a
    /// deterministic (sorted) order.
    fn for_each_extension(&self, node: Self::Node, extra: usize, f: impl FnMut(&[Value]));

    /// Branch labels of `node` (its distinct one-step extensions), sorted
    /// ascending. At the root this is the **level-0 view** the
    /// partition-parallel executor shards on: the subtree under each label
    /// is the search tree of that section (paper §5.2, step 2a), so
    /// disjoint label ranges denote fully independent sub-joins.
    fn child_values(&self, node: Self::Node) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.distinct_count(node, 1));
        self.for_each_extension(node, 1, |t| out.push(t[0]));
        out
    }

    /// Branch labels of `node` as a **borrowed** sorted slice, when the
    /// backend stores them contiguously; `None` means the caller must fall
    /// back to [`SearchTree::child_values`]. Hot-path scan sites prefer
    /// this to avoid copying a level out before intersecting it.
    fn child_slice(&self, node: Self::Node) -> Option<&[Value]> {
        let _ = node;
        None
    }
}

/// A trie with per-node hash child maps (the paper's "collection of hash
/// indices" realisation). Children are also kept as a sorted list so that
/// enumeration order is deterministic and matches [`crate::TrieIndex`].
#[derive(Debug, Clone)]
pub struct HashTrieIndex {
    order: Vec<Attr>,
    nodes: Vec<HashNode>,
    root: u32,
}

#[derive(Debug, Clone)]
struct HashNode {
    children: FxHashMap<Value, u32>,
    /// Child labels in sorted order (for deterministic enumeration).
    sorted: Vec<Value>,
    /// `counts[j]` = number of distinct length-`(j+1)` extensions.
    counts: Vec<u32>,
}

impl HashTrieIndex {
    /// The attribute order this index honours.
    #[must_use]
    pub fn order(&self) -> &[Attr] {
        &self.order
    }

    /// Number of full tuples.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.nodes[self.root as usize]
            .counts
            .last()
            .copied()
            .unwrap_or(0) as usize
    }

    /// Recursively builds nodes from a sorted, deduplicated row range.
    fn build_node(
        nodes: &mut Vec<HashNode>,
        rows: &[Vec<Value>],
        depth: usize,
        lo: usize,
        hi: usize,
    ) -> u32 {
        let arity = rows.first().map_or(depth, Vec::len);
        let levels_below = arity - depth;
        let id = nodes.len() as u32;
        nodes.push(HashNode {
            children: FxHashMap::default(),
            sorted: Vec::new(),
            counts: vec![0; levels_below],
        });
        if levels_below == 0 || lo >= hi {
            return id;
        }
        // Partition [lo, hi) into runs sharing rows[_][depth].
        let mut children = Vec::new();
        let mut run_start = lo;
        let mut i = lo + 1;
        while i <= hi {
            if i == hi || rows[i][depth] != rows[run_start][depth] {
                let v = rows[run_start][depth];
                let child = Self::build_node(nodes, rows, depth + 1, run_start, i);
                children.push((v, child));
                run_start = i;
            }
            i += 1;
        }
        // Aggregate counts.
        let mut counts = vec![0u32; levels_below];
        counts[0] = children.len() as u32;
        for (j, slot) in counts.iter_mut().enumerate().skip(1) {
            *slot = children
                .iter()
                .map(|&(_, c)| nodes[c as usize].counts[j - 1])
                .sum();
        }
        let node = &mut nodes[id as usize];
        node.counts = counts;
        node.children = map_with_capacity(children.len());
        for &(v, c) in &children {
            node.children.insert(v, c);
            node.sorted.push(v);
        }
        id
    }

    fn visit(
        &self,
        node: u32,
        remaining: usize,
        buf: &mut Vec<Value>,
        f: &mut impl FnMut(&[Value]),
    ) {
        if remaining == 0 {
            f(buf);
            return;
        }
        let n = &self.nodes[node as usize];
        for &v in &n.sorted {
            buf.push(v);
            self.visit(n.children[&v], remaining - 1, buf, f);
            buf.pop();
        }
    }
}

impl SearchTree for HashTrieIndex {
    type Node = u32;

    fn build(rel: &Relation, order: &[Attr]) -> Result<HashTrieIndex, StorageError> {
        let target = Schema::new(order.to_vec()).map_err(|_| StorageError::SchemaMismatch)?;
        if !rel.schema().same_set(&target) {
            return Err(StorageError::SchemaMismatch);
        }
        let positions = rel
            .schema()
            .positions_of(order)
            .expect("same_set implies positions exist");
        let mut rows: Vec<Vec<Value>> = rel
            .iter_rows()
            .map(|r| positions.iter().map(|&p| r[p]).collect())
            .collect();
        rows.sort_unstable();
        rows.dedup();
        let mut nodes = Vec::new();
        let n_rows = rows.len();
        let root = HashTrieIndex::build_node(&mut nodes, &rows, 0, 0, n_rows);
        Ok(HashTrieIndex {
            order: order.to_vec(),
            nodes,
            root,
        })
    }

    fn root(&self) -> u32 {
        self.root
    }

    fn descend(&self, node: u32, v: Value) -> Option<u32> {
        self.nodes[node as usize].children.get(&v).copied()
    }

    fn distinct_count(&self, node: u32, extra: usize) -> usize {
        if extra == 0 {
            return 1;
        }
        self.nodes[node as usize]
            .counts
            .get(extra - 1)
            .copied()
            .unwrap_or(0) as usize
    }

    fn for_each_extension(&self, node: u32, extra: usize, mut f: impl FnMut(&[Value])) {
        let mut buf = Vec::with_capacity(extra);
        self.visit(node, extra, &mut buf, &mut f);
    }

    fn child_values(&self, node: u32) -> Vec<Value> {
        self.nodes[node as usize].sorted.clone()
    }

    fn child_slice(&self, node: u32) -> Option<&[Value]> {
        Some(&self.nodes[node as usize].sorted)
    }
}

// Blanket impl of the trait for the sorted counted trie (its inherent
// methods already have exactly these signatures).
impl SearchTree for crate::TrieIndex {
    type Node = crate::NodeRef;

    fn build(rel: &Relation, order: &[Attr]) -> Result<Self, StorageError> {
        crate::TrieIndex::build(rel, order)
    }
    fn root(&self) -> crate::NodeRef {
        crate::TrieIndex::root(self)
    }
    fn descend(&self, node: crate::NodeRef, v: Value) -> Option<crate::NodeRef> {
        crate::TrieIndex::descend(self, node, v)
    }
    fn distinct_count(&self, node: crate::NodeRef, extra: usize) -> usize {
        crate::TrieIndex::distinct_count(self, node, extra)
    }
    fn for_each_extension(&self, node: crate::NodeRef, extra: usize, f: impl FnMut(&[Value])) {
        crate::TrieIndex::for_each_extension(self, node, extra, f);
    }
    fn child_values(&self, node: crate::NodeRef) -> Vec<Value> {
        crate::TrieIndex::child_values(self, node)
    }
    fn child_slice(&self, node: crate::NodeRef) -> Option<&[Value]> {
        Some(crate::TrieIndex::child_slice(self, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrieIndex;

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    fn attrs(ids: &[u32]) -> Vec<Attr> {
        ids.iter().map(|&v| Attr(v)).collect()
    }

    #[test]
    fn hash_trie_basics() {
        let r = rel(&[0, 1], &[&[1, 10], &[1, 20], &[2, 10]]);
        let t = HashTrieIndex::build(&r, &attrs(&[0, 1])).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.distinct_count(t.root(), 1), 2);
        assert_eq!(t.distinct_count(t.root(), 2), 3);
        let n1 = t.descend(t.root(), Value(1)).unwrap();
        assert_eq!(t.distinct_count(n1, 1), 2);
        assert!(t.descend(t.root(), Value(9)).is_none());
        assert!(t.descend_tuple(t.root(), &[Value(2), Value(10)]).is_some());
        assert!(t.descend_tuple(t.root(), &[Value(2), Value(20)]).is_none());
    }

    #[test]
    fn hash_trie_rejects_non_permutation() {
        let r = rel(&[0, 1], &[&[1, 2]]);
        assert!(HashTrieIndex::build(&r, &attrs(&[0, 2])).is_err());
        assert!(HashTrieIndex::build(&r, &attrs(&[0])).is_err());
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty(Schema::of(&[0, 1]));
        let t = HashTrieIndex::build(&r, &attrs(&[0, 1])).unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.distinct_count(t.root(), 1), 0);
        assert!(t.descend(t.root(), Value(0)).is_none());
    }

    #[test]
    fn hash_and_sorted_tries_agree_exhaustively() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for trial in 0..10 {
            let rows: Vec<Vec<Value>> = (0..60)
                .map(|_| (0..3).map(|_| Value(rng.gen_range(0..5u64))).collect())
                .collect();
            let r = Relation::from_rows(Schema::of(&[0, 1, 2]), rows).unwrap();
            let order = attrs(&[2, 0, 1]);
            let sorted = TrieIndex::build(&r, &order).unwrap();
            let hashed = HashTrieIndex::build(&r, &order).unwrap();
            // root counts at all depths
            for d in 1..=3usize {
                assert_eq!(
                    SearchTree::distinct_count(&sorted, SearchTree::root(&sorted), d),
                    hashed.distinct_count(hashed.root(), d),
                    "trial {trial}, depth {d}"
                );
            }
            // sections and enumerations agree, in the same order
            for v in 0..5u64 {
                let sn = SearchTree::descend(&sorted, SearchTree::root(&sorted), Value(v));
                let hn = hashed.descend(hashed.root(), Value(v));
                assert_eq!(sn.is_some(), hn.is_some(), "trial {trial}, v {v}");
                let (Some(sn), Some(hn)) = (sn, hn) else {
                    continue;
                };
                let mut s_rows = Vec::new();
                SearchTree::for_each_extension(&sorted, sn, 2, |t| s_rows.push(t.to_vec()));
                let mut h_rows = Vec::new();
                hashed.for_each_extension(hn, 2, |t| h_rows.push(t.to_vec()));
                assert_eq!(s_rows, h_rows, "trial {trial}, v {v}");
            }
        }
    }

    #[test]
    fn extension_zero_is_unit() {
        let r = rel(&[0], &[&[1]]);
        let t = HashTrieIndex::build(&r, &attrs(&[0])).unwrap();
        assert_eq!(t.distinct_count(t.root(), 0), 1);
        let mut count = 0;
        t.for_each_extension(t.root(), 0, |row| {
            assert!(row.is_empty());
            count += 1;
        });
        assert_eq!(count, 1);
    }
}
