//! Relational algebra over [`Relation`].
//!
//! These are the primitives the paper's algorithms and baselines are built
//! from. `natural_join` is the hash join the paper assumes computable in
//! `O(|R| + |S| + |R ⋈ S|)` (§2 footnote 3); `semijoin` is the `⋉` of §2;
//! the rest are the textbook operators. All operators return relations with
//! set semantics (sorted, deduplicated).

use crate::hash::{map_with_capacity, set_with_capacity};
use crate::{Attr, Relation, Schema, StorageError, Value};

/// `π_attrs(rel)`: projection with duplicate elimination.
///
/// # Errors
/// [`StorageError::UnknownAttr`] if an attribute is absent.
pub fn project(rel: &Relation, attrs: &[Attr]) -> Result<Relation, StorageError> {
    let positions = rel.schema().positions_of(attrs)?;
    let schema = Schema::new(attrs.to_vec())?;
    let mut out = Relation::empty(schema);
    let mut buf = Vec::with_capacity(positions.len());
    for row in rel.iter_rows() {
        buf.clear();
        buf.extend(positions.iter().map(|&p| row[p]));
        out.push_row(&buf).expect("projection arity is consistent");
    }
    out.sort_dedup();
    Ok(out)
}

/// `σ_{attr = value}(rel)`.
///
/// # Errors
/// [`StorageError::UnknownAttr`] if the attribute is absent.
pub fn select_eq(rel: &Relation, attr: Attr, value: Value) -> Result<Relation, StorageError> {
    let p = rel
        .schema()
        .position(attr)
        .ok_or(StorageError::UnknownAttr(attr))?;
    Ok(select(rel, |row| row[p] == value))
}

/// Generic selection by row predicate.
pub fn select(rel: &Relation, pred: impl Fn(&[Value]) -> bool) -> Relation {
    let mut out = Relation::empty(rel.schema().clone());
    for row in rel.iter_rows() {
        if pred(row) {
            out.push_row(row).expect("same arity");
        }
    }
    out
}

/// `ρ`: renames attributes according to `(from, to)` pairs.
///
/// # Errors
/// [`StorageError::UnknownAttr`] for a missing source attribute,
/// [`StorageError::DuplicateAttr`] if renaming collides.
pub fn rename(rel: &Relation, pairs: &[(Attr, Attr)]) -> Result<Relation, StorageError> {
    let mut attrs = rel.schema().attrs().to_vec();
    for &(from, to) in pairs {
        let p = rel
            .schema()
            .position(from)
            .ok_or(StorageError::UnknownAttr(from))?;
        attrs[p] = to;
    }
    let schema = Schema::new(attrs)?;
    let mut out = Relation::empty(schema);
    for row in rel.iter_rows() {
        out.push_row(row).expect("same arity");
    }
    out.sort_dedup();
    Ok(out)
}

/// Reorders `rel`'s columns to match `target` (same attribute set).
///
/// # Errors
/// [`StorageError::SchemaMismatch`] if the attribute sets differ.
pub fn reorder(rel: &Relation, target: &Schema) -> Result<Relation, StorageError> {
    if !rel.schema().same_set(target) {
        return Err(StorageError::SchemaMismatch);
    }
    if rel.schema() == target {
        return Ok(rel.clone());
    }
    let positions = rel
        .schema()
        .positions_of(target.attrs())
        .expect("same_set implies all present");
    let mut out = Relation::empty(target.clone());
    let mut buf = Vec::with_capacity(positions.len());
    for row in rel.iter_rows() {
        buf.clear();
        buf.extend(positions.iter().map(|&p| row[p]));
        out.push_row(&buf).expect("same arity");
    }
    out.sort_dedup();
    Ok(out)
}

/// `l ∪ r` (same attribute set; `r` is reordered to `l`'s layout).
///
/// # Errors
/// [`StorageError::SchemaMismatch`] if the attribute sets differ.
pub fn union(l: &Relation, r: &Relation) -> Result<Relation, StorageError> {
    let r = reorder(r, l.schema())?;
    let mut out = l.clone();
    for row in r.iter_rows() {
        out.push_row(row).expect("same arity");
    }
    out.sort_dedup();
    Ok(out)
}

/// `l − r` (set difference; same attribute set).
///
/// # Errors
/// [`StorageError::SchemaMismatch`] if the attribute sets differ.
pub fn difference(l: &Relation, r: &Relation) -> Result<Relation, StorageError> {
    let r = reorder(r, l.schema())?;
    let set = r.row_set();
    Ok(select(l, |row| !set.contains(row)))
}

/// `l ∩ r` (same attribute set).
///
/// # Errors
/// [`StorageError::SchemaMismatch`] if the attribute sets differ.
pub fn intersect(l: &Relation, r: &Relation) -> Result<Relation, StorageError> {
    let r = reorder(r, l.schema())?;
    let set = r.row_set();
    Ok(select(l, |row| set.contains(row)))
}

/// `l ⋉ r` — semijoin (paper §2): tuples of `l` with a partner in `r` on
/// the shared attributes. With no shared attributes this is `l` when `r`
/// is non-empty and empty otherwise.
#[must_use]
pub fn semijoin(l: &Relation, r: &Relation) -> Relation {
    let shared = l.schema().intersection(r.schema());
    if shared.is_empty() {
        return if r.is_empty() {
            Relation::empty(l.schema().clone())
        } else {
            l.clone()
        };
    }
    let lpos = l
        .schema()
        .positions_of(&shared)
        .expect("intersection attrs present in l");
    let rpos = r
        .schema()
        .positions_of(&shared)
        .expect("intersection attrs present in r");
    let mut keys = set_with_capacity(r.len());
    for row in r.iter_rows() {
        keys.insert(rpos.iter().map(|&p| row[p]).collect::<Vec<_>>());
    }
    select(l, |row| {
        let key: Vec<Value> = lpos.iter().map(|&p| row[p]).collect();
        keys.contains(&key)
    })
}

/// `l ⋈ r` — hash-based natural join.
///
/// Builds a hash table on the smaller input keyed by the shared attributes
/// and probes with the larger, giving the `O(|R| + |S| + |R ⋈ S|)` cost the
/// paper assumes. Degenerates to a cross product when no attributes are
/// shared. Output schema: `l`'s attributes followed by `r`'s new ones.
#[must_use]
pub fn natural_join(l: &Relation, r: &Relation) -> Relation {
    let shared = l.schema().intersection(r.schema());
    let out_schema = l.schema().union(r.schema());
    let mut out = Relation::empty(out_schema);
    if l.is_empty() || r.is_empty() {
        return out;
    }
    if l.arity() == 0 {
        return copy_into(r, out);
    }
    if r.arity() == 0 {
        return copy_into(l, out);
    }

    // Build on the smaller side (probe cost dominates).
    let (build, probe, build_is_l) = if l.len() <= r.len() {
        (l, r, true)
    } else {
        (r, l, false)
    };
    let bpos = build
        .schema()
        .positions_of(&shared)
        .expect("shared attrs in build");
    let ppos = probe
        .schema()
        .positions_of(&shared)
        .expect("shared attrs in probe");
    let mut table = map_with_capacity::<Vec<Value>, Vec<usize>>(build.len());
    for (i, row) in build.iter_rows().enumerate() {
        let key: Vec<Value> = bpos.iter().map(|&p| row[p]).collect();
        table.entry(key).or_default().push(i);
    }

    // Output column order is l's schema then r's new attrs; compute, for
    // each output column, where to read it from (build row or probe row).
    let out_attrs: Vec<Attr> = out.schema().attrs().to_vec();
    enum Src {
        Build(usize),
        Probe(usize),
    }
    let plan: Vec<Src> = out_attrs
        .iter()
        .map(|&a| {
            if build_is_l {
                if let Some(p) = build.schema().position(a) {
                    Src::Build(p)
                } else {
                    Src::Probe(probe.schema().position(a).expect("attr in one side"))
                }
            } else if let Some(p) = probe.schema().position(a) {
                // keep l's values coming from l (= probe here) for layout
                Src::Probe(p)
            } else {
                Src::Build(build.schema().position(a).expect("attr in one side"))
            }
        })
        .collect();

    let mut buf = vec![Value(0); out_attrs.len()];
    let mut key = Vec::with_capacity(ppos.len());
    for prow in probe.iter_rows() {
        key.clear();
        key.extend(ppos.iter().map(|&p| prow[p]));
        let Some(matches) = table.get(&key) else {
            continue;
        };
        for &bi in matches {
            let brow = build.row(bi);
            for (slot, src) in buf.iter_mut().zip(&plan) {
                *slot = match src {
                    Src::Build(p) => brow[*p],
                    Src::Probe(p) => prow[*p],
                };
            }
            out.push_row(&buf).expect("join arity consistent");
        }
    }
    out.sort_dedup();
    out
}

/// Copies `src`'s rows into `out` (identical attribute sets by
/// construction) and returns it.
fn copy_into(src: &Relation, mut out: Relation) -> Relation {
    for row in src.iter_rows() {
        out.push_row(row).expect("same attrs");
    }
    out.sort_dedup();
    out
}

/// `l × r` — cross product (requires disjoint attribute sets).
///
/// # Errors
/// [`StorageError::SchemaMismatch`] if the schemas share an attribute.
pub fn cross_product(l: &Relation, r: &Relation) -> Result<Relation, StorageError> {
    if !l.schema().intersection(r.schema()).is_empty() {
        return Err(StorageError::SchemaMismatch);
    }
    Ok(natural_join(l, r))
}

/// Removes duplicates (constructors normally maintain this invariant; use
/// after bulk mutation).
#[must_use]
pub fn distinct(rel: &Relation) -> Relation {
    rel.clone().into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    #[test]
    fn project_dedups() {
        let r = rel(&[0, 1], &[&[1, 10], &[1, 20], &[2, 10]]);
        let p = project(&r, &[Attr(0)]).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.contains_row(&[Value(1)]));
        assert!(p.contains_row(&[Value(2)]));
        assert!(project(&r, &[Attr(9)]).is_err());
    }

    #[test]
    fn project_reorders_columns() {
        let r = rel(&[0, 1], &[&[1, 10]]);
        let p = project(&r, &[Attr(1), Attr(0)]).unwrap();
        assert_eq!(p.schema(), &Schema::of(&[1, 0]));
        assert!(p.contains_row(&[Value(10), Value(1)]));
    }

    #[test]
    fn select_variants() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20]]);
        let s = select_eq(&r, Attr(0), Value(1)).unwrap();
        assert_eq!(s.len(), 1);
        assert!(select_eq(&r, Attr(7), Value(0)).is_err());
        let s2 = select(&r, |row| row[1] == Value(20));
        assert_eq!(s2.len(), 1);
        assert!(s2.contains_row(&[Value(2), Value(20)]));
    }

    #[test]
    fn rename_and_reorder() {
        let r = rel(&[0, 1], &[&[1, 10]]);
        let rn = rename(&r, &[(Attr(0), Attr(5))]).unwrap();
        assert_eq!(rn.schema(), &Schema::of(&[5, 1]));
        assert!(rename(&r, &[(Attr(9), Attr(5))]).is_err());
        assert!(rename(&r, &[(Attr(0), Attr(1))]).is_err()); // collision

        let rr = reorder(&r, &Schema::of(&[1, 0])).unwrap();
        assert!(rr.contains_row(&[Value(10), Value(1)]));
        assert!(reorder(&r, &Schema::of(&[0, 2])).is_err());
    }

    #[test]
    fn union_difference_intersect() {
        let a = rel(&[0], &[&[1], &[2]]);
        let b = rel(&[0], &[&[2], &[3]]);
        assert_eq!(union(&a, &b).unwrap().len(), 3);
        let d = difference(&a, &b).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains_row(&[Value(1)]));
        let i = intersect(&a, &b).unwrap();
        assert_eq!(i.len(), 1);
        assert!(i.contains_row(&[Value(2)]));
        let c = rel(&[1], &[&[1]]);
        assert!(union(&a, &c).is_err());
    }

    #[test]
    fn union_handles_column_order() {
        let a = rel(&[0, 1], &[&[1, 2]]);
        let b_swapped = rel(&[1, 0], &[&[2, 1]]); // same tuple, swapped layout
        let u = union(&a, &b_swapped).unwrap();
        assert_eq!(u.len(), 1, "identical tuples must merge across layouts");
    }

    #[test]
    fn semijoin_basic() {
        let l = rel(&[0, 1], &[&[1, 10], &[2, 20], &[3, 30]]);
        let r = rel(&[1, 2], &[&[10, 100], &[30, 300]]);
        let s = semijoin(&l, &r);
        assert_eq!(s.len(), 2);
        assert!(s.contains_row(&[Value(1), Value(10)]));
        assert!(s.contains_row(&[Value(3), Value(30)]));
    }

    #[test]
    fn semijoin_disjoint_schemas() {
        let l = rel(&[0], &[&[1]]);
        let nonempty = rel(&[1], &[&[5]]);
        let empty = Relation::empty(Schema::of(&[1]));
        assert_eq!(semijoin(&l, &nonempty).len(), 1);
        assert_eq!(semijoin(&l, &empty).len(), 0);
    }

    #[test]
    fn natural_join_shared_key() {
        // R(A,B) ⋈ S(B,C)
        let r = rel(&[0, 1], &[&[1, 10], &[2, 10], &[3, 30]]);
        let s = rel(&[1, 2], &[&[10, 100], &[10, 200], &[40, 400]]);
        let j = natural_join(&r, &s);
        assert_eq!(j.schema(), &Schema::of(&[0, 1, 2]));
        assert_eq!(j.len(), 4); // {1,2}×{100,200}
        assert!(j.contains_row(&[Value(1), Value(10), Value(100)]));
        assert!(j.contains_row(&[Value(2), Value(10), Value(200)]));
        assert!(!j.contains_row(&[Value(3), Value(30), Value(400)]));
    }

    #[test]
    fn natural_join_is_symmetric_as_a_set() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20]]);
        let s = rel(&[1, 2], &[&[10, 5], &[20, 6], &[20, 7]]);
        let a = natural_join(&r, &s);
        let b = reorder(&natural_join(&s, &r), a.schema()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn natural_join_multiple_shared_attrs() {
        let r = rel(&[0, 1, 2], &[&[1, 2, 3], &[1, 2, 4]]);
        let s = rel(&[1, 2, 3], &[&[2, 3, 9], &[2, 4, 8]]);
        let j = natural_join(&r, &s);
        assert_eq!(j.schema(), &Schema::of(&[0, 1, 2, 3]));
        assert_eq!(j.len(), 2);
        assert!(j.contains_row(&[Value(1), Value(2), Value(3), Value(9)]));
        assert!(j.contains_row(&[Value(1), Value(2), Value(4), Value(8)]));
    }

    #[test]
    fn natural_join_no_shared_is_cross() {
        let r = rel(&[0], &[&[1], &[2]]);
        let s = rel(&[1], &[&[10], &[20], &[30]]);
        let j = natural_join(&r, &s);
        assert_eq!(j.len(), 6);
        let c = cross_product(&r, &s).unwrap();
        assert_eq!(j, c);
        assert!(cross_product(&r, &r).is_err());
    }

    #[test]
    fn natural_join_with_empty_and_unit() {
        let r = rel(&[0], &[&[1]]);
        let e = Relation::empty(Schema::of(&[0]));
        assert!(natural_join(&r, &e).is_empty());
        let t = Relation::nullary_true();
        let j = natural_join(&r, &t);
        assert_eq!(j, r);
        let j2 = natural_join(&t, &r);
        assert_eq!(j2, r);
        let f = Relation::unit();
        assert!(natural_join(&r, &f).is_empty());
    }

    #[test]
    fn join_semantics_match_bruteforce() {
        // exhaustive check on a small random-ish instance
        let r = rel(&[0, 1], &[&[0, 0], &[0, 1], &[1, 0], &[2, 2]]);
        let s = rel(&[1, 2], &[&[0, 0], &[1, 1], &[2, 0], &[0, 3]]);
        let j = natural_join(&r, &s);
        let mut expected = 0;
        for a in 0..3u32 {
            for b in 0..3u32 {
                for c in 0..4u32 {
                    if r.contains_row(&[Value(a.into()), Value(b.into())])
                        && s.contains_row(&[Value(b.into()), Value(c.into())])
                    {
                        expected += 1;
                        assert!(j.contains_row(&[
                            Value(u64::from(a)),
                            Value(u64::from(b)),
                            Value(u64::from(c))
                        ]));
                    }
                }
            }
        }
        assert_eq!(j.len(), expected);
    }

    #[test]
    fn distinct_removes_dups() {
        let mut r = Relation::empty(Schema::of(&[0]));
        r.push_row(&[Value(1)]).unwrap();
        r.push_row(&[Value(1)]).unwrap();
        assert_eq!(distinct(&r).len(), 1);
    }
}
