//! Attributes and schemas.

use crate::StorageError;
use std::fmt;

/// An attribute (column) identifier.
///
/// The storage layer treats attributes as opaque small integers; the query
/// front-end (`wcoj-query`) maps human-readable names onto them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Attr(pub u32);

impl Attr {
    /// Index form for array addressing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl From<u32> for Attr {
    fn from(v: u32) -> Self {
        Attr(v)
    }
}

/// An ordered, duplicate-free list of attributes: the column layout of a
/// relation. The *order* is storage layout, not semantics — natural-join
/// semantics only use the attribute *set*.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Schema(Vec<Attr>);

impl Schema {
    /// Builds a schema, rejecting duplicates.
    ///
    /// # Errors
    /// [`StorageError::DuplicateAttr`] if an attribute repeats.
    pub fn new(attrs: Vec<Attr>) -> Result<Schema, StorageError> {
        let mut seen = Vec::with_capacity(attrs.len());
        for &a in &attrs {
            if seen.contains(&a) {
                return Err(StorageError::DuplicateAttr(a));
            }
            seen.push(a);
        }
        Ok(Schema(attrs))
    }

    /// Builds a schema from raw ids, panicking on duplicates (tests and
    /// generators use this; data paths use [`Schema::new`]).
    #[must_use]
    pub fn of(ids: &[u32]) -> Schema {
        Schema::new(ids.iter().map(|&v| Attr(v)).collect()).expect("duplicate attr in Schema::of")
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// `true` iff the schema has no attributes (the nullary relation).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The attributes in storage order.
    #[must_use]
    pub fn attrs(&self) -> &[Attr] {
        &self.0
    }

    /// Position of `a` in storage order.
    #[must_use]
    pub fn position(&self, a: Attr) -> Option<usize> {
        self.0.iter().position(|&x| x == a)
    }

    /// `true` iff `a` is one of this schema's attributes.
    #[must_use]
    pub fn contains(&self, a: Attr) -> bool {
        self.position(a).is_some()
    }

    /// `true` iff every attribute of `other` appears here.
    #[must_use]
    pub fn contains_all(&self, other: &Schema) -> bool {
        other.attrs().iter().all(|&a| self.contains(a))
    }

    /// Attributes shared with `other`, in *this* schema's order.
    #[must_use]
    pub fn intersection(&self, other: &Schema) -> Vec<Attr> {
        self.0
            .iter()
            .copied()
            .filter(|&a| other.contains(a))
            .collect()
    }

    /// Attributes of `self` absent from `other`, in this schema's order.
    #[must_use]
    pub fn difference(&self, other: &Schema) -> Vec<Attr> {
        self.0
            .iter()
            .copied()
            .filter(|&a| !other.contains(a))
            .collect()
    }

    /// This schema followed by `other`'s attributes not already present.
    #[must_use]
    pub fn union(&self, other: &Schema) -> Schema {
        let mut attrs = self.0.clone();
        for &a in other.attrs() {
            if !attrs.contains(&a) {
                attrs.push(a);
            }
        }
        Schema(attrs)
    }

    /// Positions (into this schema) of the given attributes, in the order
    /// given.
    ///
    /// # Errors
    /// [`StorageError::UnknownAttr`] if an attribute is missing.
    pub fn positions_of(&self, attrs: &[Attr]) -> Result<Vec<usize>, StorageError> {
        attrs
            .iter()
            .map(|&a| self.position(a).ok_or(StorageError::UnknownAttr(a)))
            .collect()
    }

    /// Same attribute *set* (ignoring order)?
    #[must_use]
    pub fn same_set(&self, other: &Schema) -> bool {
        self.arity() == other.arity() && self.contains_all(other)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Attr> for Schema {
    /// Collects attributes, panicking on duplicates (infallible builder for
    /// internal call sites that have already deduplicated).
    fn from_iter<T: IntoIterator<Item = Attr>>(iter: T) -> Self {
        Schema::new(iter.into_iter().collect()).expect("duplicate attr collected into Schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_duplicates() {
        assert!(Schema::new(vec![Attr(0), Attr(1)]).is_ok());
        assert_eq!(
            Schema::new(vec![Attr(0), Attr(0)]),
            Err(StorageError::DuplicateAttr(Attr(0)))
        );
    }

    #[test]
    fn positions_and_membership() {
        let s = Schema::of(&[3, 1, 4]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position(Attr(1)), Some(1));
        assert_eq!(s.position(Attr(9)), None);
        assert!(s.contains(Attr(4)));
        assert_eq!(s.positions_of(&[Attr(4), Attr(3)]), Ok(vec![2, 0]));
        assert_eq!(
            s.positions_of(&[Attr(7)]),
            Err(StorageError::UnknownAttr(Attr(7)))
        );
    }

    #[test]
    fn set_operations() {
        let a = Schema::of(&[0, 1, 2]);
        let b = Schema::of(&[2, 3]);
        assert_eq!(a.intersection(&b), vec![Attr(2)]);
        assert_eq!(a.difference(&b), vec![Attr(0), Attr(1)]);
        assert_eq!(a.union(&b), Schema::of(&[0, 1, 2, 3]));
        assert!(a.union(&b).contains_all(&a));
        assert!(a.union(&b).contains_all(&b));
    }

    #[test]
    fn same_set_ignores_order() {
        assert!(Schema::of(&[0, 1]).same_set(&Schema::of(&[1, 0])));
        assert!(!Schema::of(&[0, 1]).same_set(&Schema::of(&[0, 2])));
        assert!(!Schema::of(&[0, 1]).same_set(&Schema::of(&[0])));
    }

    #[test]
    fn empty_schema() {
        let e = Schema::of(&[]);
        assert!(e.is_empty());
        assert_eq!(e.arity(), 0);
        assert!(Schema::of(&[0]).contains_all(&e));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Schema::of(&[0, 2])), "(A0, A2)");
        assert_eq!(format!("{}", Attr(5)), "A5");
    }
}
