//! A fast, non-cryptographic hasher for join keys.
//!
//! The standard library's SipHash is robust against HashDoS but slow for the
//! short integer keys that dominate join processing. This is the well-known
//! "Fx" multiply-rotate scheme (as used inside rustc); implemented here
//! because no hashing crate is in the allowed dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher over native words.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, w: u64) {
        self.state = (self.state.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(u64::from(v));
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Convenience constructor with a capacity hint.
#[must_use]
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Convenience constructor with a capacity hint.
#[must_use]
pub fn set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn order_sensitive() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        a.write_u64(2);
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_tail_handled() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]); // shorter than a word
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0, 0, 0, 0, 9]); // word + tail
        let _ = (a.finish(), b.finish()); // must not panic
    }

    #[test]
    fn usable_in_collections() {
        let mut m: FxHashMap<u64, &str> = map_with_capacity(4);
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<(u64, u64)> = set_with_capacity(4);
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn no_trivial_collisions_on_small_range() {
        let mut seen = std::collections::HashSet::new();
        for v in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(v);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }
}
