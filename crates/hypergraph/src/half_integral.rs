//! **Lemma 7.2**: basic feasible solutions of the fractional cover
//! polyhedron of a *graph* (every edge has ≤ 2 vertices) are half-integral
//! — `x_e ∈ {0, 1/2, 1}` — and decompose structurally:
//!
//! * edges with `x_e = 1` form a vertex-disjoint union of **stars**, and
//! * edges with `x_e = 1/2` form vertex-disjoint **odd cycles**, also
//!   disjoint from the stars.
//!
//! This module *verifies and extracts* that structure from an exact cover
//! vector (as produced by the exact simplex in `wcoj-lp`), returning a
//! [`HalfIntegralDecomposition`] that `wcoj-core::graph_join` evaluates via
//! Theorem 7.3: odd cycles via the Cycle Lemma 7.1, stars via hash joins,
//! glued with cross products.

use crate::{HgError, Hypergraph};
use wcoj_rational::Rational;

/// A star component of weight-1 edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Star {
    /// The common vertex of the star's edges. For a single-edge star with
    /// two vertices either endpoint works; we pick the smaller.
    /// Single-vertex (arity-1) edges are their own center.
    pub center: usize,
    /// Edge indices of the star.
    pub edges: Vec<usize>,
}

/// An odd cycle of weight-1/2 edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// Cycle vertices in traversal order: `edges[i]` joins `vertices[i]`
    /// and `vertices[(i+1) % len]`.
    pub vertices: Vec<usize>,
    /// Edge indices in traversal order.
    pub edges: Vec<usize>,
}

/// The Lemma 7.2 structure of a half-integral cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HalfIntegralDecomposition {
    /// Components of `x_e = 1` edges.
    pub stars: Vec<Star>,
    /// Odd cycles of `x_e = 1/2` edges.
    pub cycles: Vec<Cycle>,
    /// Edges with `x_e = 0`.
    pub zero_edges: Vec<usize>,
}

/// Verifies half-integrality and extracts the star/odd-cycle structure.
///
/// # Errors
/// * [`HgError::NotAGraph`] if some edge has more than two vertices;
/// * [`HgError::StructureViolation`] if `x` is not half-integral or the
///   positive edges do not form the Lemma 7.2 shape (which would mean `x`
///   is not a basic feasible solution).
pub fn decompose(h: &Hypergraph, x: &[Rational]) -> Result<HalfIntegralDecomposition, HgError> {
    if x.len() != h.num_edges() {
        return Err(HgError::CoverArityMismatch);
    }
    if let Some(i) = (0..h.num_edges()).find(|&i| h.edge(i).len() > 2) {
        return Err(HgError::NotAGraph { edge: i });
    }

    let mut ones = Vec::new();
    let mut halves = Vec::new();
    let mut zeros = Vec::new();
    for (i, &xe) in x.iter().enumerate() {
        if xe == Rational::ZERO {
            zeros.push(i);
        } else if xe == Rational::ONE_HALF {
            halves.push(i);
        } else if xe == Rational::ONE {
            ones.push(i);
        } else {
            return Err(HgError::StructureViolation(format!(
                "x[{i}] = {xe} is not in {{0, 1/2, 1}}"
            )));
        }
    }

    // --- weight-1/2 edges must form vertex-disjoint odd cycles ----------
    let n = h.num_vertices();
    let mut half_adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (neighbour, edge)
    for &e in &halves {
        let ev = h.edge(e);
        if ev.len() != 2 {
            return Err(HgError::StructureViolation(format!(
                "half-weight edge {e} is not binary"
            )));
        }
        half_adj[ev[0]].push((ev[1], e));
        half_adj[ev[1]].push((ev[0], e));
    }
    for (v, adj) in half_adj.iter().enumerate() {
        let d = adj.len();
        if d != 0 && d != 2 {
            return Err(HgError::StructureViolation(format!(
                "vertex {v} has degree {d} in the half-edge graph (cycles need 2)"
            )));
        }
    }
    let mut cycles = Vec::new();
    let mut visited_edge = vec![false; h.num_edges()];
    for start in 0..n {
        if half_adj[start].is_empty() || half_adj[start].iter().all(|&(_, e)| visited_edge[e]) {
            continue;
        }
        // walk the cycle
        let mut vertices = vec![start];
        let mut edges = Vec::new();
        let mut cur = start;
        loop {
            let Some(&(next, e)) = half_adj[cur].iter().find(|&&(_, e)| !visited_edge[e]) else {
                return Err(HgError::StructureViolation(
                    "half-edge walk dead-ended: not a cycle".into(),
                ));
            };
            visited_edge[e] = true;
            edges.push(e);
            if next == start {
                break;
            }
            vertices.push(next);
            cur = next;
        }
        if edges.len() % 2 == 0 {
            return Err(HgError::StructureViolation(format!(
                "half-weight cycle through vertex {start} has even length {}",
                edges.len()
            )));
        }
        cycles.push(Cycle { vertices, edges });
    }

    // --- weight-1 edges must form vertex-disjoint stars ------------------
    // Components of the 1-edge graph; each must have a vertex common to all
    // its edges.
    let mut one_adj: Vec<Vec<usize>> = vec![Vec::new(); n]; // vertex -> one-edges
    for &e in &ones {
        for &v in h.edge(e) {
            one_adj[v].push(e);
        }
    }
    // stars must avoid cycle vertices
    let mut on_cycle = vec![false; n];
    for c in &cycles {
        for &v in &c.vertices {
            on_cycle[v] = true;
        }
    }
    let mut star_of_edge = vec![usize::MAX; h.num_edges()];
    let mut stars: Vec<Star> = Vec::new();
    for &e in &ones {
        if star_of_edge[e] != usize::MAX {
            continue;
        }
        // flood the component
        let mut comp_edges = vec![e];
        star_of_edge[e] = stars.len();
        let mut queue = vec![e];
        while let Some(f) = queue.pop() {
            for &v in h.edge(f) {
                for &g in &one_adj[v] {
                    if star_of_edge[g] == usize::MAX {
                        star_of_edge[g] = stars.len();
                        comp_edges.push(g);
                        queue.push(g);
                    }
                }
            }
        }
        comp_edges.sort_unstable();
        // a center = vertex present in all component edges
        let first = h.edge(comp_edges[0]);
        let center = first
            .iter()
            .copied()
            .find(|&v| comp_edges.iter().all(|&g| h.edge_contains(g, v)))
            .ok_or_else(|| {
                HgError::StructureViolation(format!(
                    "weight-1 component {comp_edges:?} is not a star"
                ))
            })?;
        for &g in &comp_edges {
            for &v in h.edge(g) {
                if on_cycle[v] {
                    return Err(HgError::StructureViolation(format!(
                        "star edge {g} touches a cycle vertex {v}"
                    )));
                }
            }
        }
        stars.push(Star {
            center,
            edges: comp_edges,
        });
    }

    Ok(HalfIntegralDecomposition {
        stars,
        cycles,
        zero_edges: zeros,
    })
}

/// Every vertex incident only to zero-weight edges is uncovered; for a
/// valid cover this set must be empty. Convenience for tests.
#[must_use]
pub fn uncovered_by_positive(h: &Hypergraph, x: &[Rational]) -> Vec<usize> {
    (0..h.num_vertices())
        .filter(|&v| !(0..h.num_edges()).any(|e| h.edge_contains(e, v) && x[e].is_positive()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agm::optimal_cover;

    #[test]
    fn triangle_cover_is_one_odd_cycle() {
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        let sol = optimal_cover(&h, &[100, 100, 100]).unwrap();
        let d = decompose(&h, &sol.exact).unwrap();
        assert!(d.stars.is_empty());
        assert_eq!(d.cycles.len(), 1);
        assert_eq!(d.cycles[0].edges.len(), 3);
        assert!(d.zero_edges.is_empty());
    }

    #[test]
    fn skewed_triangle_is_a_star_pair() {
        // expensive T dropped: x = (1, 1, 0); edges R={0,1}, S={1,2} share
        // vertex 1 → a single star centered at 1.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        let sol = optimal_cover(&h, &[10, 10, 1_000_000]).unwrap();
        let d = decompose(&h, &sol.exact).unwrap();
        assert_eq!(d.cycles.len(), 0);
        assert_eq!(d.zero_edges, vec![2]);
        assert_eq!(d.stars.len(), 1);
        assert_eq!(d.stars[0].center, 1);
        assert_eq!(d.stars[0].edges, vec![0, 1]);
    }

    #[test]
    fn five_cycle_decomposes_as_one_cycle() {
        let h = Hypergraph::new(
            5,
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![0, 4]],
        )
        .unwrap();
        let sol = optimal_cover(&h, &[50; 5]).unwrap();
        let d = decompose(&h, &sol.exact).unwrap();
        assert_eq!(d.cycles.len(), 1);
        assert_eq!(d.cycles[0].edges.len(), 5);
        assert_eq!(d.cycles[0].vertices.len(), 5);
        // traversal order consistency: edges[i] joins vertices[i], v[i+1]
        let c = &d.cycles[0];
        for i in 0..5 {
            let a = c.vertices[i];
            let b = c.vertices[(i + 1) % 5];
            let e = h.edge(c.edges[i]);
            assert!(
                (e[0] == a && e[1] == b) || (e[0] == b && e[1] == a),
                "edge {i} does not join consecutive cycle vertices"
            );
        }
    }

    #[test]
    fn even_cycle_cover_is_integral_matching() {
        // A 4-cycle's optimal cover is x = (1, 0, 1, 0) (a perfect
        // matching), not half-integral halves — an even cycle is NOT an
        // extreme point at 1/2 (Lemma 7.2's proof).
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]).unwrap();
        let sol = optimal_cover(&h, &[70; 4]).unwrap();
        let d = decompose(&h, &sol.exact).unwrap();
        assert!(d.cycles.is_empty());
        assert_eq!(d.stars.len(), 2);
        assert_eq!(d.zero_edges.len(), 2);
    }

    #[test]
    fn arity_one_edges_are_their_own_stars() {
        // R(A), S(A,B): A coverable by the unary edge; B needs S.
        let h = Hypergraph::new(2, vec![vec![0], vec![0, 1]]).unwrap();
        let sol = optimal_cover(&h, &[5, 1000]).unwrap();
        let d = decompose(&h, &sol.exact).unwrap();
        // x = (1 on S) suffices? S covers both A and B with x_S = 1 and
        // that costs log 1000; using R for A doesn't help since B still
        // needs x_S ≥ 1. So x = (0, 1): one star = {S}.
        assert_eq!(d.stars.len(), 1);
        assert_eq!(d.stars[0].edges, vec![1]);
        assert_eq!(d.zero_edges, vec![0]);
    }

    #[test]
    fn rejects_non_half_integral() {
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        let third = Rational::new(1, 3);
        assert!(matches!(
            decompose(&h, &[third, third, third]),
            Err(HgError::StructureViolation(_))
        ));
    }

    #[test]
    fn rejects_hyperedges() {
        let h = Hypergraph::new(3, vec![vec![0, 1, 2]]).unwrap();
        assert_eq!(
            decompose(&h, &[Rational::ONE]),
            Err(HgError::NotAGraph { edge: 0 })
        );
    }

    #[test]
    fn rejects_even_half_cycle() {
        // Force halves on a 4-cycle: structurally invalid for a BFS.
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]).unwrap();
        let halves = vec![Rational::ONE_HALF; 4];
        assert!(matches!(
            decompose(&h, &halves),
            Err(HgError::StructureViolation(_))
        ));
    }

    #[test]
    fn rejects_non_star_ones() {
        // A path of three 1-edges is not a star.
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        let ones = vec![Rational::ONE; 3];
        assert!(matches!(
            decompose(&h, &ones),
            Err(HgError::StructureViolation(_))
        ));
    }

    #[test]
    fn random_graph_covers_decompose() {
        // Lemma 7.2 end-to-end: for random graphs, the exact optimal BFS
        // always decomposes.
        use crate::agm::optimal_cover;
        let cases: Vec<(usize, Vec<Vec<usize>>)> = vec![
            (
                6,
                vec![
                    vec![0, 1],
                    vec![1, 2],
                    vec![0, 2],
                    vec![3, 4],
                    vec![4, 5],
                    vec![3, 5],
                ],
            ),
            (
                7,
                vec![
                    vec![0, 1],
                    vec![1, 2],
                    vec![2, 0],
                    vec![3, 4],
                    vec![4, 5],
                    vec![5, 6],
                    vec![6, 3],
                    vec![2, 3],
                ],
            ),
            (4, vec![vec![0, 1], vec![0, 2], vec![0, 3]]),
            (
                5,
                vec![
                    vec![0, 1],
                    vec![1, 2],
                    vec![2, 3],
                    vec![3, 4],
                    vec![4, 0],
                    vec![0, 2],
                ],
            ),
        ];
        for (i, (n, edges)) in cases.into_iter().enumerate() {
            let h = Hypergraph::new(n, edges).unwrap();
            let m = h.num_edges();
            let sol = optimal_cover(&h, &vec![32; m]).unwrap();
            let d = decompose(&h, &sol.exact);
            assert!(d.is_ok(), "case {i}: {:?} → {:?}", sol.exact, d.err());
            // all positive vertices covered
            assert!(uncovered_by_positive(&h, &sol.exact).is_empty(), "case {i}");
        }
    }

    #[test]
    fn uncovered_by_positive_reports() {
        let h = Hypergraph::new(2, vec![vec![0], vec![1]]).unwrap();
        let x = vec![Rational::ONE, Rational::ZERO];
        assert_eq!(uncovered_by_positive(&h, &x), vec![1]);
    }
}
