//! The constructive tight-cover transformation of **Lemma 3.2**.
//!
//! Given a hypergraph `H = (V, E)` and a fractional cover `x`, produce
//! `H' = (V, E')`, cover `x'` such that:
//!
//! * **(a)** `x'` is *tight*: `Σ_{e∋v} x'_e = 1` for every vertex `v`;
//! * **(b)** the joins agree: new edges are projections `π_{f_t}(R_f)` of
//!   original relations, so `⋈_{e∈E} R_e = ⋈_{e∈E'} R'_e`;
//! * **(c)** the AGM bound does not get worse:
//!   `∏_{e∈E'} |R'_e|^{x'_e} ≤ ∏_{e∈E} |R_e|^{x_e}` (projections are no
//!   larger than their sources).
//!
//! The implementation follows the paper's proof step-for-step, in exact
//! rational arithmetic: while some vertex is slack, pick an edge `f`
//! containing it with `x_f > 0`, split `f` into its tight part `f_t` and
//! slack part `f_{¬t}`, move `ρ = min(x_f, min_slack)` of `f`'s weight onto
//! the new edge `f_t`. Each step either zeroes a variable or tightens a
//! vertex, so at most `|V| + |E|` steps occur.

use crate::cover::{is_tight_cover, validate_cover_exact};
use crate::{HgError, Hypergraph};
use wcoj_rational::Rational;

/// Where each edge of the tightened instance came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Edge `i` of the original hypergraph, unchanged.
    Original(usize),
    /// A new edge whose relation is the projection of original relation
    /// `source` onto the new edge's vertex set.
    Projection {
        /// Original edge index to project.
        source: usize,
    },
}

/// Output of the Lemma 3.2 transformation.
#[derive(Debug, Clone)]
pub struct TightInstance {
    /// The enlarged hypergraph `H' = (V, E ∪ {new projection edges})`.
    pub hypergraph: Hypergraph,
    /// The tight cover `x'` (indexed like `hypergraph.edges()`).
    pub cover: Vec<Rational>,
    /// Provenance per edge of `hypergraph`.
    pub provenance: Vec<Provenance>,
}

/// Runs the transformation.
///
/// # Errors
/// * cover validation errors if `x` is not a cover of `h`;
/// * [`HgError::Lp`] on rational overflow (not expected for real covers).
pub fn tighten(h: &Hypergraph, x: &[Rational]) -> Result<TightInstance, HgError> {
    validate_cover_exact(h, x)?;
    let n = h.num_vertices();

    // Working state: edges + weights + provenance, extended as we split.
    let mut edges: Vec<Vec<usize>> = h.edges().to_vec();
    let mut weights: Vec<Rational> = x.to_vec();
    let mut prov: Vec<Provenance> = (0..edges.len()).map(Provenance::Original).collect();
    // Which original relation each working edge projects from (for new
    // edges created by splitting an edge that is itself new).
    let mut source: Vec<usize> = (0..edges.len()).collect();

    let slack = |edges: &[Vec<usize>], weights: &[Rational], v: usize| -> Rational {
        let mut s = -Rational::ONE;
        for (e, w) in edges.iter().zip(weights) {
            if e.binary_search(&v).is_ok() {
                s += *w;
            }
        }
        s
    };

    let max_steps = 4 * (n + edges.len()) + 8;
    for _ in 0..max_steps {
        // A vertex whose constraint is not tight?
        let Some(v) = (0..n).find(|&v| slack(&edges, &weights, v).is_positive()) else {
            break;
        };
        // An edge with positive weight containing v (exists: the constraint
        // sum is ≥ 1 > 0).
        let f = (0..edges.len())
            .find(|&f| weights[f].is_positive() && edges[f].binary_search(&v).is_ok())
            .ok_or_else(|| {
                HgError::StructureViolation("slack vertex with no positive edge".into())
            })?;

        // Partition f into tight and non-tight vertices.
        let (ft, fnt): (Vec<usize>, Vec<usize>) = edges[f]
            .iter()
            .copied()
            .partition(|&u| slack(&edges, &weights, u).is_zero());
        debug_assert!(fnt.contains(&v));
        let min_slack = fnt
            .iter()
            .map(|&u| slack(&edges, &weights, u))
            .min()
            .expect("fnt contains v");
        let rho = weights[f].min(min_slack);
        debug_assert!(rho.is_positive());

        if !ft.is_empty() {
            // New edge f_t carries weight ρ, relation π_{f_t}(R_{source(f)}).
            edges.push(ft);
            weights.push(rho);
            prov.push(Provenance::Projection { source: source[f] });
            source.push(source[f]);
        }
        // (f_t empty ⇒ no tight vertex loses weight; just shrink x_f.)
        weights[f] -= rho;
    }

    let hypergraph = Hypergraph::new(n, edges).expect("vertices unchanged");
    if !is_tight_cover(&hypergraph, &weights) {
        return Err(HgError::StructureViolation(
            "tightening did not converge".into(),
        ));
    }
    Ok(TightInstance {
        hypergraph,
        cover: weights,
        provenance: prov,
    })
}

/// Property (c) of the lemma as a checkable statement: the tightened
/// instance's AGM bound (using projected sizes) is no worse.
///
/// `orig_sizes[i]` is `|R_{e_i}|`; `proj_size(source, edge_vertices)` must
/// return `|π_{edge}(R_source)|`.
#[must_use]
pub fn bound_not_worse(
    t: &TightInstance,
    orig_sizes: &[usize],
    orig_cover: &[Rational],
    proj_size: impl Fn(usize, &[usize]) -> usize,
) -> bool {
    let mut new_log = 0f64;
    for (i, p) in t.provenance.iter().enumerate() {
        let size = match p {
            Provenance::Original(j) => orig_sizes[*j],
            Provenance::Projection { source } => proj_size(*source, t.hypergraph.edge(i)),
        };
        new_log += t.cover[i].to_f64() * (size.max(1) as f64).log2();
    }
    let old_log: f64 = orig_sizes
        .iter()
        .zip(orig_cover)
        .map(|(&n, x)| x.to_f64() * (n.max(1) as f64).log2())
        .sum();
    new_log <= old_log + 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::lw_uniform;

    fn triangle() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap()
    }

    #[test]
    fn already_tight_is_untouched() {
        let h = triangle();
        let x = vec![Rational::ONE_HALF; 3];
        let t = tighten(&h, &x).unwrap();
        assert_eq!(t.hypergraph.num_edges(), 3);
        assert_eq!(t.cover, x);
        assert!(t
            .provenance
            .iter()
            .all(|p| matches!(p, Provenance::Original(_))));
    }

    #[test]
    fn all_ones_triangle_tightens() {
        let h = triangle();
        let x = vec![Rational::ONE; 3];
        let t = tighten(&h, &x).unwrap();
        assert!(is_tight_cover(&t.hypergraph, &t.cover));
        // join unchanged structurally: original edges all kept (weights may
        // drop to zero).
        for i in 0..3 {
            assert_eq!(t.hypergraph.edge(i), h.edge(i));
        }
        // bound not worse with the worst-case projection size (= source).
        assert!(bound_not_worse(&t, &[100, 100, 100], &x, |s, _| [
            100, 100, 100
        ][s]));
    }

    #[test]
    fn path_with_slack_middle_vertex() {
        // R(A,B), S(B,C) with x = (1, 1): B has slack 1.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]).unwrap();
        let t = tighten(&h, &[Rational::ONE, Rational::ONE]).unwrap();
        assert!(is_tight_cover(&t.hypergraph, &t.cover));
        // Expect a projection edge {0} or {2} (the tight part of an edge).
        assert!(t.hypergraph.num_edges() >= 3);
        assert!(t
            .provenance
            .iter()
            .any(|p| matches!(p, Provenance::Projection { .. })));
    }

    #[test]
    fn lw_uniform_already_tight() {
        for n in 3..6usize {
            let edges: Vec<Vec<usize>> = (0..n)
                .map(|omit| (0..n).filter(|&v| v != omit).collect())
                .collect();
            let h = Hypergraph::new(n, edges).unwrap();
            let x = lw_uniform(&h);
            let t = tighten(&h, &x).unwrap();
            assert_eq!(t.cover, x, "LW uniform cover is already tight");
        }
    }

    #[test]
    fn rejects_non_cover() {
        let h = triangle();
        assert!(tighten(&h, &[Rational::ZERO; 3]).is_err());
    }

    #[test]
    fn random_covers_tighten_correctly() {
        // Deterministic pseudo-random overweight covers on assorted shapes.
        let shapes: Vec<Hypergraph> = vec![
            triangle(),
            Hypergraph::new(4, vec![vec![0, 1, 2], vec![2, 3], vec![0, 3], vec![1, 3]]).unwrap(),
            Hypergraph::new(
                5,
                vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![0, 4]],
            )
            .unwrap(),
        ];
        for (si, h) in shapes.iter().enumerate() {
            for k in 1..6i128 {
                // overweight cover: 1 + k/7 on every edge
                let x = vec![Rational::ONE + Rational::new(k, 7); h.num_edges()];
                let t = tighten(h, &x).unwrap();
                assert!(is_tight_cover(&t.hypergraph, &t.cover), "shape {si}, k={k}");
                // every original edge kept, with weight ≤ original
                for (i, xi) in x.iter().enumerate().take(h.num_edges()) {
                    assert_eq!(t.hypergraph.edge(i), h.edge(i));
                    assert!(t.cover[i] <= *xi);
                }
                // provenance sources are valid original edges
                for p in &t.provenance {
                    match p {
                        Provenance::Original(j) => assert!(*j < h.num_edges()),
                        Provenance::Projection { source } => assert!(*source < h.num_edges()),
                    }
                }
                // projection edges are subsets of their source edge
                for (i, p) in t.provenance.iter().enumerate() {
                    if let Provenance::Projection { source } = p {
                        let e = t.hypergraph.edge(i);
                        // subset of source edge's *original* vertex set is
                        // not guaranteed after recursive splits, but it is
                        // always a subset of the source's closure here
                        // because splits only shrink vertex sets:
                        assert!(e.iter().all(|v| h.edge(*source).contains(v)));
                    }
                }
            }
        }
    }
}
