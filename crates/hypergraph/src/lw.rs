//! Loomis–Whitney and Bollobás–Thomason instance shapes (paper §3–§4).

use crate::Hypergraph;

/// Builds the LW hypergraph on `n ≥ 2` attributes: edges are all the
/// `(n−1)`-subsets of `{0,…,n−1}`, edge `i` omitting vertex `i` (so edge
/// `i` corresponds to the paper's `R_{[n]∖{i}}`).
///
/// # Panics
/// Panics if `n < 2`.
#[must_use]
pub fn lw_hypergraph(n: usize) -> Hypergraph {
    assert!(n >= 2, "LW instances need n ≥ 2");
    let edges = (0..n)
        .map(|omit| (0..n).filter(|&v| v != omit).collect())
        .collect();
    Hypergraph::new(n, edges).expect("vertices in range by construction")
}

/// Recognises LW instances: every edge is an `(n−1)`-subset and all `n`
/// such subsets appear exactly once (in any order).
#[must_use]
pub fn is_lw_instance(h: &Hypergraph) -> bool {
    let n = h.num_vertices();
    if n < 2 || h.num_edges() != n {
        return false;
    }
    let mut omitted = vec![false; n];
    for e in h.edges() {
        if e.len() != n - 1 {
            return false;
        }
        // which vertex is missing?
        let mut present = vec![false; n];
        for &v in e {
            present[v] = true;
        }
        let Some(miss) = (0..n).find(|&v| !present[v]) else {
            return false;
        };
        if omitted[miss] {
            return false; // duplicate edge
        }
        omitted[miss] = true;
    }
    omitted.iter().all(|&b| b)
}

/// For an LW instance, returns `missing[i]` = the vertex omitted by edge
/// `i`; `None` if `h` is not an LW instance.
#[must_use]
pub fn lw_omitted_vertices(h: &Hypergraph) -> Option<Vec<usize>> {
    if !is_lw_instance(h) {
        return None;
    }
    let n = h.num_vertices();
    Some(
        h.edges()
            .iter()
            .map(|e| {
                let mut present = vec![false; n];
                for &v in e {
                    present[v] = true;
                }
                (0..n).find(|&v| !present[v]).expect("LW edge omits one")
            })
            .collect(),
    )
}

/// Checks the Bollobás–Thomason regularity condition of Theorem 3.1: every
/// vertex occurs in exactly `d` edges. Returns `Some(d)` when regular.
#[must_use]
pub fn bt_regularity(h: &Hypergraph) -> Option<usize> {
    let n = h.num_vertices();
    if n == 0 || h.num_edges() == 0 {
        return None;
    }
    let mut deg = vec![0usize; n];
    for e in h.edges() {
        for &v in e {
            deg[v] += 1;
        }
    }
    let d = deg[0];
    if d > 0 && deg.iter().all(|&x| x == d) {
        Some(d)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lw_builder_shapes() {
        let h = lw_hypergraph(3);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.edge(0), &[1, 2]);
        assert_eq!(h.edge(1), &[0, 2]);
        assert_eq!(h.edge(2), &[0, 1]);
        assert!(is_lw_instance(&h));
        assert_eq!(lw_omitted_vertices(&h), Some(vec![0, 1, 2]));

        let h5 = lw_hypergraph(5);
        assert_eq!(h5.num_edges(), 5);
        assert!(h5.edges().iter().all(|e| e.len() == 4));
        assert!(is_lw_instance(&h5));
    }

    #[test]
    #[should_panic(expected = "n ≥ 2")]
    fn lw_needs_two_attrs() {
        let _ = lw_hypergraph(1);
    }

    #[test]
    fn lw_recognition_rejects_non_lw() {
        // triangle query is the n=3 LW instance — in a permuted edge order.
        let t = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        assert!(is_lw_instance(&t));
        // missing one edge
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![1, 2]]).unwrap();
        assert!(!is_lw_instance(&h));
        // wrong arity
        let h = Hypergraph::new(3, vec![vec![0, 1, 2], vec![1, 2], vec![0, 2]]).unwrap();
        assert!(!is_lw_instance(&h));
        // wrong edge count
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]).unwrap();
        assert!(!is_lw_instance(&h));
    }

    #[test]
    fn bt_regularity_detection() {
        // LW(n) is (n−1)-regular.
        assert_eq!(bt_regularity(&lw_hypergraph(4)), Some(3));
        // 4-cycle is 2-regular.
        let c4 = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]).unwrap();
        assert_eq!(bt_regularity(&c4), Some(2));
        // path is not regular.
        let p = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]).unwrap();
        assert_eq!(bt_regularity(&p), None);
        // isolated vertex → degree 0 somewhere.
        let iso = Hypergraph::new(3, vec![vec![0, 1]]).unwrap();
        assert_eq!(bt_regularity(&iso), None);
    }
}
