//! Query hypergraphs and the AGM fractional-cover machinery (paper §2–§3).
//!
//! A natural join query `⋈_{e∈E} R_e` is viewed as a hypergraph
//! `H = (V, E)`: vertices are attributes, each relation contributes the
//! hyperedge of its attributes. This crate provides:
//!
//! * [`Hypergraph`] — vertices `0..n` and hyperedges as sorted vertex sets;
//! * [`cover`] — fractional edge covers (`Σ_{e∋v} x_e ≥ 1`), both `f64`
//!   and exact-rational, with feasibility/tightness checks;
//! * [`agm`] — the cover LP `min Σ (log N_e)·x_e` and the **AGM bound**
//!   `∏ N_e^{x_e}` (paper inequality (2));
//! * [`tighten`] — the constructive transformation of **Lemma 3.2**
//!   producing a *tight* cover on an enlarged edge set without worsening
//!   the bound or changing the join;
//! * [`lw`] — builders and recognisers for Loomis–Whitney instances
//!   (`E = all (n−1)-subsets of [n]`) and Bollobás–Thomason regular
//!   families (§3);
//! * [`half_integral`] — **Lemma 7.2**: basic feasible covers of *graphs*
//!   (arity ≤ 2) are half-integral and decompose into vertex-disjoint
//!   stars and odd cycles.

pub mod agm;
pub mod cover;
pub mod half_integral;
pub mod lw;
pub mod tighten;

use std::fmt;

/// A hypergraph `(V, E)` with `V = {0, …, n−1}` and hyperedges stored as
/// sorted, duplicate-free vertex lists. Parallel (repeated) edges are
/// allowed — §7.3 needs multiset hypergraphs for full conjunctive queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<Vec<usize>>,
}

/// Errors from hypergraph construction and cover handling.
#[derive(Debug, Clone, PartialEq)]
pub enum HgError {
    /// An edge mentions a vertex `≥ n`.
    VertexOutOfRange {
        /// Offending edge index.
        edge: usize,
        /// Offending vertex.
        vertex: usize,
    },
    /// A vertex belongs to no edge, so no fractional cover exists.
    UncoveredVertex(usize),
    /// A cover vector's length differs from the edge count.
    CoverArityMismatch,
    /// The supplied vector is not a fractional edge cover.
    NotACover {
        /// First violated vertex.
        vertex: usize,
    },
    /// The LP solver failed (overflow in exact mode).
    Lp(String),
    /// An operation required arity ≤ 2 but saw a bigger edge.
    NotAGraph {
        /// Offending edge index.
        edge: usize,
    },
    /// A claimed structural property (half-integrality, star/cycle shape)
    /// does not hold.
    StructureViolation(String),
}

impl fmt::Display for HgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HgError::VertexOutOfRange { edge, vertex } => {
                write!(f, "edge {edge} mentions out-of-range vertex {vertex}")
            }
            HgError::UncoveredVertex(v) => write!(f, "vertex {v} belongs to no edge"),
            HgError::CoverArityMismatch => write!(f, "cover length differs from edge count"),
            HgError::NotACover { vertex } => {
                write!(
                    f,
                    "vector is not a fractional cover: vertex {vertex} uncovered"
                )
            }
            HgError::Lp(m) => write!(f, "cover LP failed: {m}"),
            HgError::NotAGraph { edge } => write!(f, "edge {edge} has arity > 2"),
            HgError::StructureViolation(m) => write!(f, "structure violation: {m}"),
        }
    }
}

impl std::error::Error for HgError {}

impl Hypergraph {
    /// Builds a hypergraph over vertices `0..n`; edge vertex lists are
    /// sorted and deduplicated.
    ///
    /// # Errors
    /// [`HgError::VertexOutOfRange`] if an edge mentions a vertex `≥ n`.
    pub fn new(n: usize, edges: Vec<Vec<usize>>) -> Result<Hypergraph, HgError> {
        let mut norm = Vec::with_capacity(edges.len());
        for (i, mut e) in edges.into_iter().enumerate() {
            e.sort_unstable();
            e.dedup();
            if let Some(&v) = e.iter().find(|&&v| v >= n) {
                return Err(HgError::VertexOutOfRange { edge: i, vertex: v });
            }
            norm.push(e);
        }
        Ok(Hypergraph { n, edges: norm })
    }

    /// Number of vertices (`|V|`, the paper's `n`).
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges (`|E|`, the paper's `m`).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges, each a sorted vertex list.
    #[must_use]
    pub fn edges(&self) -> &[Vec<usize>] {
        &self.edges
    }

    /// Edge `i`'s vertex list.
    #[must_use]
    pub fn edge(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }

    /// `true` iff vertex `v` belongs to edge `i`.
    #[must_use]
    pub fn edge_contains(&self, i: usize, v: usize) -> bool {
        self.edges[i].binary_search(&v).is_ok()
    }

    /// Indices of edges containing `v`.
    #[must_use]
    pub fn edges_containing(&self, v: usize) -> Vec<usize> {
        (0..self.edges.len())
            .filter(|&i| self.edge_contains(i, v))
            .collect()
    }

    /// Vertices not covered by any edge (a cover exists iff this is empty).
    #[must_use]
    pub fn uncovered_vertices(&self) -> Vec<usize> {
        let mut covered = vec![false; self.n];
        for e in &self.edges {
            for &v in e {
                covered[v] = true;
            }
        }
        covered
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(v, _)| v)
            .collect()
    }

    /// `true` iff every edge has at most two vertices (a *graph*, §7.1).
    #[must_use]
    pub fn is_graph(&self) -> bool {
        self.edges.iter().all(|e| e.len() <= 2)
    }

    /// The restriction of this hypergraph to a vertex subset `u`: every
    /// edge is intersected with `u`; empty intersections are kept (their
    /// cover variables are vacuous), preserving edge indices.
    #[must_use]
    pub fn restrict(&self, u: &[usize]) -> Hypergraph {
        let in_u: Vec<bool> = {
            let mut b = vec![false; self.n];
            for &v in u {
                b[v] = true;
            }
            b
        };
        let edges = self
            .edges
            .iter()
            .map(|e| e.iter().copied().filter(|&v| in_u[v]).collect())
            .collect();
        Hypergraph { n: self.n, edges }
    }

    /// The paper's query-size measure `|q| = |V| · |E|`.
    #[must_use]
    pub fn query_size(&self) -> usize {
        self.n * self.edges.len()
    }
}

impl fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H(n={}; ", self.n)?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "e{i}={{")?;
            for (j, v) in e.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn triangle() -> Hypergraph {
        // R(A,B), S(B,C), T(A,C) with A=0, B=1, C=2
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap()
    }

    #[test]
    fn construction_normalises() {
        let h = Hypergraph::new(3, vec![vec![1, 0, 1]]).unwrap();
        assert_eq!(h.edge(0), &[0, 1]);
        assert!(Hypergraph::new(2, vec![vec![0, 5]]).is_err());
    }

    #[test]
    fn membership_queries() {
        let h = triangle();
        assert!(h.edge_contains(0, 0));
        assert!(!h.edge_contains(1, 0));
        assert_eq!(h.edges_containing(0), vec![0, 2]);
        assert_eq!(h.edges_containing(1), vec![0, 1]);
        assert!(h.uncovered_vertices().is_empty());
        assert!(h.is_graph());
        assert_eq!(h.query_size(), 9);
    }

    #[test]
    fn uncovered_vertices_detected() {
        let h = Hypergraph::new(4, vec![vec![0, 1]]).unwrap();
        assert_eq!(h.uncovered_vertices(), vec![2, 3]);
    }

    #[test]
    fn restriction_keeps_edge_indices() {
        let h = triangle();
        let r = h.restrict(&[0, 1]);
        assert_eq!(r.num_edges(), 3);
        assert_eq!(r.edge(0), &[0, 1]);
        assert_eq!(r.edge(1), &[1]);
        assert_eq!(r.edge(2), &[0]);
    }

    #[test]
    fn non_graph_detected() {
        let h = Hypergraph::new(3, vec![vec![0, 1, 2]]).unwrap();
        assert!(!h.is_graph());
    }

    #[test]
    fn display_form() {
        let h = Hypergraph::new(2, vec![vec![0], vec![0, 1]]).unwrap();
        assert_eq!(format!("{h}"), "H(n=2; e0={0}, e1={0,1})");
    }
}
