//! The AGM fractional-cover bound and its optimising LP (paper §2).
//!
//! For a query hypergraph `H = (V, E)`, relation sizes `N_e`, and any
//! fractional edge cover `x`, inequality (2) of the paper bounds the join:
//!
//! ```text
//! |⋈_{e∈E} R_e|  ≤  ∏_{e∈E} N_e^{x_e}
//! ```
//!
//! The best bound minimises `Σ_e (log N_e)·x_e` over the cover polytope.
//! This module builds that LP, solves it in `f64` (fast path) *and* in
//! exact rationals (structural path, using `log₂ N_e` approximated to
//! denominator `2^20` — the feasible region is exact, so support sets and
//! half-integrality of the returned vertex are exact facts).

use crate::cover::{validate_cover, COVER_EPS};
use crate::{HgError, Hypergraph};
use wcoj_lp::{rationalize, solve, LinearProgram, Status};
use wcoj_rational::Rational;

/// An optimal (or caller-supplied) fractional cover with its AGM bound.
#[derive(Debug, Clone)]
pub struct CoverSolution {
    /// Cover weights per edge (`f64`).
    pub x: Vec<f64>,
    /// Exact cover weights from the rational solver (a vertex of the exact
    /// cover polytope; objective is a `log₂`-approximation).
    pub exact: Vec<Rational>,
    /// `log₂` of the AGM bound `∏ N_e^{x_e}`.
    pub log2_bound: f64,
}

impl CoverSolution {
    /// The AGM bound as an `f64` (may be `inf` for astronomically large
    /// bounds; prefer [`CoverSolution::log2_bound`] for comparisons).
    #[must_use]
    pub fn bound(&self) -> f64 {
        self.log2_bound.exp2()
    }

    /// Support of the exact vertex — `BFS(S)` in the paper's §7.2 notation.
    #[must_use]
    pub fn support(&self) -> Vec<usize> {
        self.exact
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_positive())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Builds the fractional-edge-cover LP `min Σ (log₂ N_e)·x_e` for `h`.
///
/// Sizes `N_e` are clamped to ≥ 1 (the paper assumes non-empty relations;
/// an empty relation makes the whole join empty and is handled upstream).
#[must_use]
pub fn cover_lp(h: &Hypergraph, sizes: &[usize]) -> LinearProgram<f64> {
    let weights: Vec<f64> = sizes.iter().map(|&n| (n.max(1) as f64).log2()).collect();
    let mut lp = LinearProgram::minimize(weights);
    for v in 0..h.num_vertices() {
        let coeffs: Vec<f64> = (0..h.num_edges())
            .map(|e| if h.edge_contains(e, v) { 1.0 } else { 0.0 })
            .collect();
        lp.ge(coeffs, 1.0);
    }
    lp
}

/// Solves the cover LP for `h` with sizes `N_e`, returning the optimal
/// cover and the AGM bound.
///
/// # Errors
/// * [`HgError::CoverArityMismatch`] if `sizes` has the wrong length;
/// * [`HgError::UncoveredVertex`] if some vertex is in no edge (the LP
///   would be infeasible);
/// * [`HgError::Lp`] on solver failure.
pub fn optimal_cover(h: &Hypergraph, sizes: &[usize]) -> Result<CoverSolution, HgError> {
    if sizes.len() != h.num_edges() {
        return Err(HgError::CoverArityMismatch);
    }
    if let Some(&v) = h.uncovered_vertices().first() {
        return Err(HgError::UncoveredVertex(v));
    }
    let lp = cover_lp(h, sizes);
    let sol = solve(&lp).map_err(|e| HgError::Lp(e.to_string()))?;
    if sol.status != Status::Optimal {
        return Err(HgError::Lp(format!("unexpected status {:?}", sol.status)));
    }
    // Exact pass: the *constraints* are integral, so any objective
    // precision yields a true vertex of the cover polytope; finer log₂
    // approximations only matter near ties. Rational pivoting can overflow
    // i128 when the approximation denominators are large, so retry with
    // coarser objectives before giving up.
    let mut exact_sol = None;
    let mut last_err = None;
    for max_den in [1i128 << 20, 1 << 12, 1 << 8, 1 << 4] {
        let exact_lp = rationalize(&lp, max_den);
        match solve(&exact_lp) {
            Ok(sol) if sol.status == Status::Optimal => {
                exact_sol = Some(sol);
                break;
            }
            Ok(sol) => {
                last_err = Some(HgError::Lp(format!(
                    "exact pass: unexpected status {:?}",
                    sol.status
                )));
            }
            Err(e) => last_err = Some(HgError::Lp(e.to_string())),
        }
    }
    let exact_sol = match exact_sol {
        Some(s) => s,
        None => return Err(last_err.expect("loop ran at least once")),
    };
    debug_assert!(validate_cover(h, &sol.x).is_ok());
    let log2_bound = log2_bound(sizes, &sol.x);
    Ok(CoverSolution {
        x: sol.x,
        exact: exact_sol.x,
        log2_bound,
    })
}

/// `log₂ ∏ N_e^{x_e} = Σ x_e log₂ N_e` for an arbitrary cover vector.
#[must_use]
pub fn log2_bound(sizes: &[usize], x: &[f64]) -> f64 {
    sizes
        .iter()
        .zip(x)
        .map(|(&n, &xe)| xe * (n.max(1) as f64).log2())
        .sum()
}

/// The AGM bound `∏ N_e^{x_e}` for a given cover (validates the cover).
///
/// # Errors
/// Propagates cover validation failures.
pub fn agm_bound(h: &Hypergraph, sizes: &[usize], x: &[f64]) -> Result<f64, HgError> {
    if sizes.len() != h.num_edges() {
        return Err(HgError::CoverArityMismatch);
    }
    validate_cover(h, x)?;
    Ok(log2_bound(sizes, x).exp2())
}

/// Convenience: the best AGM bound for `h` with sizes `N_e`.
///
/// # Errors
/// Same as [`optimal_cover`].
pub fn best_bound(h: &Hypergraph, sizes: &[usize]) -> Result<f64, HgError> {
    Ok(optimal_cover(h, sizes)?.bound())
}

/// Checks the AGM inequality for a concrete output size: `out ≤ ∏N^x`
/// (with a small multiplicative tolerance for `f64` rounding).
#[must_use]
pub fn within_bound(out_size: usize, log2_bound: f64) -> bool {
    if out_size == 0 {
        return true;
    }
    (out_size as f64).log2() <= log2_bound + COVER_EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap()
    }

    #[test]
    fn triangle_bound_is_n_to_three_halves() {
        let h = triangle();
        let n = 10_000usize;
        let sol = optimal_cover(&h, &[n, n, n]).unwrap();
        // optimal cover (1/2, 1/2, 1/2); bound N^{3/2} = 10^6.
        for v in &sol.x {
            assert!((v - 0.5).abs() < 1e-6);
        }
        assert_eq!(sol.exact, vec![Rational::ONE_HALF; 3]);
        assert!((sol.bound() - 1e6).abs() / 1e6 < 1e-6);
        assert_eq!(sol.support(), vec![0, 1, 2]);
    }

    #[test]
    fn skewed_sizes_drop_expensive_edge() {
        // |R|=|S|=10, |T|=10^6: cheaper to take x_R = x_S = 1, x_T = 0
        // (bound 100) than to use T at all.
        let h = triangle();
        let sol = optimal_cover(&h, &[10, 10, 1_000_000]).unwrap();
        assert!((sol.bound() - 100.0).abs() < 1e-6);
        assert_eq!(sol.support(), vec![0, 1]);
        assert_eq!(sol.exact[2], Rational::ZERO);
    }

    #[test]
    fn lw4_bound() {
        // n=4 LW, all sizes N: bound N^{4/3}.
        let h = Hypergraph::new(
            4,
            vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]],
        )
        .unwrap();
        let n = 1000usize;
        let sol = optimal_cover(&h, &[n, n, n, n]).unwrap();
        assert_eq!(sol.exact, vec![Rational::new(1, 3); 4]);
        let expect = (n as f64).powf(4.0 / 3.0);
        assert!((sol.bound() - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn size_one_relations_cost_nothing() {
        let h = triangle();
        let sol = optimal_cover(&h, &[1, 1, 1]).unwrap();
        assert!((sol.bound() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn errors_on_bad_input() {
        let h = triangle();
        assert!(matches!(
            optimal_cover(&h, &[1, 2]),
            Err(HgError::CoverArityMismatch)
        ));
        let disconnected = Hypergraph::new(3, vec![vec![0, 1]]).unwrap();
        assert!(matches!(
            optimal_cover(&disconnected, &[5]),
            Err(HgError::UncoveredVertex(2))
        ));
    }

    #[test]
    fn agm_bound_validates_cover() {
        let h = triangle();
        assert!(agm_bound(&h, &[10, 10, 10], &[0.1, 0.1, 0.1]).is_err());
        let b = agm_bound(&h, &[10, 10, 10], &[1.0, 1.0, 0.0]).unwrap();
        assert!((b - 100.0).abs() < 1e-9);
    }

    #[test]
    fn within_bound_tolerances() {
        assert!(within_bound(0, -100.0));
        assert!(within_bound(1000, 3.0f64.log2() + 10.0));
        assert!(!within_bound(1000, 5.0));
        assert!(within_bound(1024, 10.0)); // exactly 2^10
    }

    #[test]
    fn cover_lp_shape() {
        let h = triangle();
        let lp = cover_lp(&h, &[4, 4, 4]);
        assert_eq!(lp.num_vars(), 3);
        assert_eq!(lp.num_constraints(), 3);
        assert_eq!(lp.objective(), &[2.0, 2.0, 2.0]); // log2(4) = 2
    }

    #[test]
    fn path_query_integral_cover() {
        // R(A,B) ⋈ S(B,C): optimal cover is x=(1,1) … but wait, B is
        // covered twice; x=(1,1) has bound N². Can we do better? No cover
        // with x_R + x_S < 2 covers both A (only R) and C (only S) — both
        // constraints force x_R ≥ 1 and x_S ≥ 1. AGM bound N·M.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2]]).unwrap();
        let sol = optimal_cover(&h, &[100, 50]).unwrap();
        assert_eq!(sol.exact, vec![Rational::ONE, Rational::ONE]);
        assert!((sol.bound() - 5000.0).abs() < 1e-6);
    }
}

/// The dual of the cover LP: `max Σ_v y_v` subject to
/// `Σ_{v∈e} y_v ≤ log₂ N_e` and `y ≥ 0` — Gottlob–Lee–Valiant's
/// **coloring number** in the uniform-size case (the paper's related
/// work). By LP duality its optimum equals the optimal cover objective,
/// so `2^{coloring}` is again the AGM bound; we expose it both as an
/// alternative certificate and as a strong-duality cross-check.
///
/// # Errors
/// Same as [`optimal_cover`].
pub fn dual_assignment(h: &Hypergraph, sizes: &[usize]) -> Result<DualSolution, HgError> {
    if sizes.len() != h.num_edges() {
        return Err(HgError::CoverArityMismatch);
    }
    if let Some(&v) = h.uncovered_vertices().first() {
        return Err(HgError::UncoveredVertex(v));
    }
    // maximise Σ y_v  ⇔  minimise Σ (−1)·y_v
    let n = h.num_vertices();
    let mut lp = wcoj_lp::LinearProgram::minimize(vec![-1.0; n]);
    debug_assert_eq!(sizes.len(), h.num_edges());
    for (e, &size) in sizes.iter().enumerate() {
        let coeffs: Vec<f64> = (0..n)
            .map(|v| if h.edge_contains(e, v) { 1.0 } else { 0.0 })
            .collect();
        lp.le(coeffs, (size.max(1) as f64).log2());
    }
    let sol = solve(&lp).map_err(|e| HgError::Lp(e.to_string()))?;
    if sol.status != Status::Optimal {
        return Err(HgError::Lp(format!(
            "dual: unexpected status {:?}",
            sol.status
        )));
    }
    Ok(DualSolution {
        y: sol.x,
        coloring_number_log2: -sol.objective,
    })
}

/// Optimal dual (vertex) weights for the cover LP.
#[derive(Debug, Clone)]
pub struct DualSolution {
    /// Per-vertex dual weight `y_v ≥ 0`.
    pub y: Vec<f64>,
    /// `Σ y_v` = the GLV coloring number (in `log₂` scale) = `log₂` of the
    /// AGM bound, by strong duality.
    pub coloring_number_log2: f64,
}

#[cfg(test)]
mod dual_tests {
    use super::*;

    fn triangle() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap()
    }

    #[test]
    fn strong_duality_on_triangle() {
        let h = triangle();
        let sizes = [64usize, 64, 64];
        let primal = optimal_cover(&h, &sizes).unwrap();
        let dual = dual_assignment(&h, &sizes).unwrap();
        assert!(
            (primal.log2_bound - dual.coloring_number_log2).abs() < 1e-6,
            "strong duality: {} vs {}",
            primal.log2_bound,
            dual.coloring_number_log2
        );
        // uniform triangle: y = (log N)/2 per vertex
        for y in &dual.y {
            assert!((y - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn strong_duality_random_shapes() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for trial in 0..20 {
            let n = rng.gen_range(2..6usize);
            let m = rng.gen_range(2..6usize);
            let mut edges: Vec<Vec<usize>> = (0..m)
                .map(|_| (0..n).filter(|_| rng.gen_bool(0.5)).collect())
                .collect();
            for v in 0..n {
                if !edges.iter().any(|e| e.contains(&v)) {
                    let k = rng.gen_range(0..m);
                    edges[k].push(v);
                }
            }
            let h = Hypergraph::new(n, edges).unwrap();
            let sizes: Vec<usize> = (0..m).map(|_| rng.gen_range(1..1000)).collect();
            let primal = optimal_cover(&h, &sizes).unwrap();
            let dual = dual_assignment(&h, &sizes).unwrap();
            assert!(
                (primal.log2_bound - dual.coloring_number_log2).abs() < 1e-6,
                "trial {trial}: strong duality violated"
            );
            // dual feasibility
            for (e, &size) in sizes.iter().enumerate().take(m) {
                let lhs: f64 = h.edge(e).iter().map(|&v| dual.y[v]).sum();
                assert!(lhs <= (size.max(1) as f64).log2() + 1e-6, "trial {trial}");
            }
        }
    }

    #[test]
    fn dual_errors_mirror_primal() {
        let h = triangle();
        assert!(matches!(
            dual_assignment(&h, &[1, 2]),
            Err(HgError::CoverArityMismatch)
        ));
        let disc = Hypergraph::new(3, vec![vec![0, 1]]).unwrap();
        assert!(matches!(
            dual_assignment(&disc, &[5]),
            Err(HgError::UncoveredVertex(2))
        ));
    }
}
