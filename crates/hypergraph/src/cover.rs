//! Fractional edge covers (paper §2).
//!
//! A point `x = (x_e)` in the fractional edge-cover polytope satisfies
//! `Σ_{e∋v} x_e ≥ 1` for every vertex `v` and `x ≥ 0`. The all-ones vector
//! is always feasible for query hypergraphs (every attribute appears in
//! some relation).

use crate::{HgError, Hypergraph};
use wcoj_rational::Rational;

/// Tolerance for `f64` cover feasibility checks.
pub const COVER_EPS: f64 = 1e-7;

/// Checks that `x` is a fractional edge cover of `h` (`f64`, tolerant).
///
/// # Errors
/// [`HgError::CoverArityMismatch`] or [`HgError::NotACover`].
pub fn validate_cover(h: &Hypergraph, x: &[f64]) -> Result<(), HgError> {
    if x.len() != h.num_edges() {
        return Err(HgError::CoverArityMismatch);
    }
    if x.iter().any(|&v| v < -COVER_EPS) {
        return Err(HgError::NotACover { vertex: usize::MAX });
    }
    for v in 0..h.num_vertices() {
        let total: f64 = (0..h.num_edges())
            .filter(|&e| h.edge_contains(e, v))
            .map(|e| x[e])
            .sum();
        if total < 1.0 - COVER_EPS {
            return Err(HgError::NotACover { vertex: v });
        }
    }
    Ok(())
}

/// Exact-rational cover check.
///
/// # Errors
/// [`HgError::CoverArityMismatch`] or [`HgError::NotACover`].
pub fn validate_cover_exact(h: &Hypergraph, x: &[Rational]) -> Result<(), HgError> {
    if x.len() != h.num_edges() {
        return Err(HgError::CoverArityMismatch);
    }
    if x.iter().any(|v| v.is_negative()) {
        return Err(HgError::NotACover { vertex: usize::MAX });
    }
    for v in 0..h.num_vertices() {
        let mut total = Rational::ZERO;
        for (e, xe) in x.iter().enumerate() {
            if h.edge_contains(e, v) {
                total = total
                    .checked_add(*xe)
                    .ok_or_else(|| HgError::Lp("overflow summing cover".into()))?;
            }
        }
        if total < Rational::ONE {
            return Err(HgError::NotACover { vertex: v });
        }
    }
    Ok(())
}

/// `true` iff every vertex's constraint holds with *equality* — the "tight"
/// covers produced by Lemma 3.2.
#[must_use]
pub fn is_tight_cover(h: &Hypergraph, x: &[Rational]) -> bool {
    if validate_cover_exact(h, x).is_err() {
        return false;
    }
    (0..h.num_vertices()).all(|v| {
        let mut total = Rational::ZERO;
        for (e, xe) in x.iter().enumerate() {
            if h.edge_contains(e, v) {
                total += *xe;
            }
        }
        total == Rational::ONE
    })
}

/// The always-feasible all-ones cover (`x_e = 1`), paper §2.
#[must_use]
pub fn all_ones(h: &Hypergraph) -> Vec<f64> {
    vec![1.0; h.num_edges()]
}

/// The uniform LW cover `x_e = 1/(n−1)` for a Loomis–Whitney instance.
#[must_use]
pub fn lw_uniform(h: &Hypergraph) -> Vec<Rational> {
    let n = h.num_vertices() as i128;
    vec![Rational::new(1, n - 1); h.num_edges()]
}

/// Converts an exact cover to `f64`.
#[must_use]
pub fn to_f64(x: &[Rational]) -> Vec<f64> {
    x.iter().map(|r| r.to_f64()).collect()
}

/// Approximates an `f64` cover by rationals (denominators ≤ `max_den`),
/// then *repairs* feasibility by rounding up any violated constraint's
/// variables is not attempted — callers should use exact LP output when
/// exactness matters. Returns `None` if any entry is non-finite.
#[must_use]
pub fn to_exact(x: &[f64], max_den: i128) -> Option<Vec<Rational>> {
    x.iter()
        .map(|&v| Rational::approximate_f64(v, max_den))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap()
    }

    #[test]
    fn all_ones_is_a_cover() {
        let h = triangle();
        assert!(validate_cover(&h, &all_ones(&h)).is_ok());
    }

    #[test]
    fn half_cover_is_tight_for_triangle() {
        let h = triangle();
        let half = vec![Rational::ONE_HALF; 3];
        assert!(validate_cover_exact(&h, &half).is_ok());
        assert!(is_tight_cover(&h, &half));
        // all-ones is a cover but not tight
        let ones = vec![Rational::ONE; 3];
        assert!(validate_cover_exact(&h, &ones).is_ok());
        assert!(!is_tight_cover(&h, &ones));
    }

    #[test]
    fn short_vectors_rejected() {
        let h = triangle();
        assert_eq!(validate_cover(&h, &[1.0]), Err(HgError::CoverArityMismatch));
    }

    #[test]
    fn insufficient_cover_rejected() {
        let h = triangle();
        assert_eq!(
            validate_cover(&h, &[0.4, 0.4, 0.4]),
            Err(HgError::NotACover { vertex: 0 })
        );
        let third = Rational::new(1, 3);
        assert_eq!(
            validate_cover_exact(&h, &[third, third, third]),
            Err(HgError::NotACover { vertex: 0 })
        );
    }

    #[test]
    fn negative_entries_rejected() {
        let h = triangle();
        assert!(validate_cover(&h, &[-0.5, 2.0, 2.0]).is_err());
        assert!(validate_cover_exact(
            &h,
            &[-Rational::ONE, Rational::from_int(2), Rational::from_int(2)]
        )
        .is_err());
    }

    #[test]
    fn lw_uniform_covers_lw_instances() {
        // n = 4 LW instance
        let h = Hypergraph::new(
            4,
            vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]],
        )
        .unwrap();
        let x = lw_uniform(&h);
        assert_eq!(x[0], Rational::new(1, 3));
        assert!(validate_cover_exact(&h, &x).is_ok());
        assert!(is_tight_cover(&h, &x));
    }

    #[test]
    fn conversions() {
        let x = vec![Rational::ONE_HALF, Rational::ONE];
        let f = to_f64(&x);
        assert_eq!(f, vec![0.5, 1.0]);
        assert_eq!(to_exact(&f, 1000).unwrap(), x);
        assert!(to_exact(&[f64::NAN], 10).is_none());
    }
}
