//! Full conjunctive queries (paper §7.3).
//!
//! A *full* conjunctive query allows constants and repeated variables in
//! subgoals (and the same relation may occur several times). The paper's
//! reduction: in one scan per subgoal, produce a **reduced** relation over
//! the subgoal's *distinct variables*, keeping rows that satisfy the
//! constants and repeated-variable equalities; then the query is a plain
//! natural join of the reduced relations (over a multiset hypergraph,
//! which the rest of the stack supports since parallel edges are fine).

use crate::query::QueryError;
use wcoj_storage::{Attr, Relation, Schema, StorageError, Value};

/// A term of a subgoal: a variable (identified by id; variable `v` joins on
/// attribute `Attr(v)`) or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    /// A query variable.
    Var(u32),
    /// A constant (selection).
    Const(Value),
}

/// One subgoal: a relation and a term per column.
#[derive(Debug, Clone)]
pub struct Subgoal {
    /// The relation instance scanned by this subgoal.
    pub relation: Relation,
    /// Terms, one per column of `relation`.
    pub terms: Vec<Term>,
}

impl Subgoal {
    /// Builds a subgoal, checking arity.
    ///
    /// # Errors
    /// [`StorageError::ArityMismatch`] when `terms` and the relation
    /// disagree.
    pub fn new(relation: Relation, terms: Vec<Term>) -> Result<Subgoal, StorageError> {
        if terms.len() != relation.arity() {
            return Err(StorageError::ArityMismatch {
                expected: relation.arity(),
                got: terms.len(),
            });
        }
        Ok(Subgoal { relation, terms })
    }

    /// The paper's reduction: one scan producing a relation over this
    /// subgoal's distinct variables (first-occurrence order), keeping rows
    /// that match every constant and repeat equally on repeated variables.
    #[must_use]
    pub fn reduce(&self) -> Relation {
        // distinct variables in first-occurrence order
        let mut vars: Vec<u32> = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
        }
        let schema =
            Schema::new(vars.iter().map(|&v| Attr(v)).collect()).expect("vars deduplicated");
        let mut out = Relation::empty(schema);
        let mut buf = vec![Value(0); vars.len()];
        'rows: for row in self.relation.iter_rows() {
            let mut bound: Vec<Option<Value>> = vec![None; vars.len()];
            for (t, &val) in self.terms.iter().zip(row) {
                match t {
                    Term::Const(c) => {
                        if *c != val {
                            continue 'rows;
                        }
                    }
                    Term::Var(v) => {
                        let slot = vars.iter().position(|x| x == v).expect("var collected");
                        match bound[slot] {
                            None => bound[slot] = Some(val),
                            Some(prev) if prev == val => {}
                            Some(_) => continue 'rows,
                        }
                    }
                }
            }
            for (b, s) in buf.iter_mut().zip(&bound) {
                *b = s.expect("every var bound by its occurrences");
            }
            out.push_row(&buf).expect("arity consistent");
        }
        out.sort_dedup();
        out
    }
}

/// The §7.3 reduction of a whole query: one reduced relation per subgoal,
/// ready for any natural-join engine (the sequential [`crate::join`] or
/// `wcoj-exec`'s partition-parallel `par_join`).
///
/// # Errors
/// [`QueryError::EmptyQuery`] when no subgoals are given.
pub fn reduce_all(subgoals: &[Subgoal]) -> Result<Vec<Relation>, QueryError> {
    if subgoals.is_empty() {
        return Err(QueryError::EmptyQuery);
    }
    Ok(subgoals.iter().map(Subgoal::reduce).collect())
}

/// Evaluates a full conjunctive query: reduce every subgoal, then join.
/// The output schema has one attribute per variable (`Attr(v)`), sorted.
///
/// # Errors
/// Propagates join-evaluation errors.
pub fn evaluate(subgoals: &[Subgoal]) -> Result<Relation, QueryError> {
    // A subgoal with only constants reduces to a nullary relation: true if
    // some row matched, false otherwise. `join` handles both.
    crate::join(&reduce_all(subgoals)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    #[test]
    fn constants_select() {
        // R(x, 5): keep rows with second column 5.
        let r = rel(&[0, 1], &[&[1, 5], &[2, 6], &[3, 5]]);
        let g = Subgoal::new(r, vec![Term::Var(0), Term::Const(Value(5))]).unwrap();
        let red = g.reduce();
        assert_eq!(red.schema(), &Schema::of(&[0]));
        assert_eq!(red.len(), 2);
        assert!(red.contains_row(&[Value(1)]));
        assert!(red.contains_row(&[Value(3)]));
    }

    #[test]
    fn repeated_variables_filter() {
        // R(x, x): diagonal.
        let r = rel(&[0, 1], &[&[1, 1], &[1, 2], &[3, 3]]);
        let g = Subgoal::new(r, vec![Term::Var(0), Term::Var(0)]).unwrap();
        let red = g.reduce();
        assert_eq!(red.arity(), 1);
        assert_eq!(red.len(), 2); // {1, 3}
    }

    #[test]
    fn arity_checked() {
        let r = rel(&[0, 1], &[&[1, 1]]);
        assert!(Subgoal::new(r, vec![Term::Var(0)]).is_err());
    }

    #[test]
    fn same_relation_twice_with_different_variables() {
        // q(x,y,z) :- E(x,y), E(y,z): paths of length 2 in one edge set.
        let e = rel(&[0, 1], &[&[1, 2], &[2, 3], &[3, 1]]);
        let g1 = Subgoal::new(e.clone(), vec![Term::Var(0), Term::Var(1)]).unwrap();
        let g2 = Subgoal::new(e, vec![Term::Var(1), Term::Var(2)]).unwrap();
        let out = evaluate(&[g1, g2]).unwrap();
        assert_eq!(out.len(), 3); // 1→2→3, 2→3→1, 3→1→2
        assert!(out.contains_row(&[Value(1), Value(2), Value(3)]));
    }

    #[test]
    fn triangle_on_one_edge_relation() {
        // q(x,y,z) :- E(x,y), E(y,z), E(x,z) — triangle listing via the
        // general machinery, with all three subgoals on the same relation.
        let e = rel(&[0, 1], &[&[1, 2], &[2, 3], &[1, 3], &[3, 4]]);
        let g = |a: u32, b: u32| Subgoal::new(e.clone(), vec![Term::Var(a), Term::Var(b)]).unwrap();
        let out = evaluate(&[g(0, 1), g(1, 2), g(0, 2)]).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains_row(&[Value(1), Value(2), Value(3)]));
    }

    #[test]
    fn all_constant_subgoal_is_boolean() {
        let r = rel(&[0, 1], &[&[1, 5]]);
        let hit = Subgoal::new(
            r.clone(),
            vec![Term::Const(Value(1)), Term::Const(Value(5))],
        )
        .unwrap();
        let miss = Subgoal::new(
            r.clone(),
            vec![Term::Const(Value(9)), Term::Const(Value(9))],
        )
        .unwrap();
        let open = Subgoal::new(r, vec![Term::Var(0), Term::Var(1)]).unwrap();
        // true-subgoal leaves the query unchanged
        let with_true = evaluate(&[open.clone(), hit]).unwrap();
        assert_eq!(with_true.len(), 1);
        // false-subgoal empties it
        let with_false = evaluate(&[open, miss]).unwrap();
        assert!(with_false.is_empty());
    }

    #[test]
    fn mixed_constants_and_repeats() {
        // R(x, x, 7): both behaviours at once.
        let r = rel(
            &[0, 1, 2],
            &[&[1, 1, 7], &[2, 2, 8], &[3, 4, 7], &[5, 5, 7]],
        );
        let g = Subgoal::new(r, vec![Term::Var(0), Term::Var(0), Term::Const(Value(7))]).unwrap();
        let red = g.reduce();
        assert_eq!(red.len(), 2); // x ∈ {1, 5}
    }

    #[test]
    fn empty_query_rejected() {
        assert!(matches!(evaluate(&[]), Err(QueryError::EmptyQuery)));
    }
}
