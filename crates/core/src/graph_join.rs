//! Arity-≤2 queries (paper §7.1, Lemma 7.1 + Theorem 7.3).
//!
//! When every relation has at most two attributes, the optimal basic
//! feasible cover is half-integral (Lemma 7.2) and decomposes into
//! vertex-disjoint **stars** (`x_e = 1`) and **odd cycles** (`x_e = 1/2`).
//! Theorem 7.3 computes the join in `O(m · ∏ N_e^{x_e})`:
//!
//! * each star is joined with plain hash joins (bound = product of its
//!   edge sizes, which is exactly its AGM factor);
//! * each odd cycle is evaluated by the **Cycle Lemma 7.1**:
//!   - a triangle is a Loomis–Whitney `n = 3` instance (Algorithm 1);
//!   - an even cycle takes the cross product of its cheaper alternating
//!     edge class and filters with the other class;
//!   - a longer odd cycle is *reduced to a triangle* by bundling a run of
//!     attributes into one mega-attribute and calling Algorithm 1;
//! * the components' results are glued by cross product (they share no
//!   vertices) and every zero-weight relation filters the result per
//!   tuple.

use crate::lw::join_lw;
use crate::query::{JoinQuery, QueryError};
use crate::{JoinOutput, JoinStats};
use wcoj_hypergraph::half_integral::{decompose, Cycle};
use wcoj_storage::hash::{map_with_capacity, FxHashMap};
use wcoj_storage::ops::{natural_join, reorder};
use wcoj_storage::{Attr, Relation, Schema, Value};

/// Evaluates an arity-≤2 query via the half-integral cover structure.
///
/// # Errors
/// [`QueryError::AlgorithmMismatch`] when some edge has arity > 2;
/// otherwise propagates LP/storage errors.
pub fn join_graph(q: &JoinQuery) -> Result<JoinOutput, QueryError> {
    if !q.hypergraph().is_graph() {
        return Err(QueryError::AlgorithmMismatch(
            "join_graph requires every relation to have ≤ 2 attributes",
        ));
    }
    let sol = q.optimal_cover()?;
    let d = decompose(q.hypergraph(), &sol.exact)?;

    let mut stats = JoinStats {
        algorithm_used: "graph-join",
        cover: sol.x.clone(),
        log2_agm_bound: sol.log2_bound,
        ..JoinStats::default()
    };

    // Join each component; components are vertex-disjoint so the glue is a
    // cross product (a natural join over disjoint schemas).
    let mut acc = Relation::nullary_true();
    for star in &d.stars {
        let mut sj = Relation::nullary_true();
        for &e in &star.edges {
            sj = natural_join(&sj, &q.relations()[e]);
        }
        stats.intermediate_tuples += sj.len() as u64;
        acc = natural_join(&acc, &sj);
    }
    for cyc in &d.cycles {
        let cj = cycle_join(q, cyc, &mut stats)?;
        stats.intermediate_tuples += cj.len() as u64;
        acc = natural_join(&acc, &cj);
    }

    // Filter against the zero-weight relations (each check is O(1)).
    let mut filters = Vec::new();
    for &e in &d.zero_edges {
        let rel = &q.relations()[e];
        let pos = acc.schema().positions_of(rel.schema().attrs())?;
        filters.push((pos, rel.row_set()));
    }
    let mut out = Relation::empty(acc.schema().clone());
    let mut key = Vec::new();
    for row in acc.iter_rows() {
        let ok = filters.iter().all(|(pos, set)| {
            key.clear();
            key.extend(pos.iter().map(|&p| row[p]));
            set.contains(&key)
        });
        if ok {
            out.push_row(row).expect("same arity");
        }
    }
    out.sort_dedup();
    let relation = reorder(&out, &q.output_schema())?;
    Ok(JoinOutput { relation, stats })
}

/// Lemma 7.1: joins the relations of one cycle in
/// `O(m · √(∏_{e∈cycle} N_e))`.
fn cycle_join(q: &JoinQuery, cyc: &Cycle, stats: &mut JoinStats) -> Result<Relation, QueryError> {
    let len = cyc.edges.len();
    debug_assert_eq!(len % 2, 1, "decompose() only yields odd cycles");
    if len == 3 {
        return triangle_join(q, &cyc.edges);
    }
    odd_cycle_join(q, cyc, stats)
}

/// A 3-cycle is the `n = 3` Loomis–Whitney instance: run Algorithm 1.
fn triangle_join(q: &JoinQuery, edges: &[usize]) -> Result<Relation, QueryError> {
    let rels: Vec<Relation> = edges.iter().map(|&e| q.relations()[e].clone()).collect();
    let sub = JoinQuery::new(&rels)?;
    Ok(join_lw(&sub)?.relation)
}

/// Joins an even "cycle segment" — used both directly for even cycles (not
/// produced by `decompose`, but exposed for the §7.1 lemma's even case via
/// [`even_cycle_join`]) and inside the odd-cycle reduction: cross-product
/// one alternating class, filter with the other.
fn alternating_join(
    q: &JoinQuery,
    cross_edges: &[usize],
    filter_edges: &[usize],
) -> Result<Relation, QueryError> {
    let mut x = Relation::nullary_true();
    for &e in cross_edges {
        x = natural_join(&x, &q.relations()[e]); // disjoint attrs → cross
    }
    for &e in filter_edges {
        let rel = &q.relations()[e];
        let pos = x.schema().positions_of(rel.schema().attrs())?;
        let set = rel.row_set();
        let mut kept = Relation::empty(x.schema().clone());
        let mut key = Vec::new();
        for row in x.iter_rows() {
            key.clear();
            key.extend(pos.iter().map(|&p| row[p]));
            if set.contains(&key) {
                kept.push_row(row).expect("same arity");
            }
        }
        x = kept;
    }
    x.sort_dedup();
    Ok(x)
}

/// Lemma 7.1, even case, exposed for direct use (the decomposition never
/// produces even cycles, but arbitrary cycle *queries* may be even):
/// cross-product the cheaper alternating class, filter with the other.
///
/// `edges` must be in traversal order.
///
/// # Errors
/// Storage errors (none expected for consistent inputs).
pub fn even_cycle_join(q: &JoinQuery, edges: &[usize]) -> Result<Relation, QueryError> {
    debug_assert_eq!(edges.len() % 2, 0);
    let evens: Vec<usize> = edges.iter().copied().step_by(2).collect();
    let odds: Vec<usize> = edges.iter().copied().skip(1).step_by(2).collect();
    let log_prod = |es: &[usize]| -> f64 {
        es.iter()
            .map(|&e| (q.relations()[e].len().max(1) as f64).ln())
            .sum()
    };
    if log_prod(&evens) <= log_prod(&odds) {
        alternating_join(q, &evens, &odds)
    } else {
        alternating_join(q, &odds, &evens)
    }
}

/// Lemma 7.1, odd case with `2k' + 1 ≥ 5` edges: rotate so the alternating
/// "odd class" is cheapest, build `X` (cross product of the odd class),
/// `W` (its interior filtered by the even class), `Y = W × R_{e_last}` for
/// the cheaper of the two remaining edges, then **bundle** the interior
/// attributes and finish with a Loomis–Whitney `n = 3` join.
fn odd_cycle_join(
    q: &JoinQuery,
    cyc: &Cycle,
    stats: &mut JoinStats,
) -> Result<Relation, QueryError> {
    let l = cyc.edges.len();
    let kp = l / 2; // k' (l = 2k' + 1)

    // --- choose the rotation whose odd class is cheapest ---------------
    // Rotation r: edge sequence cyc.edges[r], cyc.edges[r+1], …
    // Odd class (paper's e1, e3, …, e_{2k'−1}) = positions 0, 2, …, 2k'−2.
    let log_n = |e: usize| (q.relations()[e].len().max(1) as f64).ln();
    let class_cost = |r: usize| -> f64 { (0..kp).map(|j| log_n(cyc.edges[(r + 2 * j) % l])).sum() };
    let best_r = (0..l)
        .min_by(|&a, &b| {
            class_cost(a)
                .partial_cmp(&class_cost(b))
                .expect("finite costs")
        })
        .expect("non-empty cycle");
    // min over rotations guarantees odd-class cost ≤ even-class cost
    // (the even class of rotation r is the odd class of rotation r+1).
    let at = |i: usize| cyc.edges[(best_r + i) % l]; // 0-based position i
    let vat = |i: usize| cyc.vertices[(best_r + i) % l]; // vertex i (1-based v_{i+1})

    // Edge classes in paper numbering (1-based): e_i = at(i-1).
    let odd_class: Vec<usize> = (0..kp).map(|j| at(2 * j)).collect(); // e1,e3,…,e_{2k'−1}
    let even_interior: Vec<usize> = (1..kp).map(|j| at(2 * j - 1)).collect(); // e2,…,e_{2k'−2}
    let e_2kp = at(2 * kp - 1); // e_{2k'}
    let e_last = at(2 * kp); // e_{2k'+1}

    // X = cross product of the odd class (spans v1..v_{2k'}).
    let mut x = Relation::nullary_true();
    for &e in &odd_class {
        x = natural_join(&x, &q.relations()[e]);
    }
    stats.intermediate_tuples += x.len() as u64;

    // S = {v2, …, v_{2k'−1}}; W = π_S(X) filtered by the even interior.
    let s_attrs: Vec<Attr> = (1..2 * kp - 1).map(|i| q.attr_of_vertex(vat(i))).collect();
    let xs = wcoj_storage::ops::project(&x, &s_attrs)?;
    let mut w = xs;
    for &e in &even_interior {
        let rel = &q.relations()[e];
        let pos = w.schema().positions_of(rel.schema().attrs())?;
        let set = rel.row_set();
        let mut kept = Relation::empty(w.schema().clone());
        let mut key = Vec::new();
        for row in w.iter_rows() {
            key.clear();
            key.extend(pos.iter().map(|&p| row[p]));
            if set.contains(&key) {
                kept.push_row(row).expect("same arity");
            }
        }
        kept.sort_dedup();
        w = kept;
    }
    stats.intermediate_tuples += w.len() as u64;

    // Pick the cheaper of e_{2k'} and e_{2k'+1} to extend W with — the
    // paper proves |W|·min(N_{2k'}, N_{2k'+1}) ≤ √(∏ N_e).
    let use_2kp = q.relations()[e_2kp].len() <= q.relations()[e_last].len();

    // The three LW(3) corner attribute sets:
    //   case use_2kp:  A = {v1},    B = S ∪ {v_{2k'}},  C = {v_{2k'+1}}
    //     X over A∪B, Y = W × R_{e_{2k'}} over B∪C, R_{e_{2k'+1}} over C∪A.
    //   else:          A = {v_{2k'}}, B = S ∪ {v1},     C = {v_{2k'+1}}
    //     X over A∪B, Y = W × R_{e_{2k'+1}} over B∪C, R_{e_{2k'}} over A∪C.
    let v1 = q.attr_of_vertex(vat(0));
    let v_2kp = q.attr_of_vertex(vat(2 * kp - 1));
    let v_last = q.attr_of_vertex(vat(2 * kp));

    let (a_attr, bundle_attrs, c_attr, y, third) = if use_2kp {
        let y = natural_join(&w, &q.relations()[e_2kp]); // disjoint → cross
        let mut b: Vec<Attr> = s_attrs.clone();
        b.push(v_2kp);
        (v1, b, v_last, y, q.relations()[e_last].clone())
    } else {
        let y = natural_join(&w, &q.relations()[e_last]);
        let mut b: Vec<Attr> = s_attrs.clone();
        b.push(v1);
        (v_2kp, b, v_last, y, q.relations()[e_2kp].clone())
    };
    stats.intermediate_tuples += y.len() as u64;

    // --- bundle B into one attribute and run LW(3) -----------------------
    let mut bundler = Bundler::new();
    let max_attr = q.attrs().iter().map(|a| a.0).max().unwrap_or(0);
    let b_attr = Attr(max_attr + 1);

    let xb = bundler.bundle(&x, &bundle_attrs, b_attr)?;
    let yb = bundler.bundle(&y, &bundle_attrs, b_attr)?;
    // third is already binary over {A, C} (no bundling needed).
    debug_assert!(third.schema().contains(a_attr) && third.schema().contains(c_attr));

    let sub = JoinQuery::new(&[xb, yb, third])?;
    let joined = join_lw(&sub)?.relation;
    stats.intermediate_tuples += joined.len() as u64;

    // --- unbundle --------------------------------------------------------
    let result = bundler.unbundle(&joined, b_attr, &bundle_attrs)?;
    // canonical layout over the cycle's vertices
    let mut attrs: Vec<Attr> = cyc.vertices.iter().map(|&v| q.attr_of_vertex(v)).collect();
    attrs.sort_unstable();
    Ok(reorder(&result, &Schema::new(attrs)?)?)
}

/// Interns sub-tuples over a fixed attribute list as fresh bundle values.
struct Bundler {
    codes: FxHashMap<Vec<Value>, Value>,
    rev: Vec<Vec<Value>>,
}

impl Bundler {
    fn new() -> Bundler {
        Bundler {
            codes: map_with_capacity(64),
            rev: Vec::new(),
        }
    }

    fn code(&mut self, key: Vec<Value>) -> Value {
        if let Some(&v) = self.codes.get(&key) {
            return v;
        }
        let v = Value(self.rev.len() as u64);
        self.rev.push(key.clone());
        self.codes.insert(key, v);
        v
    }

    /// Replaces columns `attrs` of `rel` by a single column `bundle_attr`
    /// carrying an interned code for the sub-tuple.
    fn bundle(
        &mut self,
        rel: &Relation,
        attrs: &[Attr],
        bundle_attr: Attr,
    ) -> Result<Relation, QueryError> {
        let pos = rel.schema().positions_of(attrs)?;
        let keep: Vec<usize> = rel
            .schema()
            .attrs()
            .iter()
            .enumerate()
            .filter(|(_, a)| !attrs.contains(a))
            .map(|(i, _)| i)
            .collect();
        let mut out_attrs: Vec<Attr> = keep.iter().map(|&i| rel.schema().attrs()[i]).collect();
        out_attrs.push(bundle_attr);
        let mut out = Relation::empty(Schema::new(out_attrs)?);
        let mut buf = Vec::with_capacity(keep.len() + 1);
        for row in rel.iter_rows() {
            buf.clear();
            buf.extend(keep.iter().map(|&i| row[i]));
            let key: Vec<Value> = pos.iter().map(|&p| row[p]).collect();
            buf.push(self.code(key));
            out.push_row(&buf).expect("arity consistent");
        }
        out.sort_dedup();
        Ok(out)
    }

    /// Expands `bundle_attr` back into `attrs` columns.
    fn unbundle(
        &self,
        rel: &Relation,
        bundle_attr: Attr,
        attrs: &[Attr],
    ) -> Result<Relation, QueryError> {
        let bpos = rel
            .schema()
            .position(bundle_attr)
            .ok_or(QueryError::AlgorithmMismatch("bundle attr missing"))?;
        let keep: Vec<usize> = (0..rel.arity()).filter(|&i| i != bpos).collect();
        let mut out_attrs: Vec<Attr> = keep.iter().map(|&i| rel.schema().attrs()[i]).collect();
        out_attrs.extend_from_slice(attrs);
        let mut out = Relation::empty(Schema::new(out_attrs)?);
        let mut buf = Vec::with_capacity(keep.len() + attrs.len());
        for row in rel.iter_rows() {
            buf.clear();
            buf.extend(keep.iter().map(|&i| row[i]));
            let sub = &self.rev[row[bpos].0 as usize];
            buf.extend_from_slice(sub);
            out.push_row(&buf).expect("arity consistent");
        }
        out.sort_dedup();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive, Algorithm};
    use rand::{Rng, SeedableRng};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    fn check_matches_naive(rels: &[Relation]) {
        let q = JoinQuery::new(rels).unwrap();
        let out = q.evaluate(Algorithm::GraphJoin, None).unwrap();
        let expect = naive::join(rels);
        let expect = reorder(&expect, out.relation.schema()).unwrap();
        assert_eq!(out.relation, expect);
    }

    fn random_binary(rng: &mut rand::rngs::StdRng, a: u32, b: u32, n: usize, dom: u64) -> Relation {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| vec![Value(rng.gen_range(0..dom)), Value(rng.gen_range(0..dom))])
            .collect();
        Relation::from_rows(Schema::of(&[a, b]), rows).unwrap()
    }

    #[test]
    fn star_query() {
        // R(0,1), S(0,2), T(0,3): a star centered at 0.
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20]]);
        let s = rel(&[0, 2], &[&[1, 11], &[2, 21], &[1, 12]]);
        let t = rel(&[0, 3], &[&[1, 13], &[3, 33]]);
        check_matches_naive(&[r, s, t]);
    }

    #[test]
    fn triangle_as_graph_join() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = random_binary(&mut rng, 0, 1, 40, 8);
        let s = random_binary(&mut rng, 1, 2, 40, 8);
        let t = random_binary(&mut rng, 0, 2, 40, 8);
        check_matches_naive(&[r, s, t]);
    }

    #[test]
    fn five_cycle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let rels: Vec<Relation> = (0..5)
            .map(|i| random_binary(&mut rng, i, (i + 1) % 5, 30, 5))
            .collect();
        check_matches_naive(&rels);
    }

    #[test]
    fn seven_cycle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let rels: Vec<Relation> = (0..7)
            .map(|i| random_binary(&mut rng, i, (i + 1) % 7, 25, 4))
            .collect();
        check_matches_naive(&rels);
    }

    #[test]
    fn four_cycle_via_matching_cover() {
        // decompose() yields two stars (a matching) for an even cycle.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let rels: Vec<Relation> = (0..4)
            .map(|i| random_binary(&mut rng, i, (i + 1) % 4, 30, 6))
            .collect();
        check_matches_naive(&rels);
    }

    #[test]
    fn even_cycle_join_direct() {
        // Exercise the explicit even-cycle path of Lemma 7.1.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let rels: Vec<Relation> = (0..6)
            .map(|i| random_binary(&mut rng, i, (i + 1) % 6, 20, 4))
            .collect();
        let q = JoinQuery::new(&rels).unwrap();
        let edges: Vec<usize> = (0..6).collect();
        let j = even_cycle_join(&q, &edges).unwrap();
        let expect = naive::join(&rels);
        let expect = reorder(&expect, j.schema()).unwrap();
        assert_eq!(j, expect);
    }

    #[test]
    fn mixed_star_cycle_and_zero_edges() {
        // triangle on {0,1,2} + pendant edges (3,4) & chords that end up
        // zero-weighted.
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let rels = vec![
            random_binary(&mut rng, 0, 1, 30, 5),
            random_binary(&mut rng, 1, 2, 30, 5),
            random_binary(&mut rng, 0, 2, 30, 5),
            random_binary(&mut rng, 3, 4, 10, 5),
            random_binary(&mut rng, 4, 5, 10, 5),
        ];
        check_matches_naive(&rels);
    }

    #[test]
    fn unary_relations() {
        let u = rel(&[0], &[&[1], &[2], &[3]]);
        let r = rel(&[0, 1], &[&[1, 5], &[4, 6], &[3, 7]]);
        check_matches_naive(&[u, r]);
    }

    #[test]
    fn rejects_hyperedges() {
        let r = Relation::from_u32_rows(Schema::of(&[0, 1, 2]), &[&[1, 2, 3]]);
        let q = JoinQuery::new(&[r]).unwrap();
        assert!(matches!(
            q.evaluate(Algorithm::GraphJoin, None),
            Err(QueryError::AlgorithmMismatch(_))
        ));
    }

    #[test]
    fn random_graph_queries_match_naive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..15 {
            let n_attr = rng.gen_range(3..7u32);
            let n_edges = rng.gen_range(2..7usize);
            let mut rels = Vec::new();
            let mut covered: Vec<u32> = Vec::new();
            for _ in 0..n_edges {
                let a = rng.gen_range(0..n_attr);
                let mut b = rng.gen_range(0..n_attr);
                if b == a {
                    b = (b + 1) % n_attr;
                }
                covered.push(a);
                covered.push(b);
                rels.push(random_binary(&mut rng, a, b, 25, 5));
            }
            // ensure every attribute in the query is covered (it is, by
            // construction — attrs not used simply don't exist).
            let _ = covered;
            let q = JoinQuery::new(&rels).unwrap();
            let out = q.evaluate(Algorithm::GraphJoin, None);
            match out {
                Ok(o) => {
                    let expect = naive::join(&rels);
                    let expect = reorder(&expect, o.relation.schema()).unwrap();
                    assert_eq!(o.relation, expect, "trial {trial}");
                }
                Err(e) => panic!("trial {trial}: {e}"),
            }
        }
    }
}
