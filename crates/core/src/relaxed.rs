//! Relaxed joins (paper §7.2, Algorithm 6).
//!
//! Given `q = ⋈_{e∈E} R_e` with `m` relations and a relaxation `0 ≤ r ≤ m`,
//! compute every tuple (over all attributes) that agrees with at least
//! `m − r` of the input relations:
//!
//! ```text
//! q_r = ∪ { ⋈_{e∈S} R_e  :  S ⊆ E, |S| ≥ m − r, ∪S = V }
//! ```
//!
//! Algorithm 6 avoids evaluating every such `S`:
//! 1. only *containment-minimal* members of `C(q, r)` matter (supersets
//!    produce subsets of output — the paper's `Ĉ(q, r)`);
//! 2. two subsets whose cover LPs share the same optimal **basic feasible
//!    solution support** `BFS(S)` produce output inside the same join
//!    `⋈_{e∈BFS(S)} R_e`, so one representative per equivalence class —
//!    `C*(q, r)` — suffices;
//! 3. for each class, run the worst-case-optimal join on the support `T`
//!    with the optimal cover `x*_T`, then keep tuples agreeing with at
//!    least `m − r` relations of the *full* query.

use crate::nprr::join_nprr;
use crate::query::{JoinQuery, QueryError};
use wcoj_hypergraph::agm;
use wcoj_hypergraph::Hypergraph;
use wcoj_storage::ops::{reorder, union};
use wcoj_storage::Relation;

/// Output of a relaxed join evaluation.
#[derive(Debug, Clone)]
pub struct RelaxedOutput {
    /// `q_r` over all query attributes (sorted schema).
    pub relation: Relation,
    /// Number of containment-minimal covering subsets `|Ĉ(q, r)|`.
    pub minimal_subsets: usize,
    /// Number of `BFS`-equivalence classes `|C*(q, r)|` actually evaluated.
    pub classes: usize,
}

/// Evaluates the relaxed join `q_r`.
///
/// # Errors
/// * [`QueryError::AlgorithmMismatch`] when the subset enumeration would be
///   infeasibly large (`C(m, ≤r)` capped at 100 000);
/// * LP/storage failures.
pub fn relaxed_join(relations: &[Relation], r: usize) -> Result<RelaxedOutput, QueryError> {
    let q = JoinQuery::new(relations)?;
    let m = relations.len();
    let r = r.min(m);

    // Enumerate subsets S with |S| ≥ m − r by choosing the ≤ r removed
    // edges; guard combinatorial blow-up.
    let mut combos = 0usize;
    {
        let mut c = 1usize;
        combos = combos.saturating_add(c); // the i = 0 term
        for i in 1..=r {
            c = c
                .saturating_mul(m - i + 1)
                .checked_div(i)
                .unwrap_or(usize::MAX);
            combos = combos.saturating_add(c);
        }
    }
    if combos > 100_000 {
        return Err(QueryError::AlgorithmMismatch(
            "relaxed join: too many subsets to enumerate; reduce r or m",
        ));
    }

    let h = q.hypergraph();
    let n = h.num_vertices();

    // C(q, r): subsets (as bitmasks) of size ≥ m − r covering V.
    let covers_all = |mask: u64| -> bool {
        let mut covered = vec![false; n];
        for e in 0..m {
            if mask >> e & 1 == 1 {
                for &v in h.edge(e) {
                    covered[v] = true;
                }
            }
        }
        covered.iter().all(|&c| c)
    };
    let mut c_sets: Vec<u64> = Vec::new();
    enumerate_supersets(m, m - r, &mut |mask| {
        if covers_all(mask) {
            c_sets.push(mask);
        }
    });

    // Ĉ(q, r): containment-minimal members (smaller sets dominate — any
    // tuple in ⋈_S for S ⊇ S' is also in ⋈_{S'}).
    let minimal: Vec<u64> = c_sets
        .iter()
        .copied()
        .filter(|&s| !c_sets.iter().any(|&t| t != s && (t & s) == t))
        .collect();

    // C*(q, r): group by BFS(S) support.
    let sizes = q.sizes();
    let mut class_supports: Vec<Vec<usize>> = Vec::new();
    for &mask in &minimal {
        let edge_ids: Vec<usize> = (0..m).filter(|&e| mask >> e & 1 == 1).collect();
        let sub_edges: Vec<Vec<usize>> = edge_ids.iter().map(|&e| h.edge(e).to_vec()).collect();
        let sub_sizes: Vec<usize> = edge_ids.iter().map(|&e| sizes[e]).collect();
        let sub_h = Hypergraph::new(n, sub_edges)?;
        let sol = agm::optimal_cover(&sub_h, &sub_sizes)?;
        // Map the support back to original edge indices.
        let mut support: Vec<usize> = sol.support().iter().map(|&i| edge_ids[i]).collect();
        support.sort_unstable();
        if !class_supports.contains(&support) {
            class_supports.push(support);
        }
    }

    // Evaluate one representative per class; prune by agreement count.
    let out_schema = q.output_schema();
    let mut result = Relation::empty(out_schema.clone());
    let checkers: Vec<(Vec<usize>, wcoj_storage::RowSet)> = relations
        .iter()
        .map(|rel| {
            let pos = out_schema
                .positions_of(rel.schema().attrs())
                .expect("relation attrs in output schema");
            (pos, rel.row_set())
        })
        .collect();

    for support in &class_supports {
        let t_rels: Vec<Relation> = support.iter().map(|&e| relations[e].clone()).collect();
        let sub_q = JoinQuery::new(&t_rels)?;
        // The support covers V by cover feasibility, so the sub-join spans
        // all attributes.
        debug_assert_eq!(sub_q.attrs().len(), n, "support must cover V");
        let sol = sub_q.optimal_cover()?;
        let phi = join_nprr(&sub_q, &sol.x, sol.log2_bound)?.relation;

        let mut kept = Relation::empty(out_schema.clone());
        let phi = reorder(&phi, &out_schema)?;
        let mut key = Vec::new();
        for row in phi.iter_rows() {
            let agree = checkers
                .iter()
                .filter(|(pos, set)| {
                    key.clear();
                    key.extend(pos.iter().map(|&p| row[p]));
                    set.contains(&key)
                })
                .count();
            if agree >= m - r {
                kept.push_row(row).expect("same arity");
            }
        }
        kept.sort_dedup();
        result = union(&result, &kept)?;
    }

    Ok(RelaxedOutput {
        relation: result,
        minimal_subsets: minimal.len(),
        classes: class_supports.len(),
    })
}

/// Calls `f` with every bitmask over `m` edges with at least `lo` bits set.
fn enumerate_supersets(m: usize, lo: usize, f: &mut impl FnMut(u64)) {
    debug_assert!(m <= 63);
    // Choose the removed set (size ≤ m − lo) by recursion.
    fn go(m: usize, start: usize, left: usize, removed: u64, f: &mut impl FnMut(u64)) {
        let full = (1u64 << m) - 1;
        f(full & !removed);
        if left == 0 {
            return;
        }
        for i in start..m {
            go(m, i + 1, left - 1, removed | (1 << i), f);
        }
    }
    go(m, 0, m - lo, 0, f);
}

/// Reference implementation: evaluates every `S ∈ C(q, r)` by brute force
/// (naive joins) and unions. Exponentially slower; used as the test oracle.
///
/// # Errors
/// Storage errors only.
pub fn relaxed_join_bruteforce(relations: &[Relation], r: usize) -> Result<Relation, QueryError> {
    let q = JoinQuery::new(relations)?;
    let m = relations.len();
    let r = r.min(m);
    let h = q.hypergraph();
    let n = h.num_vertices();
    let out_schema = q.output_schema();
    let mut result = Relation::empty(out_schema.clone());
    let mut masks = Vec::new();
    enumerate_supersets(m, m - r, &mut |mask| masks.push(mask));
    masks.sort_unstable();
    masks.dedup();
    for mask in masks {
        let subset: Vec<Relation> = (0..m)
            .filter(|&e| mask >> e & 1 == 1)
            .map(|e| relations[e].clone())
            .collect();
        // must cover all attributes
        let mut covered = vec![false; n];
        for rel in &subset {
            for a in rel.schema().attrs() {
                covered[q.vertex_of_attr(*a).expect("attr known")] = true;
            }
        }
        if !covered.iter().all(|&c| c) {
            continue;
        }
        let j = crate::naive::join(&subset);
        let j = reorder(&j, &out_schema)?;
        result = union(&result, &j)?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::{Schema, Value};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    #[test]
    fn r_zero_is_plain_join() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let s = rel(&[1, 2], &[&[2, 5], &[4, 6]]);
        let out = relaxed_join(&[r.clone(), s.clone()], 0).unwrap();
        let plain = crate::join(&[r, s]).unwrap();
        assert_eq!(out.relation, plain);
        assert_eq!(out.classes, 1);
    }

    #[test]
    fn triangle_with_one_relaxation() {
        let r = rel(&[0, 1], &[&[1, 2], &[7, 8]]);
        let s = rel(&[1, 2], &[&[2, 3], &[8, 9]]);
        let t = rel(&[0, 2], &[&[1, 3]]); // only supports (1,2,3)
                                          // r = 1: tuples agreeing with ≥ 2 of {R, S, T} — but every pair of
                                          // edges already covers all three attributes, so C has all pairs.
        let out = relaxed_join(&[r.clone(), s.clone(), t.clone()], 1).unwrap();
        let brute = relaxed_join_bruteforce(&[r, s, t], 1).unwrap();
        assert_eq!(out.relation, brute);
        // (1,2,3) agrees with all 3; (7,8,9) agrees with R,S only.
        assert!(out.relation.contains_row(&[Value(1), Value(2), Value(3)]));
        assert!(out.relation.contains_row(&[Value(7), Value(8), Value(9)]));
    }

    #[test]
    fn uncovering_subsets_are_skipped() {
        // R(0,1), S(1,2): removing either loses an attribute, so q_1 = q_0.
        let r = rel(&[0, 1], &[&[1, 2]]);
        let s = rel(&[1, 2], &[&[2, 3], &[9, 9]]);
        let out = relaxed_join(&[r.clone(), s.clone()], 1).unwrap();
        let plain = crate::join(&[r, s]).unwrap();
        assert_eq!(out.relation, plain);
    }

    #[test]
    fn paper_lower_bound_instance_shape() {
        // §7.2's tightness instance (n = 2, N = 3): e_i = {i} for i ∈ {0,1},
        // e_3 = {0,1}; R_{e_i} = [N], R_{e_3} = {(N+i, N+i)}.
        let n = 3u32;
        let r0 = rel(&[0], &[&[1], &[2], &[3]]);
        let r1 = rel(&[1], &[&[1], &[2], &[3]]);
        let big: Vec<Vec<Value>> = (1..=n as u64)
            .map(|i| vec![Value(n as u64 + i), Value(n as u64 + i)])
            .collect();
        let r01 = Relation::from_rows(Schema::of(&[0, 1]), big).unwrap();
        let rels = vec![r0, r1, r01];
        for r in 1..=2usize {
            let fast = relaxed_join(&rels, r).unwrap();
            let brute = relaxed_join_bruteforce(&rels, r).unwrap();
            assert_eq!(fast.relation, brute, "r = {r}");
        }
        // For r = n (= 2): the singleton {e₃} enters C(q, r), so
        // q_2 = R_{e3} ∪ [N]² → N + N² tuples — the paper's tight bound.
        // (The paper states this "for any r > 0", but its own Algorithm 6
        // only admits the singleton subset once |S| = 1 ≥ m − r, i.e.
        // r ≥ n; for r = 1 the answer is just [N]².)
        let q2 = relaxed_join(&rels, 2).unwrap();
        assert_eq!(q2.relation.len(), (n + n * n) as usize);
        let q1 = relaxed_join(&rels, 1).unwrap();
        assert_eq!(q1.relation.len(), (n * n) as usize);
    }

    #[test]
    fn matches_bruteforce_on_random_queries() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for trial in 0..8 {
            let rels: Vec<Relation> = vec![
                random(&mut rng, &[0, 1]),
                random(&mut rng, &[1, 2]),
                random(&mut rng, &[0, 2]),
                random(&mut rng, &[2, 3]),
            ];
            for r in 0..=2usize {
                let fast = relaxed_join(&rels, r).unwrap();
                let brute = relaxed_join_bruteforce(&rels, r).unwrap();
                assert_eq!(fast.relation, brute, "trial {trial}, r = {r}");
            }
        }
        fn random(rng: &mut rand::rngs::StdRng, attrs: &[u32]) -> Relation {
            let rows: Vec<Vec<Value>> = (0..15)
                .map(|_| {
                    attrs
                        .iter()
                        .map(|_| Value(rng.gen_range(0..5u64)))
                        .collect()
                })
                .collect();
            Relation::from_rows(Schema::of(attrs), rows).unwrap()
        }
    }

    #[test]
    fn enumerate_counts() {
        let mut count = 0usize;
        enumerate_supersets(4, 2, &mut |_| count += 1);
        // subsets of size ≥ 2 chosen via removed ≤ 2: C(4,0)+C(4,1)+C(4,2)
        assert_eq!(count, 1 + 4 + 6);
    }
}
