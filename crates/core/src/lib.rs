//! # wcoj-core — worst-case optimal join algorithms (NPRR, PODS 2012)
//!
//! This crate implements the algorithmic contributions of
//! *Ngo, Porat, Ré, Rudra: Worst-case Optimal Join Algorithms*:
//!
//! | Module | Paper reference | Contents |
//! |--------|-----------------|----------|
//! | [`nprr`] | §5, Algorithms 2–4, Procedure 5 | the generic worst-case optimal join: query-plan tree, total order, `Recursive-Join` |
//! | [`lw`] | §4, Algorithm 1 | the specialised Loomis–Whitney algorithm with heavy/light key partitioning |
//! | [`graph_join`] | §7.1, Lemma 7.1 + Theorem 7.3 | arity-≤2 queries via half-integral covers: stars + odd cycles (Cycle Lemma) |
//! | [`relaxed`] | §7.2, Algorithm 6 | relaxed joins `q_r` via `BFS`-equivalence classes |
//! | [`fullcq`] | §7.3 | full conjunctive queries (constants, repeated variables) reduced to natural joins |
//! | [`fd`] | §7.3 | simple functional dependencies: closure-based relation expansion |
//! | [`bt`] | §3 + Corollary 5.3 | the algorithmic Bollobás–Thomason / Loomis–Whitney inequality |
//! | [`naive`] | baseline semantics | reference pairwise-hash-join evaluation used as the test oracle |
//!
//! The main entry point is [`join`] / [`join_with`], which assemble the
//! query hypergraph from relation schemas, solve the fractional-cover LP
//! (via `wcoj-hypergraph`), and dispatch to an algorithm.
//!
//! ```
//! use wcoj_storage::{Relation, Schema};
//! use wcoj_core::join;
//!
//! // The paper's motivating triangle query R(A,B) ⋈ S(B,C) ⋈ T(A,C).
//! let r = Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[1, 3]]);
//! let s = Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 4], &[3, 4]]);
//! let t = Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[1, 4]]);
//! let out = join(&[r, s, t]).unwrap();
//! assert_eq!(out.len(), 2); // (1,2,4) and (1,3,4)
//! ```

pub mod bt;
pub mod fd;
pub mod fullcq;
pub mod graph_join;
pub mod lw;
pub mod naive;
pub mod nprr;
pub mod query;
pub mod relaxed;
mod scratch;

pub use query::{JoinQuery, QueryError};

use wcoj_hypergraph::agm::CoverSolution;
use wcoj_storage::Relation;

/// Which algorithm evaluates the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Pick automatically: LW algorithm for Loomis–Whitney instances,
    /// star/cycle evaluation for arity-≤2 queries, NPRR otherwise.
    #[default]
    Auto,
    /// The generic NPRR algorithm (§5) — works for every query.
    Nprr,
    /// Algorithm 1 (§4) — only for LW instances.
    Lw,
    /// Theorem 7.3 (§7.1) — only for arity-≤2 queries.
    GraphJoin,
    /// Partition-parallel NPRR: `Recursive-Join` sharded over the root
    /// attribute's domain and fanned out across a worker pool. The engine
    /// lives in the `wcoj-exec` crate; it registers itself via
    /// [`register_parallel_executor`] (the `wcoj` facade and `wcoj-query`
    /// do this automatically). Dispatching this variant without a
    /// registered executor yields [`QueryError::AlgorithmMismatch`].
    NprrParallel,
    /// Reference pairwise hash joins (test oracle; *not* worst-case
    /// optimal).
    Naive,
}

/// Execution statistics reported alongside a join result.
#[derive(Debug, Clone, Default)]
pub struct JoinStats {
    /// `log₂` of the AGM bound for the cover that was used.
    pub log2_agm_bound: f64,
    /// The fractional cover used (per input relation).
    pub cover: Vec<f64>,
    /// Number of per-tuple "case a" decisions (recurse into the estimated
    /// side) taken by `Recursive-Join`.
    pub case_a: u64,
    /// Number of per-tuple "case b" decisions (scan the anchor relation's
    /// section).
    pub case_b: u64,
    /// Total tuples materialised across intermediate steps (an upper bound
    /// on working-set size; the worst-case guarantee bounds this by the
    /// AGM bound times the query size).
    pub intermediate_tuples: u64,
    /// The algorithm actually run.
    pub algorithm_used: &'static str,
    /// Number of independent shards this result was computed from
    /// (0 for single-shard sequential runs).
    pub shards: u64,
}

impl JoinStats {
    /// Folds another run's counters into this one — how the parallel
    /// executor aggregates per-worker statistics. Bound/cover metadata is
    /// kept from `self` (identical across shards of one run by
    /// construction); counters add; `shards` accumulates.
    pub fn absorb(&mut self, other: &JoinStats) {
        self.case_a += other.case_a;
        self.case_b += other.case_b;
        self.intermediate_tuples += other.intermediate_tuples;
        self.shards += other.shards.max(1);
    }
}

/// Result of [`join_with`].
#[derive(Debug, Clone)]
pub struct JoinOutput {
    /// The join result. Attribute order of the schema is
    /// implementation-defined (use `ops::reorder` for a canonical layout).
    pub relation: Relation,
    /// Execution statistics.
    pub stats: JoinStats,
}

/// Signature of a pluggable [`Algorithm::NprrParallel`] executor: takes
/// the assembled query plus the resolved cover and bound, returns the
/// join output. Provided by `wcoj-exec`.
pub type ParallelExecutor = fn(&JoinQuery, &[f64], f64) -> Result<JoinOutput, QueryError>;

static PARALLEL_EXECUTOR: std::sync::OnceLock<ParallelExecutor> = std::sync::OnceLock::new();

/// Registers the process-wide [`Algorithm::NprrParallel`] executor.
/// Idempotent; the first registration wins. Called by
/// `wcoj_exec::install()` — user code normally never needs this.
pub fn register_parallel_executor(exec: ParallelExecutor) {
    let _ = PARALLEL_EXECUTOR.set(exec);
}

pub(crate) fn parallel_executor() -> Option<ParallelExecutor> {
    PARALLEL_EXECUTOR.get().copied()
}

/// Computes the natural join of `relations` with automatic algorithm
/// selection and the LP-optimal fractional cover.
///
/// # Errors
/// Propagates [`QueryError`] for malformed inputs (duplicate attributes
/// within a relation are impossible by construction of
/// [`wcoj_storage::Schema`]; errors arise from empty queries and LP
/// failures).
pub fn join(relations: &[Relation]) -> Result<Relation, QueryError> {
    Ok(join_with(relations, Algorithm::Auto, None)?.relation)
}

/// Computes the natural join with an explicit algorithm and, optionally, an
/// explicit fractional cover (one weight per relation, in input order).
///
/// # Errors
/// [`QueryError`] on malformed input, a non-cover `cover`, or an algorithm
/// that does not apply to the query shape (e.g. [`Algorithm::Lw`] on a
/// non-LW query).
pub fn join_with(
    relations: &[Relation],
    algorithm: Algorithm,
    cover: Option<&[f64]>,
) -> Result<JoinOutput, QueryError> {
    let q = JoinQuery::new(relations)?;
    q.evaluate(algorithm, cover)
}

/// Convenience: the optimal fractional cover and AGM bound for the query
/// formed by `relations` (sizes = current cardinalities).
///
/// # Errors
/// [`QueryError`] on malformed input or LP failure.
pub fn agm_cover(relations: &[Relation]) -> Result<CoverSolution, QueryError> {
    let q = JoinQuery::new(relations)?;
    q.optimal_cover()
}

#[cfg(test)]
mod tests;
