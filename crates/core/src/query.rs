//! Query assembly: from a list of relations to a hypergraph, a cover, and
//! an algorithm dispatch.

use crate::{graph_join, lw, naive, nprr, Algorithm, JoinOutput, JoinStats};
use std::fmt;
use wcoj_hypergraph::agm::{self, CoverSolution};
use wcoj_hypergraph::cover::validate_cover;
use wcoj_hypergraph::{lw as lwshape, HgError, Hypergraph};
use wcoj_storage::{Attr, Relation, Schema, StorageError};

/// Errors from query assembly and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A query needs at least one relation.
    EmptyQuery,
    /// Hypergraph/cover-level failure.
    Hypergraph(HgError),
    /// Storage-level failure.
    Storage(StorageError),
    /// The requested algorithm cannot evaluate this query shape.
    AlgorithmMismatch(&'static str),
    /// A user-supplied cover vector was rejected.
    BadCover(String),
    /// An executing service shed the query under overload: its admission
    /// queue was at the configured bound. The query was never scheduled;
    /// retrying later (or submitting with a blocking/deadline variant) is
    /// safe.
    Overloaded,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyQuery => write!(f, "query has no relations"),
            QueryError::Hypergraph(e) => write!(f, "hypergraph error: {e}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
            QueryError::AlgorithmMismatch(m) => write!(f, "algorithm mismatch: {m}"),
            QueryError::BadCover(m) => write!(f, "bad cover: {m}"),
            QueryError::Overloaded => {
                write!(
                    f,
                    "service overloaded: submission shed by admission control"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<HgError> for QueryError {
    fn from(e: HgError) -> Self {
        QueryError::Hypergraph(e)
    }
}
impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

/// A natural-join query: relations plus the derived hypergraph view.
///
/// Vertex `i` of the hypergraph corresponds to `attrs()[i]`; attributes are
/// sorted, so vertex numbering is deterministic.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    relations: Vec<Relation>,
    attrs: Vec<Attr>,
    hypergraph: Hypergraph,
}

impl JoinQuery {
    /// Assembles the query for `relations`.
    ///
    /// # Errors
    /// [`QueryError::EmptyQuery`] if no relations are given.
    pub fn new(relations: &[Relation]) -> Result<JoinQuery, QueryError> {
        if relations.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        let mut attrs: Vec<Attr> = relations
            .iter()
            .flat_map(|r| r.schema().attrs().iter().copied())
            .collect();
        attrs.sort_unstable();
        attrs.dedup();
        let vertex_of = |a: Attr| attrs.binary_search(&a).expect("attr present");
        let edges: Vec<Vec<usize>> = relations
            .iter()
            .map(|r| r.schema().attrs().iter().map(|&a| vertex_of(a)).collect())
            .collect();
        let hypergraph = Hypergraph::new(attrs.len(), edges)?;
        Ok(JoinQuery {
            relations: relations.to_vec(),
            attrs,
            hypergraph,
        })
    }

    /// The query's relations, in input order (edge `i` ↔ relation `i`).
    #[must_use]
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// All attributes of the query, sorted; `attrs()[v]` is hypergraph
    /// vertex `v`.
    #[must_use]
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// The query hypergraph (paper §2).
    #[must_use]
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hypergraph
    }

    /// The attribute for hypergraph vertex `v`.
    #[must_use]
    pub fn attr_of_vertex(&self, v: usize) -> Attr {
        self.attrs[v]
    }

    /// The hypergraph vertex for attribute `a`, if it occurs in the query.
    #[must_use]
    pub fn vertex_of_attr(&self, a: Attr) -> Option<usize> {
        self.attrs.binary_search(&a).ok()
    }

    /// Relation cardinalities `N_e`, in edge order.
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        self.relations.iter().map(Relation::len).collect()
    }

    /// Solves the fractional-cover LP for the current sizes.
    ///
    /// # Errors
    /// Propagates LP failures.
    pub fn optimal_cover(&self) -> Result<CoverSolution, QueryError> {
        Ok(agm::optimal_cover(&self.hypergraph, &self.sizes())?)
    }

    /// The schema `(A(q))` of the join output in sorted attribute order.
    #[must_use]
    pub fn output_schema(&self) -> Schema {
        Schema::new(self.attrs.clone()).expect("attrs deduplicated")
    }

    /// Evaluates the query.
    ///
    /// # Errors
    /// See [`crate::join_with`].
    pub fn evaluate(
        &self,
        algorithm: Algorithm,
        cover: Option<&[f64]>,
    ) -> Result<JoinOutput, QueryError> {
        // An empty input relation empties the join (and is the one case
        // where no fractional-cover reasoning is needed — paper §2).
        if self.relations.iter().any(Relation::is_empty) {
            return Ok(JoinOutput {
                relation: Relation::empty(self.output_schema()),
                stats: JoinStats {
                    algorithm_used: "empty-input-short-circuit",
                    ..JoinStats::default()
                },
            });
        }

        let algorithm = match algorithm {
            Algorithm::Auto => {
                if lwshape::is_lw_instance(&self.hypergraph) {
                    Algorithm::Lw
                } else if self.hypergraph.is_graph() {
                    Algorithm::GraphJoin
                } else {
                    Algorithm::Nprr
                }
            }
            a => a,
        };

        // Resolve the cover: user-supplied (validated) or LP-optimal.
        let resolve_cover = |q: &JoinQuery| -> Result<(Vec<f64>, f64), QueryError> {
            let sizes = q.sizes();
            match cover {
                Some(x) => {
                    validate_cover(&q.hypergraph, x)
                        .map_err(|e| QueryError::BadCover(e.to_string()))?;
                    Ok((x.to_vec(), agm::log2_bound(&sizes, x)))
                }
                None => {
                    let sol = q.optimal_cover()?;
                    let b = sol.log2_bound;
                    Ok((sol.x, b))
                }
            }
        };

        match algorithm {
            Algorithm::Auto => unreachable!("resolved above"),
            Algorithm::Naive => {
                let relation = naive::join(&self.relations);
                Ok(JoinOutput {
                    relation,
                    stats: JoinStats {
                        algorithm_used: "naive",
                        ..JoinStats::default()
                    },
                })
            }
            Algorithm::Lw => {
                if !lwshape::is_lw_instance(&self.hypergraph) {
                    return Err(QueryError::AlgorithmMismatch(
                        "Algorithm::Lw requires a Loomis-Whitney instance",
                    ));
                }
                lw::join_lw(self)
            }
            Algorithm::GraphJoin => {
                if !self.hypergraph.is_graph() {
                    return Err(QueryError::AlgorithmMismatch(
                        "Algorithm::GraphJoin requires arity ≤ 2",
                    ));
                }
                graph_join::join_graph(self)
            }
            Algorithm::Nprr => {
                let (x, log2_bound) = resolve_cover(self)?;
                nprr::join_nprr(self, &x, log2_bound)
            }
            Algorithm::NprrParallel => {
                let Some(exec) = crate::parallel_executor() else {
                    return Err(QueryError::AlgorithmMismatch(
                        "Algorithm::NprrParallel needs the wcoj-exec engine: link it and \
                         call wcoj_exec::install() (the wcoj facade and wcoj-query do so \
                         automatically), or call wcoj_exec::par_join directly",
                    ));
                };
                let (x, log2_bound) = resolve_cover(self)?;
                exec(self, &x, log2_bound)
            }
        }
    }
}
