//! The **total order** of attributes (paper Algorithm 4) and its two
//! correctness properties (Proposition 5.5):
//!
//! * **(TO1)** for every QP-tree node `u`, the members of `univ(u)` are
//!   consecutive in the total order;
//! * **(TO2)** for every internal node `u` with label `k`, if `S` is the
//!   set of attributes preceding `univ(u)`, then `S ∪ univ(lc(u))` is
//!   exactly the set of attributes preceding `univ(rc(u))`.
//!
//! Search trees built along this order make every section the paper needs
//! a *prefix descent* (see `wcoj_storage::TrieIndex`).

use super::qptree::QpNode;

/// Computes the total order by Algorithm 4's `print-attribs` walk.
///
/// Deviating from the paper only where it is silent: a node whose children
/// are *both* nil (possible when only the anchor edge meets the universe)
/// prints its own universe, like a leaf.
#[must_use]
pub fn total_order(root: &QpNode) -> Vec<usize> {
    let mut out = Vec::new();
    print_attribs(root, &mut out);
    out
}

fn print_attribs(u: &QpNode, out: &mut Vec<usize>) {
    match (&u.left, &u.right) {
        _ if u.is_leaf => out.extend(u.univ.iter().copied()),
        (None, None) => out.extend(u.univ.iter().copied()),
        (None, Some(rc)) => {
            print_attribs(rc, out);
            // The paper assumes lc = nil only when univ(u) ⊆ e_k (so
            // univ(rc) = univ(u)); lc can also die because no remaining
            // edge meets univ(u) ∖ e_k — emit those attributes here so the
            // order stays a permutation. (Such nodes are unreachable at
            // evaluation time under a valid cover.)
            out.extend(u.univ.iter().copied().filter(|v| !rc.univ.contains(v)));
        }
        (Some(lc), None) => {
            print_attribs(lc, out);
            // univ(u) ∖ univ(lc) in arbitrary (ascending) order.
            out.extend(u.univ.iter().copied().filter(|v| !lc.univ.contains(v)));
        }
        (Some(lc), Some(rc)) => {
            print_attribs(lc, out);
            print_attribs(rc, out);
        }
    }
}

/// Position of each vertex in the order: `pos[v] = rank`.
///
/// # Panics
/// Panics if `order` mentions a vertex ≥ `n`.
#[must_use]
pub fn positions(order: &[usize], n: usize) -> Vec<usize> {
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v] = i;
    }
    pos
}

/// Checks **(TO1)**: every node's universe is a consecutive block.
#[must_use]
pub fn check_to1(root: &QpNode, order: &[usize]) -> bool {
    let pos = positions(order, order.iter().copied().max().map_or(0, |m| m + 1));
    let mut ok = true;
    visit(root, &mut |u: &QpNode| {
        let mut ps: Vec<usize> = u.univ.iter().map(|&v| pos[v]).collect();
        ps.sort_unstable();
        if !ps.is_empty() && ps[ps.len() - 1] - ps[0] + 1 != ps.len() {
            ok = false;
        }
    });
    ok
}

/// Checks **(TO2)** at every internal node with two children.
#[must_use]
pub fn check_to2(root: &QpNode, order: &[usize]) -> bool {
    let n = order.iter().copied().max().map_or(0, |m| m + 1);
    let pos = positions(order, n);
    let mut ok = true;
    visit(root, &mut |u: &QpNode| {
        let (Some(lc), Some(rc)) = (&u.left, &u.right) else {
            return;
        };
        // S = attrs preceding univ(u); first position of univ(u):
        let u_start = u.univ.iter().map(|&v| pos[v]).min().expect("nonempty univ");
        let rc_start = rc
            .univ
            .iter()
            .map(|&v| pos[v])
            .min()
            .expect("nonempty univ");
        // Preceding rc must be exactly S ∪ univ(lc):
        let mut expect: Vec<usize> = order[..u_start].to_vec();
        expect.extend(lc.univ.iter().copied());
        expect.sort_unstable();
        let mut actual: Vec<usize> = order[..rc_start].to_vec();
        actual.sort_unstable();
        if expect != actual {
            ok = false;
        }
    });
    ok
}

fn visit(u: &QpNode, f: &mut impl FnMut(&QpNode)) {
    f(u);
    if let Some(l) = &u.left {
        visit(l, f);
    }
    if let Some(r) = &u.right {
        visit(r, f);
    }
}

#[cfg(test)]
mod tests {
    use super::super::qptree::build_qp_tree;
    use super::*;
    use wcoj_hypergraph::Hypergraph;

    fn figure2() -> Hypergraph {
        Hypergraph::new(
            6,
            vec![
                vec![0, 1, 3, 4],
                vec![0, 2, 3, 5],
                vec![0, 1, 2],
                vec![1, 3, 5],
                vec![2, 4, 5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure2_total_order_matches_paper() {
        // §5.2: "the total order is 1, 4, 2, 5, 3, 6" (1-based).
        let t = build_qp_tree(&figure2()).unwrap();
        assert_eq!(total_order(&t), vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn order_is_a_permutation() {
        let t = build_qp_tree(&figure2()).unwrap();
        let mut o = total_order(&t);
        o.sort_unstable();
        assert_eq!(o, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn to1_to2_hold_on_figure2() {
        let t = build_qp_tree(&figure2()).unwrap();
        let o = total_order(&t);
        assert!(check_to1(&t, &o));
        assert!(check_to2(&t, &o));
    }

    #[test]
    fn to1_to2_hold_on_assorted_shapes() {
        let shapes = [
            Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap(),
            Hypergraph::new(
                4,
                vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]],
            )
            .unwrap(),
            Hypergraph::new(
                5,
                vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![0, 4]],
            )
            .unwrap(),
            Hypergraph::new(4, vec![vec![0, 1, 2, 3], vec![0, 1], vec![2, 3]]).unwrap(),
            Hypergraph::new(2, vec![vec![0], vec![1], vec![0, 1]]).unwrap(),
        ];
        for (i, h) in shapes.iter().enumerate() {
            let t = build_qp_tree(h).unwrap();
            let o = total_order(&t);
            let mut sorted = o.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), o.len(), "shape {i}: order has duplicates");
            assert!(check_to1(&t, &o), "shape {i}: TO1 fails");
            assert!(check_to2(&t, &o), "shape {i}: TO2 fails");
        }
    }

    #[test]
    fn positions_inverse_of_order() {
        let order = vec![2, 0, 1];
        let pos = positions(&order, 3);
        assert_eq!(pos, vec![1, 2, 0]);
    }
}
