//! The **query plan tree** (paper Algorithm 3).
//!
//! Fix an order `e₁, …, e_m` of the hyperedges (here: input order). The QP
//! tree is built by `build-tree(V, m)`:
//!
//! * return `nil` if every `e_i ∩ U = ∅` for `i ∈ [k]`;
//! * create a node with `label = k`, `univ = U`;
//! * if `k > 1` and some `e_i` (i ≤ k) does not contain `U`, recurse:
//!   left child on `(U ∖ e_k, k−1)`, right child on `(U ∩ e_k, k−1)`.
//!
//! A node that never attempts children is a **leaf** (its universe is
//! contained in every one of its `k` edges). Each node is the "skeleton" of
//! a family of sub-problems of `Recursive-Join`; `e_k` is the node's
//! *anchor* relation (paper §5.3.1).

use wcoj_hypergraph::Hypergraph;

/// A query-plan-tree node.
#[derive(Debug, Clone)]
pub struct QpNode {
    /// The paper's `label(u)`: the number `k` of edges (`e₁..e_k`) in play
    /// at this node; the anchor is `e_k` (edge index `k − 1`).
    pub label: usize,
    /// The paper's `univ(u)`: attribute (vertex) subset, sorted.
    pub univ: Vec<usize>,
    /// Left child — sub-problem on `univ ∖ e_k`.
    pub left: Option<Box<QpNode>>,
    /// Right child — sub-problem on `univ ∩ e_k`.
    pub right: Option<Box<QpNode>>,
    /// `true` iff the node did not attempt children (every `e_i ⊇ univ` or
    /// `k = 1`): the recursion bottoms out with a direct intersection.
    pub is_leaf: bool,
}

impl QpNode {
    /// Number of nodes in this subtree.
    #[must_use]
    pub fn size(&self) -> usize {
        1 + self.left.as_ref().map_or(0, |n| n.size()) + self.right.as_ref().map_or(0, |n| n.size())
    }

    /// Height of this subtree (leaf = 1).
    #[must_use]
    pub fn height(&self) -> usize {
        1 + self
            .left
            .as_ref()
            .map_or(0, |n| n.height())
            .max(self.right.as_ref().map_or(0, |n| n.height()))
    }

    /// Pretty-prints the tree, one node per line, for the harness output
    /// (reproduces the paper's Figures 1 and 2 textually).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let univ: Vec<String> = self.univ.iter().map(|v| (v + 1).to_string()).collect();
        let _ = writeln!(
            out,
            "{}label={} univ={{{}}}{}",
            "  ".repeat(depth),
            self.label,
            univ.join(","),
            if self.is_leaf { " [leaf]" } else { "" }
        );
        if let Some(l) = &self.left {
            l.render_into(out, depth + 1);
        } else if !self.is_leaf {
            let _ = writeln!(out, "{}(nil)", "  ".repeat(depth + 1));
        }
        if let Some(r) = &self.right {
            r.render_into(out, depth + 1);
        } else if !self.is_leaf {
            let _ = writeln!(out, "{}(nil)", "  ".repeat(depth + 1));
        }
    }
}

/// Builds the QP tree for `h` with edge order `e₁..e_m` = input order.
/// Returns `None` for degenerate queries whose attribute set is empty.
#[must_use]
pub fn build_qp_tree(h: &Hypergraph) -> Option<Box<QpNode>> {
    let v: Vec<usize> = {
        // V = all vertices that occur in some edge.
        let mut seen = vec![false; h.num_vertices()];
        for e in h.edges() {
            for &x in e {
                seen[x] = true;
            }
        }
        (0..h.num_vertices()).filter(|&x| seen[x]).collect()
    };
    build(h, v, h.num_edges())
}

fn build(h: &Hypergraph, u: Vec<usize>, k: usize) -> Option<Box<QpNode>> {
    if k == 0 {
        return None;
    }
    // line 1: nil when no e_i (i ≤ k) meets U.
    if (0..k).all(|i| u.iter().all(|&v| !h.edge_contains(i, v))) {
        return None;
    }
    let mut node = QpNode {
        label: k,
        univ: u.clone(),
        left: None,
        right: None,
        is_leaf: true,
    };
    let some_edge_lacks_u = (0..k).any(|i| u.iter().any(|&v| !h.edge_contains(i, v)));
    if k > 1 && some_edge_lacks_u {
        node.is_leaf = false;
        let ek = k - 1; // anchor edge index
        let u_minus: Vec<usize> = u
            .iter()
            .copied()
            .filter(|&v| !h.edge_contains(ek, v))
            .collect();
        let u_cap: Vec<usize> = u
            .iter()
            .copied()
            .filter(|&v| h.edge_contains(ek, v))
            .collect();
        node.left = build(h, u_minus, k - 1);
        node.right = build(h, u_cap, k - 1);
    }
    Some(Box::new(node))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 query (0-based attributes):
    /// R1(0,1,3,4), R2(0,2,3,5), R3(0,1,2), R4(1,3,5), R5(2,4,5).
    pub(crate) fn figure2() -> Hypergraph {
        Hypergraph::new(
            6,
            vec![
                vec![0, 1, 3, 4],
                vec![0, 2, 3, 5],
                vec![0, 1, 2],
                vec![1, 3, 5],
                vec![2, 4, 5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure2_root_split() {
        let t = build_qp_tree(&figure2()).unwrap();
        assert_eq!(t.label, 5);
        assert_eq!(t.univ, vec![0, 1, 2, 3, 4, 5]);
        assert!(!t.is_leaf);
        // e5 = {2,4,5}: left = V∖e5 = {0,1,3}, right = {2,4,5} — the
        // paper's {1,2,4} and {3,5,6} in 1-based numbering.
        assert_eq!(t.left.as_ref().unwrap().univ, vec![0, 1, 3]);
        assert_eq!(t.right.as_ref().unwrap().univ, vec![2, 4, 5]);
        assert_eq!(t.left.as_ref().unwrap().label, 4);
        assert_eq!(t.right.as_ref().unwrap().label, 4);
    }

    #[test]
    fn figure2_left_subtree() {
        let t = build_qp_tree(&figure2()).unwrap();
        let l = t.left.as_ref().unwrap();
        // e4 = {1,3,5}: {0,1,3} splits into {0} and {1,3}.
        let ll = l.left.as_ref().unwrap();
        let lr = l.right.as_ref().unwrap();
        assert_eq!(ll.univ, vec![0]);
        assert!(ll.is_leaf, "{{0}} ⊆ every of e1,e2,e3");
        assert_eq!(ll.label, 3);
        assert_eq!(lr.univ, vec![1, 3]);
        assert!(!lr.is_leaf);
        // e3 = {0,1,2}: {1,3} splits into {3} (leaf at label 2) and {1}.
        assert_eq!(lr.left.as_ref().unwrap().univ, vec![3]);
        assert!(lr.left.as_ref().unwrap().is_leaf);
        let one = lr.right.as_ref().unwrap();
        assert_eq!(one.univ, vec![1]);
        assert!(!one.is_leaf);
        // e2 = {0,2,3,5} ∌ 1 → left keeps {1}, right is nil.
        assert_eq!(one.left.as_ref().unwrap().univ, vec![1]);
        assert!(one.left.as_ref().unwrap().is_leaf);
        assert!(one.right.is_none());
    }

    #[test]
    fn figure2_right_subtree_has_double_nil_node() {
        let t = build_qp_tree(&figure2()).unwrap();
        let r = t.right.as_ref().unwrap(); // {2,4,5}
        let rl = r.left.as_ref().unwrap(); // {2,4}
        assert_eq!(rl.univ, vec![2, 4]);
        let two = rl.right.as_ref().unwrap(); // univ {2}, label 2
        assert_eq!(two.univ, vec![2]);
        assert!(!two.is_leaf);
        // e1 ∌ 2 and e2 ∋ 2, but e1 ∩ {2} = ∅ kills both children:
        assert!(two.left.is_none());
        assert!(two.right.is_none());
    }

    #[test]
    fn leaf_when_all_edges_contain_universe() {
        // Two identical edges: V ⊆ both → root is a leaf.
        let h = Hypergraph::new(2, vec![vec![0, 1], vec![0, 1]]).unwrap();
        let t = build_qp_tree(&h).unwrap();
        assert!(t.is_leaf);
        assert_eq!(t.label, 2);
    }

    #[test]
    fn single_relation_is_leaf() {
        let h = Hypergraph::new(3, vec![vec![0, 1, 2]]).unwrap();
        let t = build_qp_tree(&h).unwrap();
        assert!(t.is_leaf);
        assert_eq!(t.label, 1);
        assert_eq!(t.univ, vec![0, 1, 2]);
    }

    #[test]
    fn empty_attribute_set_gives_none() {
        let h = Hypergraph::new(0, vec![vec![], vec![]]).unwrap();
        assert!(build_qp_tree(&h).is_none());
    }

    #[test]
    fn triangle_tree_shape() {
        // R(0,1), S(1,2), T(0,2): root label 3 anchored at T.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]).unwrap();
        let t = build_qp_tree(&h).unwrap();
        assert_eq!(t.label, 3);
        assert_eq!(t.left.as_ref().unwrap().univ, vec![1]); // V∖T = {1}
        assert_eq!(t.right.as_ref().unwrap().univ, vec![0, 2]);
        assert!(t.size() >= 3);
        assert!(t.height() >= 2);
    }

    #[test]
    fn render_is_nonempty_and_indented() {
        let t = build_qp_tree(&figure2()).unwrap();
        let s = t.render();
        assert!(s.contains("label=5 univ={1,2,3,4,5,6}"));
        assert!(s.lines().count() >= 10);
    }
}
