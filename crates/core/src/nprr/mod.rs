//! The generic NPRR worst-case optimal join (paper §5, Theorem 5.1).
//!
//! Pipeline (Algorithm 2):
//! 1. build the [query plan tree](qptree) (Algorithm 3);
//! 2. derive the [total order](total_order()) of attributes (Algorithm 4) and
//!    build one [`TrieIndex`] per relation along it;
//! 3. run [`Recursive-Join`](self) (Procedure 5) from the root.
//!
//! The per-tuple **size check** (Procedure 5, line 21) is the algorithmic
//! heart: for each partial tuple it compares the *estimated* output of the
//! remaining sub-join (a product of fractional powers of section sizes,
//! computed here in log-space) against the anchor relation's section size,
//! and either recurses (case a) or scans the anchor (case b). Theorem 5.1
//! proves the total work is `O(mn · ∏ N_e^{x_e})` after preprocessing.

mod prepared;
pub mod qptree;
pub mod total_order;

pub use prepared::PreparedQuery;

use crate::query::{JoinQuery, QueryError};
use crate::scratch::with_value_buf;
use crate::{JoinOutput, JoinStats};
use qptree::{build_qp_tree, QpNode};
use total_order::{positions, total_order};
use wcoj_storage::index::SearchTree;
use wcoj_storage::ops::reorder;
use wcoj_storage::{Attr, FlatIndex, HashTrieIndex, Relation, Schema, TrieIndex, Value};

/// Evaluates `q` with the NPRR algorithm under fractional cover `x`
/// (`log2_bound` is the corresponding AGM bound, reported in stats).
///
/// # Errors
/// Propagates storage errors from index construction (none expected for a
/// well-formed [`JoinQuery`]).
pub fn join_nprr(q: &JoinQuery, x: &[f64], log2_bound: f64) -> Result<JoinOutput, QueryError> {
    join_nprr_indexed::<TrieIndex>(q, x, log2_bound)
}

/// Like [`join_nprr`] but with hash-trie indexes — the paper's "collection
/// of hash indices" alternative (§5.1). Same output; different constant
/// factors (see the `ablation_index` bench).
///
/// # Errors
/// Same as [`join_nprr`].
pub fn join_nprr_hash(q: &JoinQuery, x: &[f64], log2_bound: f64) -> Result<JoinOutput, QueryError> {
    join_nprr_indexed::<HashTrieIndex>(q, x, log2_bound)
}

/// Like [`join_nprr`] but with the flat columnar indexes
/// ([`FlatIndex`]): contiguous per-level value arrays with galloping
/// lookups instead of node pointers. Bit-identical output (the release
/// stress suites gate this); different constant factors — see the
/// `ablation_index` bench's third column.
///
/// # Errors
/// Same as [`join_nprr`].
pub fn join_nprr_flat(q: &JoinQuery, x: &[f64], log2_bound: f64) -> Result<JoinOutput, QueryError> {
    join_nprr_indexed::<FlatIndex>(q, x, log2_bound)
}

/// The NPRR pipeline, generic over the [`SearchTree`] realisation.
///
/// # Errors
/// Same as [`join_nprr`].
pub fn join_nprr_indexed<S: SearchTree>(
    q: &JoinQuery,
    x: &[f64],
    log2_bound: f64,
) -> Result<JoinOutput, QueryError> {
    debug_assert_eq!(x.len(), q.relations().len());
    let h = q.hypergraph();

    let Some(root) = build_qp_tree(h) else {
        // No attributes at all: the join of non-empty nullary relations.
        return Ok(JoinOutput {
            relation: Relation::nullary_true(),
            stats: JoinStats {
                algorithm_used: "nprr",
                log2_agm_bound: log2_bound,
                cover: x.to_vec(),
                ..JoinStats::default()
            },
        });
    };

    let order = total_order(&root);
    let pos = positions(&order, h.num_vertices());

    // Per relation: vertices in total-order sequence, and the index.
    let mut edge_vertices: Vec<Vec<usize>> = Vec::with_capacity(q.relations().len());
    let mut tries: Vec<S> = Vec::with_capacity(q.relations().len());
    for (i, rel) in q.relations().iter().enumerate() {
        let mut vs: Vec<usize> = h.edge(i).to_vec();
        vs.sort_by_key(|&v| pos[v]);
        let attr_order: Vec<Attr> = vs.iter().map(|&v| q.attr_of_vertex(v)).collect();
        tries.push(S::build(rel, &attr_order)?);
        edge_vertices.push(vs);
    }

    let mut engine = Engine {
        q,
        tries: &tries,
        edge_vertices: &edge_vertices,
        pos: &pos,
        bindings: vec![None; h.num_vertices()],
        shard: None,
        stats: JoinStats {
            algorithm_used: "nprr",
            log2_agm_bound: log2_bound,
            cover: x.to_vec(),
            ..JoinStats::default()
        },
    };
    let rows = engine.recursive_join(&root, x);
    assemble_output(q, &order, rows, engine.stats)
}

/// Converts `Recursive-Join`'s row set (over the total order) into a
/// relation in the canonical sorted-attribute layout.
pub(crate) fn assemble_output(
    q: &JoinQuery,
    order: &[usize],
    rows: Vec<Vec<Value>>,
    stats: JoinStats,
) -> Result<JoinOutput, QueryError> {
    let order_attrs: Vec<Attr> = order.iter().map(|&v| q.attr_of_vertex(v)).collect();
    let schema = Schema::new(order_attrs).expect("order is a permutation");
    let mut rel = Relation::empty(schema);
    for row in &rows {
        rel.push_row(row).expect("row arity = |V|");
    }
    rel.sort_dedup();
    let relation = reorder(&rel, &q.output_schema())?;
    Ok(JoinOutput { relation, stats })
}

/// Inclusive value range restricting the attribute at total-order
/// position 1 *inside* one root shard — the handle of **intra-value
/// parallelism**. For a fixed root binding, the case-b scan of the anchor
/// relation's section enumerates the level-1 values in sorted order; two
/// sub-shards with disjoint anchor ranges enumerate disjoint slices of
/// that scan (and of every later scan binding position 1), so they
/// produce disjoint row sets whose union is exactly the parent shard's —
/// the same §5.2 step-2a argument as root sharding, one level down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorRange {
    /// Smallest admitted value for the second attribute in the total order.
    pub lo: Value,
    /// Largest admitted value (inclusive).
    pub hi: Value,
}

impl AnchorRange {
    /// Does `v` fall inside this range?
    #[inline]
    #[must_use]
    pub fn contains(&self, v: Value) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// Inclusive value range restricting the attribute at total-order
/// position 0 — the handle the partition-parallel executor uses to carve
/// `Recursive-Join` into independent sub-joins. §5.2 (step 2a) is the
/// correctness argument: the trie subtree under each level-0 branch *is*
/// the search tree of that section, so runs restricted to disjoint root
/// ranges touch disjoint sets of output rows and need no coordination.
///
/// A shard may additionally carry an [`AnchorRange`] restricting the
/// attribute at total-order position 1: a *sub-shard* splitting the work
/// inside one heavy root value across workers. Sub-shards only make
/// sense for queries whose total order has ≥ 2 attributes — the planner
/// (`wcoj-exec`) enforces that; an anchored shard on a shorter order
/// would re-enumerate the full result in every sub-shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootShard {
    /// Smallest admitted value for the first attribute in the total order.
    pub lo: Value,
    /// Largest admitted value (inclusive).
    pub hi: Value,
    /// Optional sub-range over the attribute at total-order position 1
    /// (intra-value parallelism for heavy root values).
    pub anchor: Option<AnchorRange>,
}

impl RootShard {
    /// An unanchored shard covering `[lo, hi]` of the root attribute.
    #[inline]
    #[must_use]
    pub fn range(lo: Value, hi: Value) -> RootShard {
        RootShard {
            lo,
            hi,
            anchor: None,
        }
    }

    /// Does `v` fall inside this shard's root range?
    #[inline]
    #[must_use]
    pub fn contains(&self, v: Value) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Does `v` fall inside this shard's anchor range (trivially true for
    /// unanchored shards)?
    #[inline]
    #[must_use]
    pub fn anchor_contains(&self, v: Value) -> bool {
        self.anchor.is_none_or(|a| a.contains(v))
    }
}

/// An optional inclusive value interval restricting one scan level.
type LevelRange = Option<(Value, Value)>;

/// (ST3) restricted to per-level value ranges: visits each length-`extra`
/// extension of `node` whose level-0 value lies in `level0` and whose
/// level-1 value lies in `level1` (either filter may be absent), pruning
/// the descent at the filtered levels so out-of-range subtrees are never
/// walked (a per-tuple filter would make every shard pay for the whole
/// enumeration).
fn for_each_extension_filtered<S: SearchTree>(
    trie: &S,
    node: S::Node,
    extra: usize,
    level0: LevelRange,
    level1: LevelRange,
    mut f: impl FnMut(&[Value]),
) {
    if level0.is_none() && level1.is_none() {
        trie.for_each_extension(node, extra, f);
        return;
    }
    debug_assert!(extra >= 1);
    // Borrow the backend's contiguous child slice when it has one; only
    // copy the level out for backends without a flat layout.
    let children_owned;
    let children: &[Value] = match trie.child_slice(node) {
        Some(s) => s,
        None => {
            children_owned = trie.child_values(node);
            &children_owned
        }
    };
    let (lo0, hi0) = level0.unwrap_or((Value(u64::MIN), Value(u64::MAX)));
    let lo = children.partition_point(|&v| v < lo0);
    let hi = children.partition_point(|&v| v <= hi0);
    let mut buf: Vec<Value> = Vec::with_capacity(extra);
    for &v in &children[lo..hi] {
        let child = trie.descend(node, v).expect("listed child exists");
        buf.clear();
        buf.push(v);
        match level1 {
            _ if extra == 1 => f(&buf),
            None => trie.for_each_extension(child, extra - 1, |rest| {
                buf.truncate(1);
                buf.extend_from_slice(rest);
                f(&buf);
            }),
            Some((lo1, hi1)) => {
                let grand_owned;
                let grand: &[Value] = match trie.child_slice(child) {
                    Some(s) => s,
                    None => {
                        grand_owned = trie.child_values(child);
                        &grand_owned
                    }
                };
                let l1 = grand.partition_point(|&w| w < lo1);
                let h1 = grand.partition_point(|&w| w <= hi1);
                for &w in &grand[l1..h1] {
                    let gchild = trie.descend(child, w).expect("listed child exists");
                    buf.truncate(1);
                    buf.push(w);
                    if extra == 2 {
                        f(&buf);
                    } else {
                        trie.for_each_extension(gchild, extra - 2, |rest| {
                            buf.truncate(2);
                            buf.extend_from_slice(rest);
                            f(&buf);
                        });
                    }
                }
            }
        }
    }
}

pub(crate) struct Engine<'a, S: SearchTree> {
    pub(crate) q: &'a JoinQuery,
    pub(crate) tries: &'a [S],
    /// Per relation: its vertices sorted by total-order position (= the
    /// trie's level order).
    pub(crate) edge_vertices: &'a [Vec<usize>],
    /// vertex → total-order position.
    pub(crate) pos: &'a [usize],
    /// Current partial assignment `t_S` (plus scratch `t_W`, `t_{W⁻}`),
    /// indexed by vertex.
    pub(crate) bindings: Vec<Option<Value>>,
    /// When set, only tuples whose total-order-position-0 value lies in
    /// this range are enumerated (partition-parallel execution).
    pub(crate) shard: Option<RootShard>,
    pub(crate) stats: JoinStats,
}

impl<S: SearchTree> Engine<'_, S> {
    /// The `(level-0, level-1)` value-range filters a scan must honour,
    /// given the total-order positions bound by its first one or two
    /// levels. Partition-parallel runs restrict the attribute at position
    /// 0 to the shard's root range and (for anchored sub-shards) the
    /// attribute at position 1 to the anchor range; every attribute is
    /// bound by exactly one scan per enumeration path, so pruning at the
    /// binding scan restricts the run to exactly the shard's slice of the
    /// output. A scan binding position 0 over ≥ 2 levels always binds
    /// position 1 at its level 1 (TO2 forces `W = ∅` there, so the scan
    /// covers a prefix of the total order); position 1 not bound that way
    /// is bound by a scan starting at position 1, filtered at its level 0.
    fn scan_filters(
        &self,
        first_pos: usize,
        second_pos: Option<usize>,
    ) -> (LevelRange, LevelRange) {
        let Some(shard) = self.shard else {
            return (None, None);
        };
        let anchor = shard.anchor.map(|a| (a.lo, a.hi));
        match first_pos {
            0 => {
                let level1 = if second_pos == Some(1) { anchor } else { None };
                (Some((shard.lo, shard.hi)), level1)
            }
            1 => (anchor, None),
            _ => (None, None),
        }
    }

    /// The section node of relation `e`'s trie under the current bindings,
    /// restricted to `e`'s attributes with total-order position `< limit`
    /// — the paper's `R_e[t_{S∩e}]` where `S` is the order prefix below
    /// `limit`. `None` when the bound prefix is absent from the relation
    /// (the section is empty).
    fn section(&self, e: usize, limit: usize) -> Option<S::Node> {
        let trie = &self.tries[e];
        let mut node = trie.root();
        for &v in &self.edge_vertices[e] {
            if self.pos[v] >= limit {
                break;
            }
            let val = self.bindings[v].expect("prefix attribute must be bound");
            node = trie.descend(node, val)?;
        }
        Some(node)
    }

    /// Procedure 5. Returns rows over `univ(u)` in total-order sequence;
    /// `y[0..u.label]` is the fractional cover of `(univ(u), E_k)`.
    fn recursive_join(&mut self, u: &QpNode, y: &[f64]) -> Vec<Vec<Value>> {
        let k = u.label;
        debug_assert!(y.len() >= k);
        // univ in total-order sequence.
        let mut univ = u.univ.clone();
        univ.sort_by_key(|&v| self.pos[v]);
        if univ.is_empty() {
            return vec![vec![]];
        }
        let u_start = self.pos[univ[0]];

        if u.is_leaf || (u.left.is_none() && u.right.is_none()) {
            return self.leaf_join(u, k, &univ, u_start);
        }

        // lines 10–14: recurse left (or L = {t_S}).
        let l_rows: Vec<Vec<Value>> = match &u.left {
            Some(lc) => self.recursive_join(lc, &y[..k - 1]),
            None => vec![vec![]],
        };
        self.stats.intermediate_tuples += l_rows.len() as u64;

        // line 15: W = U ∖ e_k (in order), W⁻ = e_k ∩ U (in order).
        let ek = k - 1;
        let h = self.q.hypergraph();
        let w: Vec<usize> = univ
            .iter()
            .copied()
            .filter(|&v| !h.edge_contains(ek, v))
            .collect();
        let wminus: Vec<usize> = univ
            .iter()
            .copied()
            .filter(|&v| h.edge_contains(ek, v))
            .collect();
        if wminus.is_empty() {
            return l_rows; // line 17
        }
        // W precedes W⁻ in the order (TO2): the boundary position.
        let wm_start = self.pos[wminus[0]];
        debug_assert!(w.iter().all(|&v| self.pos[v] < wm_start));

        // Edges i < k that meet W⁻, with their W⁻ parts in order.
        let check_edges: Vec<(usize, Vec<usize>)> = (0..k - 1)
            .filter_map(|i| {
                let part: Vec<usize> = self.edge_vertices[i]
                    .iter()
                    .copied()
                    .filter(|&v| wminus.contains(&v))
                    .collect();
                if part.is_empty() {
                    None
                } else {
                    Some((i, part))
                }
            })
            .collect();

        let y_k = y[ek];
        // Case a recursion is only sound when the scaled vector covers
        // `(W⁻, E_{k−1})` — i.e. every W⁻ vertex lies in some earlier edge.
        // A valid cover forces y_k ≥ 1 otherwise (the paper's argument in
        // Lemma 5.6), but f64 round-off could report y_k = 1 − ε; this
        // structural guard makes the choice robust.
        let rc_coverable = u.right.is_some()
            && wminus
                .iter()
                .all(|&v| (0..k - 1).any(|i| h.edge_contains(i, v)));
        let mut ret: Vec<Vec<Value>> = Vec::new();

        for lrow in &l_rows {
            // bind t_W
            debug_assert_eq!(lrow.len(), w.len());
            for (&v, &val) in w.iter().zip(lrow) {
                self.bindings[v] = Some(val);
            }

            // anchor section size c_k = |π_{W⁻}(R_{e_k}[t_{S∩e_k}])|.
            let anchor = self.section(ek, wm_start);
            let c_k = anchor.map_or(0, |n| self.tries[ek].distinct_count(n, wminus.len()));

            // line 19/21: choose case.
            let mut case_a = false;
            if y_k < 1.0 && rc_coverable {
                // lhs = ∏_{i<k} c_i^{y_i/(1−y_k)} in log space.
                let mut lhs_log = 0.0f64;
                let mut lhs_zero = false;
                for (i, part) in &check_edges {
                    let yi = y[*i];
                    if yi <= 0.0 {
                        continue; // 0^0 = 1 convention
                    }
                    let c_i = self
                        .section(*i, wm_start)
                        .map_or(0, |n| self.tries[*i].distinct_count(n, part.len()));
                    if c_i == 0 {
                        lhs_zero = true;
                        break;
                    }
                    lhs_log += yi / (1.0 - y_k) * (c_i as f64).ln();
                }
                if c_k > 0 {
                    case_a = lhs_zero || lhs_log < (c_k as f64).ln();
                } else {
                    // empty anchor section: case b scans nothing, which is
                    // both correct and free.
                    case_a = false;
                }
            }

            if case_a {
                self.stats.case_a += 1;
                // lines 22–25: recurse right with the scaled cover, filter
                // against the anchor.
                let scaled: Vec<f64> = y[..k - 1].iter().map(|&v| v / (1.0 - y_k)).collect();
                let rc = u.right.as_ref().expect("case a requires rc");
                let z_rows = self.recursive_join(rc, &scaled);
                self.stats.intermediate_tuples += z_rows.len() as u64;
                if let Some(anchor_node) = anchor {
                    for z in z_rows {
                        // z is over W⁻ in order = e_k's next attributes.
                        if self.tries[ek].descend_tuple(anchor_node, &z).is_some() {
                            let mut row = lrow.clone();
                            row.extend_from_slice(&z);
                            ret.push(row);
                        }
                    }
                }
            } else {
                self.stats.case_b += 1;
                // lines 27–29: scan the anchor's section, probe the others.
                if let Some(anchor_node) = anchor {
                    // `tries` is `&'a [S]`: copying the field out lets the
                    // enumeration borrow a trie while the probe loop below
                    // still takes `&mut self` for the bindings.
                    let tries = self.tries;
                    let trie_ek = &tries[ek];
                    // Partition-parallel runs: when this scan binds the
                    // first (second) attribute of the total order, descend
                    // only the shard's root (anchor) range.
                    let (f0, f1) = self.scan_filters(wm_start, wminus.get(1).map(|&v| self.pos[v]));
                    // Scan rows share arity |W⁻|: materialise them
                    // back-to-back in one pooled flat buffer instead of a
                    // fresh Vec<Vec<_>> per (lrow, scan).
                    let arity = wminus.len();
                    with_value_buf(|wm_buf| {
                        for_each_extension_filtered(trie_ek, anchor_node, arity, f0, f1, |t| {
                            wm_buf.extend_from_slice(t);
                        });
                        for t_wm in wm_buf.chunks_exact(arity) {
                            // bind t_{W⁻}
                            for (&v, &val) in wminus.iter().zip(t_wm) {
                                self.bindings[v] = Some(val);
                            }
                            let ok = check_edges.iter().all(|(i, part)| {
                                match self.section(*i, wm_start) {
                                    None => false,
                                    Some(node) => {
                                        let vals: Vec<Value> = part
                                            .iter()
                                            .map(|&v| self.bindings[v].expect("W⁻ bound"))
                                            .collect();
                                        tries[*i].descend_tuple(node, &vals).is_some()
                                    }
                                }
                            });
                            for &v in &wminus {
                                self.bindings[v] = None;
                            }
                            if ok {
                                let mut row = lrow.clone();
                                row.extend_from_slice(t_wm);
                                ret.push(row);
                            }
                        }
                    });
                }
            }

            for &v in &w {
                self.bindings[v] = None;
            }
        }
        ret
    }

    /// Leaf case (Procedure 5, lines 3–9): `univ ⊆ e_i` for all `i ≤ k`
    /// (or `k = 1`): intersect the section-projections, scanning the
    /// smallest.
    fn leaf_join(
        &mut self,
        _u: &QpNode,
        k: usize,
        univ: &[usize],
        u_start: usize,
    ) -> Vec<Vec<Value>> {
        // Edges whose projection spans all of univ (at a paper-leaf: all of
        // them; at a defensive k=1 pseudo-leaf, the ones that matter).
        let full: Vec<usize> = (0..k)
            .filter(|&i| {
                univ.iter()
                    .all(|&v| self.q.hypergraph().edge_contains(i, v))
            })
            .collect();
        debug_assert!(
            !full.is_empty(),
            "leaf with no covering edge is unreachable under a valid cover"
        );
        if full.is_empty() {
            return Vec::new();
        }

        // argmin section size
        let mut best: Option<(usize, S::Node, usize)> = None;
        for &i in &full {
            let Some(node) = self.section(i, u_start) else {
                return Vec::new(); // some section empty → empty join
            };
            let c = self.tries[i].distinct_count(node, univ.len());
            if best.is_none_or(|(_, _, bc)| c < bc) {
                best = Some((i, node, c));
            }
        }
        let (j, j_node, _) = best.expect("full is non-empty");

        // Pre-resolve the other edges' section nodes.
        let mut others: Vec<(usize, S::Node)> = Vec::new();
        for &i in &full {
            if i == j {
                continue;
            }
            match self.section(i, u_start) {
                Some(node) => others.push((i, node)),
                None => return Vec::new(),
            }
        }

        let mut out = Vec::new();
        let tries = self.tries;
        let trie_j = &tries[j];
        // Partition-parallel runs: when this leaf binds the first (second)
        // attribute of the total order, descend only the shard's root
        // (anchor) range.
        let (f0, f1) = self.scan_filters(u_start, univ.get(1).map(|&v| self.pos[v]));
        // Candidates share arity |univ|: one pooled flat buffer, probed
        // with chunks_exact; only surviving rows are materialised.
        let arity = univ.len();
        with_value_buf(|cand_buf| {
            for_each_extension_filtered(trie_j, j_node, arity, f0, f1, |t| {
                cand_buf.extend_from_slice(t);
            });
            self.stats.intermediate_tuples += (cand_buf.len() / arity) as u64;
            for cand in cand_buf.chunks_exact(arity) {
                let ok = others
                    .iter()
                    .all(|&(i, node)| tries[i].descend_tuple(node, cand).is_some());
                if ok {
                    out.push(cand.to_vec());
                }
            }
        });
        out
    }
}
