//! Ahead-of-time preparation (paper Remark 5.2).
//!
//! The NPRR pipeline splits into a data-independent *plan* (QP tree, total
//! order) plus a per-relation *indexing* pass (search trees), and a cheap
//! evaluation. Remark 5.2 observes that paying the indexing once removes
//! the `O(n² Σ N_e)` term from subsequent evaluations. [`PreparedQuery`]
//! packages exactly that: build once, evaluate many times (e.g. with
//! different covers, or for every `C*(q, r)` class of a relaxed join).

use super::qptree::{build_qp_tree, QpNode};
use super::total_order::{positions, total_order};
use super::{assemble_output, Engine};
use crate::query::{JoinQuery, QueryError};
use crate::{JoinOutput, JoinStats};
use wcoj_hypergraph::cover::validate_cover;
use wcoj_storage::{Attr, Relation, TrieIndex};

/// A query prepared for repeated NPRR evaluation: the plan tree, the total
/// order, and all search trees, built once.
pub struct PreparedQuery {
    q: JoinQuery,
    root: Option<Box<QpNode>>,
    order: Vec<usize>,
    pos: Vec<usize>,
    tries: Vec<TrieIndex>,
    edge_vertices: Vec<Vec<usize>>,
}

impl PreparedQuery {
    /// Builds the plan and indexes for `relations`.
    ///
    /// # Errors
    /// [`QueryError`] on malformed input.
    pub fn new(relations: &[Relation]) -> Result<PreparedQuery, QueryError> {
        let q = JoinQuery::new(relations)?;
        let h = q.hypergraph();
        let root = build_qp_tree(h);
        let (order, pos) = match &root {
            Some(r) => {
                let order = total_order(r);
                let pos = positions(&order, h.num_vertices());
                (order, pos)
            }
            None => (Vec::new(), Vec::new()),
        };
        let mut tries = Vec::with_capacity(relations.len());
        let mut edge_vertices = Vec::with_capacity(relations.len());
        for (i, rel) in q.relations().iter().enumerate() {
            let mut vs: Vec<usize> = h.edge(i).to_vec();
            vs.sort_by_key(|&v| pos.get(v).copied().unwrap_or(0));
            let attr_order: Vec<Attr> = vs.iter().map(|&v| q.attr_of_vertex(v)).collect();
            tries.push(TrieIndex::build(rel, &attr_order)?);
            edge_vertices.push(vs);
        }
        Ok(PreparedQuery {
            q,
            root,
            order,
            pos,
            tries,
            edge_vertices,
        })
    }

    /// The underlying query.
    #[must_use]
    pub fn query(&self) -> &JoinQuery {
        &self.q
    }

    /// The total order of attributes (vertex ids) this preparation uses.
    #[must_use]
    pub fn total_order(&self) -> &[usize] {
        &self.order
    }

    /// Evaluates with the given fractional cover, or the LP optimum when
    /// `None`. Only the `O(mn·∏N^x)` evaluation cost is paid here.
    ///
    /// # Errors
    /// [`QueryError::BadCover`] for invalid covers; LP errors when solving
    /// for the optimum.
    pub fn evaluate(&self, cover: Option<&[f64]>) -> Result<JoinOutput, QueryError> {
        if self.q.relations().iter().any(Relation::is_empty) {
            return Ok(JoinOutput {
                relation: Relation::empty(self.q.output_schema()),
                stats: JoinStats {
                    algorithm_used: "nprr-prepared",
                    ..JoinStats::default()
                },
            });
        }
        let (x, log2_bound) = match cover {
            Some(x) => {
                validate_cover(self.q.hypergraph(), x)
                    .map_err(|e| QueryError::BadCover(e.to_string()))?;
                (
                    x.to_vec(),
                    wcoj_hypergraph::agm::log2_bound(&self.q.sizes(), x),
                )
            }
            None => {
                let sol = self.q.optimal_cover()?;
                let b = sol.log2_bound;
                (sol.x, b)
            }
        };
        let Some(root) = &self.root else {
            return Ok(JoinOutput {
                relation: Relation::nullary_true(),
                stats: JoinStats {
                    algorithm_used: "nprr-prepared",
                    log2_agm_bound: log2_bound,
                    cover: x,
                    ..JoinStats::default()
                },
            });
        };
        let mut engine = Engine {
            q: &self.q,
            tries: &self.tries,
            edge_vertices: &self.edge_vertices,
            pos: &self.pos,
            bindings: vec![None; self.q.hypergraph().num_vertices()],
            stats: JoinStats {
                algorithm_used: "nprr-prepared",
                log2_agm_bound: log2_bound,
                cover: x.clone(),
                ..JoinStats::default()
            },
        };
        let rows = engine.recursive_join(root, &x);
        assemble_output(&self.q, &self.order, rows, engine.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{join_with, naive, Algorithm};
    use wcoj_storage::ops::reorder;
    use wcoj_storage::{Schema, Value};

    fn random_rel(seed: u64, attrs: &[u32], n: usize, dom: u64) -> Relation {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| attrs.iter().map(|_| Value(rng.gen_range(0..dom))).collect())
            .collect();
        Relation::from_rows(Schema::of(attrs), rows).unwrap()
    }

    #[test]
    fn prepared_matches_one_shot() {
        let rels = [
            random_rel(1, &[0, 1], 50, 8),
            random_rel(2, &[1, 2], 50, 8),
            random_rel(3, &[0, 2], 50, 8),
        ];
        let prepared = PreparedQuery::new(&rels).unwrap();
        let a = prepared.evaluate(None).unwrap();
        let b = join_with(&rels, Algorithm::Nprr, None).unwrap();
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.stats.algorithm_used, "nprr-prepared");
    }

    #[test]
    fn repeated_evaluations_with_different_covers() {
        let rels = [
            random_rel(4, &[0, 1], 40, 6),
            random_rel(5, &[1, 2], 40, 6),
            random_rel(6, &[0, 2], 40, 6),
        ];
        let prepared = PreparedQuery::new(&rels).unwrap();
        let expect = naive::join(&rels);
        for cover in [
            None,
            Some(vec![1.0, 1.0, 1.0]),
            Some(vec![0.5, 0.5, 0.5]),
            Some(vec![1.0, 0.5, 0.5]),
        ] {
            let out = prepared.evaluate(cover.as_deref()).unwrap();
            let exp = reorder(&expect, out.relation.schema()).unwrap();
            assert_eq!(out.relation, exp, "cover {cover:?}");
        }
        // bad cover rejected without disturbing the preparation
        assert!(prepared.evaluate(Some(&[0.1, 0.1, 0.1])).is_err());
        assert!(prepared.evaluate(None).is_ok());
    }

    #[test]
    fn prepared_exposes_plan() {
        let rels = [
            random_rel(7, &[0, 1], 10, 4),
            random_rel(8, &[1, 2], 10, 4),
            random_rel(9, &[0, 2], 10, 4),
        ];
        let prepared = PreparedQuery::new(&rels).unwrap();
        assert_eq!(prepared.total_order().len(), 3);
        assert_eq!(prepared.query().relations().len(), 3);
    }

    #[test]
    fn empty_relation_short_circuits() {
        let rels = [
            random_rel(10, &[0, 1], 10, 4),
            Relation::empty(Schema::of(&[1, 2])),
        ];
        let prepared = PreparedQuery::new(&rels).unwrap();
        let out = prepared.evaluate(None).unwrap();
        assert!(out.relation.is_empty());
        assert_eq!(out.relation.arity(), 3);
    }
}
