//! Ahead-of-time preparation (paper Remark 5.2).
//!
//! The NPRR pipeline splits into a data-independent *plan* (QP tree, total
//! order) plus a per-relation *indexing* pass (search trees), and a cheap
//! evaluation. Remark 5.2 observes that paying the indexing once removes
//! the `O(n² Σ N_e)` term from subsequent evaluations. [`PreparedQuery`]
//! packages exactly that: build once, evaluate many times (e.g. with
//! different covers, for every `C*(q, r)` class of a relaxed join, or —
//! the partition-parallel executor's use — once per root shard on a
//! worker pool, sharing the indexes across threads).
//!
//! The preparation is generic over the [`SearchTree`] realisation
//! (sorted counted trie by default, hash tries via
//! [`PreparedQuery::<HashTrieIndex>::new_indexed`]).

use super::qptree::{build_qp_tree, QpNode};
use super::total_order::{positions, total_order};
use super::{assemble_output, Engine, RootShard};
use crate::query::{JoinQuery, QueryError};
use crate::{JoinOutput, JoinStats};
use std::sync::{Arc, OnceLock};
use wcoj_hypergraph::cover::validate_cover;
use wcoj_storage::{gallop, Attr, Relation, SearchTree, StorageError, TrieIndex, Value};

/// Intersects two sorted value lists (galloping/adaptive; differential
/// proptests in `wcoj-storage` pin it to the naive two-pointer merge).
fn intersect_sorted(a: &[Value], b: &[Value]) -> Vec<Value> {
    gallop::intersect(a, b)
}

/// Runs `f` on `node`'s branch labels, borrowing the backend's contiguous
/// slice when it has one and copying only as a fallback.
fn with_child_slice<S: SearchTree, R>(trie: &S, node: S::Node, f: impl FnOnce(&[Value]) -> R) -> R {
    match trie.child_slice(node) {
        Some(s) => f(s),
        None => f(&trie.child_values(node)),
    }
}

/// A query prepared for repeated NPRR evaluation: the plan tree, the total
/// order, and all search trees, built once.
///
/// Two data-dependent planning products are memoized on first use (the
/// indexes are immutable, so both are fixed at construction): the optimal
/// fractional cover (an LP solve) and the root candidate weights (a full
/// level-0 sweep) — with these cached, a stored `PreparedQuery` makes
/// repeat submissions pay only the `O(mn·∏N^x)` evaluation itself.
pub struct PreparedQuery<S: SearchTree = TrieIndex> {
    q: Arc<JoinQuery>,
    /// Effective per-relation cardinalities, in edge order. Equal to
    /// [`JoinQuery::sizes`] for batch preparations; a delta-backed
    /// preparation supplies merged-view sizes instead, so cover LPs and
    /// emptiness checks see the data the indexes actually serve (the
    /// raw relations inside `q` may then be stale bases).
    sizes: Vec<usize>,
    root: Option<Box<QpNode>>,
    order: Vec<usize>,
    pos: Vec<usize>,
    tries: Vec<S>,
    edge_vertices: Vec<Vec<usize>>,
    /// Memoized LP optimum: `(x, log2_bound)` of [`Self::resolve_cover`]
    /// with no user cover.
    opt_cover: OnceLock<(Vec<f64>, f64)>,
    /// Memoized [`Self::root_candidate_weights`] (the shard planner's
    /// per-submission input).
    root_weights: OnceLock<Vec<(Value, u64)>>,
}

impl PreparedQuery<TrieIndex> {
    /// Builds the plan and sorted-trie indexes for `relations`.
    ///
    /// # Errors
    /// [`QueryError`] on malformed input.
    pub fn new(relations: &[Relation]) -> Result<PreparedQuery, QueryError> {
        PreparedQuery::new_indexed(relations)
    }
}

impl<S: SearchTree> PreparedQuery<S> {
    /// Builds the plan and indexes for `relations` with an explicit
    /// [`SearchTree`] backend.
    ///
    /// # Errors
    /// [`QueryError`] on malformed input.
    pub fn new_indexed(relations: &[Relation]) -> Result<PreparedQuery<S>, QueryError> {
        Self::from_query(JoinQuery::new(relations)?)
    }

    /// Builds the plan and indexes for an already-assembled query,
    /// reusing its hypergraph and attribute numbering instead of
    /// re-deriving them.
    ///
    /// # Errors
    /// Storage errors from index construction (none expected for a
    /// well-formed [`JoinQuery`]).
    pub fn from_query(q: JoinQuery) -> Result<PreparedQuery<S>, QueryError> {
        let q = Arc::new(q);
        let rels = Arc::clone(&q);
        Self::from_shared(q, None, |i, order| S::build(&rels.relations()[i], order))
    }

    /// Builds the plan around an `Arc`-shared query, with a caller-supplied
    /// index builder — the delta-backed preparation path. `build` receives
    /// each edge index and its per-atom attribute order (edge vertices
    /// sorted by total-order position) and returns that atom's search
    /// tree; it can compose the index from shared parts instead of
    /// indexing `q`'s raw relations. `sizes`, when given, overrides the
    /// effective per-relation cardinalities (edge order) used for cover
    /// LPs and emptiness checks.
    ///
    /// Sharing the `Arc` keeps a delta rebuild `O(|delta|)`: the query,
    /// hypergraph, and plan tree are reused by reference; only the
    /// memoized cover/weights caches start cold.
    ///
    /// # Errors
    /// Propagates `build` failures.
    pub fn from_shared(
        q: Arc<JoinQuery>,
        sizes: Option<Vec<usize>>,
        mut build: impl FnMut(usize, &[Attr]) -> Result<S, StorageError>,
    ) -> Result<PreparedQuery<S>, QueryError> {
        let h = q.hypergraph();
        let root = build_qp_tree(h);
        let (order, pos) = match &root {
            Some(r) => {
                let order = total_order(r);
                let pos = positions(&order, h.num_vertices());
                (order, pos)
            }
            None => (Vec::new(), Vec::new()),
        };
        let mut tries = Vec::with_capacity(q.relations().len());
        let mut edge_vertices = Vec::with_capacity(q.relations().len());
        for i in 0..q.relations().len() {
            let mut vs: Vec<usize> = h.edge(i).to_vec();
            vs.sort_by_key(|&v| pos.get(v).copied().unwrap_or(0));
            let attr_order: Vec<Attr> = vs.iter().map(|&v| q.attr_of_vertex(v)).collect();
            tries.push(build(i, &attr_order)?);
            edge_vertices.push(vs);
        }
        let sizes = sizes.unwrap_or_else(|| q.sizes());
        Ok(PreparedQuery {
            q,
            sizes,
            root,
            order,
            pos,
            tries,
            edge_vertices,
            opt_cover: OnceLock::new(),
            root_weights: OnceLock::new(),
        })
    }

    /// The underlying query.
    #[must_use]
    pub fn query(&self) -> &JoinQuery {
        &self.q
    }

    /// The `Arc`-shared query, for preparations that reuse the plan shape
    /// (delta rebuilds clone this instead of re-deriving the hypergraph).
    #[must_use]
    pub fn shared_query(&self) -> &Arc<JoinQuery> {
        &self.q
    }

    /// Effective per-relation cardinalities, in edge order (see the field
    /// docs: merged-view sizes for delta-backed preparations).
    #[must_use]
    pub fn input_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// `true` iff some input relation is effectively empty — the
    /// degenerate case every evaluation path short-circuits. Consults the
    /// effective sizes, **not** the raw relations inside the query, so it
    /// stays correct when the indexes serve a delta view over stale bases.
    #[must_use]
    pub fn input_is_empty(&self) -> bool {
        self.sizes.contains(&0)
    }

    /// The per-atom search trees, in edge order.
    #[must_use]
    pub fn indexes(&self) -> &[S] {
        &self.tries
    }

    /// The total order of attributes (vertex ids) this preparation uses.
    #[must_use]
    pub fn total_order(&self) -> &[usize] {
        &self.order
    }

    /// Resolves an optional user cover into `(x, log2_bound)`: validates a
    /// supplied vector, or solves the LP for the optimum.
    ///
    /// # Errors
    /// [`QueryError::BadCover`] for invalid covers; LP errors otherwise.
    pub fn resolve_cover(&self, cover: Option<&[f64]>) -> Result<(Vec<f64>, f64), QueryError> {
        match cover {
            Some(x) => {
                validate_cover(self.q.hypergraph(), x)
                    .map_err(|e| QueryError::BadCover(e.to_string()))?;
                Ok((x.to_vec(), wcoj_hypergraph::agm::log2_bound(&self.sizes, x)))
            }
            None => {
                // Memoized: the LP optimum is a pure function of the
                // (immutable) query, so solve it at most once. Solved
                // over the effective sizes, which for a delta-backed
                // preparation differ from the raw base relations'.
                if let Some(cached) = self.opt_cover.get() {
                    return Ok(cached.clone());
                }
                let sol = wcoj_hypergraph::agm::optimal_cover(self.q.hypergraph(), &self.sizes)?;
                let pair = (sol.x, sol.log2_bound);
                let _ = self.opt_cover.set(pair.clone());
                Ok(pair)
            }
        }
    }

    /// The candidate values of the **root attribute** (total-order position
    /// 0): the sorted intersection of level 0 of every index whose relation
    /// contains that attribute. Every output tuple's root value lies in
    /// this list, so any partition of it induces a partition of the output
    /// — the shard-planning input of the parallel executor.
    ///
    /// Empty when the query has no attributes.
    #[must_use]
    pub fn root_candidates(&self) -> Vec<Value> {
        let Some(&root_vertex) = self.order.first() else {
            return Vec::new();
        };
        let mut acc: Option<Vec<Value>> = None;
        for (e, vs) in self.edge_vertices.iter().enumerate() {
            if vs.first() != Some(&root_vertex) {
                continue; // relation does not contain the root attribute
            }
            let trie = &self.tries[e];
            let prev = acc.take();
            acc = Some(with_child_slice(trie, trie.root(), |level0| match prev {
                None => level0.to_vec(),
                Some(prev) => intersect_sorted(&prev, level0),
            }));
        }
        acc.unwrap_or_default()
    }

    /// The candidate values of the **anchor attribute** (total-order
    /// position 1) under root binding `root`: the sorted intersection of
    /// the level-1 slices of every index whose trie starts `(root-attr,
    /// anchor-attr)` — the section the case-b anchor scan under a fixed
    /// root value enumerates — with the level-0 lists of every index whose
    /// trie starts with the anchor attribute. Every output tuple with root
    /// value `root` draws its anchor value from this list, so a partition
    /// of it induces a partition of the root value's output — the
    /// planning input for intra-value sub-shards ([`RootShard::anchor`]).
    ///
    /// Empty when the total order has fewer than two attributes (there is
    /// no anchor level to sub-shard on), or when `root` cannot produce
    /// output.
    #[must_use]
    pub fn anchor_candidates(&self, root: Value) -> Vec<Value> {
        let [root_vertex, anchor_vertex] = *self.order.get(..2).unwrap_or(&[]) else {
            return Vec::new();
        };
        let mut acc: Option<Vec<Value>> = None;
        for (e, vs) in self.edge_vertices.iter().enumerate() {
            let trie = &self.tries[e];
            let node = if vs.first() == Some(&anchor_vertex) {
                trie.root()
            } else if vs.first() == Some(&root_vertex) && vs.get(1) == Some(&anchor_vertex) {
                match trie.descend(trie.root(), root) {
                    Some(n) => n,
                    None => return Vec::new(), // root value absent: empty section
                }
            } else {
                continue; // relation does not constrain the anchor level
            };
            let prev = acc.take();
            acc = Some(with_child_slice(trie, node, |slice| match prev {
                None => slice.to_vec(),
                Some(prev) => intersect_sorted(&prev, slice),
            }));
        }
        acc.unwrap_or_default()
    }

    /// Like [`Self::root_candidates`], annotated with a per-candidate
    /// **work estimate**: `1 +` the sum, over all relations containing the
    /// root attribute, of the level-1 fanout of the trie node under that
    /// candidate (its number of distinct one-step extensions, an `O(1)`
    /// lookup from the precomputed counts). The fanout measures how wide
    /// the section `R_e[v]` opens up, which is what `Recursive-Join` pays
    /// for under root binding `v` — a far better cost proxy than "one
    /// candidate = one unit", which lets a single hot key pin a whole
    /// shard to one worker (Zipf-skewed data does exactly this).
    ///
    /// Candidates appear in the same sorted order as
    /// [`Self::root_candidates`]; weights are always `≥ 1`. Fanouts are
    /// summed with saturating arithmetic: an adversarially wide instance
    /// clamps a candidate's weight at `u64::MAX` instead of wrapping to a
    /// tiny value and degenerating the work-based shard plan.
    #[must_use]
    pub fn root_candidate_weights(&self) -> Vec<(Value, u64)> {
        let candidates = self.root_candidates();
        if candidates.is_empty() {
            return Vec::new();
        }
        let Some(&root_vertex) = self.order.first() else {
            return Vec::new();
        };
        // Relations containing the root attribute with at least one more
        // level below it (an arity-1 trie has no level-1 fanout to read).
        let root_edges: Vec<usize> = self
            .edge_vertices
            .iter()
            .enumerate()
            .filter(|(_, vs)| vs.first() == Some(&root_vertex) && vs.len() > 1)
            .map(|(e, _)| e)
            .collect();
        candidates
            .into_iter()
            .map(|v| {
                let fanout = root_edges
                    .iter()
                    .map(|&e| {
                        let trie = &self.tries[e];
                        trie.descend(trie.root(), v)
                            .map_or(0, |n| trie.distinct_count(n, 1) as u64)
                    })
                    .fold(0u64, u64::saturating_add);
                (v, fanout.saturating_add(1))
            })
            .collect()
    }

    /// [`Self::root_candidate_weights`], computed at most once per
    /// preparation and borrowed thereafter. The indexes never change after
    /// construction, so the weights can't go stale; the shard planner
    /// reads these on every submission of a cached prepared query.
    #[must_use]
    pub fn cached_root_weights(&self) -> &[(Value, u64)] {
        self.root_weights
            .get_or_init(|| self.root_candidate_weights())
    }

    /// Runs `Recursive-Join` restricted to `shard` (or unrestricted for
    /// `None`), returning raw rows over the total order plus the run's
    /// statistics. Does **not** short-circuit empty inputs or resolve
    /// covers — callers ([`Self::evaluate`], the parallel executor) do
    /// that once up front.
    ///
    /// Requires a valid cover `x`; shards of one parallel run must all use
    /// the *same* cover so per-tuple size checks are consistent.
    #[must_use]
    pub fn run_shard(
        &self,
        x: &[f64],
        log2_bound: f64,
        shard: Option<RootShard>,
    ) -> (Vec<Vec<Value>>, JoinStats) {
        let stats = JoinStats {
            algorithm_used: "nprr-prepared",
            log2_agm_bound: log2_bound,
            cover: x.to_vec(),
            ..JoinStats::default()
        };
        let Some(root) = &self.root else {
            // Nullary query: a single empty row (the join of non-empty
            // nullary relations), owned by the unrestricted/first shard.
            let rows = if shard.is_none_or(|s| s.contains(Value(0)) && s.anchor_contains(Value(0)))
            {
                vec![vec![]]
            } else {
                Vec::new()
            };
            return (rows, stats);
        };
        let mut engine = Engine {
            q: &self.q,
            tries: &self.tries,
            edge_vertices: &self.edge_vertices,
            pos: &self.pos,
            bindings: vec![None; self.q.hypergraph().num_vertices()],
            shard,
            stats,
        };
        let rows = engine.recursive_join(root, x);
        (rows, engine.stats)
    }

    /// Converts raw total-order rows (e.g. concatenated shard outputs)
    /// into a [`JoinOutput`] in the canonical attribute layout.
    ///
    /// # Errors
    /// Propagates storage errors (none expected for well-formed rows).
    pub fn assemble(
        &self,
        rows: Vec<Vec<Value>>,
        stats: JoinStats,
    ) -> Result<JoinOutput, QueryError> {
        if self.root.is_none() {
            let relation = if rows.is_empty() {
                Relation::empty(self.q.output_schema())
            } else {
                Relation::nullary_true()
            };
            return Ok(JoinOutput { relation, stats });
        }
        assemble_output(&self.q, &self.order, rows, stats)
    }

    /// Converts **one shard slot's** raw total-order rows into a relation
    /// over the canonical output schema, sorted and deduplicated *within
    /// the slot* — the unit an incremental consumer (a streaming `/rows`
    /// endpoint) emits as each slot settles.
    ///
    /// Shards partition the output by disjoint root ranges (and, for
    /// anchor sub-shards, disjoint anchor ranges within one root value),
    /// so per-slot deduplication equals global deduplication: a row's
    /// root/anchor values pin it to exactly one slot. Whether the
    /// *concatenation* of slot relations in slot order is additionally
    /// bit-identical to [`Self::assemble`]'s single relation is exactly
    /// [`Self::slots_stream_sorted`].
    ///
    /// # Errors
    /// Propagates storage errors (none expected for well-formed rows).
    pub fn assemble_slot(&self, rows: Vec<Vec<Value>>) -> Result<Relation, QueryError> {
        if self.root.is_none() {
            return Ok(if rows.is_empty() {
                Relation::empty(self.q.output_schema())
            } else {
                Relation::nullary_true()
            });
        }
        assemble_output(&self.q, &self.order, rows, JoinStats::default()).map(|out| out.relation)
    }

    /// `true` iff concatenating [`Self::assemble_slot`] relations in slot
    /// (= ascending root-range) order reproduces [`Self::assemble`]'s
    /// output **bit-identically, including row order**.
    ///
    /// The final output is sorted in output-schema lexicographic order;
    /// slot concatenation yields total-order-major order with the root
    /// attribute leading. The two agree exactly when the total order
    /// visits the attributes in the canonical (output-schema) sequence:
    /// then the root attribute is the primary sort key, slots ascend by
    /// root range (anchor sub-shards by anchor range, the secondary key),
    /// and each slot is internally sorted — so the concatenation is
    /// globally sorted and per-slot dedup is global dedup. When this is
    /// `false` (e.g. the triangle query's total order starts at the
    /// highest-degree vertex, not attribute 0), a consumer must buffer
    /// all slots and merge before comparing against the assembled output.
    #[must_use]
    pub fn slots_stream_sorted(&self) -> bool {
        let order_attrs: Vec<Attr> = self
            .order
            .iter()
            .map(|&v| self.q.attr_of_vertex(v))
            .collect();
        order_attrs.as_slice() == self.q.output_schema().attrs()
    }

    /// Evaluates with the given fractional cover, or the LP optimum when
    /// `None`. Only the `O(mn·∏N^x)` evaluation cost is paid here.
    ///
    /// # Errors
    /// [`QueryError::BadCover`] for invalid covers; LP errors when solving
    /// for the optimum.
    pub fn evaluate(&self, cover: Option<&[f64]>) -> Result<JoinOutput, QueryError> {
        if self.input_is_empty() {
            return Ok(JoinOutput {
                relation: Relation::empty(self.q.output_schema()),
                stats: JoinStats {
                    algorithm_used: "nprr-prepared",
                    ..JoinStats::default()
                },
            });
        }
        let (x, log2_bound) = self.resolve_cover(cover)?;
        let (rows, stats) = self.run_shard(&x, log2_bound, None);
        self.assemble(rows, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{join_with, naive, Algorithm};
    use wcoj_storage::ops::reorder;
    use wcoj_storage::{FlatIndex, HashTrieIndex, Schema, Value};

    fn random_rel(seed: u64, attrs: &[u32], n: usize, dom: u64) -> Relation {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| attrs.iter().map(|_| Value(rng.gen_range(0..dom))).collect())
            .collect();
        Relation::from_rows(Schema::of(attrs), rows).unwrap()
    }

    #[test]
    fn prepared_matches_one_shot() {
        let rels = [
            random_rel(1, &[0, 1], 50, 8),
            random_rel(2, &[1, 2], 50, 8),
            random_rel(3, &[0, 2], 50, 8),
        ];
        let prepared = PreparedQuery::new(&rels).unwrap();
        let a = prepared.evaluate(None).unwrap();
        let b = join_with(&rels, Algorithm::Nprr, None).unwrap();
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.stats.algorithm_used, "nprr-prepared");
    }

    #[test]
    fn hash_backend_matches_sorted_backend() {
        let rels = [
            random_rel(11, &[0, 1], 60, 7),
            random_rel(12, &[1, 2], 60, 7),
            random_rel(13, &[0, 2], 60, 7),
        ];
        let sorted = PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap();
        let hashed = PreparedQuery::<HashTrieIndex>::new_indexed(&rels).unwrap();
        let flat = PreparedQuery::<FlatIndex>::new_indexed(&rels).unwrap();
        let a = sorted.evaluate(None).unwrap();
        let b = hashed.evaluate(None).unwrap();
        let c = flat.evaluate(None).unwrap();
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.relation, c.relation);
        assert_eq!(sorted.root_candidates(), hashed.root_candidates());
        assert_eq!(sorted.root_candidates(), flat.root_candidates());
    }

    #[test]
    fn repeated_evaluations_with_different_covers() {
        let rels = [
            random_rel(4, &[0, 1], 40, 6),
            random_rel(5, &[1, 2], 40, 6),
            random_rel(6, &[0, 2], 40, 6),
        ];
        let prepared = PreparedQuery::new(&rels).unwrap();
        let expect = naive::join(&rels);
        for cover in [
            None,
            Some(vec![1.0, 1.0, 1.0]),
            Some(vec![0.5, 0.5, 0.5]),
            Some(vec![1.0, 0.5, 0.5]),
        ] {
            let out = prepared.evaluate(cover.as_deref()).unwrap();
            let exp = reorder(&expect, out.relation.schema()).unwrap();
            assert_eq!(out.relation, exp, "cover {cover:?}");
        }
        // bad cover rejected without disturbing the preparation
        assert!(prepared.evaluate(Some(&[0.1, 0.1, 0.1])).is_err());
        assert!(prepared.evaluate(None).is_ok());
    }

    #[test]
    fn prepared_exposes_plan() {
        let rels = [
            random_rel(7, &[0, 1], 10, 4),
            random_rel(8, &[1, 2], 10, 4),
            random_rel(9, &[0, 2], 10, 4),
        ];
        let prepared = PreparedQuery::new(&rels).unwrap();
        assert_eq!(prepared.total_order().len(), 3);
        assert_eq!(prepared.query().relations().len(), 3);
    }

    #[test]
    fn empty_relation_short_circuits() {
        let rels = [
            random_rel(10, &[0, 1], 10, 4),
            Relation::empty(Schema::of(&[1, 2])),
        ];
        let prepared = PreparedQuery::new(&rels).unwrap();
        let out = prepared.evaluate(None).unwrap();
        assert!(out.relation.is_empty());
        assert_eq!(out.relation.arity(), 3);
    }

    #[test]
    fn root_candidates_intersect_level0() {
        // Total order for the triangle is (1, 0, 2): root attribute 1,
        // contained in R(0,1) and S(1,2) but not T(0,2).
        let r = Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[9, 1], &[9, 2], &[9, 3]]);
        let s = Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 9], &[3, 9], &[4, 9]]);
        let t = Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[9, 9]]);
        let prepared = PreparedQuery::new(&[r, s, t]).unwrap();
        assert_eq!(prepared.total_order()[0], 1);
        // π₁(R) = {1,2,3}, π₁(S) = {2,3,4} → intersection {2,3}
        assert_eq!(prepared.root_candidates(), vec![Value(2), Value(3)]);
    }

    #[test]
    fn root_candidate_weights_reflect_fanout() {
        // Triangle total order is (1, 0, 2); R(0,1) and S(1,2) contain the
        // root attribute 1. Give root value 2 a much fatter section than
        // root value 3.
        let r = Relation::from_u32_rows(
            Schema::of(&[0, 1]),
            &[&[10, 2], &[11, 2], &[12, 2], &[13, 2], &[10, 3]],
        );
        let s = Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 7], &[2, 8], &[3, 7]]);
        let t = Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[10, 7]]);
        let prepared = PreparedQuery::new(&[r, s, t]).unwrap();
        assert_eq!(prepared.total_order()[0], 1);
        let weights = prepared.root_candidate_weights();
        assert_eq!(
            weights.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
            prepared.root_candidates(),
            "aligned with root_candidates"
        );
        // v=2: 4 extensions in R (reordered trie: 2 → {10,11,12,13}) plus
        // 2 in S; v=3: 1 in R plus 1 in S. Weight = 1 + fanout.
        assert_eq!(weights, vec![(Value(2), 7), (Value(3), 3)]);
        // Hash and flat backends agree (the flat backend computes fanouts
        // by offset-range arithmetic instead of node child counts; if the
        // weights diverged, so would shard plans and task budgets).
        let rels = [
            Relation::from_u32_rows(
                Schema::of(&[0, 1]),
                &[&[10, 2], &[11, 2], &[12, 2], &[13, 2], &[10, 3]],
            ),
            Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 7], &[2, 8], &[3, 7]]),
            Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[10, 7]]),
        ];
        let hashed = PreparedQuery::<HashTrieIndex>::new_indexed(&rels).unwrap();
        assert_eq!(hashed.root_candidate_weights(), weights);
        let flat = PreparedQuery::<FlatIndex>::new_indexed(&rels).unwrap();
        assert_eq!(flat.root_candidate_weights(), weights);
        // the memoized view is identical and stable across calls
        assert_eq!(flat.cached_root_weights(), weights.as_slice());
        assert_eq!(flat.cached_root_weights(), weights.as_slice());
    }

    #[test]
    fn root_candidate_weights_differential_across_backends() {
        // Random instances: Work-split weights must be identical across
        // all three backends, or shard plans silently diverge.
        for seed in 0..8u64 {
            let rels = [
                random_rel(seed * 3 + 100, &[0, 1], 70, 9),
                random_rel(seed * 3 + 101, &[1, 2], 70, 9),
                random_rel(seed * 3 + 102, &[0, 2], 70, 9),
            ];
            let sorted = PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap();
            let hashed = PreparedQuery::<HashTrieIndex>::new_indexed(&rels).unwrap();
            let flat = PreparedQuery::<FlatIndex>::new_indexed(&rels).unwrap();
            let want = sorted.root_candidate_weights();
            assert_eq!(hashed.root_candidate_weights(), want, "seed {seed}");
            assert_eq!(flat.root_candidate_weights(), want, "seed {seed}");
            assert_eq!(flat.cached_root_weights(), want.as_slice(), "seed {seed}");
            // anchor candidates agree for every root candidate too
            for &(v, _) in &want {
                assert_eq!(
                    flat.anchor_candidates(v),
                    sorted.anchor_candidates(v),
                    "seed {seed}, root {v:?}"
                );
            }
        }
    }

    #[test]
    fn delta_backend_matches_flat_over_materialized() {
        use wcoj_storage::{DeltaIndex, DeltaRelation};
        // A delta-backed preparation (stale bases + ins/del buffers,
        // composed via from_shared with merged-view sizes) must be
        // bit-identical to a batch FlatIndex preparation over the
        // materialized relations: same output, same root weights (shard
        // plans), same cover bound.
        for seed in 0..4u64 {
            let bases = [
                random_rel(seed * 7 + 200, &[0, 1], 60, 7),
                random_rel(seed * 7 + 201, &[1, 2], 60, 7),
                random_rel(seed * 7 + 202, &[0, 2], 60, 7),
            ];
            let mut deltas: Vec<DeltaRelation> =
                bases.iter().cloned().map(DeltaRelation::new).collect();
            for (i, d) in deltas.iter_mut().enumerate() {
                let extra = random_rel(seed * 7 + 210 + i as u64, &[0, 1], 25, 7);
                let rows: Vec<Vec<Value>> = extra.iter_rows().map(<[Value]>::to_vec).collect();
                d.insert_rows(&rows[..rows.len() / 2]).unwrap();
                d.delete_rows(&rows[rows.len() / 3..]).unwrap();
            }
            let merged: Vec<Relation> = deltas.iter().map(DeltaRelation::materialize).collect();
            let flat = PreparedQuery::<FlatIndex>::new_indexed(&merged).unwrap();

            // Stale bases inside the shared query; indexes serve the view.
            let stale: Vec<Relation> = deltas.iter().map(|d| (**d.base()).clone()).collect();
            let q = Arc::new(JoinQuery::new(&stale).unwrap());
            let sizes: Vec<usize> = deltas.iter().map(DeltaRelation::len).collect();
            let delta_prep = PreparedQuery::<DeltaIndex>::from_shared(
                Arc::clone(&q),
                Some(sizes),
                |i, order| {
                    let d = &deltas[i];
                    let base = Arc::new(FlatIndex::build(d.base(), order)?);
                    DeltaIndex::over(base, d.ins(), d.del(), order)
                },
            )
            .unwrap();

            let a = flat.evaluate(None).unwrap();
            let b = delta_prep.evaluate(None).unwrap();
            assert_eq!(a.relation, b.relation, "seed {seed}");
            assert_eq!(
                flat.root_candidate_weights(),
                delta_prep.root_candidate_weights(),
                "seed {seed}: shard-plan inputs diverge"
            );
            let (_, bound_a) = flat.resolve_cover(None).unwrap();
            let (_, bound_b) = delta_prep.resolve_cover(None).unwrap();
            assert!((bound_a - bound_b).abs() < 1e-12, "seed {seed}");
            assert_eq!(flat.input_is_empty(), delta_prep.input_is_empty());
        }
    }

    #[test]
    fn effective_sizes_short_circuit_a_delta_emptied_input() {
        use wcoj_storage::{DeltaIndex, DeltaRelation};
        // Base is non-empty, but deletions empty the view: the prepared
        // query must short-circuit on effective sizes, not base sizes.
        let base = random_rel(300, &[0, 1], 10, 4);
        let rows: Vec<Vec<Value>> = base.iter_rows().map(<[Value]>::to_vec).collect();
        let mut d = DeltaRelation::new(base.clone());
        d.delete_rows(&rows).unwrap();
        assert_eq!(d.len(), 0);
        let other = random_rel(301, &[1, 2], 10, 4);
        let deltas = [d, DeltaRelation::new(other.clone())];
        let stale = [base, other];
        let q = Arc::new(JoinQuery::new(&stale).unwrap());
        let sizes: Vec<usize> = deltas.iter().map(DeltaRelation::len).collect();
        let prep = PreparedQuery::<DeltaIndex>::from_shared(q, Some(sizes), |i, order| {
            let dr = &deltas[i];
            let b = Arc::new(FlatIndex::build(dr.base(), order)?);
            DeltaIndex::over(b, dr.ins(), dr.del(), order)
        })
        .unwrap();
        assert!(prep.input_is_empty());
        let out = prep.evaluate(None).unwrap();
        assert!(out.relation.is_empty());
    }

    #[test]
    fn resolve_cover_memoizes_the_lp_optimum() {
        let rels = [
            random_rel(30, &[0, 1], 40, 6),
            random_rel(31, &[1, 2], 40, 6),
            random_rel(32, &[0, 2], 40, 6),
        ];
        let prepared = PreparedQuery::new(&rels).unwrap();
        let (x1, b1) = prepared.resolve_cover(None).unwrap();
        let (x2, b2) = prepared.resolve_cover(None).unwrap();
        assert_eq!(x1, x2);
        assert!((b1 - b2).abs() < 1e-12);
        // a user-supplied cover bypasses (and does not disturb) the memo
        let (xu, _) = prepared.resolve_cover(Some(&[1.0, 1.0, 1.0])).unwrap();
        assert_eq!(xu, vec![1.0, 1.0, 1.0]);
        let (x3, _) = prepared.resolve_cover(None).unwrap();
        assert_eq!(x1, x3);
    }

    #[test]
    fn anchor_candidates_intersect_level1_slices() {
        use crate::nprr::AnchorRange;
        // Triangle total order is (1, 0, 2): root attribute 1 (position 0),
        // anchor attribute 0 (position 1). R(0,1)'s trie starts
        // (root, anchor); T(0,2)'s trie starts with the anchor; S(1,2)
        // does not constrain the anchor level at all.
        let r = Relation::from_u32_rows(
            Schema::of(&[0, 1]),
            &[&[10, 2], &[11, 2], &[12, 2], &[10, 3]],
        );
        let s = Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 7], &[2, 8], &[3, 7]]);
        let t = Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[10, 7], &[11, 8], &[13, 9]]);
        let rels = [r, s, t];
        let prepared = PreparedQuery::new(&rels).unwrap();
        assert_eq!(prepared.total_order()[0], 1);
        // under root 2: π₀(R[·,2]) = {10,11,12}, π₀(T) = {10,11,13}
        assert_eq!(
            prepared.anchor_candidates(Value(2)),
            vec![Value(10), Value(11)]
        );
        assert_eq!(prepared.anchor_candidates(Value(3)), vec![Value(10)]);
        // absent root value: empty section, no candidates
        assert!(prepared.anchor_candidates(Value(99)).is_empty());
        // hash backend agrees
        let hashed = PreparedQuery::<HashTrieIndex>::new_indexed(&rels).unwrap();
        assert_eq!(
            hashed.anchor_candidates(Value(2)),
            prepared.anchor_candidates(Value(2))
        );
        // a single-attribute order has no anchor level
        let unary = PreparedQuery::new(&[
            Relation::from_u32_rows(Schema::of(&[0]), &[&[1], &[2]]),
            Relation::from_u32_rows(Schema::of(&[0]), &[&[2], &[3]]),
        ])
        .unwrap();
        assert!(unary.anchor_candidates(Value(2)).is_empty());
        // anchored shards partition the hot root value's rows exactly
        let prepared = PreparedQuery::new(&rels).unwrap();
        let (x, b) = prepared.resolve_cover(None).unwrap();
        let (all, _) = prepared.run_shard(&x, b, Some(RootShard::range(Value(2), Value(2))));
        let lo_half = RootShard {
            lo: Value(2),
            hi: Value(2),
            anchor: Some(AnchorRange {
                lo: Value(u64::MIN),
                hi: Value(10),
            }),
        };
        let hi_half = RootShard {
            lo: Value(2),
            hi: Value(2),
            anchor: Some(AnchorRange {
                lo: Value(11),
                hi: Value(u64::MAX),
            }),
        };
        let (lo_rows, _) = prepared.run_shard(&x, b, Some(lo_half));
        let (hi_rows, _) = prepared.run_shard(&x, b, Some(hi_half));
        for row in &lo_rows {
            assert!(!hi_rows.contains(row), "sub-shards disjoint");
        }
        let mut merged: Vec<Vec<Value>> = lo_rows.into_iter().chain(hi_rows).collect();
        let mut expect = all;
        merged.sort_unstable();
        expect.sort_unstable();
        assert_eq!(merged, expect, "sub-shards union to the root value's rows");
    }

    #[test]
    fn slot_assembly_concatenates_to_the_output_when_order_is_canonical() {
        // A single-relation "join" keeps the total order canonical
        // (attribute 0 first), so slot-order concatenation of per-slot
        // assemblies must be bit-identical to the full assembled output.
        let rels = [random_rel(40, &[0, 1], 120, 16)];
        let prepared = PreparedQuery::new(&rels).unwrap();
        assert!(prepared.slots_stream_sorted());
        let full = prepared.evaluate(None).unwrap().relation;
        let (x, b) = prepared.resolve_cover(None).unwrap();
        let cands = prepared.root_candidates();
        assert!(cands.len() >= 4, "enough root values to shard");
        // Three slots in ascending root order with arbitrary cut points.
        let cuts = [cands[cands.len() / 3], cands[2 * cands.len() / 3]];
        let shards = [
            RootShard::range(Value(u64::MIN), cuts[0]),
            RootShard::range(Value(cuts[0].0 + 1), cuts[1]),
            RootShard::range(Value(cuts[1].0 + 1), Value(u64::MAX)),
        ];
        let mut streamed = Relation::empty(full.schema().clone());
        for shard in shards {
            let (rows, _) = prepared.run_shard(&x, b, Some(shard));
            let slot = prepared.assemble_slot(rows).unwrap();
            assert_eq!(slot.schema(), full.schema());
            for row in slot.iter_rows() {
                streamed.push_row(row).unwrap();
            }
        }
        // Plain concatenation — no global re-sort — matches exactly.
        assert_eq!(streamed, full);
    }

    #[test]
    fn slot_assembly_needs_a_merge_when_order_is_not_canonical() {
        // The triangle's total order is (1, 0, 2): slots stream in
        // root-attribute-major order, which is NOT the output's lex
        // order — the predicate must say so, and a buffered merge
        // (push + sort_dedup) must still reproduce the output.
        let rels = [
            random_rel(41, &[0, 1], 60, 8),
            random_rel(42, &[1, 2], 60, 8),
            random_rel(43, &[0, 2], 60, 8),
        ];
        let prepared = PreparedQuery::new(&rels).unwrap();
        assert_eq!(prepared.total_order()[0], 1, "root attribute is 1");
        assert!(!prepared.slots_stream_sorted());
        let full = prepared.evaluate(None).unwrap().relation;
        let (x, b) = prepared.resolve_cover(None).unwrap();
        let cands = prepared.root_candidates();
        assert!(!cands.is_empty());
        let mid = cands[cands.len() / 2];
        let mut merged = Relation::empty(full.schema().clone());
        for shard in [
            RootShard::range(Value(u64::MIN), mid),
            RootShard::range(Value(mid.0 + 1), Value(u64::MAX)),
        ] {
            let (rows, _) = prepared.run_shard(&x, b, Some(shard));
            let slot = prepared.assemble_slot(rows).unwrap();
            for row in slot.iter_rows() {
                merged.push_row(row).unwrap();
            }
        }
        merged.sort_dedup();
        assert_eq!(merged, full);
    }

    #[test]
    fn sharded_runs_union_to_full_output() {
        let rels = [
            random_rel(20, &[0, 1], 80, 10),
            random_rel(21, &[1, 2], 80, 10),
            random_rel(22, &[0, 2], 80, 10),
        ];
        let prepared = PreparedQuery::new(&rels).unwrap();
        let (x, b) = prepared.resolve_cover(None).unwrap();
        let (all_rows, _) = prepared.run_shard(&x, b, None);
        // Split the root domain at an arbitrary candidate boundary.
        let cands = prepared.root_candidates();
        assert!(!cands.is_empty());
        let mid = cands[cands.len() / 2];
        let low = prepared.run_shard(&x, b, Some(RootShard::range(Value(u64::MIN), mid)));
        let high = prepared.run_shard(
            &x,
            b,
            Some(RootShard::range(Value(mid.0 + 1), Value(u64::MAX))),
        );
        let mut merged: Vec<Vec<Value>> = low.0.into_iter().chain(high.0).collect();
        let mut expect = all_rows;
        merged.sort_unstable();
        expect.sort_unstable();
        assert_eq!(merged, expect);
    }
}
