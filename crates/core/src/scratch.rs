//! Reusable per-worker scratch buffers for the engine hot path.
//!
//! `Recursive-Join`'s case-b anchor scans and leaf intersections each
//! materialise a candidate row set before probing the other relations
//! (the probe loop mutates `Engine::bindings`, so it cannot run inside
//! the enumeration visitor). Allocating a fresh vector per scan — tens of
//! thousands of times per shard task — shows up directly on the service's
//! submission latency. This module keeps a small thread-local free list
//! of flat `Vec<Value>` buffers instead: rows of one scan all share an
//! arity, so a scan borrows one flat buffer, appends rows back-to-back,
//! and walks them with `chunks_exact`. Long-lived service workers reach
//! steady state after their first task and stop allocating here entirely.
//!
//! Acquisition nests (case-a recursion can reach another scan while an
//! outer scan's buffer is live); the free list makes that safe — each
//! nesting level just pops (or creates) its own buffer and returns it on
//! the way out.

use std::cell::RefCell;
use wcoj_storage::Value;

/// Free-list depth: deeper nestings than this simply allocate, and
/// anything popped beyond the cap is dropped instead of retained.
const MAX_POOLED: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<Vec<Value>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with an empty value buffer drawn from the thread-local pool,
/// returning the buffer (cleared, capacity retained) afterwards.
pub(crate) fn with_value_buf<R>(f: impl FnOnce(&mut Vec<Value>) -> R) -> R {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    debug_assert!(buf.is_empty());
    let out = f(&mut buf);
    buf.clear();
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_and_returned_empty() {
        let cap = with_value_buf(|b| {
            b.extend((0..100).map(Value));
            assert_eq!(b.len(), 100);
            b.capacity()
        });
        // Same thread: the next acquisition sees the retained capacity,
        // and starts empty.
        with_value_buf(|b| {
            assert!(b.is_empty());
            assert!(b.capacity() >= cap.min(100));
        });
    }

    #[test]
    fn nested_acquisitions_get_distinct_buffers() {
        with_value_buf(|outer| {
            outer.push(Value(1));
            with_value_buf(|inner| {
                assert!(inner.is_empty());
                inner.push(Value(2));
                with_value_buf(|third| assert!(third.is_empty()));
            });
            assert_eq!(outer.as_slice(), &[Value(1)]);
        });
    }

    #[test]
    fn deep_nesting_beyond_pool_cap_still_works() {
        fn nest(depth: usize) {
            if depth == 0 {
                return;
            }
            with_value_buf(|b| {
                b.push(Value(depth as u64));
                nest(depth - 1);
                assert_eq!(b.len(), 1);
            });
        }
        nest(MAX_POOLED * 2 + 3);
    }
}
