//! Reference semantics: left-deep pairwise hash joins in input order.
//!
//! This is the *test oracle* for every algorithm in this crate: it is built
//! exclusively on `wcoj_storage::ops::natural_join` (an independent code
//! path from the trie-based algorithms) and its output is, by definition of
//! natural join, the correct answer. It is **not** worst-case optimal —
//! §6's lower bounds apply to exactly this kind of plan — which is what the
//! experiment suite demonstrates.

use wcoj_storage::ops::natural_join;
use wcoj_storage::Relation;

/// `⋈` of all relations, left-deep in the given order.
///
/// An empty input list yields the nullary `true` relation (join identity).
#[must_use]
pub fn join(relations: &[Relation]) -> Relation {
    let mut acc = Relation::nullary_true();
    for r in relations {
        if acc.is_empty() {
            // already empty; result schema must still be the full union
            let mut schema = acc.schema().clone();
            for rest in relations {
                schema = schema.union(rest.schema());
            }
            return Relation::empty(schema);
        }
        acc = natural_join(&acc, r);
    }
    acc
}

/// Like [`join`] but also reports the maximum intermediate cardinality —
/// the quantity §6's lower bounds are about.
#[must_use]
pub fn join_with_max_intermediate(relations: &[Relation]) -> (Relation, usize) {
    let mut acc = Relation::nullary_true();
    let mut max_inter = 0usize;
    for r in relations {
        acc = natural_join(&acc, r);
        max_inter = max_inter.max(acc.len());
    }
    (acc, max_inter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::{Schema, Value};

    #[test]
    fn empty_list_is_true() {
        let j = join(&[]);
        assert_eq!(j.len(), 1);
        assert_eq!(j.arity(), 0);
    }

    #[test]
    fn triangle_join() {
        let r = Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[1, 3]]);
        let s = Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 4], &[3, 4]]);
        let t = Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[1, 4]]);
        let j = join(&[r, s, t]);
        assert_eq!(j.len(), 2);
        assert!(j.contains_row(&[Value(1), Value(2), Value(4)]));
        assert!(j.contains_row(&[Value(1), Value(3), Value(4)]));
    }

    #[test]
    fn empty_relation_short_circuits_with_full_schema() {
        let r = Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2]]);
        let e = Relation::empty(Schema::of(&[1, 2]));
        let j = join(&[r, e]);
        assert!(j.is_empty());
        assert_eq!(j.arity(), 3);
    }

    #[test]
    fn max_intermediate_reported() {
        // R × S blows up before T empties it.
        let r = Relation::from_u32_rows(Schema::of(&[0]), &[&[1], &[2], &[3]]);
        let s = Relation::from_u32_rows(Schema::of(&[1]), &[&[1], &[2], &[3]]);
        let t = Relation::empty(Schema::of(&[0, 1]));
        let (j, max_inter) = join_with_max_intermediate(&[r, s, t]);
        assert!(j.is_empty());
        assert_eq!(max_inter, 9);
    }
}
