//! Algorithm 1 (paper §4): the worst-case optimal join for
//! **Loomis–Whitney instances** — queries whose edges are all the
//! `(n−1)`-subsets of an `n`-attribute universe.
//!
//! The algorithm builds a binary tree whose leaves are the attributes;
//! `label(x) = V∖{x}` at a leaf and `label(x) = label(lc) ∩ label(rc)`
//! inside. Bottom-up it maintains, per node `x`:
//!
//! * `C(x)` — candidate *full* tuples already safely materialised
//!   (`|C(x)| ≤ (|leaves(x)|−1)·P` where `P = (∏N_e)^{1/(n−1)}` is the LW
//!   bound), and
//! * `D(x)` — a relation over `label(x)` of **postponed join keys**: a
//!   superset of `π_{label(x)}(J ∖ C(x))`.
//!
//! The key twist (the paper's "heavy/light" partitioning, Example 4.2): at
//! each node the shared keys `F` are split into the *light* set `G` — keys
//! whose fan-out is small enough that joining them now stays within the
//! size budget `P` — and the *heavy* remainder `F∖G`, which is postponed
//! into `D(x)` for an ancestor to resolve against a different relation.
//! The root joins whatever is left and a final **prune** against all input
//! relations yields exactly `J`.

use crate::query::{JoinQuery, QueryError};
use crate::{JoinOutput, JoinStats};
use wcoj_hypergraph::lw::lw_omitted_vertices;
use wcoj_storage::hash::{map_with_capacity, FxHashMap};
use wcoj_storage::ops::{natural_join, reorder, union};
use wcoj_storage::{Attr, Relation, Schema, Value};

/// Evaluates an LW-instance query with Algorithm 1.
///
/// # Errors
/// [`QueryError::AlgorithmMismatch`] when the query is not an LW instance.
pub fn join_lw(q: &JoinQuery) -> Result<JoinOutput, QueryError> {
    let Some(omitted) = lw_omitted_vertices(q.hypergraph()) else {
        return Err(QueryError::AlgorithmMismatch(
            "join_lw requires a Loomis-Whitney instance",
        ));
    };
    let n = q.hypergraph().num_vertices();

    // relation index for each leaf (the edge omitting that vertex).
    let mut rel_of_leaf = vec![usize::MAX; n];
    for (e, &v) in omitted.iter().enumerate() {
        rel_of_leaf[v] = e;
    }

    // P = (∏ N_e)^{1/(n−1)}, computed in log space.
    let log_p: f64 = q
        .sizes()
        .iter()
        .map(|&s| (s.max(1) as f64).ln())
        .sum::<f64>()
        / (n as f64 - 1.0);
    let p = log_p.exp();

    let mut stats = JoinStats {
        algorithm_used: "lw",
        cover: vec![1.0 / (n as f64 - 1.0); n],
        log2_agm_bound: log_p / std::f64::consts::LN_2,
        ..JoinStats::default()
    };

    let full_schema = q.output_schema();
    let leaves: Vec<usize> = (0..n).collect();
    let (c, _d) = lw_rec(q, &rel_of_leaf, &leaves, p, &full_schema, true, &mut stats)?;

    // Prune: keep tuples of C whose projection onto every edge is in R_e.
    let relation = prune(q, &c)?;
    Ok(JoinOutput { relation, stats })
}

/// Final pruning step: `J = {t ∈ C : π_e(t) ∈ R_e ∀e}`.
fn prune(q: &JoinQuery, c: &Relation) -> Result<Relation, QueryError> {
    let mut checkers: Vec<(Vec<usize>, wcoj_storage::RowSet)> = Vec::new();
    for rel in q.relations() {
        // positions of rel's attrs inside C's schema, in rel's storage order
        let pos = c.schema().positions_of(rel.schema().attrs())?;
        checkers.push((pos, rel.row_set()));
    }
    let mut out = Relation::empty(c.schema().clone());
    let mut key = Vec::new();
    for row in c.iter_rows() {
        let ok = checkers.iter().all(|(pos, set)| {
            key.clear();
            key.extend(pos.iter().map(|&p| row[p]));
            set.contains(&key)
        });
        if ok {
            out.push_row(row).expect("same arity");
        }
    }
    out.sort_dedup();
    Ok(out)
}

/// Recursive LW step over a set of leaves. Returns `(C, D)`.
fn lw_rec(
    q: &JoinQuery,
    rel_of_leaf: &[usize],
    leaves: &[usize],
    p: f64,
    full_schema: &Schema,
    is_root: bool,
    stats: &mut JoinStats,
) -> Result<(Relation, Relation), QueryError> {
    if leaves.len() == 1 {
        // Leaf: C = ∅ (over V), D = R_{V∖{leaf}}.
        let rel = q.relations()[rel_of_leaf[leaves[0]]].clone();
        return Ok((Relation::empty(full_schema.clone()), rel));
    }
    let mid = leaves.len() / 2;
    let (cl, dl) = lw_rec(q, rel_of_leaf, &leaves[..mid], p, full_schema, false, stats)?;
    let (cr, dr) = lw_rec(q, rel_of_leaf, &leaves[mid..], p, full_schema, false, stats)?;

    // label(x) = V ∖ leaves(x) = shared attributes of D_L and D_R.
    let label: Vec<Attr> = dl.schema().intersection(dr.schema());

    let (joined, d) = if is_root {
        // Root: label = ∅; C gets the full join, D = ∅.
        let j = natural_join(&dl, &dr);
        (j, Relation::empty(Schema::new(label).expect("distinct")))
    } else {
        split_heavy_light(&dl, &dr, &label, p)?
    };
    stats.intermediate_tuples += joined.len() as u64 + d.len() as u64;

    // C = joined ∪ C_L ∪ C_R, canonicalised to the full schema's layout.
    let joined = reorder(&joined, full_schema)?;
    let c = union(&union(&joined, &cl)?, &cr)?;
    Ok((c, d))
}

/// The heavy/light split at an internal, non-root node:
/// `F = π_label(D_L) ∩ π_label(D_R)`,
/// `G = {t ∈ F : |D_L[t]| + 1 ≤ ⌈P/|D_R|⌉}`,
/// returns `(D_L ⋈_G D_R, F ∖ G)` where `⋈_G` joins only on keys in `G`.
fn split_heavy_light(
    dl: &Relation,
    dr: &Relation,
    label: &[Attr],
    p: f64,
) -> Result<(Relation, Relation), QueryError> {
    let label_schema = Schema::new(label.to_vec())?;
    let out_schema = dl.schema().union(dr.schema());

    if dr.is_empty() || dl.is_empty() {
        // F = G = ∅ (paper's comment on line 5).
        return Ok((Relation::empty(out_schema), Relation::empty(label_schema)));
    }

    // Group rows by label key.
    let lpos = dl.schema().positions_of(label)?;
    let rpos = dr.schema().positions_of(label)?;
    let mut lgroups: FxHashMap<Vec<Value>, Vec<usize>> = map_with_capacity(dl.len());
    for (i, row) in dl.iter_rows().enumerate() {
        lgroups
            .entry(lpos.iter().map(|&p| row[p]).collect())
            .or_default()
            .push(i);
    }
    let mut rgroups: FxHashMap<Vec<Value>, Vec<usize>> = map_with_capacity(dr.len());
    for (i, row) in dr.iter_rows().enumerate() {
        rgroups
            .entry(rpos.iter().map(|&p| row[p]).collect())
            .or_default()
            .push(i);
    }

    // Fan-out threshold: |D_L[t]| + 1 ≤ ⌈P / |D_R|⌉.
    let threshold = (p / dr.len() as f64).ceil();

    // Output plan: D_L's columns then D_R's new ones.
    let out_attrs = out_schema.attrs().to_vec();
    let l_from: Vec<Option<usize>> = out_attrs.iter().map(|&a| dl.schema().position(a)).collect();
    let r_from: Vec<Option<usize>> = out_attrs.iter().map(|&a| dr.schema().position(a)).collect();

    let mut joined = Relation::empty(out_schema);
    let mut heavy = Relation::empty(label_schema);
    let mut buf = vec![Value(0); out_attrs.len()];
    for (key, lrows) in &lgroups {
        let Some(rrows) = rgroups.get(key) else {
            continue; // key not in F
        };
        let light = (lrows.len() as f64 + 1.0) <= threshold;
        if light {
            for &li in lrows {
                let lrow = dl.row(li);
                for &ri in rrows {
                    let rrow = dr.row(ri);
                    for (slot, (lf, rf)) in buf.iter_mut().zip(l_from.iter().zip(&r_from)) {
                        *slot = match (lf, rf) {
                            (Some(pl), _) => lrow[*pl],
                            (None, Some(pr)) => rrow[*pr],
                            (None, None) => unreachable!("attr in one side"),
                        };
                    }
                    joined.push_row(&buf).expect("arity consistent");
                }
            }
        } else {
            heavy.push_row(key).expect("label arity");
        }
    }
    joined.sort_dedup();
    heavy.sort_dedup();
    Ok((joined, heavy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::Algorithm;
    use wcoj_storage::ops::reorder as ops_reorder;

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    fn check_matches_naive(rels: &[Relation]) {
        let q = JoinQuery::new(rels).unwrap();
        let out = q.evaluate(Algorithm::Lw, None).unwrap();
        let expect = naive::join(rels);
        let expect = ops_reorder(&expect, out.relation.schema()).unwrap();
        assert_eq!(out.relation, expect);
    }

    #[test]
    fn triangle_small() {
        let r = rel(&[0, 1], &[&[1, 2], &[1, 3], &[2, 2]]);
        let s = rel(&[1, 2], &[&[2, 4], &[3, 4], &[2, 5]]);
        let t = rel(&[0, 2], &[&[1, 4], &[2, 5], &[1, 5]]);
        check_matches_naive(&[r, s, t]);
    }

    #[test]
    fn triangle_empty_output() {
        // Example 2.2's pathological instance (N = 4): all pairwise joins
        // are large but the triangle join is empty.
        let rows: Vec<Vec<Value>> = (1..=2u64)
            .map(|j| vec![Value(0), Value(j)])
            .chain((1..=2u64).map(|j| vec![Value(j), Value(0)]))
            .collect();
        let r = Relation::from_rows(Schema::of(&[0, 1]), rows.clone()).unwrap();
        let s = Relation::from_rows(Schema::of(&[1, 2]), rows.clone()).unwrap();
        let t = Relation::from_rows(Schema::of(&[0, 2]), rows).unwrap();
        let q = JoinQuery::new(&[r, s, t]).unwrap();
        let out = q.evaluate(Algorithm::Lw, None).unwrap();
        assert!(out.relation.is_empty());
    }

    #[test]
    fn lw4_instance() {
        // n = 4: relations on all 3-subsets of {0,1,2,3}.
        let r123 = rel(&[1, 2, 3], &[&[1, 1, 1], &[1, 2, 1], &[2, 2, 2]]);
        let r023 = rel(&[0, 2, 3], &[&[5, 1, 1], &[5, 2, 1], &[6, 2, 2]]);
        let r013 = rel(&[0, 1, 3], &[&[5, 1, 1], &[6, 2, 2], &[5, 1, 2]]);
        let r012 = rel(&[0, 1, 2], &[&[5, 1, 1], &[5, 1, 2], &[6, 2, 2]]);
        check_matches_naive(&[r123, r023, r013, r012]);
    }

    #[test]
    fn lw2_is_cross_product() {
        // n = 2: R({1}) × S({0}).
        let r1 = rel(&[1], &[&[10], &[20]]);
        let r0 = rel(&[0], &[&[1], &[2], &[3]]);
        let q = JoinQuery::new(&[r1, r0]).unwrap();
        let out = q.evaluate(Algorithm::Lw, None).unwrap();
        assert_eq!(out.relation.len(), 6);
    }

    #[test]
    fn rejects_non_lw() {
        let r = rel(&[0, 1], &[&[1, 2]]);
        let s = rel(&[1, 2], &[&[2, 3]]);
        let q = JoinQuery::new(&[r, s]).unwrap();
        assert!(matches!(
            q.evaluate(Algorithm::Lw, None),
            Err(QueryError::AlgorithmMismatch(_))
        ));
    }

    #[test]
    fn heavy_keys_are_postponed_not_lost() {
        // Construct skew: value 0 in the join key has huge fan-out.
        let mut rr = Vec::new();
        for j in 0..20u32 {
            rr.push(vec![Value(0), Value(u64::from(j))]); // heavy B=... wait A=0 heavy
            rr.push(vec![Value(u64::from(j + 1)), Value(50)]);
        }
        let r = Relation::from_rows(Schema::of(&[0, 1]), rr.clone()).unwrap();
        let s = Relation::from_rows(Schema::of(&[1, 2]), rr.clone()).unwrap();
        let t = Relation::from_rows(Schema::of(&[0, 2]), rr).unwrap();
        check_matches_naive(&[r, s, t]);
    }

    #[test]
    fn output_within_agm_budget_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..10 {
            let n = 60usize;
            let mk = |rng: &mut rand::rngs::StdRng| {
                let rows: Vec<Vec<Value>> = (0..n)
                    .map(|_| {
                        vec![
                            Value(rng.gen_range(0..12u64)),
                            Value(rng.gen_range(0..12u64)),
                        ]
                    })
                    .collect();
                rows
            };
            let r = Relation::from_rows(Schema::of(&[0, 1]), mk(&mut rng)).unwrap();
            let s = Relation::from_rows(Schema::of(&[1, 2]), mk(&mut rng)).unwrap();
            let t = Relation::from_rows(Schema::of(&[0, 2]), mk(&mut rng)).unwrap();
            let sizes = [r.len(), s.len(), t.len()];
            let bound = (sizes.iter().map(|&x| x as f64).product::<f64>()).sqrt();
            let q = JoinQuery::new(&[r.clone(), s.clone(), t.clone()]).unwrap();
            let out = q.evaluate(Algorithm::Lw, None).unwrap();
            assert!(
                (out.relation.len() as f64) <= bound + 1e-9,
                "trial {trial}: AGM violated"
            );
            check_matches_naive(&[r, s, t]);
        }
    }
}
