//! The algorithmic Bollobás–Thomason / Loomis–Whitney inequality
//! (paper §3, Theorem 3.1/3.4 and Corollary 5.3).
//!
//! Setting: a finite set `S ⊂ ℤⁿ` is known only through its projections
//! `S_F` onto a family `F` of coordinate subsets in which every coordinate
//! occurs in exactly `d` members. The discrete BT inequality bounds
//! `|S|^d ≤ ∏_F |S_F|`; Corollary 5.3 makes it *algorithmic*: the join of
//! the projections — a superset of `S` that attains the bound — is
//! computable in time `Õ((∏|S_F|)^{1/d})` by running the NPRR algorithm
//! with the uniform cover `x_F = 1/d`.

use crate::nprr::join_nprr;
use crate::query::{JoinQuery, QueryError};
use wcoj_hypergraph::lw::bt_regularity;
use wcoj_storage::Relation;

/// Result of a BT reconstruction.
#[derive(Debug, Clone)]
pub struct BtOutput {
    /// `⋈_F S_F` — the certified superset of `S` whose size obeys the BT
    /// bound.
    pub relation: Relation,
    /// The regularity degree `d`.
    pub d: usize,
    /// `log₂ ∏_F |S_F|^{1/d}` — the BT bound.
    pub log2_bound: f64,
}

/// Joins the projections of a `d`-regular family with the uniform cover
/// `1/d` (Corollary 5.3).
///
/// # Errors
/// [`QueryError::AlgorithmMismatch`] if the family is not `d`-regular for
/// any `d ≥ 1`.
pub fn reconstruct(projections: &[Relation]) -> Result<BtOutput, QueryError> {
    let q = JoinQuery::new(projections)?;
    let Some(d) = bt_regularity(q.hypergraph()) else {
        return Err(QueryError::AlgorithmMismatch(
            "BT reconstruction needs every coordinate in exactly d projections",
        ));
    };
    let x = vec![1.0 / d as f64; projections.len()];
    let log2_bound: f64 = projections
        .iter()
        .map(|r| (r.len().max(1) as f64).log2())
        .sum::<f64>()
        / d as f64;
    let out = join_nprr(&q, &x, log2_bound)?;
    Ok(BtOutput {
        relation: out.relation,
        d,
        log2_bound,
    })
}

/// Checks the BT inequality `|S|^d ≤ ∏ |S_F|` for a concrete point set and
/// its projections (tested against the reconstruction).
#[must_use]
pub fn inequality_holds(s_size: usize, d: usize, projection_sizes: &[usize]) -> bool {
    // compare in log space: d·log|S| ≤ Σ log|S_F|
    if s_size == 0 {
        return true;
    }
    let lhs = d as f64 * (s_size as f64).ln();
    let rhs: f64 = projection_sizes
        .iter()
        .map(|&p| (p.max(1) as f64).ln())
        .sum();
    lhs <= rhs + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::ops::project;
    use wcoj_storage::{Attr, Relation, Schema, Value};

    /// Builds a point set in ℤⁿ and its projections onto the LW family.
    fn lw_projections(points: &Relation) -> Vec<Relation> {
        let n = points.arity();
        (0..n)
            .map(|omit| {
                let keep: Vec<Attr> = points
                    .schema()
                    .attrs()
                    .iter()
                    .copied()
                    .filter(|a| a.index() != omit)
                    .collect();
                project(points, &keep).unwrap()
            })
            .collect()
    }

    fn random_points(seed: u64, n_dims: usize, count: usize, dom: u64) -> Relation {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let schema = Schema::new((0..n_dims as u32).map(Attr).collect()).unwrap();
        let rows: Vec<Vec<Value>> = (0..count)
            .map(|_| (0..n_dims).map(|_| Value(rng.gen_range(0..dom))).collect())
            .collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn lw3_reconstruction_contains_s_and_obeys_bound() {
        let s = random_points(1, 3, 50, 6);
        let projs = lw_projections(&s);
        let out = reconstruct(&projs).unwrap();
        assert_eq!(out.d, 2);
        // S ⊆ ⋈ of its projections
        for row in s.iter_rows() {
            assert!(out.relation.contains_row(row));
        }
        // |⋈|^d ≤ ∏|S_F| (the join attains the bound; S itself also obeys)
        let sizes: Vec<usize> = projs.iter().map(Relation::len).collect();
        assert!(inequality_holds(out.relation.len(), out.d, &sizes));
        assert!(inequality_holds(s.len(), out.d, &sizes));
    }

    #[test]
    fn lw4_reconstruction() {
        let s = random_points(2, 4, 40, 4);
        let projs = lw_projections(&s);
        let out = reconstruct(&projs).unwrap();
        assert_eq!(out.d, 3);
        for row in s.iter_rows() {
            assert!(out.relation.contains_row(row));
        }
        let sizes: Vec<usize> = projs.iter().map(Relation::len).collect();
        assert!(inequality_holds(out.relation.len(), out.d, &sizes));
    }

    #[test]
    fn grid_attains_the_bound_exactly() {
        // S = full k×k×k grid: projections are k² each, |S| = k³ = (k²)^{3/2}
        // … i.e. |S|² = ∏|S_F| with equality.
        let k = 4u64;
        let schema = Schema::of(&[0, 1, 2]);
        let rows: Vec<Vec<Value>> = (0..k)
            .flat_map(|a| {
                (0..k).flat_map(move |b| (0..k).map(move |c| vec![Value(a), Value(b), Value(c)]))
            })
            .collect();
        let s = Relation::from_rows(schema, rows).unwrap();
        let projs = lw_projections(&s);
        let out = reconstruct(&projs).unwrap();
        assert_eq!(out.relation.len(), (k * k * k) as usize);
        let prod: usize = projs.iter().map(Relation::len).product();
        assert_eq!(out.relation.len().pow(2), prod);
    }

    #[test]
    fn regular_non_lw_family() {
        // F = {{0,1},{1,2},{2,3},{3,0}} — the 4-cycle, 2-regular.
        let s = random_points(3, 4, 30, 4);
        let fam = [[0u32, 1], [1, 2], [2, 3], [3, 0]];
        let projs: Vec<Relation> = fam
            .iter()
            .map(|pair| project(&s, &[Attr(pair[0]), Attr(pair[1])]).unwrap())
            .collect();
        let out = reconstruct(&projs).unwrap();
        assert_eq!(out.d, 2);
        for row in s.iter_rows() {
            assert!(out.relation.contains_row(row));
        }
        let sizes: Vec<usize> = projs.iter().map(Relation::len).collect();
        assert!(inequality_holds(out.relation.len(), out.d, &sizes));
    }

    #[test]
    fn irregular_family_rejected() {
        let s = random_points(4, 3, 10, 4);
        let projs = vec![
            project(&s, &[Attr(0), Attr(1)]).unwrap(),
            project(&s, &[Attr(1), Attr(2)]).unwrap(),
        ];
        assert!(matches!(
            reconstruct(&projs),
            Err(QueryError::AlgorithmMismatch(_))
        ));
    }

    #[test]
    fn inequality_helper_edges() {
        assert!(inequality_holds(0, 2, &[0, 0, 0]));
        assert!(inequality_holds(8, 2, &[4, 4, 4]));
        assert!(!inequality_holds(9, 2, &[4, 4, 4]));
    }
}
