//! Cross-algorithm consistency tests: every algorithm must agree with the
//! naive oracle on every query shape it claims to support, and outputs must
//! respect the AGM bound.

use crate::query::JoinQuery;
use crate::{agm_cover, join, join_with, naive, Algorithm, QueryError};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use wcoj_storage::ops::reorder;
use wcoj_storage::{Relation, Schema, Value};

fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
    Relation::from_u32_rows(Schema::of(schema), rows)
}

fn random_rel(rng: &mut rand::rngs::StdRng, attrs: &[u32], n: usize, dom: u64) -> Relation {
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|_| attrs.iter().map(|_| Value(rng.gen_range(0..dom))).collect())
        .collect();
    Relation::from_rows(Schema::of(attrs), rows).unwrap()
}

fn assert_matches_naive(rels: &[Relation], algo: Algorithm, ctx: &str) {
    let out = join_with(rels, algo, None).unwrap_or_else(|e| panic!("{ctx}: {algo:?} failed: {e}"));
    let expect = naive::join(rels);
    let expect = reorder(&expect, out.relation.schema()).unwrap();
    assert_eq!(out.relation, expect, "{ctx}: {algo:?} disagrees with naive");
}

#[test]
fn doc_example_triangle() {
    let r = rel(&[0, 1], &[&[1, 2], &[1, 3]]);
    let s = rel(&[1, 2], &[&[2, 4], &[3, 4]]);
    let t = rel(&[0, 2], &[&[1, 4]]);
    let out = join(&[r, s, t]).unwrap();
    assert_eq!(out.len(), 2);
    assert!(out.contains_row(&[Value(1), Value(2), Value(4)]));
    assert!(out.contains_row(&[Value(1), Value(3), Value(4)]));
}

#[test]
fn all_algorithms_agree_on_triangles() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(100);
    for trial in 0..10 {
        let r = random_rel(&mut rng, &[0, 1], 50, 9);
        let s = random_rel(&mut rng, &[1, 2], 50, 9);
        let t = random_rel(&mut rng, &[0, 2], 50, 9);
        let rels = [r, s, t];
        for algo in [
            Algorithm::Nprr,
            Algorithm::Lw,
            Algorithm::GraphJoin,
            Algorithm::Auto,
        ] {
            assert_matches_naive(&rels, algo, &format!("triangle trial {trial}"));
        }
    }
}

#[test]
fn nprr_handles_figure2_query() {
    // The paper's §5.2 worked example: 6 attributes, 5 relations.
    let mut rng = rand::rngs::StdRng::seed_from_u64(200);
    for trial in 0..5 {
        let rels = [
            random_rel(&mut rng, &[0, 1, 3, 4], 40, 4),
            random_rel(&mut rng, &[0, 2, 3, 5], 40, 4),
            random_rel(&mut rng, &[0, 1, 2], 40, 4),
            random_rel(&mut rng, &[1, 3, 5], 40, 4),
            random_rel(&mut rng, &[2, 4, 5], 40, 4),
        ];
        assert_matches_naive(&rels, Algorithm::Nprr, &format!("figure2 trial {trial}"));
    }
}

#[test]
fn example_2_2_instance_is_empty_everywhere() {
    // The paper's pathological triangle family: any pairwise join is
    // Θ(N²/4) but the triangle is empty.
    let n = 8u64;
    let rows: Vec<Vec<Value>> = (1..=n / 2)
        .map(|j| vec![Value(0), Value(j)])
        .chain((1..=n / 2).map(|j| vec![Value(j), Value(0)]))
        .collect();
    let r = Relation::from_rows(Schema::of(&[0, 1]), rows.clone()).unwrap();
    let s = Relation::from_rows(Schema::of(&[1, 2]), rows.clone()).unwrap();
    let t = Relation::from_rows(Schema::of(&[0, 2]), rows).unwrap();
    assert_eq!(r.len(), n as usize);
    for algo in [
        Algorithm::Nprr,
        Algorithm::Lw,
        Algorithm::GraphJoin,
        Algorithm::Naive,
    ] {
        let out = join_with(&[r.clone(), s.clone(), t.clone()], algo, None).unwrap();
        assert!(out.relation.is_empty(), "{algo:?} must report empty");
    }
    // while the pairwise join is quadratic:
    let pairwise = wcoj_storage::ops::natural_join(&r, &s);
    assert_eq!(pairwise.len(), (n * n / 4 + n / 2) as usize);
}

#[test]
fn nprr_output_within_agm_bound_random_queries() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(300);
    for trial in 0..12 {
        let shapes: &[&[&[u32]]] = &[
            &[&[0, 1], &[1, 2], &[0, 2]],
            &[&[0, 1, 2], &[2, 3], &[0, 3]],
            &[&[0, 1], &[1, 2], &[2, 3], &[3, 0]],
            &[&[0, 1, 2], &[1, 2, 3], &[0, 3]],
        ];
        let shape = shapes[trial % shapes.len()];
        let rels: Vec<Relation> = shape
            .iter()
            .map(|attrs| random_rel(&mut rng, attrs, 60, 6))
            .collect();
        let out = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let bound = out.stats.log2_agm_bound;
        if !out.relation.is_empty() {
            assert!(
                (out.relation.len() as f64).log2() <= bound + 1e-6,
                "trial {trial}: output {} exceeds AGM bound 2^{bound}",
                out.relation.len()
            );
        }
        assert_matches_naive(&rels, Algorithm::Nprr, &format!("agm trial {trial}"));
    }
}

#[test]
fn nprr_with_explicit_cover() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(400);
    let r = random_rel(&mut rng, &[0, 1], 30, 6);
    let s = random_rel(&mut rng, &[1, 2], 30, 6);
    let t = random_rel(&mut rng, &[0, 2], 30, 6);
    let rels = [r, s, t];
    // the all-ones cover is valid but loose
    let out = join_with(&rels, Algorithm::Nprr, Some(&[1.0, 1.0, 1.0])).unwrap();
    let expect = naive::join(&rels);
    let expect = reorder(&expect, out.relation.schema()).unwrap();
    assert_eq!(out.relation, expect);
    // the half cover
    let out2 = join_with(&rels, Algorithm::Nprr, Some(&[0.5, 0.5, 0.5])).unwrap();
    assert_eq!(out2.relation, expect);
    // a non-cover is rejected
    assert!(matches!(
        join_with(&rels, Algorithm::Nprr, Some(&[0.1, 0.1, 0.1])),
        Err(QueryError::BadCover(_))
    ));
}

#[test]
fn empty_input_short_circuits() {
    let r = rel(&[0, 1], &[&[1, 2]]);
    let e = Relation::empty(Schema::of(&[1, 2]));
    let out = join_with(&[r, e], Algorithm::Auto, None).unwrap();
    assert!(out.relation.is_empty());
    assert_eq!(out.relation.arity(), 3);
    assert_eq!(out.stats.algorithm_used, "empty-input-short-circuit");
}

#[test]
fn empty_query_rejected() {
    assert!(matches!(join(&[]), Err(QueryError::EmptyQuery)));
}

#[test]
fn single_relation_query() {
    let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
    let out = join(std::slice::from_ref(&r)).unwrap();
    assert_eq!(out, r);
    let out2 = join_with(std::slice::from_ref(&r), Algorithm::Nprr, None).unwrap();
    assert_eq!(out2.relation, r);
}

#[test]
fn nullary_relations() {
    let t = Relation::nullary_true();
    let r = rel(&[0], &[&[1], &[2]]);
    let out = join(&[t.clone(), r.clone()]).unwrap();
    assert_eq!(out, r);
    let out2 = join(&[t.clone(), t]).unwrap();
    assert_eq!(out2.len(), 1);
}

#[test]
fn disconnected_query_is_cross_product() {
    let r = rel(&[0], &[&[1], &[2]]);
    let s = rel(&[1], &[&[5], &[6], &[7]]);
    let out = join_with(&[r, s], Algorithm::Nprr, None).unwrap();
    assert_eq!(out.relation.len(), 6);
}

#[test]
fn chain_and_star_queries_match_naive() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(500);
    for trial in 0..6 {
        // chain R(0,1) ⋈ S(1,2) ⋈ T(2,3)
        let chain = [
            random_rel(&mut rng, &[0, 1], 40, 7),
            random_rel(&mut rng, &[1, 2], 40, 7),
            random_rel(&mut rng, &[2, 3], 40, 7),
        ];
        assert_matches_naive(&chain, Algorithm::Nprr, &format!("chain {trial}"));
        assert_matches_naive(&chain, Algorithm::GraphJoin, &format!("chain {trial}"));
        // star
        let star = [
            random_rel(&mut rng, &[0, 1], 40, 7),
            random_rel(&mut rng, &[0, 2], 40, 7),
            random_rel(&mut rng, &[0, 3], 40, 7),
        ];
        assert_matches_naive(&star, Algorithm::Nprr, &format!("star {trial}"));
        assert_matches_naive(&star, Algorithm::GraphJoin, &format!("star {trial}"));
    }
}

#[test]
fn hypergraph_shapes_with_overlapping_big_edges() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(600);
    for trial in 0..6 {
        let rels = [
            random_rel(&mut rng, &[0, 1, 2, 3], 35, 3),
            random_rel(&mut rng, &[2, 3, 4], 35, 3),
            random_rel(&mut rng, &[0, 4], 35, 3),
            random_rel(&mut rng, &[1, 4], 35, 3),
        ];
        assert_matches_naive(&rels, Algorithm::Nprr, &format!("overlap {trial}"));
    }
}

#[test]
fn repeated_identical_schemas() {
    // Two relations over the same attributes: join = intersection.
    let a = rel(&[0, 1], &[&[1, 2], &[3, 4], &[5, 6]]);
    let b = rel(&[0, 1], &[&[3, 4], &[5, 6], &[7, 8]]);
    let out = join_with(&[a, b], Algorithm::Nprr, None).unwrap();
    assert_eq!(out.relation.len(), 2);
}

#[test]
fn lw5_matches_naive() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(700);
    let rels: Vec<Relation> = (0..5u32)
        .map(|omit| {
            let attrs: Vec<u32> = (0..5).filter(|&v| v != omit).collect();
            random_rel(&mut rng, &attrs, 25, 3)
        })
        .collect();
    assert_matches_naive(&rels, Algorithm::Lw, "lw5");
    assert_matches_naive(&rels, Algorithm::Nprr, "lw5");
    // Auto picks LW for this shape
    let out = join_with(&rels, Algorithm::Auto, None).unwrap();
    assert_eq!(out.stats.algorithm_used, "lw");
}

#[test]
fn auto_dispatch_choices() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(800);
    // graph query → graph-join
    let chain = [
        random_rel(&mut rng, &[0, 1], 10, 4),
        random_rel(&mut rng, &[1, 2], 10, 4),
    ];
    let out = join_with(&chain, Algorithm::Auto, None).unwrap();
    assert_eq!(out.stats.algorithm_used, "graph-join");
    // triangle is an LW instance → lw
    let tri = [
        random_rel(&mut rng, &[0, 1], 10, 4),
        random_rel(&mut rng, &[1, 2], 10, 4),
        random_rel(&mut rng, &[0, 2], 10, 4),
    ];
    let out = join_with(&tri, Algorithm::Auto, None).unwrap();
    assert_eq!(out.stats.algorithm_used, "lw");
    // hypergraph → nprr
    let hyper = [
        random_rel(&mut rng, &[0, 1, 2], 10, 4),
        random_rel(&mut rng, &[2, 3], 10, 4),
        random_rel(&mut rng, &[0, 3], 10, 4),
    ];
    let out = join_with(&hyper, Algorithm::Auto, None).unwrap();
    assert_eq!(out.stats.algorithm_used, "nprr");
}

#[test]
fn agm_cover_convenience() {
    let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
    let s = rel(&[1, 2], &[&[2, 4], &[4, 5]]);
    let t = rel(&[0, 2], &[&[1, 4], &[3, 5]]);
    let sol = agm_cover(&[r, s, t]).unwrap();
    for v in &sol.x {
        assert!((v - 0.5).abs() < 1e-6);
    }
    assert!((sol.bound() - 2f64.powf(1.5)).abs() < 1e-6);
}

#[test]
fn stats_are_populated() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(900);
    let rels = [
        random_rel(&mut rng, &[0, 1, 2], 50, 4),
        random_rel(&mut rng, &[2, 3], 50, 4),
        random_rel(&mut rng, &[0, 3], 50, 4),
    ];
    let out = join_with(&rels, Algorithm::Nprr, None).unwrap();
    assert_eq!(out.stats.algorithm_used, "nprr");
    assert_eq!(out.stats.cover.len(), 3);
    assert!(out.stats.log2_agm_bound > 0.0);
    assert!(out.stats.case_a + out.stats.case_b > 0);
}

#[test]
fn query_accessors() {
    let r = rel(&[3, 7], &[&[1, 2]]);
    let s = rel(&[7, 9], &[&[2, 3]]);
    let q = JoinQuery::new(&[r, s]).unwrap();
    use wcoj_storage::Attr;
    assert_eq!(q.attrs(), &[Attr(3), Attr(7), Attr(9)]);
    assert_eq!(q.vertex_of_attr(Attr(7)), Some(1));
    assert_eq!(q.attr_of_vertex(2), Attr(9));
    assert_eq!(q.sizes(), vec![1, 1]);
    assert_eq!(q.hypergraph().num_edges(), 2);
    assert_eq!(q.relations().len(), 2);
    assert_eq!(q.output_schema(), Schema::of(&[3, 7, 9]));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// NPRR equals the oracle on random small hypergraph queries.
    #[test]
    fn prop_nprr_matches_naive(seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n_attr = rng.gen_range(2..6u32);
        let n_rel = rng.gen_range(2..5usize);
        let mut rels = Vec::new();
        for _ in 0..n_rel {
            let arity = rng.gen_range(1..=3.min(n_attr));
            let mut attrs: Vec<u32> = (0..n_attr).collect();
            for i in (1..attrs.len()).rev() {
                attrs.swap(i, rng.gen_range(0..=i));
            }
            attrs.truncate(arity as usize);
            attrs.sort_unstable();
            let count = rng.gen_range(5..30);
            rels.push(random_rel(&mut rng, &attrs, count, 4));
        }
        let out = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let expect = naive::join(&rels);
        let expect = reorder(&expect, out.relation.schema()).unwrap();
        prop_assert_eq!(out.relation, expect);
    }

    /// The AGM inequality holds on every random instance.
    #[test]
    fn prop_output_obeys_agm(seed in 0u64..400) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = random_rel(&mut rng, &[0, 1], 40, 8);
        let s = random_rel(&mut rng, &[1, 2], 40, 8);
        let t = random_rel(&mut rng, &[0, 2], 40, 8);
        let sizes = [r.len(), s.len(), t.len()];
        let out = join(&[r, s, t]).unwrap();
        let bound = sizes.iter().map(|&x| x as f64).product::<f64>().sqrt();
        prop_assert!((out.len() as f64) <= bound + 1e-9);
    }
}

#[test]
fn hash_indexed_nprr_matches_sorted_trie() {
    use crate::nprr::{join_nprr, join_nprr_hash};
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    for trial in 0..6 {
        let rels = [
            random_rel(&mut rng, &[0, 1, 2], 50, 5),
            random_rel(&mut rng, &[2, 3], 50, 5),
            random_rel(&mut rng, &[0, 3], 50, 5),
        ];
        let q = JoinQuery::new(&rels).unwrap();
        let sol = q.optimal_cover().unwrap();
        let a = join_nprr(&q, &sol.x, sol.log2_bound).unwrap();
        let b = join_nprr_hash(&q, &sol.x, sol.log2_bound).unwrap();
        assert_eq!(a.relation, b.relation, "trial {trial}");
        // same per-tuple decisions: the size checks see identical counts
        assert_eq!(a.stats.case_a, b.stats.case_a, "trial {trial}");
        assert_eq!(a.stats.case_b, b.stats.case_b, "trial {trial}");
    }
}

#[test]
fn zero_weight_edges_still_filter() {
    // With skewed sizes the optimal cover drops T (x_T = 0), but T's
    // constraint must still be enforced by the evaluation structure.
    let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
    let s = rel(&[1, 2], &[&[2, 5], &[4, 6]]);
    // huge T missing the (3, 6) combination
    let mut t_rows: Vec<Vec<Value>> = (10..200u64).map(|i| vec![Value(i), Value(i)]).collect();
    t_rows.push(vec![Value(1), Value(5)]);
    let t = Relation::from_rows(Schema::of(&[0, 2]), t_rows).unwrap();
    let rels = [r, s, t];
    let cover = agm_cover(&rels).unwrap();
    assert!(cover.x[2].abs() < 1e-6, "T should get weight 0");
    let out = join_with(&rels, Algorithm::Nprr, None).unwrap();
    assert_eq!(out.relation.len(), 1);
    assert!(out.relation.contains_row(&[Value(1), Value(2), Value(5)]));
}

#[test]
fn contained_edges() {
    // R(0,1,2) ⊇ S(1,2) ⊇ U(1): nested attribute sets.
    let r = rel(&[0, 1, 2], &[&[1, 2, 3], &[4, 5, 6], &[7, 2, 3]]);
    let s = rel(&[1, 2], &[&[2, 3], &[5, 6]]);
    let u = rel(&[1], &[&[2]]);
    let rels = [r, s, u];
    for algo in [Algorithm::Nprr, Algorithm::Auto] {
        assert_matches_naive(&rels, algo, "contained edges");
    }
    let out = join_with(&rels, Algorithm::Nprr, None).unwrap();
    assert_eq!(out.relation.len(), 2); // (1,2,3) and (7,2,3)
}

#[test]
fn duplicate_relations_as_parallel_edges() {
    // The same relation twice (multiset hypergraph, needed by §7.3).
    let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
    let out = join_with(&[r.clone(), r.clone()], Algorithm::Nprr, None).unwrap();
    assert_eq!(out.relation, r);
    // and a triangle where two edges coincide
    let s = rel(&[1, 2], &[&[2, 9], &[4, 8]]);
    let rels = [r.clone(), r, s];
    assert_matches_naive(&rels, Algorithm::Nprr, "parallel edges");
}

#[test]
fn wide_relation_with_many_attributes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let wide = random_rel(&mut rng, &[0, 1, 2, 3, 4, 5], 40, 3);
    let narrow = random_rel(&mut rng, &[2, 3], 40, 3);
    let rels = [wide, narrow];
    assert_matches_naive(&rels, Algorithm::Nprr, "wide + narrow");
}

#[test]
fn skew_forces_both_cases() {
    // Heavy-hitter key in R forces per-tuple decisions to diverge: some
    // prefixes take case a, others case b.
    let mut rows: Vec<Vec<Value>> = (0..100u64).map(|i| vec![Value(0), Value(i)]).collect();
    rows.extend((1..30u64).map(|i| vec![Value(i), Value(1000 + i)]));
    let r = Relation::from_rows(Schema::of(&[0, 1]), rows.clone()).unwrap();
    let s = Relation::from_rows(
        Schema::of(&[1, 2]),
        (0..100u64).map(|i| vec![Value(i), Value(i % 7)]).collect(),
    )
    .unwrap();
    let t = Relation::from_rows(
        Schema::of(&[0, 2]),
        (0..40u64)
            .map(|i| vec![Value(i % 20), Value(i % 7)])
            .collect(),
    )
    .unwrap();
    let rels = [r, s, t];
    let out = join_with(&rels, Algorithm::Nprr, None).unwrap();
    assert!(out.stats.case_a > 0, "expected some case-a decisions");
    assert!(out.stats.case_b > 0, "expected some case-b decisions");
    assert_matches_naive(&rels, Algorithm::Nprr, "skewed triangle");
}
