//! Simple functional dependencies (paper §7.3).
//!
//! A simple FD `e.u → e.v` promises that within relation `R_e`, the value
//! of attribute `u` determines the value of attribute `v`. The paper's
//! FD-aware join first **expands** relations along FD closures — relation
//! `R_f` containing `u` gains column `v` by joining with the *functional*
//! two-column projection `π_{u,v}(R_e)` (size unchanged, because the
//! projection is a partial function) — and then runs the ordinary
//! worst-case-optimal join, whose cover LP now sees fatter hyperedges and
//! can produce dramatically smaller AGM bounds (the paper's `N² vs N^k`
//! family, reproduced as experiment E12).
//!
//! Soundness note (the paper is terse here): extending `R_f` with
//! `π_{u,v}(R_e)` may *drop* rows of `R_f` whose `u`-value never occurs in
//! `R_e`. That is harmless **because `R_e` itself is one of the query's
//! relations**: any join result must pick a row of `R_e`, so those dropped
//! rows of `R_f` could never contribute. The tests verify the expanded
//! join equals the unexpanded one on random instances.

use crate::query::{JoinQuery, QueryError};
use crate::{Algorithm, JoinOutput};
use std::fmt;
use wcoj_storage::hash::{map_with_capacity, FxHashMap};
use wcoj_storage::ops::{natural_join, project};
use wcoj_storage::{Attr, Relation, Value};

/// A simple functional dependency `relations[edge].from → .to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fd {
    /// Index of the declaring relation.
    pub edge: usize,
    /// Determining attribute.
    pub from: Attr,
    /// Determined attribute.
    pub to: Attr,
}

/// FD-specific failures.
#[derive(Debug, Clone, PartialEq)]
pub enum FdError {
    /// The FD references a relation index out of range.
    BadEdge(usize),
    /// The declaring relation lacks the `from`/`to` attribute.
    MissingAttr(Attr),
    /// The data violates the dependency (one `from`-value maps to two
    /// different `to`-values).
    Violated {
        /// The FD that failed.
        fd: Fd,
        /// The offending key value.
        key: Value,
    },
}

impl fmt::Display for FdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdError::BadEdge(e) => write!(f, "FD references unknown relation {e}"),
            FdError::MissingAttr(a) => write!(f, "FD attribute {a:?} not in its relation"),
            FdError::Violated { fd, key } => {
                write!(
                    f,
                    "functional dependency {:?}→{:?} violated at key {key}",
                    fd.from, fd.to
                )
            }
        }
    }
}
impl std::error::Error for FdError {}

/// Validates `fds` against the data and returns, per FD, the functional
/// mapping relation `π_{from,to}(R_edge)`.
///
/// # Errors
/// [`FdError`] as described on its variants.
pub fn fd_maps(relations: &[Relation], fds: &[Fd]) -> Result<Vec<Relation>, FdError> {
    let mut out = Vec::with_capacity(fds.len());
    for fd in fds {
        let rel = relations.get(fd.edge).ok_or(FdError::BadEdge(fd.edge))?;
        let fpos = rel
            .schema()
            .position(fd.from)
            .ok_or(FdError::MissingAttr(fd.from))?;
        let tpos = rel
            .schema()
            .position(fd.to)
            .ok_or(FdError::MissingAttr(fd.to))?;
        let mut seen: FxHashMap<Value, Value> = map_with_capacity(rel.len());
        for row in rel.iter_rows() {
            match seen.insert(row[fpos], row[tpos]) {
                Some(prev) if prev != row[tpos] => {
                    return Err(FdError::Violated {
                        fd: *fd,
                        key: row[fpos],
                    });
                }
                _ => {}
            }
        }
        let map = project(rel, &[fd.from, fd.to]).expect("attrs verified present");
        out.push(map);
    }
    Ok(out)
}

/// Expands every relation along the FD closure: while some relation has an
/// FD's `from` but not its `to`, join in the functional map (breadth-first
/// walk of the FD graph, paper §7.3).
///
/// # Errors
/// [`FdError`] from validation.
pub fn expand(relations: &[Relation], fds: &[Fd]) -> Result<Vec<Relation>, FdError> {
    let maps = fd_maps(relations, fds)?;
    let mut out: Vec<Relation> = relations.to_vec();
    for rel in &mut out {
        loop {
            let mut changed = false;
            for (fd, map) in fds.iter().zip(&maps) {
                if rel.schema().contains(fd.from) && !rel.schema().contains(fd.to) {
                    *rel = natural_join(rel, map);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
    Ok(out)
}

/// FD-aware worst-case optimal join: expand, then evaluate. The output
/// schema is unchanged (FD targets already occur in the query).
///
/// # Errors
/// [`QueryError`] wrapping FD validation or evaluation failures.
pub fn join_with_fds(relations: &[Relation], fds: &[Fd]) -> Result<JoinOutput, QueryError> {
    let expanded =
        expand(relations, fds).map_err(|e| QueryError::BadCover(format!("FD error: {e}")))?;
    let q = JoinQuery::new(&expanded)?;
    q.evaluate(Algorithm::Auto, None)
}

/// The AGM `log₂` bound of the query *after* FD expansion — used by the
/// E12 experiment to show the bound collapsing from `N^k` to `N²`.
///
/// # Errors
/// [`QueryError`] wrapping FD validation or LP failures.
pub fn expanded_log2_bound(relations: &[Relation], fds: &[Fd]) -> Result<f64, QueryError> {
    let expanded =
        expand(relations, fds).map_err(|e| QueryError::BadCover(format!("FD error: {e}")))?;
    let q = JoinQuery::new(&expanded)?;
    Ok(q.optimal_cover()?.log2_bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use wcoj_storage::ops::reorder;
    use wcoj_storage::Schema;

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    #[test]
    fn fd_validation() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20]]);
        let ok = Fd {
            edge: 0,
            from: Attr(0),
            to: Attr(1),
        };
        assert!(fd_maps(std::slice::from_ref(&r), &[ok]).is_ok());

        let bad_data = rel(&[0, 1], &[&[1, 10], &[1, 20]]);
        assert!(matches!(
            fd_maps(&[bad_data], &[ok]),
            Err(FdError::Violated { .. })
        ));
        assert!(matches!(
            fd_maps(std::slice::from_ref(&r), &[Fd { edge: 5, ..ok }]),
            Err(FdError::BadEdge(5))
        ));
        assert!(matches!(
            fd_maps(
                &[r],
                &[Fd {
                    edge: 0,
                    from: Attr(9),
                    to: Attr(1)
                }]
            ),
            Err(FdError::MissingAttr(Attr(9)))
        ));
    }

    #[test]
    fn expansion_adds_closure_columns() {
        // R1(A,B1) with A→B1 declared on R1; R2(A,B2) with A→B2 on R2.
        // Expanding R1 along A→B2 adds the B2 column.
        let r1 = rel(&[0, 1], &[&[1, 10], &[2, 20]]);
        let r2 = rel(&[0, 2], &[&[1, 11], &[2, 21]]);
        let fds = [
            Fd {
                edge: 0,
                from: Attr(0),
                to: Attr(1),
            },
            Fd {
                edge: 1,
                from: Attr(0),
                to: Attr(2),
            },
        ];
        let ex = expand(&[r1, r2], &fds).unwrap();
        assert!(ex[0].schema().contains(Attr(2)));
        assert!(ex[1].schema().contains(Attr(1)));
        assert_eq!(ex[0].len(), 2, "functional join preserves cardinality");
        assert!(ex[0].contains_row(&[Value(1), Value(10), Value(11)]));
    }

    #[test]
    fn chained_fds_close_transitively() {
        // A→B on R1(A,B); B→C on R2(B,C): R3(A,D) closes to {A,D,B,C}.
        let r1 = rel(&[0, 1], &[&[1, 10], &[2, 20]]);
        let r2 = rel(&[1, 2], &[&[10, 100], &[20, 200]]);
        let r3 = rel(&[0, 3], &[&[1, 7], &[2, 8]]);
        let fds = [
            Fd {
                edge: 0,
                from: Attr(0),
                to: Attr(1),
            },
            Fd {
                edge: 1,
                from: Attr(1),
                to: Attr(2),
            },
        ];
        let ex = expand(&[r1, r2, r3], &fds).unwrap();
        assert!(ex[2].schema().contains(Attr(1)));
        assert!(ex[2].schema().contains(Attr(2)));
        assert_eq!(ex[2].len(), 2);
    }

    #[test]
    fn fd_join_equals_plain_join() {
        // The paper's k = 3 family, small: Rᵢ(A,Bᵢ), Sᵢ(Bᵢ,C), A→Bᵢ.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for trial in 0..5 {
            let n = 20usize;
            let k = 3u32;
            let mut rels = Vec::new();
            let mut fds = Vec::new();
            // Rᵢ(A=0, Bᵢ=i): A determines Bᵢ via bᵢ(a) = a*k + i (functional).
            for i in 0..k {
                let rows: Vec<Vec<Value>> = (0..n as u64)
                    .map(|a| vec![Value(a), Value(a * u64::from(k) + u64::from(i))])
                    .collect();
                rels.push(Relation::from_rows(Schema::of(&[0, i + 1]), rows).unwrap());
                fds.push(Fd {
                    edge: i as usize,
                    from: Attr(0),
                    to: Attr(i + 1),
                });
            }
            // Sᵢ(Bᵢ, C): random.
            for i in 0..k {
                let rows: Vec<Vec<Value>> = (0..n)
                    .map(|_| {
                        vec![
                            Value(rng.gen_range(0..(n as u64) * u64::from(k))),
                            Value(rng.gen_range(0..6u64)),
                        ]
                    })
                    .collect();
                rels.push(Relation::from_rows(Schema::of(&[i + 1, k + 1]), rows).unwrap());
            }
            let fd_out = join_with_fds(&rels, &fds).unwrap();
            let plain = naive::join(&rels);
            let plain = reorder(&plain, fd_out.relation.schema()).unwrap();
            assert_eq!(fd_out.relation, plain, "trial {trial}");
        }
    }

    #[test]
    fn fd_bound_improves() {
        // With FDs A→Bᵢ, the expanded R₁ becomes R'(A,B1..Bk) and the LP
        // bound collapses; without them the bound is ~N^k for the Sᵢ half.
        let k = 3u32;
        let n = 64usize;
        let mut rels = Vec::new();
        let mut fds = Vec::new();
        for i in 0..k {
            let rows: Vec<Vec<Value>> = (0..n as u64)
                .map(|a| vec![Value(a), Value(a * u64::from(k) + u64::from(i))])
                .collect();
            rels.push(Relation::from_rows(Schema::of(&[0, i + 1]), rows).unwrap());
            fds.push(Fd {
                edge: i as usize,
                from: Attr(0),
                to: Attr(i + 1),
            });
        }
        for i in 0..k {
            let rows: Vec<Vec<Value>> = (0..n as u64)
                .map(|b| vec![Value(b), Value(b % 4)])
                .collect();
            rels.push(Relation::from_rows(Schema::of(&[i + 1, k + 1]), rows).unwrap());
        }
        let q = JoinQuery::new(&rels).unwrap();
        let plain_bound = q.optimal_cover().unwrap().log2_bound;
        let fd_bound = expanded_log2_bound(&rels, &fds).unwrap();
        assert!(
            fd_bound < plain_bound - 1.0,
            "FD-aware bound {fd_bound} should beat {plain_bound}"
        );
    }
}
