//! The metrics registry: atomic counters, gauges, log2 histograms, and
//! the Prometheus text exposition.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter. One relaxed atomic RMW per update.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue lengths, in-flight counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Subtracts `d`.
    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i < HISTOGRAM_BUCKETS - 1` counts
/// observations `v ≤ 2^i − 1` (so the finite upper bounds are
/// 0, 1, 3, 7, …, 2^30 − 1); the last bucket is the `+Inf` overflow. With
/// microsecond observations the finite range tops out around 17 minutes —
/// ample for query latencies — and the whole histogram is 34 atomics.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket log2 histogram of `u64` observations. `observe` is three
/// relaxed atomic RMWs and never allocates — safe on the scheduler hot
/// path. Quantiles are nearest-rank over the bucket counts (the same
/// definition as [`percentile_u64`](crate::percentile_u64)), reported as
/// the containing bucket's inclusive upper bound, i.e. within 2× of the
/// exact sample percentile.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Histogram {
        // `AtomicU64` isn't Copy; an inline-const repeat element works.
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The bucket index for `v`: the first bucket whose upper bound
    /// (2^i − 1) is ≥ `v`, clamped into the `+Inf` overflow bucket.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        let bits = (u64::BITS - v.leading_zeros()) as usize;
        bits.min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i` (`u64::MAX` for the
    /// overflow bucket).
    #[must_use]
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (saturating) — the convention
    /// every `*_us` histogram in this workspace uses.
    pub fn observe_duration_us(&self, d: std::time::Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copies the current state (buckets are read individually, so a
    /// snapshot racing `observe` may be mid-update by one observation —
    /// fine for reporting).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum(),
            count: self.count(),
        }
    }

    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`), reported as the
    /// upper bound of the bucket holding the ranked observation. `0` when
    /// empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Histogram::bucket_bound(i);
            }
        }
        Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// One registered metric.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// A set of named metrics with **get-or-create** registration: asking for
/// an existing name returns a handle to the same underlying metric (so
/// two `Service`s in one process share `wcoj_service_*` series instead of
/// clobbering each other), while asking for an existing name *as a
/// different kind* panics — that is a programming error, not load-time
/// input.
///
/// Registration takes the registry mutex; updates through the returned
/// `Arc` handles are lock-free. Callers are expected to register once at
/// startup and cache the handles.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry (use [`global`] for the process-wide one).
    #[must_use]
    pub const fn new() -> Registry {
        Registry {
            entries: Mutex::new(Vec::new()),
        }
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> Metric,
        get: impl Fn(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return get(&e.metric).unwrap_or_else(|| {
                panic!(
                    "metric {name:?} already registered as a {}",
                    e.metric.type_name()
                )
            });
        }
        let metric = make();
        let handle = get(&metric).expect("freshly made metric has the requested kind");
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            metric,
        });
        handle
    }

    /// Registers (or retrieves) a counter.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind, or is
    /// not a valid Prometheus metric name.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.register(
            name,
            help,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    /// Like [`Registry::counter`].
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.register(
            name,
            help,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a histogram.
    ///
    /// # Panics
    /// Like [`Registry::counter`].
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.register(
            name,
            help,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (metrics sorted by name, histograms with cumulative
    /// `_bucket{le=…}` series plus `_sum` / `_count`). The output passes
    /// [`check_exposition`]; serving it over HTTP *is* a `/metrics`
    /// endpoint.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| entries[a].name.cmp(&entries[b].name));
        let mut out = String::new();
        for i in order {
            let e = &entries[i];
            let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            let _ = writeln!(out, "# TYPE {} {}", e.name, e.metric.type_name());
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{} {}", e.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", e.name, g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (b, &c) in snap.buckets.iter().enumerate() {
                        cumulative += c;
                        if b == HISTOGRAM_BUCKETS - 1 {
                            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {cumulative}", e.name);
                        } else {
                            let _ = writeln!(
                                out,
                                "{}_bucket{{le=\"{}\"}} {cumulative}",
                                e.name,
                                Histogram::bucket_bound(b)
                            );
                        }
                    }
                    let _ = writeln!(out, "{}_sum {}", e.name, snap.sum);
                    let _ = writeln!(out, "{}_count {}", e.name, snap.count);
                }
            }
        }
        out
    }
}

/// The process-wide registry every wcoj crate instruments into.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_pairs(s: &str) -> bool {
    // key="value",key="value"  — values may not contain unescaped quotes.
    s.split(',').all(|pair| {
        pair.split_once('=').is_some_and(|(k, v)| {
            valid_metric_name(k) && v.len() >= 2 && v.starts_with('"') && v.ends_with('"')
        })
    })
}

/// Validates the Prometheus text exposition format as far as this crate
/// produces it: every non-blank line must be a `# HELP name help…` or
/// `# TYPE name counter|gauge|histogram` comment, or a sample of the form
/// `name value` / `name{labels} value` with a well-formed metric name,
/// well-formed `key="value"` labels, and a numeric value (`+Inf` / `NaN`
/// allowed). Returns the first offending line.
///
/// # Errors
/// A description quoting the malformed line.
pub fn check_exposition(text: &str) -> Result<(), String> {
    for (no, line) in text.lines().enumerate() {
        let err = |what: &str| Err(format!("line {}: {what}: {line:?}", no + 1));
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let Some((kind, rest)) = rest.split_once(' ') else {
                return err("bare comment marker");
            };
            let Some((name, detail)) = rest.split_once(' ') else {
                return err("comment missing text after the metric name");
            };
            if !valid_metric_name(name) {
                return err("invalid metric name in comment");
            }
            match kind {
                "HELP" => {}
                "TYPE" => {
                    if !matches!(detail, "counter" | "gauge" | "histogram" | "summary") {
                        return err("unknown metric type");
                    }
                }
                _ => return err("comment is neither HELP nor TYPE"),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let Some((series, value)) = line.rsplit_once(' ') else {
            return err("sample line has no value");
        };
        if !(value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN")) {
            return err("sample value is not numeric");
        }
        let name = match series.split_once('{') {
            None => series,
            Some((name, rest)) => {
                let Some(labels) = rest.strip_suffix('}') else {
                    return err("unterminated label set");
                };
                if !valid_label_pairs(labels) {
                    return err("malformed label pairs");
                }
                name
            }
        };
        if !valid_metric_name(name) {
            return err("invalid metric name in sample");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(2);
        g.sub(10);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn histogram_bucket_layout() {
        // exact power-of-two boundaries: v ≤ 2^i − 1 lands in bucket i
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(3), 7);
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // every value is ≤ its bucket's bound and > the previous bound
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 20, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_bound(i), "{v}");
            if i > 0 {
                assert!(v > Histogram::bucket_bound(i - 1), "{v}");
            }
        }
    }

    #[test]
    fn histogram_observe_and_quantile() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        // median of 1..=100 is 50 → bucket bound 63
        assert_eq!(h.quantile(0.5), 63);
        // p99 is 99 → bucket bound 127; p100 is 100 → same bucket
        assert_eq!(h.quantile(0.99), 127);
        assert_eq!(h.quantile(1.0), 127);
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 100);
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let r = Registry::new();
        let a = r.counter("wcoj_test_total", "a test counter");
        let b = r.counter("wcoj_test_total", "a test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same underlying counter");
        let g = r.gauge("wcoj_test_gauge", "a test gauge");
        g.set(5);
        let h = r.histogram("wcoj_test_hist", "a test histogram");
        h.observe(9);
        assert_eq!(r.histogram("wcoj_test_hist", "again").count(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("wcoj_test_total", "a counter");
        let _ = r.gauge("wcoj_test_total", "now a gauge?");
    }

    #[test]
    fn render_prometheus_is_sorted_and_valid() {
        let r = Registry::new();
        r.counter("wcoj_b_total", "second by name").add(2);
        r.counter("wcoj_a_total", "first by name").inc();
        r.gauge("wcoj_g", "a gauge").set(-3);
        let h = r.histogram("wcoj_lat_us", "a latency histogram");
        h.observe(5);
        h.observe(500);
        let text = r.render_prometheus();
        check_exposition(&text).expect("exposition is well-formed");
        let a = text.find("wcoj_a_total").unwrap();
        let b = text.find("wcoj_b_total").unwrap();
        assert!(a < b, "metrics sorted by name");
        assert!(text.contains("# TYPE wcoj_lat_us histogram"));
        assert!(text.contains("wcoj_lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("wcoj_lat_us_sum 505"));
        assert!(text.contains("wcoj_lat_us_count 2"));
        assert!(text.contains("wcoj_g -3"));
        // cumulative buckets: the le="7" bucket already counts the 5
        assert!(text.contains("wcoj_lat_us_bucket{le=\"7\"} 1"));
    }

    #[test]
    fn check_exposition_rejects_garbage() {
        assert!(check_exposition("wcoj_ok 1\n").is_ok());
        assert!(check_exposition("wcoj_ok{le=\"7\"} 1\n").is_ok());
        assert!(check_exposition("# HELP wcoj_ok fine\n").is_ok());
        assert!(check_exposition("# TYPE wcoj_ok counter\n").is_ok());
        for bad in [
            "just words here x",       // value not numeric
            "# TYPE wcoj_ok rocket\n", // unknown type
            "# NOTE wcoj_ok hm\n",     // unknown comment
            "wcoj_ok{le=7} 1\n",       // unquoted label value
            "wcoj_ok{le=\"7\" 1\n",    // unterminated labels
            "1metric 2\n",             // invalid name
            "wcoj_ok\n",               // no value
        ] {
            assert!(check_exposition(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("wcoj_obs_selftest_total", "global registry smoke test");
        let before = c.get();
        global()
            .counter("wcoj_obs_selftest_total", "global registry smoke test")
            .inc();
        assert_eq!(c.get(), before + 1);
        check_exposition(&global().render_prometheus()).expect("global exposition well-formed");
    }
}
