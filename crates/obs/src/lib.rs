//! # wcoj-obs — std-only observability primitives
//!
//! The worst-case-optimal guarantees of the NPRR engine (PODS 2012) are
//! *work bounds*; this crate makes the work **visible**. It sits at the
//! bottom of the workspace dependency graph — no dependencies at all,
//! `std` only — so every layer (`wcoj-exec`'s planner, `wcoj-service`'s
//! scheduler, the bench harness) can instrument itself without cycles,
//! and a future network server can link it alone for a `/metrics`
//! endpoint.
//!
//! Three pieces:
//!
//! * [`metrics`] — a process-wide [`Registry`] of atomic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket log2 [`Histogram`]s, with a
//!   [`Registry::render_prometheus`] text exposition (validated by
//!   [`check_exposition`]). Hot-path cost is one atomic RMW per update;
//!   registration (the only lock) happens once per metric name.
//! * [`trace`] — a bounded, lock-cheap [`TraceRing`] of zero-allocation
//!   [`TraceEvent`]s recording scheduler decisions (admit / shed /
//!   cancel / skip, ring rotation, heavy-split). Levels: off / summary /
//!   verbose; when off, recording costs a single atomic load.
//! * [`percentile_f64`] / [`percentile_u64`] — the **one** percentile
//!   definition (nearest-rank) shared by raw-sample consumers (harness
//!   experiment e19) and [`Histogram::quantile`] (e20), so the two can
//!   never disagree about what "p99" means.
//!
//! Instrumentation contract (enforced by the users of this crate, stated
//! here as the design rule): *zero allocation on the hot path, timestamps
//! at task granularity only — never per tuple.*

mod metrics;
mod trace;

pub use metrics::{
    check_exposition, global, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    HISTOGRAM_BUCKETS,
};
pub use trace::{trace, TraceEvent, TraceLevel, TraceRing, TRACE_RING_CAPACITY};

/// Nearest-rank percentile of an **ascending-sorted** slice: the smallest
/// element whose rank is ≥ `⌈q·n⌉` (with `q` in `[0, 1]`). This is the
/// workspace-wide percentile definition — [`Histogram::quantile`] computes
/// the same rank over bucket counts, so histogram and raw-sample
/// percentiles agree up to bucket resolution.
///
/// Unlike the interpolating `(n-1)·q` floor-index formula it replaced in
/// the bench harness, nearest-rank is unbiased at small `n`: the p99 of 10
/// samples is the maximum (rank `⌈9.9⌉ = 10`), not the second-largest.
///
/// Returns `0.0` for an empty slice; `q ≤ 0` yields the minimum, `q ≥ 1`
/// the maximum.
#[must_use]
pub fn percentile_f64(sorted: &[f64], q: f64) -> f64 {
    let Some(&last) = sorted.last() else {
        return 0.0;
    };
    if q >= 1.0 {
        return last;
    }
    let rank = (q.max(0.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// [`percentile_f64`] for integer samples (same nearest-rank definition).
#[must_use]
pub fn percentile_u64(sorted: &[u64], q: f64) -> u64 {
    let Some(&last) = sorted.last() else {
        return 0;
    };
    if q >= 1.0 {
        return last;
    }
    let rank = (q.max(0.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank_small_n() {
        let v: Vec<u64> = (1..=10).collect();
        // the historical bias case: p99 of 10 samples is the max
        assert_eq!(percentile_u64(&v, 0.99), 10);
        assert_eq!(percentile_u64(&v, 0.50), 5); // ⌈5.0⌉ = rank 5
        assert_eq!(percentile_u64(&v, 0.51), 6); // ⌈5.1⌉ = rank 6
        assert_eq!(percentile_u64(&v, 0.0), 1);
        assert_eq!(percentile_u64(&v, 1.0), 10);
        assert_eq!(percentile_u64(&[], 0.5), 0);
        assert_eq!(percentile_u64(&[7], 0.99), 7);
        let f: Vec<f64> = v.iter().map(|&x| x as f64).collect();
        assert_eq!(percentile_f64(&f, 0.99), 10.0);
        assert_eq!(percentile_f64(&[], 0.5), 0.0);
    }

    #[test]
    fn histogram_and_raw_percentile_agree() {
        // Samples placed exactly on bucket upper bounds: the histogram
        // quantile must reproduce the raw nearest-rank percentile.
        let samples: Vec<u64> = vec![0, 1, 1, 3, 3, 3, 7, 7, 15, 31];
        let h = Histogram::new();
        for &s in &samples {
            h.observe(s);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(
                h.quantile(q),
                percentile_u64(&samples, q),
                "q={q} disagrees"
            );
        }
    }
}
