//! The trace event ring: a bounded, process-wide log of scheduler
//! decisions, cheap enough to leave compiled in.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// How much the tracer records. Stored as one atomic byte; checking it
/// costs a single relaxed load, so [`TraceLevel::Off`] (the default) makes
/// every `record` call effectively free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum TraceLevel {
    /// Record nothing (default).
    #[default]
    Off = 0,
    /// Scheduler *decisions*: admit, shed, cancel, skip, heavy-split,
    /// query finish.
    Summary = 1,
    /// Decisions plus per-task events (ring rotation, task runs).
    Verbose = 2,
}

impl TraceLevel {
    /// Parses a `WCOJ_TRACE` value: `off`/`0`, `summary`/`1`,
    /// `verbose`/`2` (trimmed, ASCII case-insensitive). `None` for
    /// anything else — the caller decides how to warn (`wcoj-exec` routes
    /// this through its warn-once malformed-env registry).
    #[must_use]
    pub fn parse(s: &str) -> Option<TraceLevel> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("off") || s == "0" {
            Some(TraceLevel::Off)
        } else if s.eq_ignore_ascii_case("summary") || s == "1" {
            Some(TraceLevel::Summary)
        } else if s.eq_ignore_ascii_case("verbose") || s == "2" {
            Some(TraceLevel::Verbose)
        } else {
            None
        }
    }

    fn from_u8(v: u8) -> TraceLevel {
        match v {
            1 => TraceLevel::Summary,
            2 => TraceLevel::Verbose,
            _ => TraceLevel::Off,
        }
    }
}

/// One scheduler decision. Every variant is `Copy` with inline integer
/// payloads — recording allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A query was admitted and its task ring scheduled (summary).
    Admit {
        /// Service-assigned query id (unique per process).
        query: u64,
        /// Shard tasks in the ring (`0` for a degenerate submit-time
        /// resolution).
        tasks: u32,
    },
    /// Admission control shed a submission (summary).
    Shed {
        /// Queries in flight at the moment of the shed.
        in_flight: u32,
    },
    /// A pending handle was dropped: the query is cancelled (summary).
    Cancel {
        /// The cancelled query.
        query: u64,
    },
    /// A worker popped a task of a cancelled query and skipped the engine
    /// run (summary).
    SkipTask {
        /// The cancelled query.
        query: u64,
        /// The skipped shard's slot index.
        slot: u32,
    },
    /// The planner split a heavy root value into anchor sub-shards
    /// (summary).
    HeavySplit {
        /// Heavy root values that were split.
        values: u32,
        /// Total sub-shard tasks they produced.
        sub_shards: u32,
    },
    /// Round-robin rotation: a query's ring went back for its next turn
    /// (verbose).
    RingRotate {
        /// The rotated query.
        query: u64,
        /// Tasks still queued in its ring.
        remaining: u32,
    },
    /// A shard task finished running on a worker (verbose).
    TaskRun {
        /// The task's query.
        query: u64,
        /// The shard's slot index.
        slot: u32,
        /// Engine run time in microseconds.
        run_us: u64,
    },
    /// A query's last task drained — it no longer occupies a slot
    /// (summary).
    Finish {
        /// The finished query.
        query: u64,
    },
}

/// Capacity of the [`trace`] ring: old events are overwritten (and
/// counted as dropped) past this bound, so tracing can stay on forever
/// without growing memory.
pub const TRACE_RING_CAPACITY: usize = 4096;

struct RingState {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded ring of [`TraceEvent`]s. `record` is one atomic load when
/// the level gates it off; when on, one short mutex section pushing a
/// `Copy` event (no allocation after the ring's first lap).
pub struct TraceRing {
    level: AtomicU8,
    state: Mutex<RingState>,
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new()
    }
}

impl TraceRing {
    /// An empty ring at [`TraceLevel::Off`].
    #[must_use]
    pub const fn new() -> TraceRing {
        TraceRing {
            level: AtomicU8::new(0),
            state: Mutex::new(RingState {
                buf: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// The current level.
    #[must_use]
    pub fn level(&self) -> TraceLevel {
        TraceLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Sets the level (tests and the `WCOJ_TRACE` env hook).
    pub fn set_level(&self, level: TraceLevel) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// `true` iff events tagged `at` are currently recorded. One relaxed
    /// atomic load — callers may use it to skip *computing* an event's
    /// payload, not just recording it.
    #[must_use]
    pub fn enabled(&self, at: TraceLevel) -> bool {
        at != TraceLevel::Off && self.level() >= at
    }

    /// Records `event` if the ring's level admits events tagged `at`.
    pub fn record(&self, at: TraceLevel, event: TraceEvent) {
        if !self.enabled(at) {
            return;
        }
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.buf.len() == TRACE_RING_CAPACITY {
            state.buf.pop_front();
            state.dropped += 1;
        }
        state.buf.push_back(event);
    }

    /// Takes every buffered event (oldest first), leaving the ring empty.
    #[must_use]
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.buf.drain(..).collect()
    }

    /// Events overwritten (lost) since the last construction — a nonzero
    /// value tells a consumer its `drain` window was too slow for the
    /// event rate.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .dropped
    }

    /// Buffered events right now.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .buf
            .len()
    }

    /// `true` iff no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide trace ring (off until someone raises the level —
/// `wcoj-service` does so from `WCOJ_TRACE` at construction).
#[must_use]
pub fn trace() -> &'static TraceRing {
    static TRACE: TraceRing = TraceRing::new();
    &TRACE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse(" 0 "), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("Summary"), Some(TraceLevel::Summary));
        assert_eq!(TraceLevel::parse("1"), Some(TraceLevel::Summary));
        assert_eq!(TraceLevel::parse("VERBOSE"), Some(TraceLevel::Verbose));
        assert_eq!(TraceLevel::parse("2"), Some(TraceLevel::Verbose));
        assert_eq!(TraceLevel::parse("loud"), None);
        assert_eq!(TraceLevel::parse("3"), None);
    }

    #[test]
    fn gating_and_drain_order() {
        let ring = TraceRing::new();
        assert_eq!(ring.level(), TraceLevel::Off);
        // off: nothing is recorded at any tag
        ring.record(TraceLevel::Summary, TraceEvent::Finish { query: 1 });
        assert!(ring.is_empty());
        assert!(!ring.enabled(TraceLevel::Summary));
        assert!(!ring.enabled(TraceLevel::Off), "Off is never 'enabled'");

        ring.set_level(TraceLevel::Summary);
        assert!(ring.enabled(TraceLevel::Summary));
        assert!(!ring.enabled(TraceLevel::Verbose));
        ring.record(
            TraceLevel::Summary,
            TraceEvent::Admit { query: 7, tasks: 3 },
        );
        ring.record(
            TraceLevel::Verbose,
            TraceEvent::RingRotate {
                query: 7,
                remaining: 2,
            },
        ); // filtered
        ring.record(TraceLevel::Summary, TraceEvent::Finish { query: 7 });
        let events = ring.drain();
        assert_eq!(
            events,
            vec![
                TraceEvent::Admit { query: 7, tasks: 3 },
                TraceEvent::Finish { query: 7 },
            ],
            "oldest first, verbose filtered at summary level"
        );
        assert!(ring.is_empty(), "drain empties the ring");
    }

    #[test]
    fn ring_is_bounded() {
        let ring = TraceRing::new();
        ring.set_level(TraceLevel::Verbose);
        for query in 0..(TRACE_RING_CAPACITY as u64 + 10) {
            ring.record(TraceLevel::Summary, TraceEvent::Finish { query });
        }
        assert_eq!(ring.len(), TRACE_RING_CAPACITY);
        assert_eq!(ring.dropped(), 10, "overwrites are counted");
        let events = ring.drain();
        // the 10 oldest were overwritten
        assert_eq!(events[0], TraceEvent::Finish { query: 10 });
        assert_eq!(events.len(), TRACE_RING_CAPACITY);
    }
}
