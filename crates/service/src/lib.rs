//! # wcoj-service — shared-pool concurrent query scheduler
//!
//! `wcoj-exec` parallelises a *single* join by sharding the root domain
//! of `Recursive-Join` (paper §5.2, step 2a) over a scoped thread pool —
//! but every `par_join` call spins up its **own** pool, so a process
//! answering many concurrent queries oversubscribes the machine and loses
//! the worst-case-optimal runtime guarantees to scheduling noise.
//!
//! This crate is the long-lived alternative: a [`Service`] owns **one**
//! global worker pool for the whole process, and schedules shard tasks
//! from *many* in-flight queries on it.
//!
//! * [`Service::submit`] plans a prepared query's shards with the
//!   work-based splitter ([`ShardPlan::plan`] over
//!   [`PreparedQuery::root_candidate_weights`]). The plan is
//!   **two-level**: heavy root values get singleton shards so one hot
//!   key cannot drag its neighbours along, and a value heavy enough to
//!   span several work targets is further broken into *anchor
//!   sub-shards* (`RootShard::anchor` ranges over the level-1 attribute,
//!   [`ExecConfig::heavy_split_factor`]) so even a single hot key
//!   spreads across the pool. Submission pushes the tasks as one
//!   per-query **ring** and returns a [`QueryHandle`] immediately — it
//!   never blocks on other queries.
//! * **Admission control**: [`ServiceConfig::queue_depth`] bounds how
//!   many queries may be admitted-but-unfinished at once (env
//!   `WCOJ_QUEUE_DEPTH` via [`ServiceConfig::from_env`]; `0` =
//!   unbounded). At the bound, [`Service::submit`] *sheds* — it returns
//!   [`SubmitError::Overloaded`] without planning or scheduling anything,
//!   the 429 of this scheduler — while [`Service::submit_blocking`] and
//!   [`Service::try_submit_timeout`] wait on a condvar (optionally with a
//!   deadline) for capacity instead. Either way the queue can no longer
//!   grow without limit under a submission burst.
//! * **Fair dispatch**: workers drain the per-query rings **round-robin,
//!   one task at a time**, so shards of concurrent queries interleave by
//!   construction — a 10k-sub-shard hot-key query no longer
//!   head-of-line-blocks a 3-shard triangle query submitted just after
//!   it. Each task runs the sequential engine restricted to its root
//!   range — and, for a sub-shard, its anchor range —
//!   ([`PreparedQuery::run_shard`]) against the query's shared, immutable
//!   indexes.
//! * [`QueryHandle::wait`] blocks until the query's last shard lands,
//!   then reassembles per-shard row sets **in slot order** — root-value
//!   order, then anchor order within a sub-split root value — and folds
//!   per-shard [`JoinStats`] with [`JoinStats::absorb`] — the output
//!   relation is bit-identical to the sequential
//!   [`join_nprr`](wcoj_core::nprr::join_nprr), no matter how the pool
//!   interleaved the shards (dispatch order never reaches the output, so
//!   fairness is free of correctness risk).
//! * **Cancellation**: dropping a [`QueryHandle`] before waiting marks
//!   the query cancelled; workers still pop its queued tasks but *skip*
//!   the engine run, so an abandoned handle stops burning the pool
//!   almost immediately (and its admission slot is released when the
//!   ring drains).
//! * **Observability** (all of it compiled in, cheap or free when off):
//!   [`Service::counters`] snapshots lifetime `submitted` / `completed` /
//!   `shed` / `cancelled` / `skipped_tasks` plus instantaneous
//!   `in_flight` and `queued_tasks` — taken under the scheduler lock, so
//!   every snapshot is *internally consistent* (never `completed >
//!   submitted`, never `queued_tasks > 0` with `in_flight == 0`). With
//!   [`ServiceConfig::obs`] on (the default) the service also feeds the
//!   process-wide `wcoj-obs` metrics registry (counters, gauges, and
//!   latency histograms — `wcoj_obs::global().render_prometheus()` is a
//!   `/metrics` endpoint body) and records per-query
//!   [`QueryProfile`]s: lifecycle phase timestamps (admitted → planned →
//!   first/last task → reassembled) plus a per-shard breakdown (queue
//!   wait, run time, rows, [`JoinStats`]) via [`QueryHandle::profile`] /
//!   [`QueryHandle::wait_profiled`]. Timestamps are taken at *task*
//!   granularity only, never per tuple. Scheduler decisions (admit /
//!   shed / cancel / skip / ring rotation) additionally land in the
//!   bounded `wcoj_obs::trace()` event ring when `WCOJ_TRACE` (or
//!   [`TraceRing::set_level`](wcoj_obs::TraceRing::set_level)) raises its
//!   level.
//!
//! Degenerate queries never touch the pool: an empty input relation or an
//! empty root-candidate intersection (a *zero-shard plan*) resolves to a
//! finished handle at submit time (it still occupies — and immediately
//! releases — an admission slot, so a burst of degenerate queries cannot
//! starve real ones).
//!
//! ```
//! use std::sync::Arc;
//! use wcoj_core::nprr::PreparedQuery;
//! use wcoj_service::{Service, ServiceConfig};
//! use wcoj_storage::{Relation, Schema};
//!
//! let service = Service::new(ServiceConfig::with_workers(4));
//! let r = Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[1, 3]]);
//! let s = Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 4], &[3, 4]]);
//! let t = Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[1, 4]]);
//! let prepared = Arc::new(PreparedQuery::new(&[r, s, t]).unwrap());
//! let handle = service.submit(&prepared, &service.exec_config()).unwrap();
//! assert_eq!(handle.wait().unwrap().relation.len(), 2);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wcoj_core::nprr::{PreparedQuery, RootShard};
use wcoj_core::{JoinOutput, JoinStats, QueryError};
use wcoj_exec::{ExecConfig, ShardPlan, OVERSPLIT};
use wcoj_obs::{trace, Counter, Gauge, Histogram, TraceEvent, TraceLevel};
use wcoj_storage::{Relation, SearchTree, TrieIndex, Value};

/// Stats label reported by service-scheduled runs.
const ALGORITHM: &str = "nprr-service";

/// Configuration of a [`Service`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the shared pool (clamped to ≥ 1). Unlike
    /// `par_join`, this bounds the parallelism of the whole process, not
    /// of one query.
    pub workers: usize,
    /// Default per-query planning knobs handed to queries routed through
    /// [`Service::join`] (and recommended for [`Service::submit`] via
    /// [`Service::exec_config`]). The `threads` field is ignored — pool
    /// size is a service-level decision; `shard_min_size` and `split`
    /// steer the per-query [`ShardPlan`].
    pub exec: ExecConfig,
    /// Admission bound: the maximum number of queries that may be
    /// admitted-but-unfinished (queued or running) at once. `0` (the
    /// default) means unbounded — the pre-admission-control behaviour.
    /// At the bound, [`Service::submit`] sheds with
    /// [`SubmitError::Overloaded`]; [`Service::submit_blocking`] /
    /// [`Service::try_submit_timeout`] wait for capacity instead.
    /// Degenerate submissions (resolved at submit time) acquire and
    /// immediately release a slot, so they are also shed under overload
    /// — admission stays a pure front-door check that costs no planning.
    pub queue_depth: usize,
    /// Whether the service records into the process-wide `wcoj-obs`
    /// metrics registry and takes per-task timestamps for
    /// [`QueryProfile`]s (default `true`). Off, the per-task `Instant`
    /// reads and histogram updates become no-ops — the comparison arm of
    /// the `e17_obs_overhead` bench — while [`Service::counters`],
    /// correctness accounting, and per-shard row/stats bookkeeping stay
    /// on.
    pub obs: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            exec: ExecConfig::default(),
            queue_depth: 0,
            obs: true,
        }
    }
}

impl ServiceConfig {
    /// A config with `workers` pool threads and default planning knobs.
    #[must_use]
    pub fn with_workers(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers: workers.max(1),
            ..ServiceConfig::default()
        }
    }

    /// Returns `self` with the admission bound set (see
    /// [`ServiceConfig::queue_depth`]; `0` = unbounded).
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> ServiceConfig {
        self.queue_depth = queue_depth;
        self
    }

    /// Returns `self` with observability recording toggled (see
    /// [`ServiceConfig::obs`]).
    #[must_use]
    pub fn with_obs(mut self, obs: bool) -> ServiceConfig {
        self.obs = obs;
        self
    }

    /// Default config with the admission bound overridden by the
    /// `WCOJ_QUEUE_DEPTH` environment variable when set (malformed values
    /// warn once and fall back, like every numeric `WCOJ_*` knob — see
    /// [`wcoj_exec::read_env_usize`]). Also applies `WCOJ_TRACE`
    /// (`off`/`summary`/`verbose`, same warn-once fallback —
    /// [`wcoj_exec::trace_level_from_env`]) to the process-wide
    /// [`wcoj_obs::trace`] ring: the trace level is global state, not a
    /// per-service knob, and this is the one env-driven construction
    /// point.
    #[must_use]
    pub fn from_env() -> ServiceConfig {
        let mut cfg = ServiceConfig::default();
        if let Some(d) = wcoj_exec::read_env_usize("WCOJ_QUEUE_DEPTH") {
            cfg.queue_depth = d;
        }
        if let Some(level) = wcoj_exec::trace_level_from_env() {
            trace().set_level(level);
        }
        cfg
    }
}

/// Why [`Service::submit`] (or a sibling) refused a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// Admission control shed the submission: the service already had
    /// [`queue_depth`](ServiceConfig::queue_depth) queries in flight (for
    /// the deadline variant: still had, when the deadline expired). The
    /// query was never planned or scheduled; retrying later is safe.
    Overloaded {
        /// Queries in flight when the submission was refused.
        in_flight: usize,
        /// The configured admission bound.
        queue_depth: usize,
    },
    /// Planning/validation failed before any task was scheduled (bad
    /// cover, LP failure, …).
    Query(QueryError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Overloaded {
                in_flight,
                queue_depth,
            } => write!(
                f,
                "service overloaded: {in_flight} queries in flight at queue depth \
                 {queue_depth}; submission shed"
            ),
            SubmitError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<QueryError> for SubmitError {
    fn from(e: QueryError) -> Self {
        SubmitError::Query(e)
    }
}

impl From<SubmitError> for QueryError {
    /// Collapses an overload shed into [`QueryError::Overloaded`] so
    /// callers speaking only `QueryError` (the [`Service::join`] /
    /// catalog-routing path) surface a typed 429 instead of a panic or a
    /// stringly error.
    fn from(e: SubmitError) -> Self {
        match e {
            SubmitError::Overloaded { .. } => QueryError::Overloaded,
            SubmitError::Query(e) => e,
        }
    }
}

/// A point-in-time snapshot of the service's scheduling counters
/// ([`Service::counters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceCounters {
    /// Accepted submissions over the service's lifetime: every submit
    /// call that returned a [`QueryHandle`], *including* degenerate
    /// queries resolved at submit time. Shed submissions and
    /// planning-error submissions are **not** counted.
    pub submitted: u64,
    /// Accepted queries whose work has finished — their last task drained
    /// (run or skipped), or they resolved at submit time. Eventually
    /// `completed == submitted` once the service idles.
    pub completed: u64,
    /// Submissions shed by admission control ([`SubmitError::Overloaded`],
    /// including deadline expiries of [`Service::try_submit_timeout`]).
    pub shed: u64,
    /// Queries whose [`QueryHandle`] was dropped before the query
    /// finished (best-effort: a drop racing the final task may count
    /// even though nothing was left to skip).
    pub cancelled: u64,
    /// Tasks workers popped but skipped because their query was cancelled
    /// — pool time the cancellation saved.
    pub skipped_tasks: u64,
    /// Queries currently admitted and unfinished (what
    /// [`ServiceConfig::queue_depth`] bounds).
    pub in_flight: usize,
    /// Shard tasks currently waiting on the injector (excludes tasks
    /// being run right now).
    pub queued_tasks: usize,
}

/// The service's handles into the process-wide `wcoj-obs` registry.
/// Registered once per process (get-or-create by name), shared by every
/// [`Service`] whose config has [`ServiceConfig::obs`] on — the registry
/// aggregates across services the way a scrape endpoint would.
struct ServiceMetrics {
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    shed: Arc<Counter>,
    cancelled: Arc<Counter>,
    skipped_tasks: Arc<Counter>,
    in_flight: Arc<Gauge>,
    queued_tasks: Arc<Gauge>,
    query_latency_us: Arc<Histogram>,
    admission_wait_us: Arc<Histogram>,
    task_queue_wait_us: Arc<Histogram>,
    task_run_us: Arc<Histogram>,
    shard_rows: Arc<Histogram>,
}

impl ServiceMetrics {
    fn get() -> &'static ServiceMetrics {
        static METRICS: OnceLock<ServiceMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = wcoj_obs::global();
            ServiceMetrics {
                submitted: r.counter(
                    "wcoj_service_submitted_total",
                    "Accepted submissions (incl. degenerate submit-time resolutions)",
                ),
                completed: r.counter(
                    "wcoj_service_completed_total",
                    "Queries whose last task drained",
                ),
                shed: r.counter(
                    "wcoj_service_shed_total",
                    "Submissions refused by admission control",
                ),
                cancelled: r.counter(
                    "wcoj_service_cancelled_total",
                    "Handles dropped before the query finished",
                ),
                skipped_tasks: r.counter(
                    "wcoj_service_skipped_tasks_total",
                    "Tasks popped but skipped because their query was cancelled",
                ),
                in_flight: r.gauge(
                    "wcoj_service_in_flight",
                    "Admitted-but-unfinished queries right now",
                ),
                queued_tasks: r.gauge(
                    "wcoj_service_queued_tasks",
                    "Shard tasks waiting on the injector right now",
                ),
                query_latency_us: r.histogram(
                    "wcoj_query_latency_us",
                    "Submit to last-task-drained, per accepted query (microseconds)",
                ),
                admission_wait_us: r.histogram(
                    "wcoj_admission_wait_us",
                    "Time spent waiting for an admission slot (microseconds)",
                ),
                task_queue_wait_us: r.histogram(
                    "wcoj_task_queue_wait_us",
                    "Per task: ring push to worker pop (microseconds)",
                ),
                task_run_us: r.histogram(
                    "wcoj_task_run_us",
                    "Per task: engine run time (microseconds)",
                ),
                shard_rows: r.histogram("wcoj_shard_rows", "Per task: output rows"),
            }
        })
    }
}

/// Process-unique query ids, shared across services so trace events from
/// concurrent services never collide. Starts at 1 — 0 never names a query.
static QUERY_IDS: AtomicU64 = AtomicU64::new(1);

fn next_query_id() -> u64 {
    QUERY_IDS.fetch_add(1, Ordering::Relaxed)
}

/// The execution profile of one submitted query
/// ([`QueryHandle::profile`] / [`QueryHandle::wait_profiled`]). All
/// timestamps are durations **since submit entry**, taken at task
/// granularity; phases that have not happened (yet) are `None`.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Process-unique id (matches the `query` field of this query's
    /// [`TraceEvent`]s).
    pub query_id: u64,
    /// Submit → admission slot acquired (how long admission control made
    /// the submitter wait; ≈ 0 for non-blocking accepts).
    pub admitted: Duration,
    /// Submit → shard plan computed. `None` for empty-input degenerates
    /// (planning never ran).
    pub planned: Option<Duration>,
    /// Submit → the first worker picked up a task. `None` until then and
    /// for degenerate queries (no task ever dispatched).
    pub first_dispatch: Option<Duration>,
    /// Submit → the last task drained. `None` while the query is still
    /// running. Zero-duration per-task timing (obs off) still sets this
    /// phase's *presence*, but the value collapses toward the coarse
    /// lifecycle clock.
    pub last_finish: Option<Duration>,
    /// Submit → output reassembled (slot-order merge done). `None` until
    /// `wait()`; degenerate queries reassemble at submit time.
    pub reassembled: Option<Duration>,
    /// Tasks the shard plan scheduled (0 for degenerate queries).
    pub total_shards: usize,
    /// Per-shard breakdowns, in slot (= root-value) order; one entry per
    /// *drained* task, so `shards.len() < total_shards` while running.
    pub shards: Vec<ShardProfile>,
    /// The handle was dropped before the query finished.
    pub cancelled: bool,
}

impl QueryProfile {
    /// `true` iff every scheduled shard has drained and reported.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.shards.len() == self.total_shards
    }

    /// Total rows across the per-shard breakdowns. Shards partition the
    /// root domain, so for a finished, uncancelled query this equals the
    /// final output's row count.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        self.shards.iter().map(|s| s.rows).sum()
    }
}

/// One drained shard task's slice of a [`QueryProfile`].
#[derive(Debug, Clone)]
pub struct ShardProfile {
    /// Slot index in the shard plan (= reassembly order).
    pub slot: usize,
    /// Ring push → worker pop ([`Duration::ZERO`] when
    /// [`ServiceConfig::obs`] is off).
    pub queue_wait: Duration,
    /// Engine run time ([`Duration::ZERO`] when obs is off or the task
    /// was skipped).
    pub run: Duration,
    /// Rows this shard produced (0 for skipped tasks).
    pub rows: u64,
    /// The task was popped after cancellation and skipped the engine run.
    pub skipped: bool,
    /// The shard's engine stats; [`JoinStats::absorb`]ing them in slot
    /// order over a zeroed base reproduces the final output's stats.
    pub stats: JoinStats,
}

/// Profile bookkeeping shared between the submitting thread, the pool
/// workers, and the handle. Timestamps are nanosecond offsets from
/// `base` (submit entry), stored in atomics so workers never take a lock
/// for a phase mark.
struct ProfileState {
    query_id: u64,
    /// The submit-entry instant every offset is relative to.
    base: Instant,
    admitted_ns: u64,
    planned_ns: u64,
    /// First task pickup; `u64::MAX` = no task dispatched yet
    /// (`fetch_min` keeps the earliest).
    first_dispatch_ns: AtomicU64,
    /// Last task drained; `0` = none yet (`fetch_max` keeps the latest).
    last_finish_ns: AtomicU64,
    /// Output reassembled; `0` = not yet.
    reassembled_ns: AtomicU64,
    /// One slot per scheduled shard, filled as tasks drain.
    shards: Mutex<Vec<Option<ShardProfile>>>,
}

impl ProfileState {
    /// Nanoseconds since submit entry (saturating far beyond any
    /// realistic run).
    fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.base.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn snapshot(&self, cancelled: bool, finished: bool) -> QueryProfile {
        let first = self.first_dispatch_ns.load(Ordering::Acquire);
        let last = self.last_finish_ns.load(Ordering::Acquire);
        let reassembled = self.reassembled_ns.load(Ordering::Acquire);
        let (shards, total_shards) = {
            let slots = self
                .shards
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            (
                slots.iter().flatten().cloned().collect::<Vec<_>>(),
                slots.len(),
            )
        };
        QueryProfile {
            query_id: self.query_id,
            admitted: Duration::from_nanos(self.admitted_ns),
            planned: Some(Duration::from_nanos(self.planned_ns)),
            first_dispatch: (first != u64::MAX).then(|| Duration::from_nanos(first)),
            // With per-task timing off every task stores mark 0, so use
            // job completion (`finished`) for the phase's presence.
            last_finish: (finished || last > 0).then(|| Duration::from_nanos(last)),
            reassembled: (reassembled > 0).then(|| Duration::from_nanos(reassembled)),
            total_shards,
            shards,
            cancelled,
        }
    }
}

/// A schedulable unit: one shard of one query.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// The queued tasks of one admitted query. Rings are drained round-robin,
/// one task per turn, so concurrent queries share the pool fairly instead
/// of queueing behind whoever submitted first.
struct QueryRing {
    /// The process-unique id of the ring's query (trace events).
    query: u64,
    tasks: VecDeque<Task>,
}

/// Everything guarded by the injector mutex: the rings, the admission
/// accounting the condvars signal on, **and** the lifetime counters.
/// Keeping the counters under the same lock as the queue is what makes a
/// [`Service::counters`] snapshot internally consistent — with them
/// outside (the pre-observability design), a snapshot racing a fast pool
/// could report `completed > submitted`, or a completed query as still
/// in flight.
struct QueueState {
    /// Per-query task rings, in round-robin rotation order. Invariant:
    /// every ring holds ≥ 1 task (empty rings are removed on pop).
    rings: VecDeque<QueryRing>,
    /// Tasks across all rings (denormalised for O(1) counters).
    queued_tasks: usize,
    /// Admitted-but-unfinished queries (the quantity `queue_depth`
    /// bounds).
    in_flight: usize,
    /// Accepted submissions (bumped under this lock, in the same critical
    /// section that makes the work visible).
    submitted: u64,
    /// Accepted queries whose work has finished.
    completed: u64,
    /// Submissions shed by admission control.
    shed: u64,
    /// Handles dropped before their query finished.
    cancelled: u64,
    /// Tasks popped but skipped because their query was cancelled.
    skipped_tasks: u64,
}

/// State shared between the submitting threads and the pool workers.
struct Injector {
    queue: Mutex<QueueState>,
    /// Signalled when tasks are pushed (workers wait here).
    task_ready: Condvar,
    /// Signalled when a query finishes, freeing an admission slot
    /// (blocking submitters wait here).
    space_ready: Condvar,
    shutdown: AtomicBool,
    /// Global-registry handles, `None` when [`ServiceConfig::obs`] is
    /// off. Mirrors of the mutex-guarded counters are bumped *after* the
    /// critical sections — the registry is a reporting surface, the
    /// locked counters stay the source of truth.
    metrics: Option<&'static ServiceMetrics>,
}

impl Injector {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues one admitted query's tasks as a fresh ring at the back of
    /// the rotation, counting the acceptance in the same critical section
    /// that makes the work visible to workers.
    fn push_ring(&self, query: u64, tasks: VecDeque<Task>) {
        debug_assert!(!tasks.is_empty(), "rings hold at least one task");
        let n = tasks.len();
        {
            let mut q = self.lock();
            q.queued_tasks += n;
            q.submitted += 1;
            q.rings.push_back(QueryRing { query, tasks });
        }
        if let Some(m) = self.metrics {
            m.submitted.inc();
            m.queued_tasks.add(n as i64);
        }
        trace().record(
            TraceLevel::Summary,
            TraceEvent::Admit {
                query,
                tasks: n as u32,
            },
        );
        if n == 1 {
            self.task_ready.notify_one();
        } else {
            self.task_ready.notify_all();
        }
    }

    /// Enqueues **auxiliary** (non-query) tasks — maintenance work such
    /// as shard-parallel delta compaction — as a ring in the same
    /// round-robin rotation, *without* counting a query admission:
    /// `submitted`/`completed`/`in_flight` stay untouched, so admission
    /// control never sheds a query because maintenance is running and
    /// the counters snapshot keeps its `completed == submitted` idle
    /// invariant. Workers still interleave the ring fairly with query
    /// shards (one task per rotation turn).
    fn push_aux_ring(&self, query: u64, tasks: VecDeque<Task>) {
        debug_assert!(!tasks.is_empty(), "rings hold at least one task");
        let n = tasks.len();
        {
            let mut q = self.lock();
            q.queued_tasks += n;
            q.rings.push_back(QueryRing { query, tasks });
        }
        if let Some(m) = self.metrics {
            m.queued_tasks.add(n as i64);
        }
        if n == 1 {
            self.task_ready.notify_one();
        } else {
            self.task_ready.notify_all();
        }
    }

    /// Worker side: next task — **round-robin across query rings**, one
    /// task per turn — or `None` once shut down *and* drained (pending
    /// queries always finish, so handles never dangle).
    fn pop(&self) -> Option<Task> {
        let mut q = self.lock();
        loop {
            if let Some(mut ring) = q.rings.pop_front() {
                let task = ring.tasks.pop_front().expect("rings hold ≥ 1 task");
                q.queued_tasks -= 1;
                let rotated = if ring.tasks.is_empty() {
                    None
                } else {
                    // Rotate: this query goes to the back so its
                    // neighbours get the next turns.
                    let info = (ring.query, ring.tasks.len() as u32);
                    q.rings.push_back(ring);
                    Some(info)
                };
                drop(q);
                if let Some(m) = self.metrics {
                    m.queued_tasks.sub(1);
                }
                if let Some((query, remaining)) = rotated {
                    trace().record(
                        TraceLevel::Verbose,
                        TraceEvent::RingRotate { query, remaining },
                    );
                }
                return Some(task);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            q = self
                .task_ready
                .wait(q)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Releases one admission slot (a query errored at planning time —
    /// finished queries go through [`Injector::finish_query`], which also
    /// counts them) and wakes blocked submitters.
    fn release_slot(&self) {
        {
            let mut q = self.lock();
            debug_assert!(q.in_flight > 0, "release without admission");
            q.in_flight -= 1;
        }
        if let Some(m) = self.metrics {
            m.in_flight.sub(1);
        }
        self.space_ready.notify_one();
    }

    /// A query's last task drained (or it resolved at submit time):
    /// release its slot and count it done — **one** critical section, so
    /// no counters snapshot can see the query both completed and in
    /// flight.
    fn finish_query(&self, query: u64) {
        {
            let mut q = self.lock();
            debug_assert!(q.in_flight > 0, "finish without admission");
            q.completed += 1;
            q.in_flight -= 1;
        }
        if let Some(m) = self.metrics {
            m.completed.inc();
            m.in_flight.sub(1);
        }
        trace().record(TraceLevel::Summary, TraceEvent::Finish { query });
        self.space_ready.notify_one();
    }

    /// A worker popped a task of a cancelled query and skipped the engine
    /// run. Settled **before** [`JobState::complete`] frees the slot, so
    /// by the time the counters report the query gone, its skips are
    /// already in.
    fn note_skipped(&self, query: u64, slot: usize) {
        self.lock().skipped_tasks += 1;
        if let Some(m) = self.metrics {
            m.skipped_tasks.inc();
        }
        trace().record(
            TraceLevel::Summary,
            TraceEvent::SkipTask {
                query,
                slot: slot as u32,
            },
        );
    }

    /// A pending handle was dropped: its query is cancelled.
    fn note_cancelled(&self, query: u64) {
        self.lock().cancelled += 1;
        if let Some(m) = self.metrics {
            m.cancelled.inc();
        }
        trace().record(TraceLevel::Summary, TraceEvent::Cancel { query });
    }
}

/// One shard's result: raw rows over the total order plus run stats.
type ShardResult = (Vec<Vec<Value>>, JoinStats);

/// Per-query completion state: one slot per shard, filled by workers in
/// whatever order the pool interleaves them; reassembly reads the slots
/// in index (= root-value) order, which is what makes the merge
/// deterministic.
struct JobState {
    slots: Mutex<Vec<Option<ShardResult>>>,
    remaining: AtomicUsize,
    /// A worker panicked while running one of this query's shards.
    poisoned: AtomicBool,
    /// The handle was dropped before waiting: workers skip the engine run
    /// for this query's remaining tasks.
    cancelled: AtomicBool,
    done: Mutex<bool>,
    done_ready: Condvar,
    /// Signalled (paired with the `slots` mutex) every time a slot
    /// settles — the [`RowStream`] subscription point, woken per shard
    /// instead of only at the final [`JobState::notify_done`].
    slot_ready: Condvar,
}

impl JobState {
    fn new(shards: usize) -> JobState {
        JobState {
            slots: Mutex::new(vec![None; shards]),
            remaining: AtomicUsize::new(shards),
            poisoned: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            done: Mutex::new(false),
            done_ready: Condvar::new(),
            slot_ready: Condvar::new(),
        }
    }

    /// Records one shard's result; returns `true` iff it was the query's
    /// last outstanding shard. The caller then settles the query with the
    /// service **before** calling [`JobState::notify_done`], so by the
    /// time `wait()` returns, the admission slot is released and the
    /// counters have settled.
    fn complete(&self, index: usize, result: Option<ShardResult>) -> bool {
        // Both the slot write and the poison mark happen under the
        // slots mutex, and the per-slot condvar is notified inside
        // the same critical section: a RowStream waiter checking its
        // slot can never miss the wakeup (it either sees the new
        // state or is already parked when the notify fires). The shard
        // is also counted down *before* the notify, in the same
        // critical section — a stream that consumes the final slot must
        // observe `remaining == 0` (`is_finished`) immediately, not
        // after a window in which the worker has published rows but not
        // yet decremented.
        let mut slots = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match result {
            Some(result) => slots[index] = Some(result),
            None => self.poisoned.store(true, Ordering::Release),
        }
        let last = self.remaining.fetch_sub(1, Ordering::AcqRel) == 1;
        self.slot_ready.notify_all();
        last
    }

    /// Wakes waiters; call only after the last [`JobState::complete`].
    fn notify_done(&self) {
        let mut done = self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *done = true;
        self.done_ready.notify_all();
    }

    fn wait(&self) {
        let mut done = self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*done {
            done = self
                .done_ready
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// The future of a submitted query. [`wait`](QueryHandle::wait) blocks
/// until every shard has run on the pool and returns the reassembled
/// output. **Dropping** the handle without waiting *cancels* the query:
/// workers skip the engine run for its remaining tasks, so an abandoned
/// handle stops burning the shared pool (and frees its admission slot
/// as its ring drains).
pub struct QueryHandle {
    inner: Option<HandleInner>,
}

/// Converts one settled slot's raw rows into a standalone [`Relation`]
/// (sorted + deduplicated within the slot). Shared by every batch of a
/// [`RowStream`], hence `Fn`, not `FnOnce`.
type SlotAssemble = Box<dyn Fn(Vec<Vec<Value>>) -> Result<Relation, QueryError> + Send>;

enum HandleInner {
    /// Resolved at submit time (empty input, zero-shard plan). Boxed so
    /// the common `Pending` variant stays small.
    Ready(Box<(Result<JoinOutput, QueryError>, QueryProfile)>),
    /// Waits on the pool, then assembles.
    Pending {
        state: Arc<JobState>,
        injector: Arc<Injector>,
        profile: Arc<ProfileState>,
        assemble: Box<dyn FnOnce() -> Result<JoinOutput, QueryError> + Send>,
        slot_assemble: SlotAssemble,
        /// Concatenating per-slot batches in slot order reproduces the
        /// full output byte-for-byte (see
        /// [`PreparedQuery::slots_stream_sorted`]).
        ordered: bool,
    },
}

impl QueryHandle {
    fn ready(result: Result<JoinOutput, QueryError>, profile: QueryProfile) -> QueryHandle {
        QueryHandle {
            inner: Some(HandleInner::Ready(Box::new((result, profile)))),
        }
    }

    /// Blocks until the query finishes; returns its output.
    ///
    /// # Errors
    /// Propagates evaluation errors.
    ///
    /// # Panics
    /// If a pool worker panicked while running one of this query's shards
    /// (the panic is re-raised here instead of deadlocking the caller).
    pub fn wait(mut self) -> Result<JoinOutput, QueryError> {
        match self.inner.take().expect("handle consumed exactly once") {
            HandleInner::Ready(ready) => ready.0,
            HandleInner::Pending { assemble, .. } => assemble(),
        }
    }

    /// Like [`wait`](QueryHandle::wait), but also returns the query's
    /// final [`QueryProfile`] — every lifecycle phase set, every shard
    /// reported.
    ///
    /// # Errors
    /// Propagates evaluation errors.
    ///
    /// # Panics
    /// Same as [`wait`](QueryHandle::wait).
    pub fn wait_profiled(mut self) -> Result<(JoinOutput, QueryProfile), QueryError> {
        match self.inner.take().expect("handle consumed exactly once") {
            HandleInner::Ready(ready) => {
                let (result, profile) = *ready;
                result.map(|out| (out, profile))
            }
            HandleInner::Pending {
                profile, assemble, ..
            } => {
                let out = assemble()?;
                Ok((out, profile.snapshot(false, true)))
            }
        }
    }

    /// A point-in-time [`QueryProfile`] snapshot — non-blocking, callable
    /// while the query is still running (phases that have not happened
    /// are `None`, `shards` holds only drained tasks).
    ///
    /// # Panics
    /// If the handle was already consumed by `wait` (unreachable through
    /// safe use: both consume `self`).
    #[must_use]
    pub fn profile(&self) -> QueryProfile {
        match self.inner.as_ref().expect("handle not consumed") {
            HandleInner::Ready(ready) => ready.1.clone(),
            HandleInner::Pending { state, profile, .. } => profile.snapshot(
                state.cancelled.load(Ordering::Acquire),
                state.remaining.load(Ordering::Acquire) == 0,
            ),
        }
    }

    /// `true` iff every shard of the query has already drained — `wait`
    /// would return without blocking. Degenerate submit-time resolutions
    /// are always finished.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            Some(HandleInner::Ready(..)) | None => true,
            Some(HandleInner::Pending { state, .. }) => {
                state.remaining.load(Ordering::Acquire) == 0
            }
        }
    }

    /// Turns the handle into an **incremental** subscription: each call
    /// to [`RowStream::next_batch`] blocks only until the *next* slot
    /// settles and yields that slot's rows as a standalone sorted,
    /// deduplicated [`Relation`] — a front end can push early shards to
    /// the client while the pool is still running later ones.
    ///
    /// Slot rectangles partition the output (disjoint `(root, anchor)`
    /// ranges), so concatenating every batch and running one final
    /// `sort_dedup` always reproduces [`wait`](QueryHandle::wait)'s
    /// relation exactly. When [`RowStream::ordered`] is `true` even the
    /// final sort is unnecessary: plain concatenation in batch order is
    /// already the full output, byte for byte.
    ///
    /// Dropping the stream before draining it cancels the query exactly
    /// like dropping an unwaited handle would.
    #[must_use]
    pub fn into_stream(mut self) -> RowStream {
        match self.inner.take().expect("handle consumed exactly once") {
            HandleInner::Ready(ready) => RowStream {
                inner: StreamInner::Ready(Some(ready.0)),
                next_slot: 0,
                total_slots: 1,
                ordered: true,
            },
            HandleInner::Pending {
                state,
                injector,
                profile,
                slot_assemble,
                ordered,
                ..
            } => {
                let total_slots = state
                    .slots
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len();
                RowStream {
                    inner: StreamInner::Pending {
                        state,
                        injector,
                        profile,
                        convert: slot_assemble,
                    },
                    next_slot: 0,
                    total_slots,
                    ordered,
                }
            }
        }
    }
}

impl fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(HandleInner::Ready(..)) => f.write_str("QueryHandle(ready)"),
            Some(HandleInner::Pending { state, .. }) => write!(
                f,
                "QueryHandle(pending, {} shards outstanding)",
                state.remaining.load(Ordering::Relaxed)
            ),
            None => f.write_str("QueryHandle(consumed)"),
        }
    }
}

impl Drop for QueryHandle {
    /// Abandoning a pending handle cancels its query: remaining tasks are
    /// skipped by the workers instead of burning the pool for a result
    /// nobody can read any more.
    fn drop(&mut self) {
        if let Some(HandleInner::Pending {
            state,
            injector,
            profile,
            ..
        }) = &self.inner
        {
            state.cancelled.store(true, Ordering::Release);
            if state.remaining.load(Ordering::Acquire) > 0 {
                injector.note_cancelled(profile.query_id);
            }
        }
    }
}

/// One settled slot's output, yielded by [`RowStream::next_batch`].
#[derive(Debug)]
pub struct RowBatch {
    /// The slot (= shard = root-rectangle) index this batch came from.
    /// Batches arrive in strictly ascending slot order.
    pub slot: usize,
    /// The slot's rows, sorted and deduplicated within the slot.
    pub relation: Relation,
}

enum StreamInner {
    /// Degenerate submit-time resolution: one synthetic batch.
    Ready(Option<Result<JoinOutput, QueryError>>),
    Pending {
        state: Arc<JobState>,
        injector: Arc<Injector>,
        profile: Arc<ProfileState>,
        convert: SlotAssemble,
    },
}

/// An incremental subscription to a running query, made by
/// [`QueryHandle::into_stream`]. Yields one [`RowBatch`] per slot, in
/// slot order, each as soon as that slot settles — the streaming hook
/// the HTTP front end's chunked `/query/{id}/rows` endpoint rides on.
pub struct RowStream {
    inner: StreamInner,
    next_slot: usize,
    total_slots: usize,
    ordered: bool,
}

impl RowStream {
    /// `true` iff concatenating the batches in arrival order reproduces
    /// the full query output byte-for-byte (the prepared total order
    /// already matches the output schema). When `false` the consumer
    /// must merge: concatenate all batches, then sort + dedup once.
    #[must_use]
    pub fn ordered(&self) -> bool {
        self.ordered
    }

    /// Number of batches the stream will yield in total.
    #[must_use]
    pub fn total_slots(&self) -> usize {
        self.total_slots
    }

    /// Batches already yielded by [`next_batch`](RowStream::next_batch).
    #[must_use]
    pub fn slots_emitted(&self) -> usize {
        self.next_slot
    }

    /// `true` iff every shard has already drained on the pool —
    /// remaining `next_batch` calls will not block.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            StreamInner::Ready(..) => true,
            StreamInner::Pending { state, .. } => state.remaining.load(Ordering::Acquire) == 0,
        }
    }

    /// Blocks until **every** shard has drained (without consuming any
    /// batches) — the poll-with-block endpoint's primitive.
    pub fn wait_settled(&self) {
        if let StreamInner::Pending { state, .. } = &self.inner {
            state.wait();
        }
    }

    /// Blocks until the next slot settles and yields its rows; `None`
    /// once every slot has been yielded.
    ///
    /// # Errors
    /// Propagates evaluation errors (degenerate submissions only — shard
    /// evaluation itself is infallible once admitted; worker *panics*
    /// re-raise here, see below).
    ///
    /// # Panics
    /// If a pool worker panicked while running one of this query's
    /// shards (mirrors [`QueryHandle::wait`]).
    pub fn next_batch(&mut self) -> Option<Result<RowBatch, QueryError>> {
        if self.next_slot >= self.total_slots {
            return None;
        }
        let slot = self.next_slot;
        match &mut self.inner {
            StreamInner::Ready(result) => {
                self.next_slot += 1;
                let result = result.take().expect("ready batch yielded exactly once");
                Some(result.map(|out| RowBatch {
                    slot,
                    relation: out.relation,
                }))
            }
            StreamInner::Pending { state, convert, .. } => {
                let mut slots = state
                    .slots
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let rows = loop {
                    assert!(
                        !state.poisoned.load(Ordering::Acquire),
                        "a service worker panicked while running a shard of this query"
                    );
                    if let Some((rows, _stats)) = slots[slot].take() {
                        break rows;
                    }
                    slots = state
                        .slot_ready
                        .wait(slots)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                };
                drop(slots);
                self.next_slot += 1;
                Some(convert(rows).map(|relation| RowBatch { slot, relation }))
            }
        }
    }
}

impl fmt::Debug for RowStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RowStream({}/{} slots emitted, ordered: {})",
            self.next_slot, self.total_slots, self.ordered
        )
    }
}

impl Drop for RowStream {
    /// Abandoning a partially drained stream cancels the query, exactly
    /// like dropping an unwaited [`QueryHandle`]: workers skip the
    /// remaining shards, the admission slot frees as the ring drains. A
    /// client that disconnects mid-stream therefore cannot leak pool
    /// capacity.
    fn drop(&mut self) {
        if let StreamInner::Pending {
            state,
            injector,
            profile,
            ..
        } = &self.inner
        {
            if self.next_slot < self.total_slots {
                state.cancelled.store(true, Ordering::Release);
                if state.remaining.load(Ordering::Acquire) > 0 {
                    injector.note_cancelled(profile.query_id);
                }
            }
        }
    }
}

/// How a submission behaves when the service is at its admission bound.
enum Admission {
    /// Fail fast with [`SubmitError::Overloaded`].
    Shed,
    /// Wait (on the space condvar) until a slot frees up.
    Block,
    /// Wait until the deadline, then shed.
    Deadline(Instant),
}

/// A batch of auxiliary tasks dispatched through the pool by
/// [`Service::run_tasks`]: a countdown latch the caller blocks on.
/// Dropping without waiting is allowed — the tasks still run.
pub struct TaskBatch {
    latch: Arc<(Mutex<usize>, Condvar)>,
}

impl TaskBatch {
    /// Blocks until every task in the batch has finished (or panicked —
    /// a panicking task still counts down, so the batch can't hang).
    pub fn wait(&self) {
        let (lock, cv) = &*self.latch;
        let mut remaining = lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *remaining > 0 {
            remaining = cv
                .wait(remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Counts a [`TaskBatch`] task down on drop, so a panic inside the task
/// body still releases the latch.
struct LatchGuard(Arc<(Mutex<usize>, Condvar)>);

impl Drop for LatchGuard {
    fn drop(&mut self) {
        let (lock, cv) = &*self.0;
        let mut remaining = lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *remaining -= 1;
        if *remaining == 0 {
            cv.notify_all();
        }
    }
}

/// A long-lived executor owning one global worker pool; queries from any
/// thread share it. See the crate docs for the scheduling model
/// (round-robin fair dispatch, bounded admission, cancellation).
pub struct Service {
    injector: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
    cfg: ServiceConfig,
}

impl Service {
    /// Spawns the worker pool.
    #[must_use]
    pub fn new(cfg: ServiceConfig) -> Service {
        let cfg = ServiceConfig {
            workers: cfg.workers.max(1),
            ..cfg
        };
        let injector = Arc::new(Injector {
            queue: Mutex::new(QueueState {
                rings: VecDeque::new(),
                queued_tasks: 0,
                in_flight: 0,
                submitted: 0,
                completed: 0,
                shed: 0,
                cancelled: 0,
                skipped_tasks: 0,
            }),
            task_ready: Condvar::new(),
            space_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: cfg.obs.then(ServiceMetrics::get),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let injector = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("wcoj-service-{i}"))
                    .spawn(move || {
                        while let Some(task) = injector.pop() {
                            // A panicking shard must not take the worker
                            // down with it: the task itself reports the
                            // failure to its job, the pool keeps serving
                            // the other queries.
                            let _ = catch_unwind(AssertUnwindSafe(task));
                        }
                    })
                    .expect("spawn service worker")
            })
            .collect();
        Service {
            injector,
            workers,
            cfg,
        }
    }

    /// Number of pool workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Accepted submissions over the service's lifetime: every submit
    /// call that returned a [`QueryHandle`], **including** degenerate
    /// queries resolved at submit time; shed submissions and
    /// planning-error (e.g. bad cover / LP failure) submissions are not
    /// counted.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.injector.lock().submitted
    }

    /// A point-in-time snapshot of the scheduling counters — taken in
    /// **one** critical section of the scheduler lock, so the snapshot is
    /// internally consistent: never `completed > submitted`, never
    /// `queued_tasks > 0` with `in_flight == 0`, and once the service
    /// idles, `completed == submitted` exactly (cancelled queries still
    /// drain and complete).
    #[must_use]
    pub fn counters(&self) -> ServiceCounters {
        let q = self.injector.lock();
        ServiceCounters {
            submitted: q.submitted,
            completed: q.completed,
            shed: q.shed,
            cancelled: q.cancelled,
            skipped_tasks: q.skipped_tasks,
            in_flight: q.in_flight,
            queued_tasks: q.queued_tasks,
        }
    }

    /// Runs a batch of independent closures on the worker pool as one
    /// auxiliary ring — the injector-task path maintenance work (delta
    /// compaction chunks, index rebuilds) uses to share workers with
    /// queries instead of spawning threads. The batch **bypasses
    /// admission control** and the submitted/completed counters: it is
    /// not a query, and it must not be shed or block behind queue-depth
    /// limits it doesn't consume.
    ///
    /// Returns a [`TaskBatch`]; call [`TaskBatch::wait`] to block until
    /// every closure has run. Panicking closures are caught by the
    /// worker (and still count down), like panicking query shards.
    /// Empty batches return an already-settled latch.
    #[must_use]
    pub fn run_tasks(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'static>>) -> TaskBatch {
        let latch = Arc::new((Mutex::new(tasks.len()), Condvar::new()));
        if tasks.is_empty() {
            return TaskBatch { latch };
        }
        let ring: VecDeque<Task> = tasks
            .into_iter()
            .map(|task| {
                let guard = LatchGuard(Arc::clone(&latch));
                Box::new(move || {
                    let _count_down = guard;
                    task();
                }) as Task
            })
            .collect();
        self.injector.push_aux_ring(next_query_id(), ring);
        TaskBatch { latch }
    }

    /// The service's default per-query planning config (its `threads`
    /// field is ignored by [`submit`](Service::submit)).
    #[must_use]
    pub fn exec_config(&self) -> ExecConfig {
        self.cfg.exec.clone()
    }

    /// The configured admission bound (`0` = unbounded).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.cfg.queue_depth
    }

    /// The shard layout [`submit`](Service::submit) would schedule for
    /// `prepared` on this service: the planned ranges, or a single
    /// unrestricted task for degenerate plans. Empty exactly when the
    /// query is a zero-shard plan (deterministic, so differential tests
    /// can re-run the layout shard by shard).
    #[must_use]
    pub fn shard_layout<S: SearchTree>(
        &self,
        prepared: &PreparedQuery<S>,
        cfg: &ExecConfig,
    ) -> Vec<Option<RootShard>> {
        let plan = ShardPlan::plan(prepared, self.workers.len() * OVERSPLIT, cfg);
        if plan.root_domain_is_empty(prepared) {
            Vec::new()
        } else {
            plan.tasks()
        }
    }

    /// Acquires an admission slot according to `how`.
    fn admit(&self, how: &Admission) -> Result<(), SubmitError> {
        let depth = self.cfg.queue_depth;
        let mut q = self.injector.lock();
        loop {
            if depth == 0 || q.in_flight < depth {
                q.in_flight += 1;
                drop(q);
                if let Some(m) = self.injector.metrics {
                    m.in_flight.add(1);
                }
                return Ok(());
            }
            let in_flight = q.in_flight;
            let overloaded = SubmitError::Overloaded {
                in_flight,
                queue_depth: depth,
            };
            let shed_now = match how {
                Admission::Shed => true,
                Admission::Deadline(deadline) => Instant::now() >= *deadline,
                Admission::Block => false,
            };
            if shed_now {
                q.shed += 1;
                drop(q);
                if let Some(m) = self.injector.metrics {
                    m.shed.inc();
                }
                trace().record(
                    TraceLevel::Summary,
                    TraceEvent::Shed {
                        in_flight: in_flight as u32,
                    },
                );
                return Err(overloaded);
            }
            q = match how {
                Admission::Block => self
                    .injector
                    .space_ready
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
                Admission::Deadline(deadline) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    self.injector
                        .space_ready
                        .wait_timeout(q, left)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0
                }
                Admission::Shed => unreachable!("shed handled above"),
            };
        }
    }

    /// Submits a prepared query with the LP-optimal fractional cover.
    /// Returns immediately; the shards run on the shared pool. Under
    /// overload ([`ServiceConfig::queue_depth`] queries already in
    /// flight) the submission is **shed**, not queued.
    ///
    /// # Errors
    /// [`SubmitError::Overloaded`] when admission control sheds the
    /// query; [`SubmitError::Query`] for LP errors from solving for the
    /// optimal cover.
    pub fn submit<S>(
        &self,
        prepared: &Arc<PreparedQuery<S>>,
        cfg: &ExecConfig,
    ) -> Result<QueryHandle, SubmitError>
    where
        S: SearchTree + Send + Sync + 'static,
    {
        self.submit_inner(prepared, None, cfg, &Admission::Shed)
    }

    /// Like [`submit`](Service::submit), but **waits** for an admission
    /// slot instead of shedding when the service is at its bound — for
    /// callers that prefer delay over a 429.
    ///
    /// # Errors
    /// [`SubmitError::Query`] for LP errors (never
    /// [`SubmitError::Overloaded`]).
    pub fn submit_blocking<S>(
        &self,
        prepared: &Arc<PreparedQuery<S>>,
        cfg: &ExecConfig,
    ) -> Result<QueryHandle, SubmitError>
    where
        S: SearchTree + Send + Sync + 'static,
    {
        self.submit_inner(prepared, None, cfg, &Admission::Block)
    }

    /// Like [`submit_blocking`](Service::submit_blocking) with a
    /// deadline: waits up to `timeout` for an admission slot, then sheds.
    ///
    /// # Errors
    /// [`SubmitError::Overloaded`] when no slot freed up within
    /// `timeout`; [`SubmitError::Query`] for LP errors.
    pub fn try_submit_timeout<S>(
        &self,
        prepared: &Arc<PreparedQuery<S>>,
        cfg: &ExecConfig,
        timeout: Duration,
    ) -> Result<QueryHandle, SubmitError>
    where
        S: SearchTree + Send + Sync + 'static,
    {
        let deadline = Instant::now()
            .checked_add(timeout)
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(86_400));
        self.submit_inner(prepared, None, cfg, &Admission::Deadline(deadline))
    }

    /// Like [`submit`](Service::submit) with an explicit fractional cover
    /// (validated; one weight per relation in input order).
    ///
    /// # Errors
    /// [`SubmitError::Overloaded`] under overload;
    /// [`SubmitError::Query`] wrapping [`QueryError::BadCover`] for
    /// invalid covers or LP errors when solving for the optimum.
    pub fn submit_with_cover<S>(
        &self,
        prepared: &Arc<PreparedQuery<S>>,
        cover: Option<&[f64]>,
        cfg: &ExecConfig,
    ) -> Result<QueryHandle, SubmitError>
    where
        S: SearchTree + Send + Sync + 'static,
    {
        self.submit_inner(prepared, cover, cfg, &Admission::Shed)
    }

    /// An accepted submission that resolved at submit time: it holds an
    /// admission slot (acquired in `admit`) that must be released, and it
    /// counts as submitted **and** completed in one critical section, so
    /// a concurrent [`Service::counters`] snapshot never observes
    /// `completed > submitted` or a phantom in-flight query.
    fn accept_ready(
        &self,
        query_id: u64,
        submit_start: Instant,
        admitted_ns: u64,
        planned_ns: Option<u64>,
        result: Result<JoinOutput, QueryError>,
    ) -> Result<QueryHandle, SubmitError> {
        {
            let mut q = self.injector.lock();
            q.submitted += 1;
            q.completed += 1;
            debug_assert!(q.in_flight > 0, "accept without admission");
            q.in_flight -= 1;
        }
        self.injector.space_ready.notify_one();
        let elapsed = submit_start.elapsed();
        if let Some(m) = self.injector.metrics {
            m.submitted.inc();
            m.completed.inc();
            m.in_flight.sub(1);
            m.query_latency_us
                .observe(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
        }
        trace().record(
            TraceLevel::Summary,
            TraceEvent::Admit {
                query: query_id,
                tasks: 0,
            },
        );
        trace().record(TraceLevel::Summary, TraceEvent::Finish { query: query_id });
        let profile = QueryProfile {
            query_id,
            admitted: Duration::from_nanos(admitted_ns),
            planned: planned_ns.map(Duration::from_nanos),
            first_dispatch: None,
            last_finish: None,
            reassembled: Some(elapsed),
            total_shards: 0,
            shards: Vec::new(),
            cancelled: false,
        };
        Ok(QueryHandle::ready(result, profile))
    }

    fn submit_inner<S>(
        &self,
        prepared: &Arc<PreparedQuery<S>>,
        cover: Option<&[f64]>,
        cfg: &ExecConfig,
        how: &Admission,
    ) -> Result<QueryHandle, SubmitError>
    where
        S: SearchTree + Send + Sync + 'static,
    {
        let submit_start = Instant::now();
        // Admission first: under overload the submission is refused
        // *before* any planning work (shedding is supposed to be cheap).
        self.admit(how)?;
        let admitted_ns = u64::try_from(submit_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(m) = self.injector.metrics {
            m.admission_wait_us.observe(admitted_ns / 1_000);
        }
        let query_id = next_query_id();

        let base_stats = |log2_bound: f64, x: &[f64]| JoinStats {
            algorithm_used: ALGORITHM,
            log2_agm_bound: log2_bound,
            cover: x.to_vec(),
            ..JoinStats::default()
        };

        // Degenerate inputs resolve immediately — no tasks, no workers
        // (and no shard plan: `planned` stays unset).
        if prepared.input_is_empty() {
            return self.accept_ready(
                query_id,
                submit_start,
                admitted_ns,
                None,
                Ok(JoinOutput {
                    relation: Relation::empty(prepared.query().output_schema()),
                    stats: base_stats(0.0, &[]),
                }),
            );
        }
        let (x, log2_bound) = match prepared.resolve_cover(cover) {
            Ok(resolved) => resolved,
            Err(e) => {
                // Rejected before scheduling: give the slot back and do
                // NOT count the submission as accepted.
                self.injector.release_slot();
                return Err(SubmitError::Query(e));
            }
        };

        let tasks = self.shard_layout(&**prepared, cfg);
        let planned_ns = u64::try_from(submit_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if tasks.is_empty() {
            // Zero-shard plan: no root value survives the level-0
            // intersection, the output is empty.
            return self.accept_ready(
                query_id,
                submit_start,
                admitted_ns,
                Some(planned_ns),
                prepared.assemble(Vec::new(), base_stats(log2_bound, &x)),
            );
        }

        let timed = self.cfg.obs;
        let profile = Arc::new(ProfileState {
            query_id,
            base: submit_start,
            admitted_ns,
            planned_ns,
            first_dispatch_ns: AtomicU64::new(u64::MAX),
            last_finish_ns: AtomicU64::new(0),
            reassembled_ns: AtomicU64::new(0),
            shards: Mutex::new(vec![None; tasks.len()]),
        });
        let state = Arc::new(JobState::new(tasks.len()));
        let mut ring: VecDeque<Task> = VecDeque::with_capacity(tasks.len());
        for (i, shard) in tasks.into_iter().enumerate() {
            let prepared = Arc::clone(prepared);
            let state = Arc::clone(&state);
            let injector = Arc::clone(&self.injector);
            let profile = Arc::clone(&profile);
            let x = x.clone();
            // Offset of the ring push, so the worker can compute its
            // queue wait with one subtraction (zero when timing is off).
            let enqueued_ns = if timed { profile.elapsed_ns() } else { 0 };
            ring.push_back(Box::new(move || {
                // With timing off the mark is 0: the phase still reads as
                // "happened" (≠ the MAX sentinel), just with a zero value.
                let started_ns = if timed { profile.elapsed_ns() } else { 0 };
                profile
                    .first_dispatch_ns
                    .fetch_min(started_ns, Ordering::AcqRel);
                let mut payload = None;
                let skipped = state.cancelled.load(Ordering::Acquire);
                let result = if skipped {
                    // The handle is gone: nobody can read the rows, skip
                    // the engine run and just drain the accounting.
                    injector.note_skipped(profile.query_id, i);
                    Some((Vec::new(), JoinStats::default()))
                } else {
                    // Report a panic to the job before re-raising, so
                    // wait() fails loudly instead of blocking forever.
                    match catch_unwind(AssertUnwindSafe(|| {
                        prepared.run_shard(&x, log2_bound, shard)
                    })) {
                        Ok(rows_stats) => Some(rows_stats),
                        Err(p) => {
                            payload = Some(p);
                            None
                        }
                    }
                };
                if let Some((rows, stats)) = &result {
                    let finished_ns = if timed { profile.elapsed_ns() } else { 0 };
                    let queue_wait = started_ns.saturating_sub(enqueued_ns);
                    let run = finished_ns.saturating_sub(started_ns);
                    if timed {
                        profile
                            .last_finish_ns
                            .fetch_max(finished_ns, Ordering::AcqRel);
                        if let Some(m) = injector.metrics {
                            m.task_queue_wait_us.observe(queue_wait / 1_000);
                            m.task_run_us.observe(run / 1_000);
                            m.shard_rows.observe(rows.len() as u64);
                        }
                        trace().record(
                            TraceLevel::Verbose,
                            TraceEvent::TaskRun {
                                query: profile.query_id,
                                slot: i as u32,
                                run_us: run / 1_000,
                            },
                        );
                    }
                    let shard_profile = ShardProfile {
                        slot: i,
                        queue_wait: Duration::from_nanos(queue_wait),
                        run: Duration::from_nanos(run),
                        rows: rows.len() as u64,
                        skipped,
                        stats: stats.clone(),
                    };
                    profile
                        .shards
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)[i] =
                        Some(shard_profile);
                }
                if state.complete(i, result) {
                    // Settle with the service first: once wait() returns,
                    // the admission slot is free and the counters agree.
                    injector.finish_query(profile.query_id);
                    if let Some(m) = injector.metrics {
                        m.query_latency_us.observe(
                            u64::try_from(profile.base.elapsed().as_micros()).unwrap_or(u64::MAX),
                        );
                    }
                    state.notify_done();
                }
                if let Some(p) = payload {
                    std::panic::resume_unwind(p);
                }
            }));
        }
        // The acceptance is counted inside push_ring, under the same lock
        // that makes the ring visible to workers: a fast pool can finish
        // every shard only *after* `submitted` already reads right.
        self.injector.push_ring(query_id, ring);

        let ordered = prepared.slots_stream_sorted();
        let slot_prepared = Arc::clone(prepared);
        let prepared = Arc::clone(prepared);
        let stats = base_stats(log2_bound, &x);
        let assemble_state = Arc::clone(&state);
        let assemble_profile = Arc::clone(&profile);
        Ok(QueryHandle {
            inner: Some(HandleInner::Pending {
                state: Arc::clone(&state),
                injector: Arc::clone(&self.injector),
                profile: Arc::clone(&profile),
                slot_assemble: Box::new(move |rows| slot_prepared.assemble_slot(rows)),
                ordered,
                assemble: Box::new(move || {
                    let state = assemble_state;
                    state.wait();
                    assert!(
                        !state.poisoned.load(Ordering::Acquire),
                        "a service worker panicked while running a shard of this query"
                    );
                    let mut slots = state
                        .slots
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let mut stats = stats;
                    let mut rows = Vec::with_capacity(
                        slots
                            .iter()
                            .map(|s| s.as_ref().map_or(0, |(r, _)| r.len()))
                            .sum(),
                    );
                    // Deterministic merge: slot (= shard = root-value)
                    // order, regardless of the order the pool finished
                    // them in.
                    for slot in slots.iter_mut() {
                        let (shard_rows, shard_stats) = slot.take().expect("every shard completed");
                        rows.extend(shard_rows);
                        stats.absorb(&shard_stats);
                    }
                    drop(slots);
                    let out = prepared.assemble(rows, stats);
                    assemble_profile
                        .reassembled_ns
                        .store(assemble_profile.elapsed_ns().max(1), Ordering::Release);
                    out
                }),
            }),
        })
    }

    /// One-shot convenience: prepare `relations` with the default sorted
    /// trie backend, submit with the service's default planning config,
    /// and wait. This is the entry point `wcoj-query` routes catalog
    /// queries through; under overload it surfaces
    /// [`QueryError::Overloaded`] (the shed, not the blocking, policy —
    /// a front end should answer 429 rather than stall its caller).
    ///
    /// # Errors
    /// Same as [`PreparedQuery::new_indexed`] plus evaluation errors and
    /// [`QueryError::Overloaded`].
    pub fn join(&self, relations: &[Relation]) -> Result<JoinOutput, QueryError> {
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(relations)?);
        self.submit(&prepared, &self.cfg.exec)
            .map_err(QueryError::from)?
            .wait()
    }

    /// [`Service::join`] plus the query's final [`QueryProfile`] — the
    /// route `wcoj-query`'s `execute_profiled` uses so text-query callers
    /// see per-shard execution breakdowns without touching the
    /// prepare/submit API themselves.
    ///
    /// # Errors
    /// Same as [`Service::join`].
    pub fn join_profiled(
        &self,
        relations: &[Relation],
    ) -> Result<(JoinOutput, QueryProfile), QueryError> {
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(relations)?);
        self.submit(&prepared, &self.cfg.exec)
            .map_err(QueryError::from)?
            .wait_profiled()
    }
}

impl Drop for Service {
    /// Graceful shutdown: workers drain the queue (so outstanding
    /// handles still resolve), then exit and are joined.
    fn drop(&mut self) {
        {
            // Set the flag while holding the queue mutex: a worker is
            // then either before its shutdown check (and will see the
            // flag) or already parked in wait() (and will get the
            // notification) — never in between, which would lose the
            // wakeup and deadlock the join below.
            let _queue = self.injector.lock();
            self.injector.shutdown.store(true, Ordering::Release);
        }
        self.injector.task_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_core::{join_with, Algorithm};
    use wcoj_storage::{HashTrieIndex, Schema};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    #[test]
    fn run_tasks_executes_all_without_counting_a_query() {
        let service = Service::new(ServiceConfig::with_workers(2));
        let before = service.counters();
        let hits = Arc::new(AtomicU64::new(0));
        let batch = service.run_tasks(
            (0..16)
                .map(|_| {
                    let hits = Arc::clone(&hits);
                    Box::new(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect(),
        );
        batch.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 16);
        let after = service.counters();
        assert_eq!(after.submitted, before.submitted, "not a query");
        assert_eq!(after.in_flight, 0);
        assert_eq!(after.queued_tasks, 0, "ring fully drained");
        // empty batches settle immediately
        service.run_tasks(Vec::new()).wait();
        // a panicking task still counts down — wait() must not hang
        let batch = service.run_tasks(vec![
            Box::new(|| panic!("maintenance task blew up")) as Box<dyn FnOnce() + Send>,
            Box::new(|| {}) as Box<dyn FnOnce() + Send>,
        ]);
        batch.wait();
        // queries keep working after an aux panic
        let rels = triangle();
        let prepared = Arc::new(PreparedQuery::new(&rels).unwrap());
        let cfg = service.exec_config();
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert!(!out.relation.is_empty());
    }

    fn triangle() -> Vec<Relation> {
        vec![
            rel(&[0, 1], &[&[1, 2], &[1, 3]]),
            rel(&[1, 2], &[&[2, 4], &[3, 4]]),
            rel(&[0, 2], &[&[1, 4]]),
        ]
    }

    /// A blocker query for the admission tests: a 5-cycle whose *engine*
    /// run takes tens of milliseconds (even in release mode) while
    /// submitting it with the returned precomputed cover costs
    /// microseconds — so a blocker is reliably still in flight when the
    /// next submission's admission check runs.
    fn heavy_blocker(seed: u64) -> (Vec<Relation>, Arc<PreparedQuery<TrieIndex>>, Vec<f64>) {
        let rels = wcoj_datagen::cycle_instance(seed, 5, 200, 15);
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let (x, _) = prepared.resolve_cover(None).unwrap();
        (rels, prepared, x)
    }

    #[test]
    fn submit_and_wait_matches_sequential() {
        let service = Service::new(ServiceConfig::with_workers(3));
        let rels = [
            wcoj_datagen::random_relation(1, &[0, 1], 120, 12),
            wcoj_datagen::random_relation(2, &[1, 2], 120, 12),
            wcoj_datagen::random_relation(3, &[0, 2], 120, 12),
        ];
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation, seq.relation);
        assert_eq!(out.stats.algorithm_used, "nprr-service");
        assert!(out.stats.shards >= 1);
        assert_eq!(service.submitted(), 1);
    }

    #[test]
    fn many_handles_in_flight_before_any_wait() {
        let service = Service::new(ServiceConfig::with_workers(2));
        let rels = triangle();
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let handles: Vec<QueryHandle> = (0..16)
            .map(|_| service.submit(&prepared, &cfg).unwrap())
            .collect();
        for handle in handles {
            assert_eq!(handle.wait().unwrap().relation, seq.relation);
        }
        assert_eq!(service.submitted(), 16);
        let counters = service.counters();
        assert_eq!(counters.completed, 16);
        assert_eq!(counters.in_flight, 0);
        assert_eq!(counters.queued_tasks, 0);
        assert_eq!(counters.shed, 0);
        assert_eq!(counters.cancelled, 0);
    }

    #[test]
    fn hash_backend_through_the_pool() {
        let service = Service::new(ServiceConfig::with_workers(4));
        let rels = triangle();
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let prepared = Arc::new(PreparedQuery::<HashTrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation, seq.relation);
    }

    #[test]
    fn empty_input_and_zero_shard_resolve_at_submit() {
        let service = Service::new(ServiceConfig::with_workers(2));
        // all-empty / one-empty relation
        let prepared = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[1, 2]]),
                Relation::empty(Schema::of(&[1, 2])),
            ])
            .unwrap(),
        );
        let out = service
            .submit(&prepared, &service.exec_config())
            .unwrap()
            .wait()
            .unwrap();
        assert!(out.relation.is_empty());
        assert_eq!(out.relation.arity(), 3);
        assert_eq!(out.stats.shards, 0);

        // empty root-candidate intersection (zero-shard plan)
        let prepared = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[10, 1], &[10, 2]]),
                rel(&[1, 2], &[&[7, 20], &[8, 20]]),
                rel(&[0, 2], &[&[10, 20]]),
            ])
            .unwrap(),
        );
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        assert!(service.shard_layout(&*prepared, &cfg).is_empty());
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert!(out.relation.is_empty());
        assert_eq!(out.relation.arity(), 3);
        assert_eq!(out.stats.shards, 0, "no shard task was ever scheduled");
        assert_eq!(out.stats.case_a + out.stats.case_b, 0);

        // nullary queries still produce their single "true" row
        let prepared =
            Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&[Relation::nullary_true()]).unwrap());
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation.len(), 1);
        assert_eq!(out.relation.arity(), 0);
    }

    /// Satellite pin-down: `submitted` counts every *accepted* submit —
    /// including degenerate queries resolved at submit time — and never
    /// counts planning-error or shed submissions. Accepted queries all
    /// eventually count as `completed`, and admission slots drain back to
    /// zero.
    #[test]
    fn submitted_counter_semantics() {
        let service = Service::new(ServiceConfig::with_workers(2));
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };

        // 1. a normal multi-shard query: counted
        let populated = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&triangle()).unwrap());
        service.submit(&populated, &cfg).unwrap().wait().unwrap();
        assert_eq!(service.submitted(), 1);

        // 2. empty-input degenerate: counted (accepted, resolved at
        //    submit)
        let empty_input = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[1, 2]]),
                Relation::empty(Schema::of(&[1, 2])),
            ])
            .unwrap(),
        );
        service.submit(&empty_input, &cfg).unwrap().wait().unwrap();
        assert_eq!(service.submitted(), 2);

        // 3. zero-shard plan (empty root-candidate intersection): counted
        let zero_shard = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[10, 1], &[10, 2]]),
                rel(&[1, 2], &[&[7, 20], &[8, 20]]),
                rel(&[0, 2], &[&[10, 20]]),
            ])
            .unwrap(),
        );
        service.submit(&zero_shard, &cfg).unwrap().wait().unwrap();
        assert_eq!(service.submitted(), 3);

        // 4. a bad cover (planning error): NOT counted
        let err = service.submit_with_cover(&populated, Some(&[0.1, 0.1, 0.1]), &cfg);
        assert!(matches!(err, Err(SubmitError::Query(_))));
        assert_eq!(service.submitted(), 3, "LP-error submissions don't count");

        let counters = service.counters();
        assert_eq!(counters.submitted, 3);
        assert_eq!(counters.completed, 3, "degenerate resolutions complete");
        assert_eq!(counters.shed, 0);
        assert_eq!(counters.in_flight, 0, "every slot released");
    }

    /// The acceptance-criterion shape: with queue bound Q on a 2-worker
    /// pool, a burst sheds the (Q+1)-th submission with
    /// `SubmitError::Overloaded`, sheds are counted (not silently
    /// dropped), and every accepted handle still resolves bit-identically.
    #[test]
    fn burst_past_queue_depth_sheds_deterministically() {
        const Q: usize = 3;
        let service = Service::new(ServiceConfig::with_workers(2).with_queue_depth(Q));
        assert_eq!(service.queue_depth(), Q);
        // The blocker's engine run takes tens of milliseconds while each
        // burst submission below costs microseconds (precomputed cover,
        // and the admission check precedes all planning), so none of the
        // admitted queries can finish before the burst loop ends.
        let (heavy_rels, heavy, x) = heavy_blocker(11);
        let seq = join_with(&heavy_rels, Algorithm::Nprr, None).unwrap();
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };

        let accepted: Vec<QueryHandle> = (0..Q)
            .map(|i| {
                service
                    .submit_with_cover(&heavy, Some(&x), &cfg)
                    .unwrap_or_else(|e| panic!("submission {i} within the bound accepted: {e}"))
            })
            .collect();
        // The (Q+1)-th burst submission is shed.
        match service.submit_with_cover(&heavy, Some(&x), &cfg) {
            Err(SubmitError::Overloaded {
                in_flight,
                queue_depth,
            }) => {
                assert_eq!(in_flight, Q);
                assert_eq!(queue_depth, Q);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(service.counters().shed, 1, "the shed is reported");
        assert_eq!(
            service.submitted(),
            Q as u64,
            "shed submissions don't count"
        );

        // Every accepted handle resolves bit-identically to join_nprr.
        for handle in accepted {
            let out = handle.wait().unwrap();
            assert_eq!(out.relation, seq.relation);
        }
        // With the queue drained, submissions are admitted again.
        let out = service.submit(&heavy, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation, seq.relation);
        assert_eq!(service.counters().in_flight, 0);
    }

    #[test]
    fn blocking_and_deadline_submission_under_overload() {
        let service = Service::new(ServiceConfig::with_workers(1).with_queue_depth(1));
        let (heavy_rels, heavy, x) = heavy_blocker(13);
        let seq = join_with(&heavy_rels, Algorithm::Nprr, None).unwrap();
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };

        let first = service.submit_with_cover(&heavy, Some(&x), &cfg).unwrap();
        // Full: a zero-deadline submission sheds…
        match service.try_submit_timeout(&heavy, &cfg, Duration::ZERO) {
            Err(SubmitError::Overloaded { .. }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // …while a blocking submission waits for the slot and succeeds.
        let blocked = service.submit_blocking(&heavy, &cfg).unwrap();
        assert_eq!(first.wait().unwrap().relation, seq.relation);
        assert_eq!(blocked.wait().unwrap().relation, seq.relation);
        // A generous deadline also gets through once the queue is idle.
        let timed = service
            .try_submit_timeout(&heavy, &cfg, Duration::from_secs(60))
            .unwrap();
        assert_eq!(timed.wait().unwrap().relation, seq.relation);
        let counters = service.counters();
        assert_eq!(counters.submitted, 3);
        assert_eq!(counters.shed, 1);
        assert_eq!(counters.in_flight, 0);
    }

    #[test]
    fn dropped_handle_cancels_remaining_tasks() {
        // One worker: after the handle is dropped mid-run, the remaining
        // ring entries are popped but skipped instead of burning the pool.
        let service = Service::new(ServiceConfig::with_workers(1));
        let (_, heavy, x) = heavy_blocker(17);
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let layout = service.shard_layout(&*heavy, &cfg);
        assert!(layout.len() >= 3, "the plan is multi-task: {layout:?}");

        let handle = service.submit_with_cover(&heavy, Some(&x), &cfg).unwrap();
        drop(handle); // cancel
        assert_eq!(service.counters().cancelled, 1);

        // The pool still serves other queries correctly afterwards…
        let rels = triangle();
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let small = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let out = service.submit(&small, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation, seq.relation);

        // …and once the cancelled ring drains, its skipped tasks show up
        // in the counters and its admission slot is released.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let c = service.counters();
            if c.in_flight == 0 && c.queued_tasks == 0 {
                assert!(
                    c.skipped_tasks >= 1,
                    "cancellation skipped work: {c:?} (layout {})",
                    layout.len()
                );
                assert_eq!(c.completed, 2, "cancelled query still drains");
                break;
            }
            assert!(Instant::now() < deadline, "cancelled query never drained");
            std::thread::yield_now();
        }
    }

    #[test]
    fn bad_cover_rejected_at_submit() {
        let service = Service::new(ServiceConfig::with_workers(2));
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&triangle()).unwrap());
        let err =
            service.submit_with_cover(&prepared, Some(&[0.1, 0.1, 0.1]), &ExecConfig::default());
        assert!(err.is_err());
        // explicit valid cover works
        let out = service
            .submit_with_cover(&prepared, Some(&[1.0, 1.0, 1.0]), &ExecConfig::default())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out.relation.len(), 2);
    }

    #[test]
    fn submit_error_conversions_and_display() {
        let overload = SubmitError::Overloaded {
            in_flight: 4,
            queue_depth: 4,
        };
        assert_eq!(QueryError::from(overload.clone()), QueryError::Overloaded);
        assert!(overload.to_string().contains("overloaded"));
        let bad = SubmitError::Query(QueryError::BadCover("nope".into()));
        assert_eq!(
            QueryError::from(bad),
            QueryError::BadCover("nope".into()),
            "planning errors round-trip unchanged"
        );
        assert!(QueryError::Overloaded.to_string().contains("overloaded"));
    }

    #[test]
    fn queue_depth_from_env() {
        // Clear any ambient override first: WCOJ_QUEUE_DEPTH is exactly
        // the knob a CI job or developer shell might export. (No other
        // test in this binary touches process env vars.)
        std::env::remove_var("WCOJ_QUEUE_DEPTH");
        assert_eq!(
            ServiceConfig::from_env().queue_depth,
            0,
            "unset → unbounded"
        );
        std::env::set_var("WCOJ_QUEUE_DEPTH", "7");
        let cfg = ServiceConfig::from_env();
        std::env::remove_var("WCOJ_QUEUE_DEPTH");
        assert_eq!(cfg.queue_depth, 7);
        // malformed values warn (once) and fall back to unbounded
        std::env::set_var("WCOJ_QUEUE_DEPTH", "lots");
        let cfg = ServiceConfig::from_env();
        std::env::remove_var("WCOJ_QUEUE_DEPTH");
        assert_eq!(cfg.queue_depth, 0);
        assert!(
            wcoj_exec::malformed_env_warnings()
                .iter()
                .any(|k| k == "WCOJ_QUEUE_DEPTH"),
            "fallback is signalled, not silent"
        );
    }

    /// Satellite pin-down: a [`Service::counters`] snapshot taken at any
    /// moment — while queries are admitted, running, finishing, and being
    /// cancelled — is internally consistent. Before the counters moved
    /// under the scheduler lock, a snapshot racing a fast pool could see
    /// `completed > submitted` (the ring was pushed and fully drained
    /// between the two atomic reads).
    #[test]
    fn counters_snapshots_are_internally_consistent() {
        let service = Arc::new(Service::new(ServiceConfig::with_workers(2)));
        let rels = triangle();
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };

        let stop = Arc::new(AtomicBool::new(false));
        let observer = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut samples = 0_u64;
                while !stop.load(Ordering::Acquire) {
                    let c = service.counters();
                    assert!(c.completed <= c.submitted, "inconsistent snapshot: {c:?}");
                    assert!(
                        c.completed + c.in_flight as u64 >= c.submitted,
                        "an accepted query is neither in flight nor completed: {c:?}"
                    );
                    assert!(
                        c.queued_tasks == 0 || c.in_flight > 0,
                        "queued tasks without an in-flight query: {c:?}"
                    );
                    samples += 1;
                }
                samples
            })
        };

        // Churn: plenty of waits, plus dropped handles (cancellations).
        for round in 0..60 {
            let h1 = service.submit(&prepared, &cfg).unwrap();
            let h2 = service.submit(&prepared, &cfg).unwrap();
            if round % 3 == 0 {
                drop(h1);
            } else {
                h1.wait().unwrap();
            }
            h2.wait().unwrap();
        }
        // Quiescence: everything drains.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let c = service.counters();
            if c.in_flight == 0 && c.queued_tasks == 0 {
                assert_eq!(c.submitted, 120);
                assert_eq!(c.completed, 120, "cancelled queries still drain");
                // ≤ 20: a drop racing the final task counts only if work
                // was actually left to skip.
                assert!(c.cancelled <= 20, "{c:?}");
                break;
            }
            assert!(Instant::now() < deadline, "service never drained: {c:?}");
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        let samples = observer.join().unwrap();
        assert!(samples > 0, "the observer actually sampled");
    }

    /// The tentpole acceptance shape: a multi-shard query's profile has
    /// monotone lifecycle phases, one entry per shard, and per-shard rows
    /// and stats that reassemble exactly into the final output.
    #[test]
    fn profile_covers_every_shard_and_phases_are_monotone() {
        let service = Service::new(ServiceConfig::with_workers(3));
        let rels = [
            wcoj_datagen::random_relation(21, &[0, 1], 150, 14),
            wcoj_datagen::random_relation(22, &[1, 2], 150, 14),
            wcoj_datagen::random_relation(23, &[0, 2], 150, 14),
        ];
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let layout = service.shard_layout(&*prepared, &cfg);
        assert!(layout.len() >= 2, "multi-shard plan: {}", layout.len());

        let handle = service.submit(&prepared, &cfg).unwrap();
        let (out, profile) = handle.wait_profiled().unwrap();
        assert_eq!(out.relation, seq.relation, "profiling changes no output");

        assert!(profile.query_id > 0);
        assert!(!profile.cancelled);
        assert_eq!(profile.total_shards, layout.len());
        assert!(profile.is_complete());
        assert_eq!(profile.shards.len(), layout.len());

        // Phases exist and are monotone: admitted ≤ planned ≤
        // first_dispatch ≤ last_finish ≤ reassembled.
        let planned = profile.planned.expect("planning ran");
        let first = profile.first_dispatch.expect("tasks dispatched");
        let last = profile.last_finish.expect("finished");
        let reassembled = profile.reassembled.expect("waited");
        assert!(profile.admitted <= planned, "{profile:?}");
        assert!(planned <= first, "{profile:?}");
        assert!(first <= last, "{profile:?}");
        assert!(last <= reassembled, "{profile:?}");

        // Per-shard breakdown: slot order, no skips, rows sum to the
        // output (shards partition the root domain), stats reassemble.
        let mut stats = JoinStats::default();
        for (slot, shard) in profile.shards.iter().enumerate() {
            assert_eq!(shard.slot, slot, "slot order");
            assert!(!shard.skipped);
            stats.absorb(&shard.stats);
        }
        assert_eq!(profile.total_rows(), out.relation.len() as u64);
        assert_eq!(
            stats.case_a + stats.case_b,
            out.stats.case_a + out.stats.case_b
        );
        assert_eq!(stats.shards, out.stats.shards);
    }

    #[test]
    fn degenerate_and_cancelled_profiles() {
        let service = Service::new(ServiceConfig::with_workers(1));
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };

        // Empty input: no planning, no dispatch, reassembled at submit.
        let empty_input = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[1, 2]]),
                Relation::empty(Schema::of(&[1, 2])),
            ])
            .unwrap(),
        );
        let handle = service.submit(&empty_input, &cfg).unwrap();
        let profile = handle.profile();
        assert_eq!(profile.total_shards, 0);
        assert!(profile.planned.is_none(), "planning never ran");
        assert!(profile.first_dispatch.is_none());
        assert!(profile.reassembled.is_some(), "resolved at submit");
        assert!(profile.is_complete());
        let (out, profile) = handle.wait_profiled().unwrap();
        assert!(out.relation.is_empty());
        assert_eq!(profile.total_rows(), 0);

        // Zero-shard plan: planning ran, still no dispatch.
        let zero_shard = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[10, 1], &[10, 2]]),
                rel(&[1, 2], &[&[7, 20], &[8, 20]]),
                rel(&[0, 2], &[&[10, 20]]),
            ])
            .unwrap(),
        );
        let profile = service.submit(&zero_shard, &cfg).unwrap().profile();
        assert!(profile.planned.is_some(), "planning ran");
        assert!(profile.first_dispatch.is_none());
        assert_eq!(profile.total_shards, 0);

        // Cancelled: the snapshot taken later shows the cancellation and
        // skipped shards.
        let (_, heavy, x) = heavy_blocker(29);
        let handle = service.submit_with_cover(&heavy, Some(&x), &cfg).unwrap();
        let pending_profile = handle.profile();
        assert!(pending_profile.total_shards >= 3);
        drop(handle);
        // Drain, then confirm skips landed in the counters (the profile
        // itself died with the handle — counters are the surviving view).
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let c = service.counters();
            if c.in_flight == 0 && c.queued_tasks == 0 {
                assert!(c.skipped_tasks >= 1);
                break;
            }
            assert!(Instant::now() < deadline, "cancelled query never drained");
            std::thread::yield_now();
        }
    }

    /// With obs off the service still produces identical outputs and
    /// complete (if zero-duration) profiles — the no-op arm of the
    /// `e17_obs_overhead` bench.
    #[test]
    fn obs_off_keeps_outputs_and_profile_shape() {
        let service = Service::new(ServiceConfig::with_workers(2).with_obs(false));
        let rels = triangle();
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let (out, profile) = service
            .submit(&prepared, &cfg)
            .unwrap()
            .wait_profiled()
            .unwrap();
        assert_eq!(out.relation, seq.relation);
        assert!(profile.is_complete());
        assert!(profile.total_shards >= 1);
        // Per-task durations collapse to zero, but rows/stats stay exact.
        for shard in &profile.shards {
            assert_eq!(shard.queue_wait, Duration::ZERO);
            assert_eq!(shard.run, Duration::ZERO);
        }
        assert_eq!(profile.total_rows(), out.relation.len() as u64);
        assert_eq!(profile.first_dispatch, Some(Duration::ZERO));
        // Lifecycle marks taken on the submit path still tick.
        assert!(profile.reassembled.is_some());
        let counters = service.counters();
        assert_eq!(counters.submitted, 1, "accounting is not gated by obs");
        assert_eq!(counters.completed, 1);
    }

    /// Scheduler decisions land in the global trace ring when the level
    /// is raised — filtered by this test's own query ids, because the
    /// ring is process-wide and other tests run concurrently.
    #[test]
    fn trace_ring_records_scheduler_decisions() {
        let ring = trace();
        let saved = ring.level();
        ring.set_level(TraceLevel::Summary);

        let service = Service::new(ServiceConfig::with_workers(1).with_queue_depth(1));
        let (_, heavy, x) = heavy_blocker(31);
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let first = service.submit_with_cover(&heavy, Some(&x), &cfg).unwrap();
        let first_id = first.profile().query_id;
        // Overload: the second submission sheds.
        let shed = service.submit_with_cover(&heavy, Some(&x), &cfg);
        assert!(matches!(shed, Err(SubmitError::Overloaded { .. })));
        first.wait().unwrap();

        let events = ring.drain();
        ring.set_level(saved);
        let admitted = events.iter().any(
            |e| matches!(e, TraceEvent::Admit { query, tasks } if *query == first_id && *tasks > 0),
        );
        let finished = events
            .iter()
            .any(|e| matches!(e, TraceEvent::Finish { query } if *query == first_id));
        let shed_seen = events.iter().any(|e| matches!(e, TraceEvent::Shed { .. }));
        assert!(admitted, "Admit traced: {events:?}");
        assert!(finished, "Finish traced: {events:?}");
        assert!(shed_seen, "Shed traced: {events:?}");
    }

    /// The global registry mirrors the service counters (as deltas — the
    /// registry is process-wide and shared with other tests).
    #[test]
    fn global_registry_mirrors_service_activity() {
        let m = ServiceMetrics::get();
        let submitted_before = m.submitted.get();
        let completed_before = m.completed.get();
        let latency_before = m.query_latency_us.snapshot().count;

        let service = Service::new(ServiceConfig::with_workers(2));
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&triangle()).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        for _ in 0..3 {
            service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        }

        assert!(m.submitted.get() >= submitted_before + 3);
        assert!(m.completed.get() >= completed_before + 3);
        assert!(m.query_latency_us.snapshot().count >= latency_before + 3);
        let text = wcoj_obs::global().render_prometheus();
        assert!(text.contains("wcoj_service_submitted_total"));
        assert!(text.contains("wcoj_query_latency_us_bucket"));
        wcoj_obs::check_exposition(&text).expect("exposition format is valid");
    }

    #[test]
    fn join_convenience_and_drop_drains() {
        let seq = join_with(&triangle(), Algorithm::Nprr, None).unwrap();
        let handle;
        {
            let service = Service::new(ServiceConfig::with_workers(2));
            let out = service.join(&triangle()).unwrap();
            assert_eq!(out.relation, seq.relation);
            // a handle may outlive the service: drop drains the queue
            let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&triangle()).unwrap());
            let cfg = ExecConfig {
                shard_min_size: 1,
                ..ExecConfig::default()
            };
            handle = service.submit(&prepared, &cfg).unwrap();
        } // service dropped here
        assert_eq!(handle.wait().unwrap().relation, seq.relation);
    }

    #[test]
    fn row_stream_concatenates_in_order_for_a_canonical_total_order() {
        let service = Service::new(ServiceConfig::with_workers(3));
        // A single-atom query keeps the identity total order, so slot
        // batches concatenate to the output with no final sort.
        let rels = [wcoj_datagen::random_relation(5, &[0, 1], 150, 14)];
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let expected = service
            .submit(&prepared, &cfg)
            .unwrap()
            .wait()
            .unwrap()
            .relation;

        let mut stream = service.submit(&prepared, &cfg).unwrap().into_stream();
        assert!(stream.ordered(), "identity order streams sorted");
        assert!(stream.total_slots() >= 2, "multi-shard plan: {stream:?}");
        let total = stream.total_slots();
        let mut merged = Relation::empty(expected.schema().clone());
        let mut slots_seen = 0;
        while let Some(batch) = stream.next_batch() {
            let batch = batch.unwrap();
            assert_eq!(batch.slot, slots_seen, "ascending slot order");
            slots_seen += 1;
            assert_eq!(stream.slots_emitted(), slots_seen);
            for row in batch.relation.iter_rows() {
                merged.push_row(row).unwrap();
            }
        }
        assert_eq!(slots_seen, total);
        assert!(stream.is_finished());
        // Plain concatenation — batches were never re-sorted — is the
        // full output, byte for byte.
        assert_eq!(merged, expected);
    }

    #[test]
    fn row_stream_merge_matches_wait_for_any_total_order() {
        let service = Service::new(ServiceConfig::with_workers(3));
        let rels = triangle();
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let expected = service
            .submit(&prepared, &cfg)
            .unwrap()
            .wait()
            .unwrap()
            .relation;

        let mut stream = service.submit(&prepared, &cfg).unwrap().into_stream();
        assert_eq!(stream.ordered(), prepared.slots_stream_sorted());
        // The universal consumer contract: concatenate every batch, one
        // final sort+dedup, equals wait() regardless of `ordered`.
        let mut merged = Relation::empty(expected.schema().clone());
        while let Some(batch) = stream.next_batch() {
            for row in batch.unwrap().relation.iter_rows() {
                merged.push_row(row).unwrap();
            }
        }
        merged.sort_dedup();
        assert_eq!(merged, expected);
    }

    #[test]
    fn degenerate_submissions_stream_a_single_batch() {
        let service = Service::new(ServiceConfig::with_workers(1));
        let prepared = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[1, 2]]),
                Relation::empty(Schema::of(&[1, 2])),
            ])
            .unwrap(),
        );
        let mut stream = service
            .submit(&prepared, &service.exec_config())
            .unwrap()
            .into_stream();
        assert!(stream.ordered());
        assert!(stream.is_finished());
        assert_eq!(stream.total_slots(), 1);
        stream.wait_settled(); // no-op on a ready stream
        let batch = stream.next_batch().unwrap().unwrap();
        assert_eq!(batch.slot, 0);
        assert!(batch.relation.is_empty());
        assert_eq!(batch.relation.arity(), 3);
        assert!(stream.next_batch().is_none());
        assert_eq!(stream.slots_emitted(), 1);
    }

    #[test]
    fn wait_settled_then_batches_arrive_without_blocking() {
        let service = Service::new(ServiceConfig::with_workers(2));
        let rels = triangle();
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let mut stream = service.submit(&prepared, &cfg).unwrap().into_stream();
        stream.wait_settled();
        assert!(stream.is_finished());
        let mut merged = Relation::empty(seq.relation.schema().clone());
        while let Some(batch) = stream.next_batch() {
            for row in batch.unwrap().relation.iter_rows() {
                merged.push_row(row).unwrap();
            }
        }
        merged.sort_dedup();
        assert_eq!(merged, seq.relation);
        // Fully drained stream: dropping it must NOT count a cancellation.
        drop(stream);
        assert_eq!(service.counters().cancelled, 0);
    }

    #[test]
    fn dropped_stream_cancels_remaining_tasks() {
        // The HTTP disconnect-mid-stream path: one worker, a heavy
        // multi-shard query, the consumer reads the first batch and then
        // goes away. The remaining shards must be skipped and the
        // admission slot freed — a vanished client cannot leak capacity.
        let service = Service::new(ServiceConfig::with_workers(1));
        let (_, heavy, x) = heavy_blocker(23);
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let layout = service.shard_layout(&*heavy, &cfg);
        assert!(layout.len() >= 3, "the plan is multi-task: {layout:?}");

        let mut stream = service
            .submit_with_cover(&heavy, Some(&x), &cfg)
            .unwrap()
            .into_stream();
        let first = stream.next_batch().unwrap().unwrap();
        assert_eq!(first.slot, 0);
        drop(stream); // client disconnected mid-stream
        assert_eq!(service.counters().cancelled, 1);

        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let c = service.counters();
            if c.in_flight == 0 && c.queued_tasks == 0 {
                assert!(
                    c.skipped_tasks >= 1,
                    "cancellation skipped work: {c:?} (layout {})",
                    layout.len()
                );
                assert_eq!(c.completed, 1, "cancelled query still drains");
                break;
            }
            assert!(Instant::now() < deadline, "cancelled query never drained");
            std::thread::yield_now();
        }
    }
}
