//! # wcoj-service — shared-pool concurrent query scheduler
//!
//! `wcoj-exec` parallelises a *single* join by sharding the root domain
//! of `Recursive-Join` (paper §5.2, step 2a) over a scoped thread pool —
//! but every `par_join` call spins up its **own** pool, so a process
//! answering many concurrent queries oversubscribes the machine and loses
//! the worst-case-optimal runtime guarantees to scheduling noise.
//!
//! This crate is the long-lived alternative: a [`Service`] owns **one**
//! global worker pool for the whole process, and schedules shard tasks
//! from *many* in-flight queries on it.
//!
//! * [`Service::submit`] plans a prepared query's shards with the
//!   work-based splitter ([`ShardPlan::plan`] over
//!   [`PreparedQuery::root_candidate_weights`]). The plan is
//!   **two-level**: heavy root values get singleton shards so one hot
//!   key cannot drag its neighbours along, and a value heavy enough to
//!   span several work targets is further broken into *anchor
//!   sub-shards* (`RootShard::anchor` ranges over the level-1 attribute,
//!   [`ExecConfig::heavy_split_factor`]) so even a single hot key
//!   spreads across the pool. Sub-shards are just more tasks on the
//!   shared injector; submission pushes one task per (sub-)shard and
//!   returns a [`QueryHandle`] immediately — it never blocks on other
//!   queries.
//! * Workers pull tasks FIFO off the injector, so shards of concurrent
//!   queries interleave freely; each task runs the sequential engine
//!   restricted to its root range — and, for a sub-shard, its anchor
//!   range — ([`PreparedQuery::run_shard`]) against the query's shared,
//!   immutable indexes.
//! * [`QueryHandle::wait`] blocks until the query's last shard lands,
//!   then reassembles per-shard row sets **in slot order** — root-value
//!   order, then anchor order within a sub-split root value — and folds
//!   per-shard [`JoinStats`] with [`JoinStats::absorb`] — the output
//!   relation is bit-identical to the sequential
//!   [`join_nprr`](wcoj_core::nprr::join_nprr), no matter how the pool
//!   interleaved the shards.
//!
//! Degenerate queries never touch the pool: an empty input relation or an
//! empty root-candidate intersection (a *zero-shard plan*) resolves to a
//! finished handle at submit time.
//!
//! ```
//! use std::sync::Arc;
//! use wcoj_core::nprr::PreparedQuery;
//! use wcoj_service::{Service, ServiceConfig};
//! use wcoj_storage::{Relation, Schema};
//!
//! let service = Service::new(ServiceConfig::with_workers(4));
//! let r = Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[1, 3]]);
//! let s = Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 4], &[3, 4]]);
//! let t = Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[1, 4]]);
//! let prepared = Arc::new(PreparedQuery::new(&[r, s, t]).unwrap());
//! let handle = service.submit(&prepared, &service.exec_config()).unwrap();
//! assert_eq!(handle.wait().unwrap().relation.len(), 2);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use wcoj_core::nprr::{PreparedQuery, RootShard};
use wcoj_core::{JoinOutput, JoinStats, QueryError};
use wcoj_exec::{ExecConfig, ShardPlan, OVERSPLIT};
use wcoj_storage::{Relation, SearchTree, TrieIndex, Value};

/// Stats label reported by service-scheduled runs.
const ALGORITHM: &str = "nprr-service";

/// Configuration of a [`Service`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the shared pool (clamped to ≥ 1). Unlike
    /// `par_join`, this bounds the parallelism of the whole process, not
    /// of one query.
    pub workers: usize,
    /// Default per-query planning knobs handed to queries routed through
    /// [`Service::join`] (and recommended for [`Service::submit`] via
    /// [`Service::exec_config`]). The `threads` field is ignored — pool
    /// size is a service-level decision; `shard_min_size` and `split`
    /// steer the per-query [`ShardPlan`].
    pub exec: ExecConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            exec: ExecConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// A config with `workers` pool threads and default planning knobs.
    #[must_use]
    pub fn with_workers(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers: workers.max(1),
            ..ServiceConfig::default()
        }
    }
}

/// A schedulable unit: one shard of one query.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the submitting thread and the pool workers.
struct Injector {
    queue: Mutex<VecDeque<Task>>,
    task_ready: Condvar,
    shutdown: AtomicBool,
}

impl Injector {
    fn push(&self, task: Task) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(task);
        self.task_ready.notify_one();
    }

    /// Worker side: next task, or `None` once shut down *and* drained
    /// (pending queries always finish, so handles never dangle).
    fn pop(&self) -> Option<Task> {
        let mut queue = self
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(task) = queue.pop_front() {
                return Some(task);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self
                .task_ready
                .wait(queue)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// One shard's result: raw rows over the total order plus run stats.
type ShardResult = (Vec<Vec<Value>>, JoinStats);

/// Per-query completion state: one slot per shard, filled by workers in
/// whatever order the pool interleaves them; reassembly reads the slots
/// in index (= root-value) order, which is what makes the merge
/// deterministic.
struct JobState {
    slots: Mutex<Vec<Option<ShardResult>>>,
    remaining: AtomicUsize,
    /// A worker panicked while running one of this query's shards.
    poisoned: AtomicBool,
    done: Mutex<bool>,
    done_ready: Condvar,
}

impl JobState {
    fn new(shards: usize) -> JobState {
        JobState {
            slots: Mutex::new(vec![None; shards]),
            remaining: AtomicUsize::new(shards),
            poisoned: AtomicBool::new(false),
            done: Mutex::new(false),
            done_ready: Condvar::new(),
        }
    }

    fn complete(&self, index: usize, result: Option<ShardResult>) {
        if let Some(result) = result {
            self.slots
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)[index] = Some(result);
        } else {
            self.poisoned.store(true, Ordering::Release);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = self
                .done
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *done = true;
            self.done_ready.notify_all();
        }
    }

    fn wait(&self) {
        let mut done = self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*done {
            done = self
                .done_ready
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// The future of a submitted query. [`wait`](QueryHandle::wait) blocks
/// until every shard has run on the pool and returns the reassembled
/// output; dropping the handle abandons the result (the shards still
/// run, but their rows are discarded).
pub struct QueryHandle {
    inner: HandleInner,
}

enum HandleInner {
    /// Resolved at submit time (empty input, zero-shard plan).
    Ready(Result<JoinOutput, QueryError>),
    /// Waits on the pool, then assembles.
    Pending(Box<dyn FnOnce() -> Result<JoinOutput, QueryError> + Send>),
}

impl QueryHandle {
    fn ready(result: Result<JoinOutput, QueryError>) -> QueryHandle {
        QueryHandle {
            inner: HandleInner::Ready(result),
        }
    }

    /// Blocks until the query finishes; returns its output.
    ///
    /// # Errors
    /// Propagates evaluation errors.
    ///
    /// # Panics
    /// If a pool worker panicked while running one of this query's shards
    /// (the panic is re-raised here instead of deadlocking the caller).
    pub fn wait(self) -> Result<JoinOutput, QueryError> {
        match self.inner {
            HandleInner::Ready(result) => result,
            HandleInner::Pending(wait_fn) => wait_fn(),
        }
    }
}

/// A long-lived executor owning one global worker pool; queries from any
/// thread share it. See the crate docs for the scheduling model.
pub struct Service {
    injector: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
    cfg: ServiceConfig,
    submitted: AtomicU64,
}

impl Service {
    /// Spawns the worker pool.
    #[must_use]
    pub fn new(cfg: ServiceConfig) -> Service {
        let cfg = ServiceConfig {
            workers: cfg.workers.max(1),
            ..cfg
        };
        let injector = Arc::new(Injector {
            queue: Mutex::new(VecDeque::new()),
            task_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let injector = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("wcoj-service-{i}"))
                    .spawn(move || {
                        while let Some(task) = injector.pop() {
                            // A panicking shard must not take the worker
                            // down with it: the task itself reports the
                            // failure to its job, the pool keeps serving
                            // the other queries.
                            let _ = catch_unwind(AssertUnwindSafe(task));
                        }
                    })
                    .expect("spawn service worker")
            })
            .collect();
        Service {
            injector,
            workers,
            cfg,
            submitted: AtomicU64::new(0),
        }
    }

    /// Number of pool workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Queries submitted over the service's lifetime.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// The service's default per-query planning config (its `threads`
    /// field is ignored by [`submit`](Service::submit)).
    #[must_use]
    pub fn exec_config(&self) -> ExecConfig {
        self.cfg.exec.clone()
    }

    /// The shard layout [`submit`](Service::submit) would schedule for
    /// `prepared` on this service: the planned ranges, or a single
    /// unrestricted task for degenerate plans. Empty exactly when the
    /// query is a zero-shard plan (deterministic, so differential tests
    /// can re-run the layout shard by shard).
    #[must_use]
    pub fn shard_layout<S: SearchTree>(
        &self,
        prepared: &PreparedQuery<S>,
        cfg: &ExecConfig,
    ) -> Vec<Option<RootShard>> {
        let plan = ShardPlan::plan(prepared, self.workers.len() * OVERSPLIT, cfg);
        if plan.root_domain_is_empty(prepared) {
            Vec::new()
        } else {
            plan.tasks()
        }
    }

    /// Submits a prepared query with the LP-optimal fractional cover.
    /// Returns immediately; the shards run on the shared pool.
    ///
    /// # Errors
    /// LP errors from solving for the optimal cover.
    pub fn submit<S>(
        &self,
        prepared: &Arc<PreparedQuery<S>>,
        cfg: &ExecConfig,
    ) -> Result<QueryHandle, QueryError>
    where
        S: SearchTree + Send + Sync + 'static,
    {
        self.submit_with_cover(prepared, None, cfg)
    }

    /// Like [`submit`](Service::submit) with an explicit fractional cover
    /// (validated; one weight per relation in input order).
    ///
    /// # Errors
    /// [`QueryError::BadCover`] for invalid covers; LP errors when
    /// solving for the optimum.
    pub fn submit_with_cover<S>(
        &self,
        prepared: &Arc<PreparedQuery<S>>,
        cover: Option<&[f64]>,
        cfg: &ExecConfig,
    ) -> Result<QueryHandle, QueryError>
    where
        S: SearchTree + Send + Sync + 'static,
    {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let base_stats = |log2_bound: f64, x: &[f64]| JoinStats {
            algorithm_used: ALGORITHM,
            log2_agm_bound: log2_bound,
            cover: x.to_vec(),
            ..JoinStats::default()
        };

        // Degenerate inputs resolve immediately — no tasks, no workers.
        if prepared.query().relations().iter().any(Relation::is_empty) {
            return Ok(QueryHandle::ready(Ok(JoinOutput {
                relation: Relation::empty(prepared.query().output_schema()),
                stats: base_stats(0.0, &[]),
            })));
        }
        let (x, log2_bound) = prepared.resolve_cover(cover)?;

        let tasks = self.shard_layout(&**prepared, cfg);
        if tasks.is_empty() {
            // Zero-shard plan: no root value survives the level-0
            // intersection, the output is empty.
            return Ok(QueryHandle::ready(
                prepared.assemble(Vec::new(), base_stats(log2_bound, &x)),
            ));
        }

        let state = Arc::new(JobState::new(tasks.len()));
        for (i, shard) in tasks.into_iter().enumerate() {
            let prepared = Arc::clone(prepared);
            let state = Arc::clone(&state);
            let x = x.clone();
            self.injector.push(Box::new(move || {
                // Report a panic to the job before re-raising, so wait()
                // fails loudly instead of blocking forever.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    prepared.run_shard(&x, log2_bound, shard)
                }));
                match result {
                    Ok(rows_stats) => state.complete(i, Some(rows_stats)),
                    Err(payload) => {
                        state.complete(i, None);
                        std::panic::resume_unwind(payload);
                    }
                }
            }));
        }

        let prepared = Arc::clone(prepared);
        let stats = base_stats(log2_bound, &x);
        Ok(QueryHandle {
            inner: HandleInner::Pending(Box::new(move || {
                state.wait();
                assert!(
                    !state.poisoned.load(Ordering::Acquire),
                    "a service worker panicked while running a shard of this query"
                );
                let mut slots = state
                    .slots
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let mut stats = stats;
                let mut rows = Vec::with_capacity(
                    slots
                        .iter()
                        .map(|s| s.as_ref().map_or(0, |(r, _)| r.len()))
                        .sum(),
                );
                // Deterministic merge: slot (= shard = root-value) order,
                // regardless of the order the pool finished them in.
                for slot in slots.iter_mut() {
                    let (shard_rows, shard_stats) = slot.take().expect("every shard completed");
                    rows.extend(shard_rows);
                    stats.absorb(&shard_stats);
                }
                drop(slots);
                prepared.assemble(rows, stats)
            })),
        })
    }

    /// One-shot convenience: prepare `relations` with the default sorted
    /// trie backend, submit with the service's default planning config,
    /// and wait. This is the entry point `wcoj-query` routes catalog
    /// queries through.
    ///
    /// # Errors
    /// Same as [`PreparedQuery::new_indexed`] plus evaluation errors.
    pub fn join(&self, relations: &[Relation]) -> Result<JoinOutput, QueryError> {
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(relations)?);
        self.submit(&prepared, &self.cfg.exec)?.wait()
    }
}

impl Drop for Service {
    /// Graceful shutdown: workers drain the queue (so outstanding
    /// handles still resolve), then exit and are joined.
    fn drop(&mut self) {
        {
            // Set the flag while holding the queue mutex: a worker is
            // then either before its shutdown check (and will see the
            // flag) or already parked in wait() (and will get the
            // notification) — never in between, which would lose the
            // wakeup and deadlock the join below.
            let _queue = self
                .injector
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.injector.shutdown.store(true, Ordering::Release);
        }
        self.injector.task_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_core::{join_with, Algorithm};
    use wcoj_storage::{HashTrieIndex, Schema};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    fn triangle() -> Vec<Relation> {
        vec![
            rel(&[0, 1], &[&[1, 2], &[1, 3]]),
            rel(&[1, 2], &[&[2, 4], &[3, 4]]),
            rel(&[0, 2], &[&[1, 4]]),
        ]
    }

    #[test]
    fn submit_and_wait_matches_sequential() {
        let service = Service::new(ServiceConfig::with_workers(3));
        let rels = [
            wcoj_datagen::random_relation(1, &[0, 1], 120, 12),
            wcoj_datagen::random_relation(2, &[1, 2], 120, 12),
            wcoj_datagen::random_relation(3, &[0, 2], 120, 12),
        ];
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation, seq.relation);
        assert_eq!(out.stats.algorithm_used, "nprr-service");
        assert!(out.stats.shards >= 1);
        assert_eq!(service.submitted(), 1);
    }

    #[test]
    fn many_handles_in_flight_before_any_wait() {
        let service = Service::new(ServiceConfig::with_workers(2));
        let rels = triangle();
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let handles: Vec<QueryHandle> = (0..16)
            .map(|_| service.submit(&prepared, &cfg).unwrap())
            .collect();
        for handle in handles {
            assert_eq!(handle.wait().unwrap().relation, seq.relation);
        }
        assert_eq!(service.submitted(), 16);
    }

    #[test]
    fn hash_backend_through_the_pool() {
        let service = Service::new(ServiceConfig::with_workers(4));
        let rels = triangle();
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let prepared = Arc::new(PreparedQuery::<HashTrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation, seq.relation);
    }

    #[test]
    fn empty_input_and_zero_shard_resolve_at_submit() {
        let service = Service::new(ServiceConfig::with_workers(2));
        // all-empty / one-empty relation
        let prepared = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[1, 2]]),
                Relation::empty(Schema::of(&[1, 2])),
            ])
            .unwrap(),
        );
        let out = service
            .submit(&prepared, &service.exec_config())
            .unwrap()
            .wait()
            .unwrap();
        assert!(out.relation.is_empty());
        assert_eq!(out.relation.arity(), 3);
        assert_eq!(out.stats.shards, 0);

        // empty root-candidate intersection (zero-shard plan)
        let prepared = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[10, 1], &[10, 2]]),
                rel(&[1, 2], &[&[7, 20], &[8, 20]]),
                rel(&[0, 2], &[&[10, 20]]),
            ])
            .unwrap(),
        );
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        assert!(service.shard_layout(&*prepared, &cfg).is_empty());
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert!(out.relation.is_empty());
        assert_eq!(out.relation.arity(), 3);
        assert_eq!(out.stats.shards, 0, "no shard task was ever scheduled");
        assert_eq!(out.stats.case_a + out.stats.case_b, 0);

        // nullary queries still produce their single "true" row
        let prepared =
            Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&[Relation::nullary_true()]).unwrap());
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation.len(), 1);
        assert_eq!(out.relation.arity(), 0);
    }

    #[test]
    fn bad_cover_rejected_at_submit() {
        let service = Service::new(ServiceConfig::with_workers(2));
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&triangle()).unwrap());
        let err =
            service.submit_with_cover(&prepared, Some(&[0.1, 0.1, 0.1]), &ExecConfig::default());
        assert!(err.is_err());
        // explicit valid cover works
        let out = service
            .submit_with_cover(&prepared, Some(&[1.0, 1.0, 1.0]), &ExecConfig::default())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out.relation.len(), 2);
    }

    #[test]
    fn join_convenience_and_drop_drains() {
        let seq = join_with(&triangle(), Algorithm::Nprr, None).unwrap();
        let handle;
        {
            let service = Service::new(ServiceConfig::with_workers(2));
            let out = service.join(&triangle()).unwrap();
            assert_eq!(out.relation, seq.relation);
            // a handle may outlive the service: drop drains the queue
            let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&triangle()).unwrap());
            let cfg = ExecConfig {
                shard_min_size: 1,
                ..ExecConfig::default()
            };
            handle = service.submit(&prepared, &cfg).unwrap();
        } // service dropped here
        assert_eq!(handle.wait().unwrap().relation, seq.relation);
    }
}
