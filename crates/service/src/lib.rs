//! # wcoj-service — shared-pool concurrent query scheduler
//!
//! `wcoj-exec` parallelises a *single* join by sharding the root domain
//! of `Recursive-Join` (paper §5.2, step 2a) over a scoped thread pool —
//! but every `par_join` call spins up its **own** pool, so a process
//! answering many concurrent queries oversubscribes the machine and loses
//! the worst-case-optimal runtime guarantees to scheduling noise.
//!
//! This crate is the long-lived alternative: a [`Service`] owns **one**
//! global worker pool for the whole process, and schedules shard tasks
//! from *many* in-flight queries on it.
//!
//! * [`Service::submit`] plans a prepared query's shards with the
//!   work-based splitter ([`ShardPlan::plan`] over
//!   [`PreparedQuery::root_candidate_weights`]). The plan is
//!   **two-level**: heavy root values get singleton shards so one hot
//!   key cannot drag its neighbours along, and a value heavy enough to
//!   span several work targets is further broken into *anchor
//!   sub-shards* (`RootShard::anchor` ranges over the level-1 attribute,
//!   [`ExecConfig::heavy_split_factor`]) so even a single hot key
//!   spreads across the pool. Submission pushes the tasks as one
//!   per-query **ring** and returns a [`QueryHandle`] immediately — it
//!   never blocks on other queries.
//! * **Admission control**: [`ServiceConfig::queue_depth`] bounds how
//!   many queries may be admitted-but-unfinished at once (env
//!   `WCOJ_QUEUE_DEPTH` via [`ServiceConfig::from_env`]; `0` =
//!   unbounded). At the bound, [`Service::submit`] *sheds* — it returns
//!   [`SubmitError::Overloaded`] without planning or scheduling anything,
//!   the 429 of this scheduler — while [`Service::submit_blocking`] and
//!   [`Service::try_submit_timeout`] wait on a condvar (optionally with a
//!   deadline) for capacity instead. Either way the queue can no longer
//!   grow without limit under a submission burst.
//! * **Fair dispatch**: workers drain the per-query rings **round-robin,
//!   one task at a time**, so shards of concurrent queries interleave by
//!   construction — a 10k-sub-shard hot-key query no longer
//!   head-of-line-blocks a 3-shard triangle query submitted just after
//!   it. Each task runs the sequential engine restricted to its root
//!   range — and, for a sub-shard, its anchor range —
//!   ([`PreparedQuery::run_shard`]) against the query's shared, immutable
//!   indexes.
//! * [`QueryHandle::wait`] blocks until the query's last shard lands,
//!   then reassembles per-shard row sets **in slot order** — root-value
//!   order, then anchor order within a sub-split root value — and folds
//!   per-shard [`JoinStats`] with [`JoinStats::absorb`] — the output
//!   relation is bit-identical to the sequential
//!   [`join_nprr`](wcoj_core::nprr::join_nprr), no matter how the pool
//!   interleaved the shards (dispatch order never reaches the output, so
//!   fairness is free of correctness risk).
//! * **Cancellation**: dropping a [`QueryHandle`] before waiting marks
//!   the query cancelled; workers still pop its queued tasks but *skip*
//!   the engine run, so an abandoned handle stops burning the pool
//!   almost immediately (and its admission slot is released when the
//!   ring drains).
//! * **Observability**: [`Service::counters`] snapshots lifetime
//!   `submitted` / `completed` / `shed` / `cancelled` / `skipped_tasks`
//!   plus instantaneous `in_flight` and `queued_tasks`, for bench
//!   harnesses and load shedding dashboards.
//!
//! Degenerate queries never touch the pool: an empty input relation or an
//! empty root-candidate intersection (a *zero-shard plan*) resolves to a
//! finished handle at submit time (it still occupies — and immediately
//! releases — an admission slot, so a burst of degenerate queries cannot
//! starve real ones).
//!
//! ```
//! use std::sync::Arc;
//! use wcoj_core::nprr::PreparedQuery;
//! use wcoj_service::{Service, ServiceConfig};
//! use wcoj_storage::{Relation, Schema};
//!
//! let service = Service::new(ServiceConfig::with_workers(4));
//! let r = Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[1, 3]]);
//! let s = Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 4], &[3, 4]]);
//! let t = Relation::from_u32_rows(Schema::of(&[0, 2]), &[&[1, 4]]);
//! let prepared = Arc::new(PreparedQuery::new(&[r, s, t]).unwrap());
//! let handle = service.submit(&prepared, &service.exec_config()).unwrap();
//! assert_eq!(handle.wait().unwrap().relation.len(), 2);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wcoj_core::nprr::{PreparedQuery, RootShard};
use wcoj_core::{JoinOutput, JoinStats, QueryError};
use wcoj_exec::{ExecConfig, ShardPlan, OVERSPLIT};
use wcoj_storage::{Relation, SearchTree, TrieIndex, Value};

/// Stats label reported by service-scheduled runs.
const ALGORITHM: &str = "nprr-service";

/// Configuration of a [`Service`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads in the shared pool (clamped to ≥ 1). Unlike
    /// `par_join`, this bounds the parallelism of the whole process, not
    /// of one query.
    pub workers: usize,
    /// Default per-query planning knobs handed to queries routed through
    /// [`Service::join`] (and recommended for [`Service::submit`] via
    /// [`Service::exec_config`]). The `threads` field is ignored — pool
    /// size is a service-level decision; `shard_min_size` and `split`
    /// steer the per-query [`ShardPlan`].
    pub exec: ExecConfig,
    /// Admission bound: the maximum number of queries that may be
    /// admitted-but-unfinished (queued or running) at once. `0` (the
    /// default) means unbounded — the pre-admission-control behaviour.
    /// At the bound, [`Service::submit`] sheds with
    /// [`SubmitError::Overloaded`]; [`Service::submit_blocking`] /
    /// [`Service::try_submit_timeout`] wait for capacity instead.
    /// Degenerate submissions (resolved at submit time) acquire and
    /// immediately release a slot, so they are also shed under overload
    /// — admission stays a pure front-door check that costs no planning.
    pub queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            exec: ExecConfig::default(),
            queue_depth: 0,
        }
    }
}

impl ServiceConfig {
    /// A config with `workers` pool threads and default planning knobs.
    #[must_use]
    pub fn with_workers(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers: workers.max(1),
            ..ServiceConfig::default()
        }
    }

    /// Returns `self` with the admission bound set (see
    /// [`ServiceConfig::queue_depth`]; `0` = unbounded).
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> ServiceConfig {
        self.queue_depth = queue_depth;
        self
    }

    /// Default config with the admission bound overridden by the
    /// `WCOJ_QUEUE_DEPTH` environment variable when set (malformed values
    /// warn once and fall back, like every numeric `WCOJ_*` knob — see
    /// [`wcoj_exec::read_env_usize`]).
    #[must_use]
    pub fn from_env() -> ServiceConfig {
        let mut cfg = ServiceConfig::default();
        if let Some(d) = wcoj_exec::read_env_usize("WCOJ_QUEUE_DEPTH") {
            cfg.queue_depth = d;
        }
        cfg
    }
}

/// Why [`Service::submit`] (or a sibling) refused a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// Admission control shed the submission: the service already had
    /// [`queue_depth`](ServiceConfig::queue_depth) queries in flight (for
    /// the deadline variant: still had, when the deadline expired). The
    /// query was never planned or scheduled; retrying later is safe.
    Overloaded {
        /// Queries in flight when the submission was refused.
        in_flight: usize,
        /// The configured admission bound.
        queue_depth: usize,
    },
    /// Planning/validation failed before any task was scheduled (bad
    /// cover, LP failure, …).
    Query(QueryError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Overloaded {
                in_flight,
                queue_depth,
            } => write!(
                f,
                "service overloaded: {in_flight} queries in flight at queue depth \
                 {queue_depth}; submission shed"
            ),
            SubmitError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<QueryError> for SubmitError {
    fn from(e: QueryError) -> Self {
        SubmitError::Query(e)
    }
}

impl From<SubmitError> for QueryError {
    /// Collapses an overload shed into [`QueryError::Overloaded`] so
    /// callers speaking only `QueryError` (the [`Service::join`] /
    /// catalog-routing path) surface a typed 429 instead of a panic or a
    /// stringly error.
    fn from(e: SubmitError) -> Self {
        match e {
            SubmitError::Overloaded { .. } => QueryError::Overloaded,
            SubmitError::Query(e) => e,
        }
    }
}

/// A point-in-time snapshot of the service's scheduling counters
/// ([`Service::counters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceCounters {
    /// Accepted submissions over the service's lifetime: every submit
    /// call that returned a [`QueryHandle`], *including* degenerate
    /// queries resolved at submit time. Shed submissions and
    /// planning-error submissions are **not** counted.
    pub submitted: u64,
    /// Accepted queries whose work has finished — their last task drained
    /// (run or skipped), or they resolved at submit time. Eventually
    /// `completed == submitted` once the service idles.
    pub completed: u64,
    /// Submissions shed by admission control ([`SubmitError::Overloaded`],
    /// including deadline expiries of [`Service::try_submit_timeout`]).
    pub shed: u64,
    /// Queries whose [`QueryHandle`] was dropped before the query
    /// finished (best-effort: a drop racing the final task may count
    /// even though nothing was left to skip).
    pub cancelled: u64,
    /// Tasks workers popped but skipped because their query was cancelled
    /// — pool time the cancellation saved.
    pub skipped_tasks: u64,
    /// Queries currently admitted and unfinished (what
    /// [`ServiceConfig::queue_depth`] bounds).
    pub in_flight: usize,
    /// Shard tasks currently waiting on the injector (excludes tasks
    /// being run right now).
    pub queued_tasks: usize,
}

/// A schedulable unit: one shard of one query.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// The queued tasks of one admitted query. Rings are drained round-robin,
/// one task per turn, so concurrent queries share the pool fairly instead
/// of queueing behind whoever submitted first.
struct QueryRing {
    tasks: VecDeque<Task>,
}

/// Everything guarded by the injector mutex: the rings plus the admission
/// accounting the condvars signal on.
struct QueueState {
    /// Per-query task rings, in round-robin rotation order. Invariant:
    /// every ring holds ≥ 1 task (empty rings are removed on pop).
    rings: VecDeque<QueryRing>,
    /// Tasks across all rings (denormalised for O(1) counters).
    queued_tasks: usize,
    /// Admitted-but-unfinished queries (the quantity `queue_depth`
    /// bounds).
    in_flight: usize,
}

/// State shared between the submitting threads and the pool workers.
struct Injector {
    queue: Mutex<QueueState>,
    /// Signalled when tasks are pushed (workers wait here).
    task_ready: Condvar,
    /// Signalled when a query finishes, freeing an admission slot
    /// (blocking submitters wait here).
    space_ready: Condvar,
    shutdown: AtomicBool,
    shed: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    skipped_tasks: AtomicU64,
}

impl Injector {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues one admitted query's tasks as a fresh ring at the back of
    /// the rotation.
    fn push_ring(&self, tasks: VecDeque<Task>) {
        debug_assert!(!tasks.is_empty(), "rings hold at least one task");
        let n = tasks.len();
        {
            let mut q = self.lock();
            q.queued_tasks += n;
            q.rings.push_back(QueryRing { tasks });
        }
        if n == 1 {
            self.task_ready.notify_one();
        } else {
            self.task_ready.notify_all();
        }
    }

    /// Worker side: next task — **round-robin across query rings**, one
    /// task per turn — or `None` once shut down *and* drained (pending
    /// queries always finish, so handles never dangle).
    fn pop(&self) -> Option<Task> {
        let mut q = self.lock();
        loop {
            if let Some(ring) = q.rings.front_mut() {
                let task = ring.tasks.pop_front().expect("rings hold ≥ 1 task");
                q.queued_tasks -= 1;
                let ring = q.rings.pop_front().expect("front ring exists");
                if !ring.tasks.is_empty() {
                    // Rotate: this query goes to the back so its
                    // neighbours get the next turns.
                    q.rings.push_back(ring);
                }
                return Some(task);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            q = self
                .task_ready
                .wait(q)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Releases one admission slot (a query finished, errored at planning
    /// time, or resolved degenerately) and wakes blocked submitters.
    fn release_slot(&self) {
        {
            let mut q = self.lock();
            debug_assert!(q.in_flight > 0, "release without admission");
            q.in_flight -= 1;
        }
        self.space_ready.notify_one();
    }

    /// A query's last task drained: release its slot and count it done.
    fn finish_query(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.release_slot();
    }
}

/// One shard's result: raw rows over the total order plus run stats.
type ShardResult = (Vec<Vec<Value>>, JoinStats);

/// Per-query completion state: one slot per shard, filled by workers in
/// whatever order the pool interleaves them; reassembly reads the slots
/// in index (= root-value) order, which is what makes the merge
/// deterministic.
struct JobState {
    slots: Mutex<Vec<Option<ShardResult>>>,
    remaining: AtomicUsize,
    /// A worker panicked while running one of this query's shards.
    poisoned: AtomicBool,
    /// The handle was dropped before waiting: workers skip the engine run
    /// for this query's remaining tasks.
    cancelled: AtomicBool,
    done: Mutex<bool>,
    done_ready: Condvar,
}

impl JobState {
    fn new(shards: usize) -> JobState {
        JobState {
            slots: Mutex::new(vec![None; shards]),
            remaining: AtomicUsize::new(shards),
            poisoned: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            done: Mutex::new(false),
            done_ready: Condvar::new(),
        }
    }

    /// Records one shard's result; returns `true` iff it was the query's
    /// last outstanding shard. The caller then settles the query with the
    /// service **before** calling [`JobState::notify_done`], so by the
    /// time `wait()` returns, the admission slot is released and the
    /// counters have settled.
    fn complete(&self, index: usize, result: Option<ShardResult>) -> bool {
        if let Some(result) = result {
            self.slots
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)[index] = Some(result);
        } else {
            self.poisoned.store(true, Ordering::Release);
        }
        self.remaining.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Wakes waiters; call only after the last [`JobState::complete`].
    fn notify_done(&self) {
        let mut done = self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *done = true;
        self.done_ready.notify_all();
    }

    fn wait(&self) {
        let mut done = self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*done {
            done = self
                .done_ready
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// The future of a submitted query. [`wait`](QueryHandle::wait) blocks
/// until every shard has run on the pool and returns the reassembled
/// output. **Dropping** the handle without waiting *cancels* the query:
/// workers skip the engine run for its remaining tasks, so an abandoned
/// handle stops burning the shared pool (and frees its admission slot
/// as its ring drains).
pub struct QueryHandle {
    inner: Option<HandleInner>,
}

enum HandleInner {
    /// Resolved at submit time (empty input, zero-shard plan).
    Ready(Result<JoinOutput, QueryError>),
    /// Waits on the pool, then assembles.
    Pending {
        state: Arc<JobState>,
        injector: Arc<Injector>,
        assemble: Box<dyn FnOnce() -> Result<JoinOutput, QueryError> + Send>,
    },
}

impl QueryHandle {
    fn ready(result: Result<JoinOutput, QueryError>) -> QueryHandle {
        QueryHandle {
            inner: Some(HandleInner::Ready(result)),
        }
    }

    /// Blocks until the query finishes; returns its output.
    ///
    /// # Errors
    /// Propagates evaluation errors.
    ///
    /// # Panics
    /// If a pool worker panicked while running one of this query's shards
    /// (the panic is re-raised here instead of deadlocking the caller).
    pub fn wait(mut self) -> Result<JoinOutput, QueryError> {
        match self.inner.take().expect("handle consumed exactly once") {
            HandleInner::Ready(result) => result,
            HandleInner::Pending { assemble, .. } => assemble(),
        }
    }

    /// `true` iff every shard of the query has already drained — `wait`
    /// would return without blocking. Degenerate submit-time resolutions
    /// are always finished.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            Some(HandleInner::Ready(_)) | None => true,
            Some(HandleInner::Pending { state, .. }) => {
                state.remaining.load(Ordering::Acquire) == 0
            }
        }
    }
}

impl fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(HandleInner::Ready(_)) => f.write_str("QueryHandle(ready)"),
            Some(HandleInner::Pending { state, .. }) => write!(
                f,
                "QueryHandle(pending, {} shards outstanding)",
                state.remaining.load(Ordering::Relaxed)
            ),
            None => f.write_str("QueryHandle(consumed)"),
        }
    }
}

impl Drop for QueryHandle {
    /// Abandoning a pending handle cancels its query: remaining tasks are
    /// skipped by the workers instead of burning the pool for a result
    /// nobody can read any more.
    fn drop(&mut self) {
        if let Some(HandleInner::Pending {
            state, injector, ..
        }) = &self.inner
        {
            state.cancelled.store(true, Ordering::Release);
            if state.remaining.load(Ordering::Acquire) > 0 {
                injector.cancelled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// How a submission behaves when the service is at its admission bound.
enum Admission {
    /// Fail fast with [`SubmitError::Overloaded`].
    Shed,
    /// Wait (on the space condvar) until a slot frees up.
    Block,
    /// Wait until the deadline, then shed.
    Deadline(Instant),
}

/// A long-lived executor owning one global worker pool; queries from any
/// thread share it. See the crate docs for the scheduling model
/// (round-robin fair dispatch, bounded admission, cancellation).
pub struct Service {
    injector: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
    cfg: ServiceConfig,
    submitted: AtomicU64,
}

impl Service {
    /// Spawns the worker pool.
    #[must_use]
    pub fn new(cfg: ServiceConfig) -> Service {
        let cfg = ServiceConfig {
            workers: cfg.workers.max(1),
            ..cfg
        };
        let injector = Arc::new(Injector {
            queue: Mutex::new(QueueState {
                rings: VecDeque::new(),
                queued_tasks: 0,
                in_flight: 0,
            }),
            task_ready: Condvar::new(),
            space_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            skipped_tasks: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let injector = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("wcoj-service-{i}"))
                    .spawn(move || {
                        while let Some(task) = injector.pop() {
                            // A panicking shard must not take the worker
                            // down with it: the task itself reports the
                            // failure to its job, the pool keeps serving
                            // the other queries.
                            let _ = catch_unwind(AssertUnwindSafe(task));
                        }
                    })
                    .expect("spawn service worker")
            })
            .collect();
        Service {
            injector,
            workers,
            cfg,
            submitted: AtomicU64::new(0),
        }
    }

    /// Number of pool workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Accepted submissions over the service's lifetime: every submit
    /// call that returned a [`QueryHandle`], **including** degenerate
    /// queries resolved at submit time; shed submissions and
    /// planning-error (e.g. bad cover / LP failure) submissions are not
    /// counted.
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot of the scheduling counters.
    #[must_use]
    pub fn counters(&self) -> ServiceCounters {
        let (in_flight, queued_tasks) = {
            let q = self.injector.lock();
            (q.in_flight, q.queued_tasks)
        };
        ServiceCounters {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.injector.completed.load(Ordering::Relaxed),
            shed: self.injector.shed.load(Ordering::Relaxed),
            cancelled: self.injector.cancelled.load(Ordering::Relaxed),
            skipped_tasks: self.injector.skipped_tasks.load(Ordering::Relaxed),
            in_flight,
            queued_tasks,
        }
    }

    /// The service's default per-query planning config (its `threads`
    /// field is ignored by [`submit`](Service::submit)).
    #[must_use]
    pub fn exec_config(&self) -> ExecConfig {
        self.cfg.exec.clone()
    }

    /// The configured admission bound (`0` = unbounded).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.cfg.queue_depth
    }

    /// The shard layout [`submit`](Service::submit) would schedule for
    /// `prepared` on this service: the planned ranges, or a single
    /// unrestricted task for degenerate plans. Empty exactly when the
    /// query is a zero-shard plan (deterministic, so differential tests
    /// can re-run the layout shard by shard).
    #[must_use]
    pub fn shard_layout<S: SearchTree>(
        &self,
        prepared: &PreparedQuery<S>,
        cfg: &ExecConfig,
    ) -> Vec<Option<RootShard>> {
        let plan = ShardPlan::plan(prepared, self.workers.len() * OVERSPLIT, cfg);
        if plan.root_domain_is_empty(prepared) {
            Vec::new()
        } else {
            plan.tasks()
        }
    }

    /// Acquires an admission slot according to `how`.
    fn admit(&self, how: &Admission) -> Result<(), SubmitError> {
        let depth = self.cfg.queue_depth;
        let mut q = self.injector.lock();
        loop {
            if depth == 0 || q.in_flight < depth {
                q.in_flight += 1;
                return Ok(());
            }
            let overloaded = SubmitError::Overloaded {
                in_flight: q.in_flight,
                queue_depth: depth,
            };
            match how {
                Admission::Shed => {
                    drop(q);
                    self.injector.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(overloaded);
                }
                Admission::Block => {
                    q = self
                        .injector
                        .space_ready
                        .wait(q)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                Admission::Deadline(deadline) => {
                    let now = Instant::now();
                    if now >= *deadline {
                        drop(q);
                        self.injector.shed.fetch_add(1, Ordering::Relaxed);
                        return Err(overloaded);
                    }
                    q = self
                        .injector
                        .space_ready
                        .wait_timeout(q, *deadline - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0;
                }
            }
        }
    }

    /// Submits a prepared query with the LP-optimal fractional cover.
    /// Returns immediately; the shards run on the shared pool. Under
    /// overload ([`ServiceConfig::queue_depth`] queries already in
    /// flight) the submission is **shed**, not queued.
    ///
    /// # Errors
    /// [`SubmitError::Overloaded`] when admission control sheds the
    /// query; [`SubmitError::Query`] for LP errors from solving for the
    /// optimal cover.
    pub fn submit<S>(
        &self,
        prepared: &Arc<PreparedQuery<S>>,
        cfg: &ExecConfig,
    ) -> Result<QueryHandle, SubmitError>
    where
        S: SearchTree + Send + Sync + 'static,
    {
        self.submit_inner(prepared, None, cfg, &Admission::Shed)
    }

    /// Like [`submit`](Service::submit), but **waits** for an admission
    /// slot instead of shedding when the service is at its bound — for
    /// callers that prefer delay over a 429.
    ///
    /// # Errors
    /// [`SubmitError::Query`] for LP errors (never
    /// [`SubmitError::Overloaded`]).
    pub fn submit_blocking<S>(
        &self,
        prepared: &Arc<PreparedQuery<S>>,
        cfg: &ExecConfig,
    ) -> Result<QueryHandle, SubmitError>
    where
        S: SearchTree + Send + Sync + 'static,
    {
        self.submit_inner(prepared, None, cfg, &Admission::Block)
    }

    /// Like [`submit_blocking`](Service::submit_blocking) with a
    /// deadline: waits up to `timeout` for an admission slot, then sheds.
    ///
    /// # Errors
    /// [`SubmitError::Overloaded`] when no slot freed up within
    /// `timeout`; [`SubmitError::Query`] for LP errors.
    pub fn try_submit_timeout<S>(
        &self,
        prepared: &Arc<PreparedQuery<S>>,
        cfg: &ExecConfig,
        timeout: Duration,
    ) -> Result<QueryHandle, SubmitError>
    where
        S: SearchTree + Send + Sync + 'static,
    {
        let deadline = Instant::now()
            .checked_add(timeout)
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(86_400));
        self.submit_inner(prepared, None, cfg, &Admission::Deadline(deadline))
    }

    /// Like [`submit`](Service::submit) with an explicit fractional cover
    /// (validated; one weight per relation in input order).
    ///
    /// # Errors
    /// [`SubmitError::Overloaded`] under overload;
    /// [`SubmitError::Query`] wrapping [`QueryError::BadCover`] for
    /// invalid covers or LP errors when solving for the optimum.
    pub fn submit_with_cover<S>(
        &self,
        prepared: &Arc<PreparedQuery<S>>,
        cover: Option<&[f64]>,
        cfg: &ExecConfig,
    ) -> Result<QueryHandle, SubmitError>
    where
        S: SearchTree + Send + Sync + 'static,
    {
        self.submit_inner(prepared, cover, cfg, &Admission::Shed)
    }

    /// An accepted submission that resolved at submit time: it holds an
    /// admission slot (acquired in `admit`) that must be released, and it
    /// counts as completed immediately. `submitted` is bumped **before**
    /// `completed`, so a concurrent [`Service::counters`] snapshot never
    /// observes `completed > submitted`.
    fn accept_ready(
        &self,
        result: Result<JoinOutput, QueryError>,
    ) -> Result<QueryHandle, SubmitError> {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.injector.finish_query();
        Ok(QueryHandle::ready(result))
    }

    fn submit_inner<S>(
        &self,
        prepared: &Arc<PreparedQuery<S>>,
        cover: Option<&[f64]>,
        cfg: &ExecConfig,
        how: &Admission,
    ) -> Result<QueryHandle, SubmitError>
    where
        S: SearchTree + Send + Sync + 'static,
    {
        // Admission first: under overload the submission is refused
        // *before* any planning work (shedding is supposed to be cheap).
        self.admit(how)?;

        let base_stats = |log2_bound: f64, x: &[f64]| JoinStats {
            algorithm_used: ALGORITHM,
            log2_agm_bound: log2_bound,
            cover: x.to_vec(),
            ..JoinStats::default()
        };

        // Degenerate inputs resolve immediately — no tasks, no workers.
        if prepared.query().relations().iter().any(Relation::is_empty) {
            return self.accept_ready(Ok(JoinOutput {
                relation: Relation::empty(prepared.query().output_schema()),
                stats: base_stats(0.0, &[]),
            }));
        }
        let (x, log2_bound) = match prepared.resolve_cover(cover) {
            Ok(resolved) => resolved,
            Err(e) => {
                // Rejected before scheduling: give the slot back and do
                // NOT count the submission as accepted.
                self.injector.release_slot();
                return Err(SubmitError::Query(e));
            }
        };

        let tasks = self.shard_layout(&**prepared, cfg);
        if tasks.is_empty() {
            // Zero-shard plan: no root value survives the level-0
            // intersection, the output is empty.
            return self.accept_ready(prepared.assemble(Vec::new(), base_stats(log2_bound, &x)));
        }

        let state = Arc::new(JobState::new(tasks.len()));
        let mut ring: VecDeque<Task> = VecDeque::with_capacity(tasks.len());
        for (i, shard) in tasks.into_iter().enumerate() {
            let prepared = Arc::clone(prepared);
            let state = Arc::clone(&state);
            let injector = Arc::clone(&self.injector);
            let x = x.clone();
            ring.push_back(Box::new(move || {
                let mut payload = None;
                let result = if state.cancelled.load(Ordering::Acquire) {
                    // The handle is gone: nobody can read the rows, skip
                    // the engine run and just drain the accounting.
                    injector.skipped_tasks.fetch_add(1, Ordering::Relaxed);
                    Some((Vec::new(), JoinStats::default()))
                } else {
                    // Report a panic to the job before re-raising, so
                    // wait() fails loudly instead of blocking forever.
                    match catch_unwind(AssertUnwindSafe(|| {
                        prepared.run_shard(&x, log2_bound, shard)
                    })) {
                        Ok(rows_stats) => Some(rows_stats),
                        Err(p) => {
                            payload = Some(p);
                            None
                        }
                    }
                };
                if state.complete(i, result) {
                    // Settle with the service first: once wait() returns,
                    // the admission slot is free and the counters agree.
                    injector.finish_query();
                    state.notify_done();
                }
                if let Some(p) = payload {
                    std::panic::resume_unwind(p);
                }
            }));
        }
        // Count the acceptance before the ring is visible to workers: a
        // fast pool could otherwise finish every shard (bumping
        // `completed`) while `submitted` still reads one short.
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.injector.push_ring(ring);

        let prepared = Arc::clone(prepared);
        let stats = base_stats(log2_bound, &x);
        let assemble_state = Arc::clone(&state);
        Ok(QueryHandle {
            inner: Some(HandleInner::Pending {
                state: Arc::clone(&state),
                injector: Arc::clone(&self.injector),
                assemble: Box::new(move || {
                    let state = assemble_state;
                    state.wait();
                    assert!(
                        !state.poisoned.load(Ordering::Acquire),
                        "a service worker panicked while running a shard of this query"
                    );
                    let mut slots = state
                        .slots
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let mut stats = stats;
                    let mut rows = Vec::with_capacity(
                        slots
                            .iter()
                            .map(|s| s.as_ref().map_or(0, |(r, _)| r.len()))
                            .sum(),
                    );
                    // Deterministic merge: slot (= shard = root-value)
                    // order, regardless of the order the pool finished
                    // them in.
                    for slot in slots.iter_mut() {
                        let (shard_rows, shard_stats) = slot.take().expect("every shard completed");
                        rows.extend(shard_rows);
                        stats.absorb(&shard_stats);
                    }
                    drop(slots);
                    prepared.assemble(rows, stats)
                }),
            }),
        })
    }

    /// One-shot convenience: prepare `relations` with the default sorted
    /// trie backend, submit with the service's default planning config,
    /// and wait. This is the entry point `wcoj-query` routes catalog
    /// queries through; under overload it surfaces
    /// [`QueryError::Overloaded`] (the shed, not the blocking, policy —
    /// a front end should answer 429 rather than stall its caller).
    ///
    /// # Errors
    /// Same as [`PreparedQuery::new_indexed`] plus evaluation errors and
    /// [`QueryError::Overloaded`].
    pub fn join(&self, relations: &[Relation]) -> Result<JoinOutput, QueryError> {
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(relations)?);
        self.submit(&prepared, &self.cfg.exec)
            .map_err(QueryError::from)?
            .wait()
    }
}

impl Drop for Service {
    /// Graceful shutdown: workers drain the queue (so outstanding
    /// handles still resolve), then exit and are joined.
    fn drop(&mut self) {
        {
            // Set the flag while holding the queue mutex: a worker is
            // then either before its shutdown check (and will see the
            // flag) or already parked in wait() (and will get the
            // notification) — never in between, which would lose the
            // wakeup and deadlock the join below.
            let _queue = self.injector.lock();
            self.injector.shutdown.store(true, Ordering::Release);
        }
        self.injector.task_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_core::{join_with, Algorithm};
    use wcoj_storage::{HashTrieIndex, Schema};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    fn triangle() -> Vec<Relation> {
        vec![
            rel(&[0, 1], &[&[1, 2], &[1, 3]]),
            rel(&[1, 2], &[&[2, 4], &[3, 4]]),
            rel(&[0, 2], &[&[1, 4]]),
        ]
    }

    /// A blocker query for the admission tests: a 5-cycle whose *engine*
    /// run takes tens of milliseconds (even in release mode) while
    /// submitting it with the returned precomputed cover costs
    /// microseconds — so a blocker is reliably still in flight when the
    /// next submission's admission check runs.
    fn heavy_blocker(seed: u64) -> (Vec<Relation>, Arc<PreparedQuery<TrieIndex>>, Vec<f64>) {
        let rels = wcoj_datagen::cycle_instance(seed, 5, 200, 15);
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let (x, _) = prepared.resolve_cover(None).unwrap();
        (rels, prepared, x)
    }

    #[test]
    fn submit_and_wait_matches_sequential() {
        let service = Service::new(ServiceConfig::with_workers(3));
        let rels = [
            wcoj_datagen::random_relation(1, &[0, 1], 120, 12),
            wcoj_datagen::random_relation(2, &[1, 2], 120, 12),
            wcoj_datagen::random_relation(3, &[0, 2], 120, 12),
        ];
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation, seq.relation);
        assert_eq!(out.stats.algorithm_used, "nprr-service");
        assert!(out.stats.shards >= 1);
        assert_eq!(service.submitted(), 1);
    }

    #[test]
    fn many_handles_in_flight_before_any_wait() {
        let service = Service::new(ServiceConfig::with_workers(2));
        let rels = triangle();
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let handles: Vec<QueryHandle> = (0..16)
            .map(|_| service.submit(&prepared, &cfg).unwrap())
            .collect();
        for handle in handles {
            assert_eq!(handle.wait().unwrap().relation, seq.relation);
        }
        assert_eq!(service.submitted(), 16);
        let counters = service.counters();
        assert_eq!(counters.completed, 16);
        assert_eq!(counters.in_flight, 0);
        assert_eq!(counters.queued_tasks, 0);
        assert_eq!(counters.shed, 0);
        assert_eq!(counters.cancelled, 0);
    }

    #[test]
    fn hash_backend_through_the_pool() {
        let service = Service::new(ServiceConfig::with_workers(4));
        let rels = triangle();
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let prepared = Arc::new(PreparedQuery::<HashTrieIndex>::new_indexed(&rels).unwrap());
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation, seq.relation);
    }

    #[test]
    fn empty_input_and_zero_shard_resolve_at_submit() {
        let service = Service::new(ServiceConfig::with_workers(2));
        // all-empty / one-empty relation
        let prepared = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[1, 2]]),
                Relation::empty(Schema::of(&[1, 2])),
            ])
            .unwrap(),
        );
        let out = service
            .submit(&prepared, &service.exec_config())
            .unwrap()
            .wait()
            .unwrap();
        assert!(out.relation.is_empty());
        assert_eq!(out.relation.arity(), 3);
        assert_eq!(out.stats.shards, 0);

        // empty root-candidate intersection (zero-shard plan)
        let prepared = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[10, 1], &[10, 2]]),
                rel(&[1, 2], &[&[7, 20], &[8, 20]]),
                rel(&[0, 2], &[&[10, 20]]),
            ])
            .unwrap(),
        );
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        assert!(service.shard_layout(&*prepared, &cfg).is_empty());
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert!(out.relation.is_empty());
        assert_eq!(out.relation.arity(), 3);
        assert_eq!(out.stats.shards, 0, "no shard task was ever scheduled");
        assert_eq!(out.stats.case_a + out.stats.case_b, 0);

        // nullary queries still produce their single "true" row
        let prepared =
            Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&[Relation::nullary_true()]).unwrap());
        let out = service.submit(&prepared, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation.len(), 1);
        assert_eq!(out.relation.arity(), 0);
    }

    /// Satellite pin-down: `submitted` counts every *accepted* submit —
    /// including degenerate queries resolved at submit time — and never
    /// counts planning-error or shed submissions. Accepted queries all
    /// eventually count as `completed`, and admission slots drain back to
    /// zero.
    #[test]
    fn submitted_counter_semantics() {
        let service = Service::new(ServiceConfig::with_workers(2));
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };

        // 1. a normal multi-shard query: counted
        let populated = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&triangle()).unwrap());
        service.submit(&populated, &cfg).unwrap().wait().unwrap();
        assert_eq!(service.submitted(), 1);

        // 2. empty-input degenerate: counted (accepted, resolved at
        //    submit)
        let empty_input = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[1, 2]]),
                Relation::empty(Schema::of(&[1, 2])),
            ])
            .unwrap(),
        );
        service.submit(&empty_input, &cfg).unwrap().wait().unwrap();
        assert_eq!(service.submitted(), 2);

        // 3. zero-shard plan (empty root-candidate intersection): counted
        let zero_shard = Arc::new(
            PreparedQuery::<TrieIndex>::new_indexed(&[
                rel(&[0, 1], &[&[10, 1], &[10, 2]]),
                rel(&[1, 2], &[&[7, 20], &[8, 20]]),
                rel(&[0, 2], &[&[10, 20]]),
            ])
            .unwrap(),
        );
        service.submit(&zero_shard, &cfg).unwrap().wait().unwrap();
        assert_eq!(service.submitted(), 3);

        // 4. a bad cover (planning error): NOT counted
        let err = service.submit_with_cover(&populated, Some(&[0.1, 0.1, 0.1]), &cfg);
        assert!(matches!(err, Err(SubmitError::Query(_))));
        assert_eq!(service.submitted(), 3, "LP-error submissions don't count");

        let counters = service.counters();
        assert_eq!(counters.submitted, 3);
        assert_eq!(counters.completed, 3, "degenerate resolutions complete");
        assert_eq!(counters.shed, 0);
        assert_eq!(counters.in_flight, 0, "every slot released");
    }

    /// The acceptance-criterion shape: with queue bound Q on a 2-worker
    /// pool, a burst sheds the (Q+1)-th submission with
    /// `SubmitError::Overloaded`, sheds are counted (not silently
    /// dropped), and every accepted handle still resolves bit-identically.
    #[test]
    fn burst_past_queue_depth_sheds_deterministically() {
        const Q: usize = 3;
        let service = Service::new(ServiceConfig::with_workers(2).with_queue_depth(Q));
        assert_eq!(service.queue_depth(), Q);
        // The blocker's engine run takes tens of milliseconds while each
        // burst submission below costs microseconds (precomputed cover,
        // and the admission check precedes all planning), so none of the
        // admitted queries can finish before the burst loop ends.
        let (heavy_rels, heavy, x) = heavy_blocker(11);
        let seq = join_with(&heavy_rels, Algorithm::Nprr, None).unwrap();
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };

        let accepted: Vec<QueryHandle> = (0..Q)
            .map(|i| {
                service
                    .submit_with_cover(&heavy, Some(&x), &cfg)
                    .unwrap_or_else(|e| panic!("submission {i} within the bound accepted: {e}"))
            })
            .collect();
        // The (Q+1)-th burst submission is shed.
        match service.submit_with_cover(&heavy, Some(&x), &cfg) {
            Err(SubmitError::Overloaded {
                in_flight,
                queue_depth,
            }) => {
                assert_eq!(in_flight, Q);
                assert_eq!(queue_depth, Q);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(service.counters().shed, 1, "the shed is reported");
        assert_eq!(
            service.submitted(),
            Q as u64,
            "shed submissions don't count"
        );

        // Every accepted handle resolves bit-identically to join_nprr.
        for handle in accepted {
            let out = handle.wait().unwrap();
            assert_eq!(out.relation, seq.relation);
        }
        // With the queue drained, submissions are admitted again.
        let out = service.submit(&heavy, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation, seq.relation);
        assert_eq!(service.counters().in_flight, 0);
    }

    #[test]
    fn blocking_and_deadline_submission_under_overload() {
        let service = Service::new(ServiceConfig::with_workers(1).with_queue_depth(1));
        let (heavy_rels, heavy, x) = heavy_blocker(13);
        let seq = join_with(&heavy_rels, Algorithm::Nprr, None).unwrap();
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };

        let first = service.submit_with_cover(&heavy, Some(&x), &cfg).unwrap();
        // Full: a zero-deadline submission sheds…
        match service.try_submit_timeout(&heavy, &cfg, Duration::ZERO) {
            Err(SubmitError::Overloaded { .. }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // …while a blocking submission waits for the slot and succeeds.
        let blocked = service.submit_blocking(&heavy, &cfg).unwrap();
        assert_eq!(first.wait().unwrap().relation, seq.relation);
        assert_eq!(blocked.wait().unwrap().relation, seq.relation);
        // A generous deadline also gets through once the queue is idle.
        let timed = service
            .try_submit_timeout(&heavy, &cfg, Duration::from_secs(60))
            .unwrap();
        assert_eq!(timed.wait().unwrap().relation, seq.relation);
        let counters = service.counters();
        assert_eq!(counters.submitted, 3);
        assert_eq!(counters.shed, 1);
        assert_eq!(counters.in_flight, 0);
    }

    #[test]
    fn dropped_handle_cancels_remaining_tasks() {
        // One worker: after the handle is dropped mid-run, the remaining
        // ring entries are popped but skipped instead of burning the pool.
        let service = Service::new(ServiceConfig::with_workers(1));
        let (_, heavy, x) = heavy_blocker(17);
        let cfg = ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let layout = service.shard_layout(&*heavy, &cfg);
        assert!(layout.len() >= 3, "the plan is multi-task: {layout:?}");

        let handle = service.submit_with_cover(&heavy, Some(&x), &cfg).unwrap();
        drop(handle); // cancel
        assert_eq!(service.counters().cancelled, 1);

        // The pool still serves other queries correctly afterwards…
        let rels = triangle();
        let seq = join_with(&rels, Algorithm::Nprr, None).unwrap();
        let small = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&rels).unwrap());
        let out = service.submit(&small, &cfg).unwrap().wait().unwrap();
        assert_eq!(out.relation, seq.relation);

        // …and once the cancelled ring drains, its skipped tasks show up
        // in the counters and its admission slot is released.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let c = service.counters();
            if c.in_flight == 0 && c.queued_tasks == 0 {
                assert!(
                    c.skipped_tasks >= 1,
                    "cancellation skipped work: {c:?} (layout {})",
                    layout.len()
                );
                assert_eq!(c.completed, 2, "cancelled query still drains");
                break;
            }
            assert!(Instant::now() < deadline, "cancelled query never drained");
            std::thread::yield_now();
        }
    }

    #[test]
    fn bad_cover_rejected_at_submit() {
        let service = Service::new(ServiceConfig::with_workers(2));
        let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&triangle()).unwrap());
        let err =
            service.submit_with_cover(&prepared, Some(&[0.1, 0.1, 0.1]), &ExecConfig::default());
        assert!(err.is_err());
        // explicit valid cover works
        let out = service
            .submit_with_cover(&prepared, Some(&[1.0, 1.0, 1.0]), &ExecConfig::default())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out.relation.len(), 2);
    }

    #[test]
    fn submit_error_conversions_and_display() {
        let overload = SubmitError::Overloaded {
            in_flight: 4,
            queue_depth: 4,
        };
        assert_eq!(QueryError::from(overload.clone()), QueryError::Overloaded);
        assert!(overload.to_string().contains("overloaded"));
        let bad = SubmitError::Query(QueryError::BadCover("nope".into()));
        assert_eq!(
            QueryError::from(bad),
            QueryError::BadCover("nope".into()),
            "planning errors round-trip unchanged"
        );
        assert!(QueryError::Overloaded.to_string().contains("overloaded"));
    }

    #[test]
    fn queue_depth_from_env() {
        // Clear any ambient override first: WCOJ_QUEUE_DEPTH is exactly
        // the knob a CI job or developer shell might export. (No other
        // test in this binary touches process env vars.)
        std::env::remove_var("WCOJ_QUEUE_DEPTH");
        assert_eq!(
            ServiceConfig::from_env().queue_depth,
            0,
            "unset → unbounded"
        );
        std::env::set_var("WCOJ_QUEUE_DEPTH", "7");
        let cfg = ServiceConfig::from_env();
        std::env::remove_var("WCOJ_QUEUE_DEPTH");
        assert_eq!(cfg.queue_depth, 7);
        // malformed values warn (once) and fall back to unbounded
        std::env::set_var("WCOJ_QUEUE_DEPTH", "lots");
        let cfg = ServiceConfig::from_env();
        std::env::remove_var("WCOJ_QUEUE_DEPTH");
        assert_eq!(cfg.queue_depth, 0);
        assert!(
            wcoj_exec::malformed_env_warnings()
                .iter()
                .any(|k| k == "WCOJ_QUEUE_DEPTH"),
            "fallback is signalled, not silent"
        );
    }

    #[test]
    fn join_convenience_and_drop_drains() {
        let seq = join_with(&triangle(), Algorithm::Nprr, None).unwrap();
        let handle;
        {
            let service = Service::new(ServiceConfig::with_workers(2));
            let out = service.join(&triangle()).unwrap();
            assert_eq!(out.relation, seq.relation);
            // a handle may outlive the service: drop drains the queue
            let prepared = Arc::new(PreparedQuery::<TrieIndex>::new_indexed(&triangle()).unwrap());
            let cfg = ExecConfig {
                shard_min_size: 1,
                ..ExecConfig::default()
            };
            handle = service.submit(&prepared, &cfg).unwrap();
        } // service dropped here
        assert_eq!(handle.wait().unwrap().relation, seq.relation);
    }
}
