//! Textbook binary join algorithms.
//!
//! `hash_join` delegates to the storage primitive (build on the smaller
//! side, probe with the larger). `sort_merge_join` and
//! `nested_loop_join` are independent implementations with identical
//! semantics, used both as baselines in their own right and as
//! cross-checks in tests.

use wcoj_storage::ops::natural_join;
use wcoj_storage::{Relation, Schema, Value};

/// Hash-based natural join, `O(|R| + |S| + |R ⋈ S|)` (amortised).
#[must_use]
pub fn hash_join(l: &Relation, r: &Relation) -> Relation {
    natural_join(l, r)
}

/// Sort-merge natural join: sort both inputs on the shared attributes and
/// merge, emitting the cross product of each matching group.
#[must_use]
pub fn sort_merge_join(l: &Relation, r: &Relation) -> Relation {
    let shared = l.schema().intersection(r.schema());
    let out_schema = l.schema().union(r.schema());
    let mut out = Relation::empty(out_schema.clone());
    if l.is_empty() || r.is_empty() {
        return out;
    }
    if shared.is_empty() || l.arity() == 0 || r.arity() == 0 {
        // cross product / nullary cases: semantics identical to hash join
        return natural_join(l, r);
    }
    let lpos = l.schema().positions_of(&shared).expect("shared in l");
    let rpos = r.schema().positions_of(&shared).expect("shared in r");

    // Sort row indices by join key.
    let key_of = |rel: &Relation, pos: &[usize], i: usize| -> Vec<Value> {
        pos.iter().map(|&p| rel.row(i)[p]).collect()
    };
    let mut li: Vec<usize> = (0..l.len()).collect();
    let mut ri: Vec<usize> = (0..r.len()).collect();
    li.sort_by_key(|&i| key_of(l, &lpos, i));
    ri.sort_by_key(|&i| key_of(r, &rpos, i));

    // Output column sources.
    let plan: Vec<(bool, usize)> = out_schema
        .attrs()
        .iter()
        .map(|&a| {
            l.schema().position(a).map_or_else(
                || (false, r.schema().position(a).expect("attr in one side")),
                |p| (true, p),
            )
        })
        .collect();

    let mut buf = vec![Value(0); out_schema.arity()];
    let (mut i, mut j) = (0usize, 0usize);
    while i < li.len() && j < ri.len() {
        let lk = key_of(l, &lpos, li[i]);
        let rk = key_of(r, &rpos, ri[j]);
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // group boundaries
                let gi = (i..li.len())
                    .take_while(|&x| key_of(l, &lpos, li[x]) == lk)
                    .count();
                let gj = (j..ri.len())
                    .take_while(|&x| key_of(r, &rpos, ri[x]) == rk)
                    .count();
                for &lr in &li[i..i + gi] {
                    for &rr in &ri[j..j + gj] {
                        for (slot, &(from_l, p)) in buf.iter_mut().zip(&plan) {
                            *slot = if from_l { l.row(lr)[p] } else { r.row(rr)[p] };
                        }
                        out.push_row(&buf).expect("arity consistent");
                    }
                }
                i += gi;
                j += gj;
            }
        }
    }
    out.sort_dedup();
    out
}

/// Block nested-loop join: for every pair of rows, test the shared
/// attributes. `O(|R| · |S|)` — the baseline the others improve on.
#[must_use]
pub fn nested_loop_join(l: &Relation, r: &Relation) -> Relation {
    let shared = l.schema().intersection(r.schema());
    let out_schema: Schema = l.schema().union(r.schema());
    let mut out = Relation::empty(out_schema.clone());
    if l.arity() == 0 || r.arity() == 0 {
        return natural_join(l, r);
    }
    let lpos = l.schema().positions_of(&shared).expect("shared in l");
    let rpos = r.schema().positions_of(&shared).expect("shared in r");
    let plan: Vec<(bool, usize)> = out_schema
        .attrs()
        .iter()
        .map(|&a| {
            l.schema().position(a).map_or_else(
                || (false, r.schema().position(a).expect("attr in one side")),
                |p| (true, p),
            )
        })
        .collect();
    let mut buf = vec![Value(0); out_schema.arity()];
    for lr in l.iter_rows() {
        for rr in r.iter_rows() {
            let matches = lpos.iter().zip(&rpos).all(|(&lp, &rp)| lr[lp] == rr[rp]);
            if matches {
                for (slot, &(from_l, p)) in buf.iter_mut().zip(&plan) {
                    *slot = if from_l { lr[p] } else { rr[p] };
                }
                out.push_row(&buf).expect("arity consistent");
            }
        }
    }
    out.sort_dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use wcoj_storage::ops::reorder;
    use wcoj_storage::Schema;

    fn random_rel(rng: &mut rand::rngs::StdRng, attrs: &[u32], n: usize, dom: u64) -> Relation {
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| attrs.iter().map(|_| Value(rng.gen_range(0..dom))).collect())
            .collect();
        Relation::from_rows(Schema::of(attrs), rows).unwrap()
    }

    #[test]
    fn three_implementations_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for trial in 0..10 {
            let l = random_rel(&mut rng, &[0, 1], 40, 8);
            let r = random_rel(&mut rng, &[1, 2], 40, 8);
            let h = hash_join(&l, &r);
            let s = reorder(&sort_merge_join(&l, &r), h.schema()).unwrap();
            let n = reorder(&nested_loop_join(&l, &r), h.schema()).unwrap();
            assert_eq!(h, s, "trial {trial}: sort-merge");
            assert_eq!(h, n, "trial {trial}: nested-loop");
        }
    }

    #[test]
    fn multi_attribute_keys() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let l = random_rel(&mut rng, &[0, 1, 2], 30, 4);
        let r = random_rel(&mut rng, &[1, 2, 3], 30, 4);
        let h = hash_join(&l, &r);
        let s = reorder(&sort_merge_join(&l, &r), h.schema()).unwrap();
        let n = reorder(&nested_loop_join(&l, &r), h.schema()).unwrap();
        assert_eq!(h, s);
        assert_eq!(h, n);
    }

    #[test]
    fn disjoint_schemas_cross_product() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let l = random_rel(&mut rng, &[0], 5, 10);
        let r = random_rel(&mut rng, &[1], 7, 10);
        let expect = l.len() * r.len();
        assert_eq!(hash_join(&l, &r).len(), expect);
        assert_eq!(sort_merge_join(&l, &r).len(), expect);
        assert_eq!(nested_loop_join(&l, &r).len(), expect);
    }

    #[test]
    fn empty_inputs() {
        let l = Relation::empty(Schema::of(&[0, 1]));
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let r = random_rel(&mut rng, &[1, 2], 5, 4);
        assert!(hash_join(&l, &r).is_empty());
        assert!(sort_merge_join(&l, &r).is_empty());
        assert!(nested_loop_join(&l, &r).is_empty());
    }

    #[test]
    fn identical_schemas_intersect() {
        let a = Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[3, 4]]);
        let b = Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[3, 4], &[5, 6]]);
        for j in [
            hash_join(&a, &b),
            sort_merge_join(&a, &b),
            nested_loop_join(&a, &b),
        ] {
            assert_eq!(j.len(), 1);
            assert!(j.contains_row(&[Value(3), Value(4)]));
        }
    }
}
