//! Binary join-plan trees and an instrumented executor.
//!
//! §6 of the paper proves lower bounds on **join-project plans**: plan
//! trees whose internal nodes are binary natural joins, optionally followed
//! by projections. [`JoinPlan`] represents exactly that class;
//! [`execute`] evaluates a plan and records the *maximum intermediate
//! cardinality* — on the Lemma 6.1 instances every such plan must
//! materialise an `Ω(N²/n²)` intermediate no matter its shape, which is
//! what experiment E7 measures.

use crate::pairwise::{hash_join, nested_loop_join, sort_merge_join};
use wcoj_storage::ops::project;
use wcoj_storage::{Attr, Relation, StorageError};

/// Which pairwise algorithm executes the joins of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinImpl {
    /// Hash join (default).
    #[default]
    Hash,
    /// Sort-merge join.
    SortMerge,
    /// Nested-loop join.
    NestedLoop,
}

/// A join-project plan over input relations referenced by index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinPlan {
    /// Scan input relation `i`.
    Leaf(usize),
    /// Natural join of two sub-plans, optionally projecting the result.
    Join {
        /// Left input.
        left: Box<JoinPlan>,
        /// Right input.
        right: Box<JoinPlan>,
        /// Optional projection applied to the join result (the "project"
        /// in join-project plans). `None` keeps all attributes.
        project_to: Option<Vec<Attr>>,
    },
}

impl JoinPlan {
    /// A left-deep join-only plan over the given leaf order.
    ///
    /// # Panics
    /// Panics on an empty order.
    #[must_use]
    pub fn left_deep(order: &[usize]) -> JoinPlan {
        assert!(!order.is_empty(), "left_deep needs at least one leaf");
        let mut plan = JoinPlan::Leaf(order[0]);
        for &i in &order[1..] {
            plan = JoinPlan::Join {
                left: Box::new(plan),
                right: Box::new(JoinPlan::Leaf(i)),
                project_to: None,
            };
        }
        plan
    }

    /// Leaf indices used by this plan, in-order.
    #[must_use]
    pub fn leaves(&self) -> Vec<usize> {
        match self {
            JoinPlan::Leaf(i) => vec![*i],
            JoinPlan::Join { left, right, .. } => {
                let mut l = left.leaves();
                l.extend(right.leaves());
                l
            }
        }
    }
}

/// Execution statistics of a plan run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Largest intermediate (or final) relation materialised.
    pub max_intermediate: usize,
    /// Sum of all intermediate cardinalities (total tuples touched).
    pub total_tuples: usize,
    /// Number of binary joins executed.
    pub joins: usize,
}

/// Executes `plan` over `relations`, recording statistics.
///
/// # Errors
/// [`StorageError`] from projections referencing missing attributes.
pub fn execute(
    plan: &JoinPlan,
    relations: &[Relation],
    imp: JoinImpl,
) -> Result<(Relation, ExecStats), StorageError> {
    let mut stats = ExecStats::default();
    let rel = run(plan, relations, imp, &mut stats)?;
    Ok((rel, stats))
}

fn run(
    plan: &JoinPlan,
    relations: &[Relation],
    imp: JoinImpl,
    stats: &mut ExecStats,
) -> Result<Relation, StorageError> {
    match plan {
        JoinPlan::Leaf(i) => Ok(relations[*i].clone()),
        JoinPlan::Join {
            left,
            right,
            project_to,
        } => {
            let l = run(left, relations, imp, stats)?;
            let r = run(right, relations, imp, stats)?;
            let j = match imp {
                JoinImpl::Hash => hash_join(&l, &r),
                JoinImpl::SortMerge => sort_merge_join(&l, &r),
                JoinImpl::NestedLoop => nested_loop_join(&l, &r),
            };
            stats.joins += 1;
            stats.max_intermediate = stats.max_intermediate.max(j.len());
            stats.total_tuples += j.len();
            match project_to {
                None => Ok(j),
                Some(attrs) => {
                    let p = project(&j, attrs)?;
                    stats.max_intermediate = stats.max_intermediate.max(p.len());
                    Ok(p)
                }
            }
        }
    }
}

/// Convenience: execute the left-deep plan over `order` with hash joins.
///
/// # Errors
/// [`StorageError`] (none for join-only plans).
pub fn execute_left_deep(
    relations: &[Relation],
    order: &[usize],
) -> Result<(Relation, ExecStats), StorageError> {
    execute(&JoinPlan::left_deep(order), relations, JoinImpl::Hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::{Schema, Value};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    fn triangle() -> Vec<Relation> {
        vec![
            rel(&[0, 1], &[&[1, 2], &[1, 3], &[2, 3]]),
            rel(&[1, 2], &[&[2, 4], &[3, 4]]),
            rel(&[0, 2], &[&[1, 4], &[2, 4]]),
        ]
    }

    #[test]
    fn left_deep_shapes() {
        let p = JoinPlan::left_deep(&[2, 0, 1]);
        assert_eq!(p.leaves(), vec![2, 0, 1]);
    }

    #[test]
    fn execute_triangle_all_impls() {
        let rels = triangle();
        let p = JoinPlan::left_deep(&[0, 1, 2]);
        let (h, hs) = execute(&p, &rels, JoinImpl::Hash).unwrap();
        let (s, _) = execute(&p, &rels, JoinImpl::SortMerge).unwrap();
        let (n, _) = execute(&p, &rels, JoinImpl::NestedLoop).unwrap();
        assert_eq!(h, s);
        assert_eq!(h, n);
        assert_eq!(hs.joins, 2);
        assert!(hs.max_intermediate >= h.len());
        assert_eq!(h.len(), 3); // (1,2,4),(1,3,4),(2,3,4)
        assert!(h.contains_row(&[Value(1), Value(2), Value(4)]));
    }

    #[test]
    fn bushy_plan() {
        // ((R ⋈ S) ⋈ (T ⋈ U)) over a 4-chain.
        let rels = vec![
            rel(&[0, 1], &[&[1, 2]]),
            rel(&[1, 2], &[&[2, 3]]),
            rel(&[2, 3], &[&[3, 4]]),
            rel(&[3, 4], &[&[4, 5]]),
        ];
        let plan = JoinPlan::Join {
            left: Box::new(JoinPlan::Join {
                left: Box::new(JoinPlan::Leaf(0)),
                right: Box::new(JoinPlan::Leaf(1)),
                project_to: None,
            }),
            right: Box::new(JoinPlan::Join {
                left: Box::new(JoinPlan::Leaf(2)),
                right: Box::new(JoinPlan::Leaf(3)),
                project_to: None,
            }),
            project_to: None,
        };
        let (out, stats) = execute(&plan, &rels, JoinImpl::Hash).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.arity(), 5);
        assert_eq!(stats.joins, 3);
    }

    #[test]
    fn projections_tracked() {
        let rels = triangle();
        let plan = JoinPlan::Join {
            left: Box::new(JoinPlan::Leaf(0)),
            right: Box::new(JoinPlan::Leaf(1)),
            project_to: Some(vec![Attr(0), Attr(2)]),
        };
        let (out, stats) = execute(&plan, &rels, JoinImpl::Hash).unwrap();
        assert_eq!(out.arity(), 2);
        assert!(stats.max_intermediate >= out.len());
        // projecting to a missing attr errors
        let bad = JoinPlan::Join {
            left: Box::new(JoinPlan::Leaf(0)),
            right: Box::new(JoinPlan::Leaf(1)),
            project_to: Some(vec![Attr(9)]),
        };
        assert!(execute(&bad, &rels, JoinImpl::Hash).is_err());
    }

    #[test]
    fn max_intermediate_sees_blowup() {
        // Example 2.2 shape at N = 8: R ⋈ S is N²/4 + N/2 = 20.
        let n = 8u64;
        let rows: Vec<Vec<Value>> = (1..=n / 2)
            .map(|j| vec![Value(0), Value(j)])
            .chain((1..=n / 2).map(|j| vec![Value(j), Value(0)]))
            .collect();
        let rels = vec![
            Relation::from_rows(Schema::of(&[0, 1]), rows.clone()).unwrap(),
            Relation::from_rows(Schema::of(&[1, 2]), rows.clone()).unwrap(),
            Relation::from_rows(Schema::of(&[0, 2]), rows).unwrap(),
        ];
        let (out, stats) = execute_left_deep(&rels, &[0, 1, 2]).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.max_intermediate, (n * n / 4 + n / 2) as usize);
    }
}
