//! A System-R-flavoured plan enumerator for binary join plans.
//!
//! Two modes:
//!
//! * [`optimize_left_deep`] — estimates intermediate sizes with the
//!   textbook independence assumption (`|R ⋈ S| ≈ |R|·|S| / ∏ max(d_R(a),
//!   d_S(a))` over shared attributes `a`, with `d` = distinct count) and
//!   returns the cheapest left-deep order: exhaustively for `m ≤ 8`,
//!   greedily beyond.
//! * [`best_actual_left_deep`] — the *oracle*: executes **every** left-deep
//!   order and returns the order minimising the actual maximum
//!   intermediate. §6's point is that on the hard instances even this
//!   oracle pays `Ω(N²/n²)`; giving the baseline oracle powers makes the
//!   experiment's conclusion stronger.

use crate::plan::{execute_left_deep, ExecStats};
use wcoj_storage::hash::FxHashSet;
use wcoj_storage::{Attr, Relation};

/// Distinct value count per attribute of a relation.
fn distinct_counts(rel: &Relation) -> Vec<(Attr, usize)> {
    rel.schema()
        .attrs()
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let mut seen: FxHashSet<u64> = FxHashSet::default();
            for row in rel.iter_rows() {
                seen.insert(row[i].0);
            }
            (a, seen.len().max(1))
        })
        .collect()
}

/// Independence-assumption estimate of `|L ⋈ R|` given the two sides'
/// cardinalities and per-attribute distinct counts.
#[must_use]
pub fn estimate_join_size(
    l_card: f64,
    l_distinct: &[(Attr, usize)],
    r_card: f64,
    r_distinct: &[(Attr, usize)],
) -> f64 {
    let mut denom = 1.0f64;
    for &(a, dl) in l_distinct {
        if let Some(&(_, dr)) = r_distinct.iter().find(|&&(b, _)| b == a) {
            denom *= dl.max(dr) as f64;
        }
    }
    (l_card * r_card / denom).max(0.0)
}

/// Merged distinct-count profile of a (hypothetical) join result.
fn merge_profiles(l: &[(Attr, usize)], r: &[(Attr, usize)]) -> Vec<(Attr, usize)> {
    let mut out = l.to_vec();
    for &(a, d) in r {
        match out.iter_mut().find(|(b, _)| *b == a) {
            Some((_, dl)) => *dl = (*dl).min(d),
            None => out.push((a, d)),
        }
    }
    out
}

/// Estimated max-intermediate cost of a left-deep order.
fn estimate_order_cost(order: &[usize], cards: &[f64], profiles: &[Vec<(Attr, usize)>]) -> f64 {
    let mut card = cards[order[0]];
    let mut profile = profiles[order[0]].clone();
    let mut max_est = card;
    for &i in &order[1..] {
        card = estimate_join_size(card, &profile, cards[i], &profiles[i]);
        profile = merge_profiles(&profile, &profiles[i]);
        max_est = max_est.max(card);
    }
    max_est
}

/// Returns the left-deep order with the smallest **estimated** maximum
/// intermediate: exhaustive for `m ≤ 8`, greedy (smallest estimated next
/// join) above.
#[must_use]
pub fn optimize_left_deep(relations: &[Relation]) -> Vec<usize> {
    let m = relations.len();
    if m == 0 {
        return Vec::new();
    }
    let cards: Vec<f64> = relations.iter().map(|r| r.len() as f64).collect();
    let profiles: Vec<Vec<(Attr, usize)>> = relations.iter().map(distinct_counts).collect();

    if m <= 8 {
        let mut best: Option<(Vec<usize>, f64)> = None;
        permute((0..m).collect(), &mut |order| {
            let cost = estimate_order_cost(order, &cards, &profiles);
            if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                best = Some((order.to_vec(), cost));
            }
        });
        best.expect("at least one order").0
    } else {
        // greedy: start from the smallest relation, repeatedly add the
        // relation minimising the estimated next intermediate.
        let mut remaining: Vec<usize> = (0..m).collect();
        remaining.sort_by(|&a, &b| cards[a].total_cmp(&cards[b]));
        let mut order = vec![remaining.remove(0)];
        let mut card = cards[order[0]];
        let mut profile = profiles[order[0]].clone();
        while !remaining.is_empty() {
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .map(|(pos, &i)| {
                    (
                        pos,
                        estimate_join_size(card, &profile, cards[i], &profiles[i]),
                    )
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty remaining");
            let i = remaining.remove(pos);
            card = estimate_join_size(card, &profile, cards[i], &profiles[i]);
            profile = merge_profiles(&profile, &profiles[i]);
            order.push(i);
        }
        order
    }
}

/// Executes every left-deep order (`m! ` of them — callers keep `m` small)
/// and returns `(best_order, its stats)` minimising the **actual** maximum
/// intermediate cardinality.
///
/// # Panics
/// Panics if `relations` is empty or `m > 8` (guard against factorial
/// blow-up).
#[must_use]
pub fn best_actual_left_deep(relations: &[Relation]) -> (Vec<usize>, ExecStats) {
    let m = relations.len();
    assert!(
        (1..=8).contains(&m),
        "oracle search limited to 1..=8 relations"
    );
    let mut best: Option<(Vec<usize>, ExecStats)> = None;
    permute((0..m).collect(), &mut |order| {
        let (_, stats) = execute_left_deep(relations, order).expect("join-only plan");
        if best
            .as_ref()
            .is_none_or(|(_, b)| stats.max_intermediate < b.max_intermediate)
        {
            best = Some((order.to_vec(), stats));
        }
    });
    best.expect("m ≥ 1")
}

/// Heap's algorithm, calling `f` with each permutation.
fn permute(mut items: Vec<usize>, f: &mut impl FnMut(&[usize])) {
    let n = items.len();
    let mut c = vec![0usize; n];
    f(&items);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                items.swap(0, i);
            } else {
                items.swap(c[i], i);
            }
            f(&items);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::{Schema, Value};

    fn rel(schema: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_u32_rows(Schema::of(schema), rows)
    }

    #[test]
    fn permutations_complete() {
        let mut seen = std::collections::HashSet::new();
        permute(vec![0, 1, 2], &mut |p| {
            seen.insert(p.to_vec());
        });
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn estimate_basics() {
        // |R| = 10 with 5 distinct B; |S| = 10 with 10 distinct B:
        // estimate 10·10/10 = 10.
        let est = estimate_join_size(
            10.0,
            &[(Attr(0), 10), (Attr(1), 5)],
            10.0,
            &[(Attr(1), 10), (Attr(2), 10)],
        );
        assert!((est - 10.0).abs() < 1e-9);
        // no shared attrs → cross product estimate
        let est = estimate_join_size(10.0, &[(Attr(0), 10)], 10.0, &[(Attr(1), 10)]);
        assert!((est - 100.0).abs() < 1e-9);
    }

    #[test]
    fn optimizer_prefers_selective_first_join() {
        // R(0,1) tiny, S(1,2) huge, T(2,3) huge but selective with S.
        let r = rel(&[0, 1], &[&[1, 1]]);
        let mut s_rows = Vec::new();
        let mut t_rows = Vec::new();
        for i in 0..50u32 {
            s_rows.push(vec![Value(u64::from(i % 3)), Value(u64::from(i))]);
            t_rows.push(vec![Value(u64::from(i)), Value(u64::from(i))]);
        }
        let s = Relation::from_rows(Schema::of(&[1, 2]), s_rows).unwrap();
        let t = Relation::from_rows(Schema::of(&[2, 3]), t_rows).unwrap();
        let order = optimize_left_deep(&[s.clone(), r.clone(), t.clone()]);
        // the tiny relation (index 1) should come first
        assert_eq!(order[0], 1, "order = {order:?}");
    }

    #[test]
    fn greedy_handles_many_relations() {
        // 9 relations forces the greedy path.
        let rels: Vec<Relation> = (0..9u32)
            .map(|i| rel(&[i, i + 1], &[&[1, 1], &[2, 2]]))
            .collect();
        let order = optimize_left_deep(&rels);
        assert_eq!(order.len(), 9);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9usize).collect::<Vec<_>>());
    }

    #[test]
    fn oracle_beats_or_matches_any_fixed_order() {
        let rels = vec![
            rel(&[0, 1], &[&[1, 2], &[1, 3], &[2, 3]]),
            rel(&[1, 2], &[&[2, 4], &[3, 4], &[3, 5]]),
            rel(&[0, 2], &[&[1, 4], &[2, 4]]),
        ];
        let (order, stats) = best_actual_left_deep(&rels);
        assert_eq!(order.len(), 3);
        // compare against the identity order
        let (_, id_stats) = execute_left_deep(&rels, &[0, 1, 2]).unwrap();
        assert!(stats.max_intermediate <= id_stats.max_intermediate);
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn oracle_guards_factorial() {
        let rels: Vec<Relation> = (0..9u32).map(|i| rel(&[i], &[&[1]])).collect();
        let _ = best_actual_left_deep(&rels);
    }

    #[test]
    fn empty_input_order() {
        assert!(optimize_left_deep(&[]).is_empty());
    }
}
