//! Classical join processing — the baselines NPRR §1/§6 compares against.
//!
//! * [`pairwise`] — the textbook binary join algorithms: hash join (via the
//!   storage layer), **sort-merge join**, and **block nested-loop join**,
//!   each implemented independently so they can cross-check each other;
//! * [`plan`] — binary join-plan trees (with optional projections — the
//!   "join-project plans" of §6) and an instrumented executor reporting
//!   the maximum intermediate cardinality, the quantity §6's lower bounds
//!   constrain;
//! * [`optimizer`] — a System-R-style enumerator: exhaustive left-deep
//!   search under independence-assumption cardinality estimates for small
//!   queries, greedy otherwise, plus an *oracle* mode that executes every
//!   left-deep order and reports the best **actual** max-intermediate (used
//!   by experiment E7 to show that even the best possible binary plan pays
//!   `Ω(N²/n²)` on Lemma 6.1 instances).

pub mod optimizer;
pub mod pairwise;
pub mod plan;

pub use optimizer::{best_actual_left_deep, estimate_join_size, optimize_left_deep};
pub use plan::{execute, execute_left_deep, ExecStats, JoinPlan};
