//! Satellite bug sweep: the text front-end's parsers must return typed
//! errors — never panic, never loop — on arbitrary malformed input.
//!
//! Strategy: generate structurally valid queries from an integer seed
//! (the proptest shim has no string strategies), then mutate them by
//! truncation and byte surgery. Every outcome must be `Ok` or
//! `QueryTextError::Parse` with an in-bounds offset, and parsing must be
//! deterministic.

use proptest::prelude::*;
use wcoj_query::{parse_program, parse_query, QueryTextError};

const VARS: &[&str] = &["x", "y", "z", "w_1", "Longer"];
// A duplicate name on purpose: repeated relations in a body are legal
// syntax (self-joins) and must parse.
const RELS: &[&str] = &["R", "S", "edge_list", "R"];

/// A structurally valid query drawn deterministically from `seed`.
fn valid_query(seed: u64) -> String {
    let mut s = seed | 1;
    let mut next = move |m: usize| -> usize {
        s = s
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((s >> 33) as usize) % m
    };
    let mut q = String::new();
    q.push_str(RELS[next(RELS.len())]);
    q.push('(');
    let head_vars: Vec<&str> = (0..next(3)).map(|_| VARS[next(VARS.len())]).collect();
    q.push_str(&head_vars.join(", "));
    q.push_str(") :- ");
    let n_atoms = 1 + next(3);
    for a in 0..n_atoms {
        if a > 0 {
            q.push_str(", ");
        }
        q.push_str(RELS[next(RELS.len())]);
        q.push('(');
        let n_terms = next(4);
        for t in 0..n_terms {
            if t > 0 {
                q.push(',');
            }
            match next(3) {
                0 => q.push_str(VARS[next(VARS.len())]),
                1 => q.push_str(&next(1000).to_string()),
                // String constants deliberately contain the program
                // separators '.', '#', '%' — they are data.
                _ => q.push_str(&format!("\"s{}.#%{}\"", next(10), next(10))),
            }
        }
        q.push(')');
    }
    if next(2) == 0 {
        q.push('.');
    }
    q
}

/// The invariant under fuzzing: both parsers either succeed or fail with
/// a `Parse` error whose offset is in bounds — and do so deterministically.
fn assert_total(src: &str) {
    match parse_query(src) {
        Ok(_) => {}
        Err(QueryTextError::Parse { at, .. }) => {
            prop_assert!(at <= src.len(), "offset {at} out of bounds in {src:?}");
        }
        Err(other) => panic!("parse_query: non-Parse error {other:?} on {src:?}"),
    }
    prop_assert_eq!(
        parse_query(src),
        parse_query(src),
        "non-deterministic parse"
    );
    match parse_program(src) {
        Ok(_) => {}
        Err(QueryTextError::Parse { at, .. }) => {
            prop_assert!(at <= src.len(), "offset {at} out of bounds in {src:?}");
        }
        Err(other) => panic!("parse_program: non-Parse error {other:?} on {src:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn generated_valid_queries_parse(seed in 0..u64::MAX) {
        let q = valid_query(seed);
        let parsed = parse_query(&q);
        prop_assert!(parsed.is_ok(), "{q}: {parsed:?}");
        // A single valid statement is also a valid one-rule program.
        prop_assert!(parse_program(&q).is_ok(), "{q}");
    }

    #[test]
    fn truncated_queries_never_panic(seed in 0..u64::MAX, cut in 0..512usize) {
        let q = valid_query(seed);
        let cut = cut % (q.len() + 1);
        // Byte-level truncation may split a UTF-8 pair; lossy-decode like
        // a server reading a partial request body would.
        let prefix = String::from_utf8_lossy(&q.as_bytes()[..cut]).into_owned();
        assert_total(&prefix);
    }

    #[test]
    fn byte_mutations_never_panic(seed in 0..u64::MAX, pos in 0..512usize, b in any::<u8>()) {
        let q = valid_query(seed);
        let mut bytes = q.into_bytes();
        let pos = pos % bytes.len();
        if b.is_multiple_of(2) {
            bytes[pos] = b;
        } else {
            bytes.insert(pos, b);
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        assert_total(&mutated);
    }
}

#[test]
fn malformed_inputs_yield_typed_parse_errors() {
    // The satellite's named edge cases, pinned explicitly: empty atom
    // bodies are *legal*; stray commas, unterminated argument lists and
    // string literals, and missing pieces all fail with `Parse`.
    parse_query("Q() :- R()").unwrap();
    parse_query("Q(x) :- R(x, y), R(y, x)").unwrap(); // duplicate relation
    for bad in [
        "",
        ":-",
        "Q(x) :-",
        "Q( :- R(x)",
        "Q(x,) :- R(x)",
        "Q(x) :- ,R(x)",
        "Q(x) :- R(,x)",
        "Q(x) :- R(x,)",
        "Q(x) :- R(x",
        "Q(x) :- R(x))",
        "Q(x) :- R(x),",
        "Q(x) :- R(\"abc",
        "Q(x) :- R(x) R(y)",
        "Q(x) : - R(x)",
        "Q(x) :- R(x, 99999999999999999999999)",
    ] {
        let e = parse_query(bad).unwrap_err();
        assert!(
            matches!(e, QueryTextError::Parse { .. }),
            "{bad:?} gave {e:?}"
        );
    }
}
