//! Ingest stress: writer threads append/delete rows and a compactor
//! folds delta buffers into fresh bases while reader threads submit
//! queries through the shared service pool. Every reader pins a
//! copy-on-write [`Snapshot`] at admission and asserts its streamed
//! result is bit-identical — rows *and* order — to a sequential
//! execution over that same snapshot, and (periodically) to an
//! independent run over the snapshot's *materialized* relations, which
//! exercises the base+delta merge through a different code path than
//! the `DeltaIndex` views the streamed plan reads.
//!
//! Sized for release (`cargo test --release --test ingest_stress`);
//! debug builds run a shrunk schedule so tier-1 stays quick.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;
use wcoj_query::{execute, parse_query, submit_query, Catalog, ParsedQuery};
use wcoj_service::{Service, ServiceConfig};
use wcoj_storage::{Relation, Schema, Value};

const DOMAIN: u64 = 40;
const BASE_ROWS: usize = 300;

const WRITER_BATCHES: usize = if cfg!(debug_assertions) { 40 } else { 160 };
const READER_QUERIES: usize = if cfg!(debug_assertions) { 12 } else { 48 };

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

fn random_rows(seed: &mut u64, n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|_| vec![Value(lcg(seed) % DOMAIN), Value(lcg(seed) % DOMAIN)])
        .collect()
}

fn seeded_catalog(service: &Arc<Service>) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.set_service(Some(Arc::clone(service)));
    // Low threshold so auto-compaction also races the readers, on top
    // of the explicit compactor thread.
    catalog.set_compact_threshold(64);
    let mut seed = 0x5EED_0001u64;
    for name in ["R", "S", "T"] {
        let rel = Relation::from_rows(Schema::of(&[0, 1]), random_rows(&mut seed, BASE_ROWS))
            .expect("seed relation");
        catalog.insert(name, rel);
    }
    catalog
}

fn rows_of(rel: &Relation) -> Vec<Vec<Value>> {
    rel.iter_rows().map(<[Value]>::to_vec).collect()
}

/// Streams `q` through the service against the pinned snapshot and
/// checks bit-identity against sequential execution over it.
fn check_one(q: &ParsedQuery, snapshot: &wcoj_query::Snapshot, cross_check: bool) {
    let mut pending = submit_query(q, snapshot.catalog()).expect("submit");
    let mut streamed: Vec<Vec<Value>> = Vec::new();
    while let Some(batch) = pending.next_batch() {
        streamed.extend(rows_of(&batch.expect("stream batch")));
    }
    let seq = execute(q, snapshot.catalog()).expect("sequential run");
    assert_eq!(
        streamed,
        rows_of(&seq.relation),
        "streamed rows/order diverged from the sequential join over the pinned snapshot"
    );

    if cross_check {
        // Independent path: materialize the snapshot's relations (merge
        // at `get`, not `DeltaIndex` views) into a service-less catalog.
        let mut plain = Catalog::new();
        for name in ["R", "S", "T"] {
            let rel = snapshot.catalog().get(name).expect("snapshot relation");
            plain.insert(name, rel);
        }
        let independent = execute(q, &plain).expect("materialized run");
        assert_eq!(
            rows_of(&seq.relation),
            rows_of(&independent.relation),
            "delta-view execution diverged from materialized relations"
        );
    }
}

#[test]
fn concurrent_ingest_never_touches_pinned_snapshots() {
    let service = Arc::new(Service::new(ServiceConfig::with_workers(2)));
    let catalog = Arc::new(RwLock::new(seeded_catalog(&service)));
    let stop = Arc::new(AtomicBool::new(false));
    let compactions = Arc::new(AtomicUsize::new(0));

    // Two writers: interleaved appends and deletes across all three
    // relations, batched so delta buffers grow and shrink.
    let writers: Vec<_> = (0..2u64)
        .map(|w| {
            let catalog = Arc::clone(&catalog);
            std::thread::spawn(move || {
                let mut seed = 0xBEEF ^ (w << 17);
                for i in 0..WRITER_BATCHES {
                    let name = ["R", "S", "T"][(lcg(&mut seed) % 3) as usize];
                    let rows = random_rows(&mut seed, 8);
                    let mut cat = catalog.write().expect("catalog lock");
                    let changed = if i % 3 == 2 {
                        cat.delete_rows(name, &rows)
                    } else {
                        cat.insert_rows(name, &rows)
                    };
                    changed
                        .expect("mutation")
                        .expect("relation stays registered");
                    drop(cat);
                    if i % 8 == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        })
        .collect();

    // A compactor folding deltas into fresh bases while queries run.
    let compactor = {
        let catalog = Arc::clone(&catalog);
        let stop = Arc::clone(&stop);
        let compactions = Arc::clone(&compactions);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                {
                    let mut cat = catalog.write().expect("catalog lock");
                    for name in ["R", "S", "T"] {
                        if cat.compact(name) {
                            compactions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    // Two readers alternating a triangle and a two-hop path, each query
    // checked against the snapshot it pinned at admission.
    let triangle = parse_query("t(a, b, c) :- R(a, b), S(b, c), T(c, a).").expect("triangle");
    let path = parse_query("p(a, c) :- R(a, b), S(b, c).").expect("path");
    let readers: Vec<_> = (0..2usize)
        .map(|r| {
            let catalog = Arc::clone(&catalog);
            let triangle = triangle.clone();
            let path = path.clone();
            std::thread::spawn(move || {
                for i in 0..READER_QUERIES {
                    let snapshot = { catalog.read().expect("catalog lock").freeze() };
                    let q = if (i + r) % 2 == 0 { &triangle } else { &path };
                    check_one(q, &snapshot, i % 4 == 0);
                }
            })
        })
        .collect();

    for t in readers {
        t.join().expect("reader thread");
    }
    for t in writers {
        t.join().expect("writer thread");
    }
    stop.store(true, Ordering::Relaxed);
    compactor.join().expect("compactor thread");

    // The schedule must actually have raced compactions with queries —
    // otherwise the test silently stops covering what it claims to.
    assert!(
        compactions.load(Ordering::Relaxed) > 0,
        "no compaction ever ran during the stress schedule"
    );

    // After the dust settles the live catalog still answers, and a
    // fresh snapshot equals the live state.
    let final_snapshot = { catalog.read().expect("catalog lock").freeze() };
    check_one(&triangle, &final_snapshot, true);
}
