//! Named relations plus the shared value dictionary.

use crate::plan_cache::{next_generation, PlanCache};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use wcoj_exec::ExecConfig;
use wcoj_obs::{Counter, Gauge};
use wcoj_service::Service;
use wcoj_storage::{Datum, DeltaRelation, Dictionary, Relation, StorageError, Value};

/// Default delta size (`|ins| + |del|`) at which a mutation triggers a
/// minor compaction of the touched relation.
const DEFAULT_COMPACT_THRESHOLD: usize = 1024;

struct Metrics {
    deltas: Arc<Counter>,
    compactions: Arc<Counter>,
    snapshot_age: Arc<Gauge>,
}

impl Metrics {
    fn get() -> &'static Metrics {
        static METRICS: OnceLock<Metrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let r = wcoj_obs::global();
            Metrics {
                deltas: r.counter(
                    "wcoj_catalog_deltas_total",
                    "Catalog row mutations (insert_rows / delete_rows calls that changed data)",
                ),
                compactions: r.counter(
                    "wcoj_catalog_compactions_total",
                    "Minor compactions folding delta buffers into a fresh base",
                ),
                snapshot_age: r.gauge(
                    "wcoj_catalog_snapshot_age_ms",
                    "Milliseconds since the most recently pinned catalog snapshot was frozen",
                ),
            }
        })
    }
}

/// One registered relation: the delta-aware store plus its version pair.
#[derive(Clone)]
struct Stored {
    delta: DeltaRelation,
    /// Changes on [`Catalog::insert`] (replace) and on every compaction —
    /// i.e. whenever the frozen base itself is a different object.
    base_gen: u64,
    /// `0` while the delta buffers are empty; otherwise the globally
    /// unique stamp of the latest row mutation.
    delta_ver: u64,
}

/// A catalog: named relations sharing one [`Dictionary`] so string values
/// compare consistently across relations, plus the catalog-level execution
/// configuration (sequential by default; opt in to the partition-parallel
/// engine with [`Catalog::set_parallel`], or route every query through a
/// process-wide shared worker pool with [`Catalog::set_service`]).
///
/// ## Mutation and versioning
///
/// Relations are stored as [`DeltaRelation`]s: a frozen, `Arc`-shared base
/// plus small sorted insert/delete buffers. [`Catalog::insert_rows`] and
/// [`Catalog::delete_rows`] mutate the buffers in place; once
/// `|ins| + |del|` passes the compaction threshold the buffers are folded
/// into a fresh base (shard-parallel through the attached [`Service`]'s
/// pool when one is set). Each relation carries two version stamps drawn
/// from one process-global sequence: `base_gen` (changes on replace and
/// compaction) and `delta_ver` (changes on every row mutation, `0` when
/// the buffers are empty). The plan cache keys prepared shapes on
/// `base_gen` and re-merges deltas on `delta_ver` drift, so an append
/// refreshes only the cheap delta side of a cached plan.
///
/// ## Snapshots
///
/// `Catalog` is `Clone`, and cloning is copy-on-write: the clone shares
/// the `Arc`'d bases and dictionary and copies only the small delta
/// buffers. [`Catalog::freeze`] wraps a clone in an [`Arc<Snapshot>`] —
/// an immutable view a query can pin for its whole lifetime while writers
/// keep mutating the live catalog.
#[derive(Clone)]
pub struct Catalog {
    dict: Arc<Dictionary>,
    relations: BTreeMap<String, Stored>,
    parallel: Option<ExecConfig>,
    service: Option<Arc<Service>>,
    plan_cache: PlanCache,
    compact_threshold: usize,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog (sequential execution).
    #[must_use]
    pub fn new() -> Catalog {
        Catalog {
            dict: Arc::new(Dictionary::new()),
            relations: BTreeMap::new(),
            parallel: None,
            service: None,
            plan_cache: PlanCache::new(),
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
        }
    }

    /// Opts every query executed against this catalog into the
    /// partition-parallel engine with `cfg` (`None` reverts to
    /// sequential). Applies to single queries and whole Datalog programs.
    pub fn set_parallel(&mut self, cfg: Option<ExecConfig>) {
        self.parallel = cfg;
    }

    /// The catalog-level parallel execution config, if any.
    #[must_use]
    pub fn parallel(&self) -> Option<&ExecConfig> {
        self.parallel.as_ref()
    }

    /// Routes every query executed against this catalog — text queries
    /// and whole Datalog programs alike — through `service`'s shared
    /// worker pool (`None` reverts). Takes precedence over
    /// [`Catalog::set_parallel`]: the service owns process-wide
    /// parallelism, the per-call engine would fight it for cores.
    pub fn set_service(&mut self, service: Option<Arc<Service>>) {
        self.service = service;
    }

    /// The shared query service this catalog routes through, if any.
    #[must_use]
    pub fn service(&self) -> Option<&Arc<Service>> {
        self.service.as_ref()
    }

    /// The shared dictionary (encode constants through this).
    #[must_use]
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// An owning handle on the shared dictionary — for decoding rows
    /// after the catalog borrow is released (e.g. while streaming a
    /// response without holding a catalog lock).
    #[must_use]
    pub fn dictionary_handle(&self) -> Arc<Dictionary> {
        Arc::clone(&self.dict)
    }

    /// Delta size (`|ins| + |del|`) past which a mutation compacts the
    /// relation. `usize::MAX` disables automatic compaction (explicit
    /// [`Catalog::compact`] still works); `0` compacts on every mutation.
    pub fn set_compact_threshold(&mut self, rows: usize) {
        self.compact_threshold = rows;
    }

    /// The current automatic-compaction threshold.
    #[must_use]
    pub fn compact_threshold(&self) -> usize {
        self.compact_threshold
    }

    /// Registers (or replaces) a relation under `name`. Every insert —
    /// including a replace — stamps the relation with a fresh globally
    /// unique base generation, invalidating any cached plan built over
    /// the previous contents (the stale plan's key can never recur).
    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations.insert(
            name.into(),
            Stored {
                delta: DeltaRelation::new(rel),
                base_gen: next_generation(),
                delta_ver: 0,
            },
        );
    }

    /// Appends rows to `name`'s delta buffers. Rows already present are
    /// skipped; returns how many actually appeared. A change bumps the
    /// relation's delta version (cached plan shapes survive; only their
    /// merged delta side is rebuilt) and may trigger a minor compaction.
    /// `Ok(None)` when no relation is registered under `name`.
    ///
    /// # Errors
    /// [`StorageError::ArityMismatch`] when a row's width disagrees with
    /// the schema.
    pub fn insert_rows(
        &mut self,
        name: &str,
        rows: &[Vec<Value>],
    ) -> Result<Option<usize>, StorageError> {
        self.mutate_rows(name, rows, true)
    }

    /// Deletes rows from `name` (tombstones in the delta buffers). Rows
    /// not present are skipped; returns how many actually disappeared.
    /// Versioning and compaction behave as in [`Catalog::insert_rows`].
    ///
    /// # Errors
    /// [`StorageError::ArityMismatch`] when a row's width disagrees with
    /// the schema.
    pub fn delete_rows(
        &mut self,
        name: &str,
        rows: &[Vec<Value>],
    ) -> Result<Option<usize>, StorageError> {
        self.mutate_rows(name, rows, false)
    }

    /// Shared body of `insert_rows`/`delete_rows`: `Ok(None)` when no
    /// relation is registered under `name`.
    fn mutate_rows(
        &mut self,
        name: &str,
        rows: &[Vec<Value>],
        insert: bool,
    ) -> Result<Option<usize>, StorageError> {
        let Some(stored) = self.relations.get_mut(name) else {
            return Ok(None);
        };
        let changed = if insert {
            stored.delta.insert_rows(rows)?
        } else {
            stored.delta.delete_rows(rows)?
        };
        if changed > 0 {
            stored.delta_ver = if stored.delta.delta_len() == 0 {
                // Mutations can cancel in place (delete-then-reinsert):
                // the view equals the bare base again, so fall back to
                // the base stamp and let cached plans hit directly.
                0
            } else {
                next_generation()
            };
            Metrics::get().deltas.inc();
        }
        if stored.delta.delta_len() >= self.compact_threshold {
            Self::compact_stored(stored, self.service.as_deref());
        }
        Ok(Some(changed))
    }

    /// Unregisters `name`. Returns `true` iff it was present. Cached
    /// plans over the removed relation age out of the LRU (their keys
    /// can only recur if a relation with the same base generation is
    /// re-registered, which the global stamp sequence rules out).
    pub fn remove(&mut self, name: &str) -> bool {
        self.relations.remove(name).is_some()
    }

    /// Folds `name`'s delta buffers into a fresh frozen base now,
    /// regardless of the threshold. Returns `false` when there is
    /// nothing to fold (or no such relation). Shard-parallel through
    /// the attached service's pool when one is set.
    pub fn compact(&mut self, name: &str) -> bool {
        let service = self.service.clone();
        let Some(stored) = self.relations.get_mut(name) else {
            return false;
        };
        Self::compact_stored(stored, service.as_deref())
    }

    fn compact_stored(stored: &mut Stored, service: Option<&Service>) -> bool {
        if stored.delta.delta_len() == 0 {
            return false;
        }
        let compacted = match service {
            Some(service) if service.workers() > 1 && stored.delta.arity() > 0 => {
                // Shard the merge across the shared pool: each chunk is an
                // independent sorted merge over a COW view of the store.
                let shards = service.workers() * 2;
                let view = Arc::new(stored.delta.clone());
                let plan = view.merge_plan(shards);
                let slots: Arc<Vec<Mutex<Option<Vec<Value>>>>> =
                    Arc::new(plan.iter().map(|_| Mutex::new(None)).collect());
                let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = plan
                    .into_iter()
                    .enumerate()
                    .map(|(i, chunk)| {
                        let view = Arc::clone(&view);
                        let slots = Arc::clone(&slots);
                        Box::new(move || {
                            let part = view.merge_chunk(chunk);
                            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(part);
                        }) as Box<dyn FnOnce() + Send + 'static>
                    })
                    .collect();
                service.run_tasks(tasks).wait();
                let parts: Option<Vec<Vec<Value>>> = slots
                    .iter()
                    .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).take())
                    .collect();
                match parts {
                    Some(parts) => {
                        stored.delta.apply_merged(parts);
                        true
                    }
                    // A pool task died (panicked before writing its
                    // slot): fall back to the sequential fold — the COW
                    // view kept the store itself untouched.
                    None => stored.delta.compact(),
                }
            }
            _ => stored.delta.compact(),
        };
        if compacted {
            stored.base_gen = next_generation();
            stored.delta_ver = 0;
            Metrics::get().compactions.inc();
        }
        compacted
    }

    /// Freezes the current contents into an immutable [`Snapshot`] a
    /// query can pin for its whole lifetime. Cheap copy-on-write: the
    /// snapshot shares the `Arc`'d frozen bases (and the dictionary and
    /// plan cache) and copies only the small delta buffers.
    #[must_use]
    pub fn freeze(&self) -> Arc<Snapshot> {
        Arc::new(Snapshot {
            catalog: self.clone(),
            frozen_at: Instant::now(),
        })
    }

    /// Looks up a relation, returning its merged view `(base ∖ del) ∪ ins`
    /// as an owned [`Relation`]. Cheap clone of the frozen base when the
    /// delta buffers are empty; a sorted merge otherwise.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Relation> {
        self.relations.get(name).map(|s| {
            if s.delta.delta_len() == 0 {
                s.delta.base().as_ref().clone()
            } else {
                s.delta.materialize()
            }
        })
    }

    /// The delta-aware store behind `name` — base handle plus buffers.
    #[must_use]
    pub fn delta(&self, name: &str) -> Option<&DeltaRelation> {
        self.relations.get(name).map(|s| &s.delta)
    }

    /// Number of rows in `name`'s merged view, without materializing it.
    #[must_use]
    pub fn row_count(&self, name: &str) -> Option<usize> {
        self.relations.get(name).map(|s| s.delta.len())
    }

    /// Arity of `name`'s schema, without materializing the view.
    #[must_use]
    pub fn arity(&self, name: &str) -> Option<usize> {
        self.relations.get(name).map(|s| s.delta.arity())
    }

    /// The generation stamp of `name`'s current *contents*: changes on
    /// every [`Catalog::insert`] (even replaces), on every row mutation
    /// that changes data, and on every compaction. Two equal stamps
    /// always denote bit-identical contents.
    #[must_use]
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.relations.get(name).map(|s| {
            if s.delta_ver != 0 {
                s.delta_ver
            } else {
                s.base_gen
            }
        })
    }

    /// The generation of `name`'s frozen base (changes on replace and
    /// compaction only — the plan cache keys prepared shapes on this).
    #[must_use]
    pub fn base_generation(&self, name: &str) -> Option<u64> {
        self.relations.get(name).map(|s| s.base_gen)
    }

    /// The stamp of `name`'s latest row mutation (`0` when the delta
    /// buffers are empty — the view equals the frozen base).
    #[must_use]
    pub fn delta_version(&self, name: &str) -> Option<u64> {
        self.relations.get(name).map(|s| s.delta_ver)
    }

    /// The prepared-plan cache shared by this catalog and its clones.
    #[must_use]
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// `(hits, misses)` of the shared plan cache — mirrored into the
    /// `wcoj-obs` registry as `wcoj_plan_cache_{hits,misses}_total`.
    #[must_use]
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.plan_cache.stats()
    }

    /// Registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Number of registered relations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// `true` iff no relations are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Decodes a value through the shared dictionary.
    #[must_use]
    pub fn decode(&self, v: wcoj_storage::Value) -> Option<Datum> {
        self.dict.decode(v)
    }
}

/// An immutable view of a catalog at one instant, pinned by queries for
/// snapshot isolation: a query admitted against a snapshot sees exactly
/// the rows that were live at [`Catalog::freeze`] time no matter how many
/// appends, deletes, or compactions land while it runs or streams.
pub struct Snapshot {
    catalog: Catalog,
    frozen_at: Instant,
}

impl Snapshot {
    /// The frozen catalog view. Queries read through it exactly like a
    /// live catalog (shared plan cache included); it just never mutates.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Milliseconds elapsed since this snapshot was frozen.
    #[must_use]
    pub fn age_ms(&self) -> u64 {
        u64::try_from(self.frozen_at.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Publishes this snapshot's current age to the
    /// `wcoj_catalog_snapshot_age_ms` gauge — call at query admission so
    /// the gauge tracks the staleness of the data queries actually pin.
    pub fn record_age(&self) {
        let age = i64::try_from(self.age_ms()).unwrap_or(i64::MAX);
        Metrics::get().snapshot_age.set(age);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::Schema;

    fn rows(rows: &[&[u32]]) -> Vec<Vec<Value>> {
        rows.iter()
            .map(|r| r.iter().map(|&v| Value(u64::from(v))).collect())
            .collect()
    }

    #[test]
    fn insert_get_names() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.insert(
            "R",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2]]),
        );
        c.insert("S", Relation::from_u32_rows(Schema::of(&[0]), &[&[1]]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.names(), vec!["R", "S"]);
        assert_eq!(c.get("R").unwrap().len(), 1);
        assert!(c.get("T").is_none());
    }

    #[test]
    fn shared_dictionary() {
        let c = Catalog::new();
        let v = c.dictionary().encode_str("bob");
        assert_eq!(c.decode(v), Some(Datum::str("bob")));
    }

    #[test]
    fn row_mutations_version_and_merge() {
        let mut c = Catalog::new();
        c.set_compact_threshold(usize::MAX);
        c.insert(
            "E",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[2, 3]]),
        );
        let g0 = c.generation("E").unwrap();
        assert_eq!(c.base_generation("E"), Some(g0));
        assert_eq!(c.delta_version("E"), Some(0));

        // Append: new generation, same base generation.
        assert_eq!(c.insert_rows("E", &rows(&[&[3, 4]])).unwrap(), Some(1));
        let g1 = c.generation("E").unwrap();
        assert!(g1 > g0);
        assert_eq!(c.base_generation("E"), Some(g0));
        assert_eq!(c.delta_version("E"), Some(g1));
        assert_eq!(c.row_count("E"), Some(3));
        let merged = c.get("E").unwrap();
        assert!(merged.contains_row(&[Value(3), Value(4)]));

        // Duplicate append changes nothing — generation holds.
        assert_eq!(c.insert_rows("E", &rows(&[&[3, 4]])).unwrap(), Some(0));
        assert_eq!(c.generation("E"), Some(g1));

        // Delete a base row.
        assert_eq!(c.delete_rows("E", &rows(&[&[1, 2]])).unwrap(), Some(1));
        let g2 = c.generation("E").unwrap();
        assert!(g2 > g1);
        assert_eq!(c.row_count("E"), Some(2));
        assert!(!c.get("E").unwrap().contains_row(&[Value(1), Value(2)]));

        // Unknown relation: Ok(None), not an error.
        assert_eq!(c.insert_rows("Q", &rows(&[&[1, 1]])).unwrap(), None);
        // Arity mismatch surfaces.
        assert!(c.insert_rows("E", &rows(&[&[1]])).is_err());
    }

    #[test]
    fn cancelling_mutations_restore_the_base_stamp() {
        let mut c = Catalog::new();
        c.set_compact_threshold(usize::MAX);
        c.insert(
            "R",
            Relation::from_u32_rows(Schema::of(&[0]), &[&[1], &[2]]),
        );
        let g0 = c.generation("R").unwrap();
        c.delete_rows("R", &rows(&[&[2]])).unwrap();
        assert_ne!(c.generation("R"), Some(g0));
        c.insert_rows("R", &rows(&[&[2]])).unwrap();
        // The tombstone cancelled in place: the view is the bare base
        // again, so the stamp falls back and cached plans hit.
        assert_eq!(c.delta_version("R"), Some(0));
        assert_eq!(c.generation("R"), Some(g0));
    }

    #[test]
    fn threshold_triggers_compaction_and_new_base() {
        let mut c = Catalog::new();
        c.set_compact_threshold(3);
        c.insert("R", Relation::from_u32_rows(Schema::of(&[0]), &[&[1]]));
        let base0 = c.base_generation("R").unwrap();
        c.insert_rows("R", &rows(&[&[2]])).unwrap();
        c.insert_rows("R", &rows(&[&[3]])).unwrap();
        assert_eq!(c.base_generation("R"), Some(base0), "below threshold");
        c.insert_rows("R", &rows(&[&[4]])).unwrap();
        let base1 = c.base_generation("R").unwrap();
        assert!(base1 > base0, "threshold reached: buffers folded");
        assert_eq!(c.delta_version("R"), Some(0));
        assert_eq!(c.delta("R").unwrap().delta_len(), 0);
        assert_eq!(c.row_count("R"), Some(4));
        // Explicit compaction with empty buffers is a no-op.
        assert!(!c.compact("R"));
    }

    #[test]
    fn freeze_is_a_cow_snapshot() {
        let mut c = Catalog::new();
        c.set_compact_threshold(usize::MAX);
        c.insert(
            "R",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2]]),
        );
        let snap = c.freeze();
        // The snapshot shares the frozen base allocation.
        assert!(Arc::ptr_eq(
            snap.catalog().delta("R").unwrap().base(),
            c.delta("R").unwrap().base(),
        ));
        // Writers keep mutating; the snapshot holds still.
        c.insert_rows("R", &rows(&[&[3, 4]])).unwrap();
        c.delete_rows("R", &rows(&[&[1, 2]])).unwrap();
        c.compact("R");
        assert_eq!(snap.catalog().row_count("R"), Some(1));
        assert!(snap
            .catalog()
            .get("R")
            .unwrap()
            .contains_row(&[Value(1), Value(2)]));
        assert_eq!(c.row_count("R"), Some(1));
        assert!(!c.get("R").unwrap().contains_row(&[Value(1), Value(2)]));
        snap.record_age(); // gauge write smoke-check
        let _ = snap.age_ms();
    }

    #[test]
    fn remove_unregisters() {
        let mut c = Catalog::new();
        c.insert("R", Relation::from_u32_rows(Schema::of(&[0]), &[&[1]]));
        assert!(c.remove("R"));
        assert!(!c.remove("R"));
        assert!(c.get("R").is_none());
        assert!(c.generation("R").is_none());
    }

    #[test]
    fn service_backed_compaction_matches_sequential() {
        use wcoj_service::{Service, ServiceConfig};
        let service = Arc::new(Service::new(ServiceConfig::with_workers(2)));
        let mut seq = Catalog::new();
        let mut par = Catalog::new();
        par.set_service(Some(Arc::clone(&service)));
        for c in [&mut seq, &mut par] {
            c.set_compact_threshold(usize::MAX);
            c.insert(
                "R",
                Relation::from_u32_rows(
                    Schema::of(&[0, 1]),
                    &(0..200u32)
                        .map(|i| [i, i + 1])
                        .collect::<Vec<_>>()
                        .iter()
                        .map(|r| &r[..])
                        .collect::<Vec<_>>(),
                ),
            );
            c.insert_rows("R", &rows(&[&[500, 1], &[600, 2]])).unwrap();
            c.delete_rows("R", &rows(&[&[0, 1], &[7, 8]])).unwrap();
            assert!(c.compact("R"));
        }
        assert_eq!(seq.get("R"), par.get("R"));
        assert_eq!(seq.delta("R").unwrap().delta_len(), 0);
        assert_eq!(par.delta("R").unwrap().delta_len(), 0);
    }
}
