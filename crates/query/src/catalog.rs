//! Named relations plus the shared value dictionary.

use crate::plan_cache::{next_generation, PlanCache};
use std::collections::BTreeMap;
use std::sync::Arc;
use wcoj_exec::ExecConfig;
use wcoj_service::Service;
use wcoj_storage::{Datum, Dictionary, Relation};

/// A catalog: named relations sharing one [`Dictionary`] so string values
/// compare consistently across relations, plus the catalog-level execution
/// configuration (sequential by default; opt in to the partition-parallel
/// engine with [`Catalog::set_parallel`], or route every query through a
/// process-wide shared worker pool with [`Catalog::set_service`]).
///
/// Catalog queries run through a shared [`PlanCache`]: the prepared query
/// (cover LP, total order, flat indexes) is built once per query shape
/// over the current relation contents and reused across submissions.
/// Every [`Catalog::insert`] stamps the relation with a globally unique
/// *generation* that is part of each cache key, so replacing a relation
/// invalidates every cached plan that mentioned it — a cached
/// `PreparedQuery` over stale data can never be served.
#[derive(Clone)]
pub struct Catalog {
    dict: Arc<Dictionary>,
    relations: BTreeMap<String, (Relation, u64)>,
    parallel: Option<ExecConfig>,
    service: Option<Arc<Service>>,
    plan_cache: PlanCache,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog (sequential execution).
    #[must_use]
    pub fn new() -> Catalog {
        Catalog {
            dict: Arc::new(Dictionary::new()),
            relations: BTreeMap::new(),
            parallel: None,
            service: None,
            plan_cache: PlanCache::new(),
        }
    }

    /// Opts every query executed against this catalog into the
    /// partition-parallel engine with `cfg` (`None` reverts to
    /// sequential). Applies to single queries and whole Datalog programs.
    pub fn set_parallel(&mut self, cfg: Option<ExecConfig>) {
        self.parallel = cfg;
    }

    /// The catalog-level parallel execution config, if any.
    #[must_use]
    pub fn parallel(&self) -> Option<&ExecConfig> {
        self.parallel.as_ref()
    }

    /// Routes every query executed against this catalog — text queries
    /// and whole Datalog programs alike — through `service`'s shared
    /// worker pool (`None` reverts). Takes precedence over
    /// [`Catalog::set_parallel`]: the service owns process-wide
    /// parallelism, the per-call engine would fight it for cores.
    pub fn set_service(&mut self, service: Option<Arc<Service>>) {
        self.service = service;
    }

    /// The shared query service this catalog routes through, if any.
    #[must_use]
    pub fn service(&self) -> Option<&Arc<Service>> {
        self.service.as_ref()
    }

    /// The shared dictionary (encode constants through this).
    #[must_use]
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// An owning handle on the shared dictionary — for decoding rows
    /// after the catalog borrow is released (e.g. while streaming a
    /// response without holding a catalog lock).
    #[must_use]
    pub fn dictionary_handle(&self) -> Arc<Dictionary> {
        Arc::clone(&self.dict)
    }

    /// Registers (or replaces) a relation under `name`. Every insert —
    /// including a replace — stamps the relation with a fresh globally
    /// unique generation, invalidating any cached plan built over the
    /// previous contents (the stale plan's key can never recur).
    pub fn insert(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations.insert(name.into(), (rel, next_generation()));
    }

    /// Looks up a relation.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name).map(|(rel, _)| rel)
    }

    /// The generation stamp of `name`'s current contents (changes on
    /// every [`Catalog::insert`], even replaces).
    #[must_use]
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.relations.get(name).map(|&(_, g)| g)
    }

    /// The prepared-plan cache shared by this catalog and its clones.
    #[must_use]
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// `(hits, misses)` of the shared plan cache — mirrored into the
    /// `wcoj-obs` registry as `wcoj_plan_cache_{hits,misses}_total`.
    #[must_use]
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.plan_cache.stats()
    }

    /// Registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Number of registered relations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// `true` iff no relations are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Decodes a value through the shared dictionary.
    #[must_use]
    pub fn decode(&self, v: wcoj_storage::Value) -> Option<Datum> {
        self.dict.decode(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::Schema;

    #[test]
    fn insert_get_names() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.insert(
            "R",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2]]),
        );
        c.insert("S", Relation::from_u32_rows(Schema::of(&[0]), &[&[1]]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.names(), vec!["R", "S"]);
        assert_eq!(c.get("R").unwrap().len(), 1);
        assert!(c.get("T").is_none());
    }

    #[test]
    fn shared_dictionary() {
        let c = Catalog::new();
        let v = c.dictionary().encode_str("bob");
        assert_eq!(c.decode(v), Some(Datum::str("bob")));
    }
}
