//! Minimal CSV ingestion: comma-separated, no quoting of commas, integer
//! columns encoded inline, anything else interned through the dictionary.

use wcoj_storage::{Datum, Dictionary, Relation, Schema, StorageError, Value};

/// Parses CSV text into a relation over attributes `0..arity` (arity is
/// taken from the first non-empty line). Fields parsing as `u64` become
/// integer data; everything else is interned as a string.
///
/// # Errors
/// [`StorageError::ArityMismatch`] if a later line has a different number
/// of fields.
pub fn load_csv(content: &str, dict: &Dictionary) -> Result<Relation, StorageError> {
    let text = content;
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut arity: Option<usize> = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        match arity {
            None => arity = Some(fields.len()),
            Some(k) if k != fields.len() => {
                return Err(StorageError::ArityMismatch {
                    expected: k,
                    got: fields.len(),
                });
            }
            _ => {}
        }
        let row: Vec<Value> = fields
            .iter()
            .map(|f| match f.parse::<u64>() {
                Ok(v) if v < (1 << 63) => dict.encode(&Datum::Int(v)),
                _ => dict.encode_str(f),
            })
            .collect();
        rows.push(row);
    }
    let k = arity.unwrap_or(0);
    let schema = Schema::new((0..k as u32).map(wcoj_storage::Attr).collect())
        .expect("sequential attrs distinct");
    Relation::from_rows(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_and_strings() {
        let d = Dictionary::new();
        let r = load_csv("1,alice\n2,bob\n3,alice\n", &d).unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 3);
        let alice = d.encode_str("alice");
        assert!(r.contains_row(&[Value(1), alice]));
    }

    #[test]
    fn blank_lines_and_spacing() {
        let d = Dictionary::new();
        let r = load_csv("\n 1 , 2 \n\n3,4\n", &d).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains_row(&[Value(1), Value(2)]));
    }

    #[test]
    fn ragged_rows_rejected() {
        let d = Dictionary::new();
        assert!(matches!(
            load_csv("1,2\n3\n", &d),
            Err(StorageError::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn duplicates_collapse() {
        let d = Dictionary::new();
        let r = load_csv("1,2\n1,2\n", &d).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn empty_input() {
        let d = Dictionary::new();
        let r = load_csv("", &d).unwrap();
        assert_eq!(r.arity(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn oversized_integers_become_strings() {
        let d = Dictionary::new();
        let big = u64::MAX.to_string();
        let r = load_csv(&format!("{big}\n"), &d).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(d.len(), 1, "interned as a string");
    }
}
