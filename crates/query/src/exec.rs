//! Binding a parsed query against a catalog and evaluating it.

use crate::parser::{ParsedQuery, ParsedTerm};
use crate::{Catalog, QueryTextError};
use std::fmt::Write as _;
use std::sync::Arc;
use wcoj_core::fullcq::{Subgoal, Term};
use wcoj_core::nprr::PreparedQuery;
use wcoj_storage::ops::project;
use wcoj_storage::{Attr, Datum, FlatIndex, Relation};

/// Result of executing a text query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output tuples, one column per head variable (in head order).
    pub relation: Relation,
    /// Head variable names, aligned with the relation's columns.
    pub columns: Vec<String>,
}

impl QueryResult {
    /// Decodes all rows through the catalog dictionary for display.
    #[must_use]
    pub fn decoded_rows(&self, catalog: &Catalog) -> Vec<Vec<Datum>> {
        self.relation
            .iter_rows()
            .map(|row| {
                row.iter()
                    .map(|&v| catalog.decode(v).unwrap_or(Datum::Int(v.0)))
                    .collect()
            })
            .collect()
    }
}

/// Executes a parsed query against a catalog: §7.3 reduction per atom,
/// worst-case-optimal join, projection onto the head.
///
/// # Errors
/// Binding errors ([`QueryTextError::UnknownRelation`] /
/// [`QueryTextError::ArityMismatch`] /
/// [`QueryTextError::UnboundHeadVariable`]) or evaluation failures.
pub fn execute(q: &ParsedQuery, catalog: &Catalog) -> Result<QueryResult, QueryTextError> {
    execute_profiled(q, catalog).map(|(result, _)| result)
}

/// [`execute`] plus the scheduler's per-query execution profile. The
/// profile is `Some` exactly when the catalog routes through an attached
/// [`Service`](wcoj_service::Service) — the sequential and per-call
/// parallel engines have no scheduler to profile.
///
/// # Errors
/// Same as [`execute`].
pub fn execute_profiled(
    q: &ParsedQuery,
    catalog: &Catalog,
) -> Result<(QueryResult, Option<wcoj_service::QueryProfile>), QueryTextError> {
    // Using the text front-end implies both engines are linked; make
    // Algorithm::NprrParallel dispatchable process-wide (idempotent).
    wcoj_exec::install();
    // Variable name → id (= attribute id), in first-occurrence order.
    let mut var_names: Vec<String> = Vec::new();
    let var_id = |name: &str, var_names: &mut Vec<String>| -> u32 {
        if let Some(i) = var_names.iter().position(|v| v == name) {
            i as u32
        } else {
            var_names.push(name.to_owned());
            (var_names.len() - 1) as u32
        }
    };

    // Canonical body shape + relation generations: the plan-cache key.
    // Variables are already normalised (first-occurrence ids), constants
    // are dictionary-encoded values, and the generation stamp changes on
    // every Catalog::insert — so equal keys imply an identical join over
    // identical data, and replaced relations can never serve stale plans.
    let mut cache_key = String::new();
    let mut subgoals = Vec::with_capacity(q.atoms.len());
    for atom in &q.atoms {
        let rel = catalog
            .get(&atom.relation)
            .ok_or_else(|| QueryTextError::UnknownRelation(atom.relation.clone()))?;
        if rel.arity() != atom.terms.len() {
            return Err(QueryTextError::ArityMismatch {
                relation: atom.relation.clone(),
                expected: rel.arity(),
                got: atom.terms.len(),
            });
        }
        let terms: Vec<Term> = atom
            .terms
            .iter()
            .map(|t| match t {
                ParsedTerm::Var(v) => Term::Var(var_id(v, &mut var_names)),
                ParsedTerm::Int(n) => Term::Const(catalog.dictionary().encode(&Datum::Int(*n))),
                ParsedTerm::Str(s) => Term::Const(catalog.dictionary().encode_str(s)),
            })
            .collect();
        let generation = catalog
            .generation(&atom.relation)
            .expect("relation present: get() succeeded above");
        let _ = write!(cache_key, "{}@{}(", atom.relation, generation);
        for (i, t) in terms.iter().enumerate() {
            if i > 0 {
                cache_key.push(',');
            }
            match t {
                Term::Var(v) => {
                    let _ = write!(cache_key, "?{v}");
                }
                Term::Const(c) => {
                    let _ = write!(cache_key, "={}", c.0);
                }
            }
        }
        cache_key.push_str(");");
        subgoals.push(Subgoal::new(rel.clone(), terms).expect("arity checked above"));
    }

    // Head variables must occur in the body.
    let head_ids: Vec<u32> = q
        .head_vars
        .iter()
        .map(|v| {
            var_names
                .iter()
                .position(|x| x == v)
                .map(|i| i as u32)
                .ok_or_else(|| QueryTextError::UnboundHeadVariable(v.clone()))
        })
        .collect::<Result<_, _>>()?;

    // §7.3 reduction + cover LP + flat-index construction happen at most
    // once per query shape over the current data: the prepared plan is
    // served from the catalog's shared cache on repeat submissions.
    let plan = catalog
        .plan_cache()
        .get_or_build(&cache_key, || {
            let reduced = wcoj_core::fullcq::reduce_all(&subgoals)?;
            Ok(Arc::new(PreparedQuery::<FlatIndex>::new_indexed(&reduced)?))
        })
        .map_err(|e| QueryTextError::Eval(e.to_string()))?;

    // The worst-case-optimal join over the cached plan — scheduled on the
    // shared-pool service when one is attached, on the per-call
    // partition-parallel engine when the catalog opted in, sequentially
    // otherwise.
    let mut profile = None;
    let full = if let Some(service) = catalog.service() {
        let (out, query_profile) = service
            .submit(&plan, &service.exec_config())
            .map_err(wcoj_core::QueryError::from)
            .and_then(wcoj_service::QueryHandle::wait_profiled)
            .map_err(|e| match e {
                // Admission-control shed: surface the typed 429 so the
                // front end can distinguish "retry later" from a real
                // evaluation failure (applies to text queries and Datalog
                // program rules alike — both route through here).
                wcoj_core::QueryError::Overloaded => QueryTextError::Overloaded,
                e => QueryTextError::Eval(e.to_string()),
            })?;
        profile = Some(query_profile);
        out.relation
    } else if let Some(cfg) = catalog.parallel() {
        wcoj_exec::par_join_prepared(&plan, None, cfg)
            .map_err(|e| QueryTextError::Eval(e.to_string()))?
            .relation
    } else {
        plan.evaluate(None)
            .map_err(|e| QueryTextError::Eval(e.to_string()))?
            .relation
    };

    // Project onto the head (identity for full queries).
    let head_attrs: Vec<Attr> = head_ids.iter().map(|&v| Attr(v)).collect();
    let relation = if full.schema().attrs() == head_attrs.as_slice() {
        full
    } else {
        project(&full, &head_attrs).map_err(|e| QueryTextError::Eval(e.to_string()))?
    };
    Ok((
        QueryResult {
            relation,
            columns: q.head_vars.clone(),
        },
        profile,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{load_csv, parse_query};
    use wcoj_storage::{Schema, Value};

    fn catalog_with_triangle() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            "R",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[1, 3]]),
        );
        c.insert(
            "S",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[2, 4], &[3, 4]]),
        );
        c.insert(
            "T",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 4]]),
        );
        c
    }

    #[test]
    fn end_to_end_triangle() {
        let c = catalog_with_triangle();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.columns, vec!["x", "y", "z"]);
        assert_eq!(out.relation.len(), 2);
        assert!(out.relation.contains_row(&[Value(1), Value(2), Value(4)]));
    }

    #[test]
    fn projection_head() {
        let c = catalog_with_triangle();
        let q = parse_query("Ans(x) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.relation.len(), 1);
        assert!(out.relation.contains_row(&[Value(1)]));
    }

    #[test]
    fn reordered_head() {
        let c = catalog_with_triangle();
        let q = parse_query("Ans(z, x) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.columns, vec!["z", "x"]);
        assert!(out.relation.contains_row(&[Value(4), Value(1)]));
    }

    #[test]
    fn constants_in_query() {
        let c = catalog_with_triangle();
        let q = parse_query("Ans(y) :- R(1, y)").unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.relation.len(), 2); // y ∈ {2, 3}
    }

    #[test]
    fn binding_errors() {
        let c = catalog_with_triangle();
        let q = parse_query("Ans(x) :- Nope(x)").unwrap();
        assert!(matches!(
            execute(&q, &c),
            Err(QueryTextError::UnknownRelation(_))
        ));
        let q = parse_query("Ans(x) :- R(x)").unwrap();
        assert!(matches!(
            execute(&q, &c),
            Err(QueryTextError::ArityMismatch { .. })
        ));
        let q = parse_query("Ans(w) :- R(x, y)").unwrap();
        assert!(matches!(
            execute(&q, &c),
            Err(QueryTextError::UnboundHeadVariable(_))
        ));
    }

    #[test]
    fn csv_to_query_pipeline() {
        let mut c = Catalog::new();
        let edges = load_csv("alice,bob\nbob,carol\nalice,carol\n", c.dictionary()).unwrap();
        c.insert("E", edges);
        let q = parse_query("Tri(x, y, z) :- E(x, y), E(y, z), E(x, z).").unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.relation.len(), 1);
        let decoded = out.decoded_rows(&c);
        assert_eq!(
            decoded[0],
            vec![Datum::str("alice"), Datum::str("bob"), Datum::str("carol")]
        );
    }

    #[test]
    fn parallel_catalog_matches_sequential() {
        let mut c = catalog_with_triangle();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let seq = execute(&q, &c).unwrap();
        for threads in [1, 2, 4, 8] {
            c.set_parallel(Some(wcoj_exec::ExecConfig {
                threads,
                shard_min_size: 1,
                ..wcoj_exec::ExecConfig::default()
            }));
            let par = execute(&q, &c).unwrap();
            assert_eq!(par.relation, seq.relation, "{threads} threads");
            assert_eq!(par.columns, seq.columns);
        }
        c.set_parallel(None);
        assert_eq!(execute(&q, &c).unwrap().relation, seq.relation);
    }

    #[test]
    fn service_catalog_matches_sequential_and_wins_over_parallel() {
        use std::sync::Arc;
        use wcoj_service::{Service, ServiceConfig};
        let mut c = catalog_with_triangle();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let seq = execute(&q, &c).unwrap();
        let service = Arc::new(Service::new(ServiceConfig::with_workers(3)));
        // service set alongside parallel: the service takes precedence
        c.set_parallel(Some(wcoj_exec::ExecConfig::with_threads(2)));
        c.set_service(Some(Arc::clone(&service)));
        for _ in 0..4 {
            let out = execute(&q, &c).unwrap();
            assert_eq!(out.relation, seq.relation);
            assert_eq!(out.columns, seq.columns);
        }
        assert_eq!(service.submitted(), 4, "all queries routed to the pool");
        c.set_service(None);
        c.set_parallel(None);
        assert_eq!(execute(&q, &c).unwrap().relation, seq.relation);
    }

    #[test]
    fn hot_key_workload_through_catalog_routes() {
        // A single-hot-key workload through both catalog routes: the
        // per-call parallel engine and the shared service pool. The
        // intra-value sub-shard planner sits under both; outputs must be
        // bit-identical to the sequential run, and WCOJ_HEAVY_SPLIT-style
        // factor overrides (via ExecConfig) must not change them.
        use std::sync::Arc;
        use wcoj_service::{Service, ServiceConfig};
        let rels = wcoj_datagen::hot_key_triangle(17, 64, 4);
        let mut c = Catalog::new();
        for (name, rel) in ["R", "S", "T"].iter().zip(rels) {
            c.insert(*name, rel);
        }
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let seq = execute(&q, &c).unwrap();
        for factor in [0usize, 1, 8] {
            c.set_parallel(Some(wcoj_exec::ExecConfig {
                threads: 4,
                shard_min_size: 1,
                heavy_split_factor: factor,
                ..wcoj_exec::ExecConfig::default()
            }));
            let par = execute(&q, &c).unwrap();
            assert_eq!(par.relation, seq.relation, "parallel, factor {factor}");
        }
        c.set_parallel(None);
        let service = Arc::new(Service::new(ServiceConfig::with_workers(4)));
        c.set_service(Some(Arc::clone(&service)));
        let pooled = execute(&q, &c).unwrap();
        assert_eq!(pooled.relation, seq.relation, "service route");
        assert_eq!(service.submitted(), 1);
    }

    #[test]
    fn profiled_execution_through_catalog_routes() {
        use std::sync::Arc;
        use wcoj_service::{Service, ServiceConfig};
        let mut c = catalog_with_triangle();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();

        // No service attached: same result, no profile to report.
        let (seq, profile) = super::execute_profiled(&q, &c).unwrap();
        assert!(profile.is_none(), "no scheduler, no profile");

        // Service route: the profile arrives complete, covers every
        // scheduled shard, and its row total matches the *pre-projection*
        // join — which for this full query is the output itself.
        let service = Arc::new(Service::new(ServiceConfig::with_workers(2)));
        c.set_service(Some(Arc::clone(&service)));
        let (out, profile) = super::execute_profiled(&q, &c).unwrap();
        assert_eq!(out.relation, seq.relation);
        let profile = profile.expect("service route reports a profile");
        assert!(profile.is_complete());
        assert!(profile.reassembled.is_some());
        assert_eq!(profile.total_rows(), out.relation.len() as u64);
        // execute() is the same path minus the profile.
        assert_eq!(execute(&q, &c).unwrap().relation, seq.relation);
        assert_eq!(service.submitted(), 2);
    }

    #[test]
    fn overloaded_service_surfaces_typed_rejection() {
        // A catalog routed through a bounded 1-worker service whose two
        // admission slots are pinned by long-running 5-cycle queries:
        // executing a text query sheds with the typed Overloaded error
        // (not a panic, not a stringly Eval), and succeeds again once the
        // queue drains.
        use std::sync::Arc;
        let (service, blockers) = crate::test_support::overloaded_service(19);

        let mut c = catalog_with_triangle();
        c.set_service(Some(Arc::clone(&service)));
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        assert!(
            matches!(execute(&q, &c), Err(QueryTextError::Overloaded)),
            "full service queue → typed 429"
        );
        for b in blockers {
            b.wait().unwrap();
        }
        // queue drained: the same query is admitted and evaluates
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.relation.len(), 2);
    }

    #[test]
    fn repeated_submissions_hit_the_plan_cache() {
        let c = catalog_with_triangle();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let first = execute(&q, &c).unwrap();
        assert_eq!(c.plan_cache_stats(), (0, 1), "first submission builds");
        for round in 1..=3 {
            let again = execute(&q, &c).unwrap();
            assert_eq!(again.relation, first.relation);
            assert_eq!(
                c.plan_cache_stats(),
                (round, 1),
                "repeat submissions are served from the cache"
            );
        }
        // Alpha-equivalent shape (renamed variables, different head) maps
        // to the same canonical key — still a hit, projection differs.
        let renamed = parse_query("Out(c, a, b) :- R(a, b), S(b, c), T(a, c).").unwrap();
        let out = execute(&renamed, &c).unwrap();
        assert_eq!(c.plan_cache_stats(), (4, 1));
        assert_eq!(out.columns, vec!["c", "a", "b"]);
        assert_eq!(out.relation.len(), first.relation.len());
        assert!(out.relation.contains_row(&[Value(4), Value(1), Value(2)]));
        // A genuinely different shape (constant in place of a variable)
        // is a new key.
        let narrowed = parse_query("Ans(y) :- R(1, y)").unwrap();
        execute(&narrowed, &c).unwrap();
        assert_eq!(c.plan_cache_stats(), (4, 2));
    }

    #[test]
    fn replacing_a_relation_invalidates_cached_plans() {
        // Satellite bugfix pin: without generation stamps in the cache
        // key, the second query would be served the plan prepared over
        // R's *old* rows — a stale read.
        let mut c = catalog_with_triangle();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let before = execute(&q, &c).unwrap();
        assert_eq!(before.relation.len(), 2);
        assert_eq!(c.plan_cache_stats(), (0, 1));

        // Replace R with a single edge that breaks one of the triangles.
        c.insert(
            "R",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2]]),
        );
        let after = execute(&q, &c).unwrap();
        assert_eq!(
            after.relation.len(),
            1,
            "query reflects the replaced relation, not the cached plan"
        );
        assert!(after.relation.contains_row(&[Value(1), Value(2), Value(4)]));
        assert_eq!(
            c.plan_cache_stats(),
            (0, 2),
            "no stale hits: the replace forced a rebuild"
        );

        // The new plan is itself cacheable.
        execute(&q, &c).unwrap();
        assert_eq!(c.plan_cache_stats(), (1, 2));
    }

    #[test]
    fn catalog_clones_share_one_plan_cache() {
        let c = catalog_with_triangle();
        let clone = c.clone();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        execute(&q, &c).unwrap();
        let out = execute(&q, &clone).unwrap();
        assert_eq!(out.relation.len(), 2);
        assert_eq!(c.plan_cache_stats(), (1, 1), "clone hit the shared entry");
        assert_eq!(clone.plan_cache_stats(), (1, 1));
    }

    #[test]
    fn string_constants_filter() {
        let mut c = Catalog::new();
        let r = load_csv("alice,1\nbob,2\n", c.dictionary()).unwrap();
        c.insert("R", r);
        let q = parse_query(r#"Ans(n) :- R("alice", n)"#).unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.relation.len(), 1);
        assert!(out.relation.contains_row(&[Value(1)]));
    }
}
