//! Binding a parsed query against a catalog and evaluating it.

use crate::parser::{ParsedQuery, ParsedTerm};
use crate::plan_cache::CachedPlan;
use crate::{Catalog, QueryTextError};
use std::fmt::Write as _;
use std::sync::Arc;
use wcoj_core::fullcq::{Subgoal, Term};
use wcoj_core::nprr::PreparedQuery;
use wcoj_core::JoinQuery;
use wcoj_storage::ops::project;
use wcoj_storage::{Attr, Datum, DeltaIndex, FlatIndex, Relation};

/// Result of executing a text query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output tuples, one column per head variable (in head order).
    pub relation: Relation,
    /// Head variable names, aligned with the relation's columns.
    pub columns: Vec<String>,
}

impl QueryResult {
    /// Decodes all rows through the catalog dictionary for display.
    #[must_use]
    pub fn decoded_rows(&self, catalog: &Catalog) -> Vec<Vec<Datum>> {
        self.relation
            .iter_rows()
            .map(|row| {
                row.iter()
                    .map(|&v| catalog.decode(v).unwrap_or(Datum::Int(v.0)))
                    .collect()
            })
            .collect()
    }
}

/// A parsed query bound against a catalog: the cached prepared plan plus
/// the head projection. Shared by the blocking ([`execute_profiled`]) and
/// streaming ([`submit_query`]) execution paths.
struct Bound {
    plan: crate::plan_cache::CachedPlan,
    head_attrs: Vec<Attr>,
    columns: Vec<String>,
}

impl Bound {
    /// `true` iff the head keeps every join variable in join-output
    /// order — projection is the identity.
    fn identity(&self) -> bool {
        self.plan.query().output_schema().attrs() == self.head_attrs.as_slice()
    }
}

/// Executes a parsed query against a catalog: §7.3 reduction per atom,
/// worst-case-optimal join, projection onto the head.
///
/// # Errors
/// Binding errors ([`QueryTextError::UnknownRelation`] /
/// [`QueryTextError::ArityMismatch`] /
/// [`QueryTextError::UnboundHeadVariable`]) or evaluation failures.
pub fn execute(q: &ParsedQuery, catalog: &Catalog) -> Result<QueryResult, QueryTextError> {
    execute_profiled(q, catalog).map(|(result, _)| result)
}

/// Name resolution + plan-cache lookup, shared by every execution path.
fn bind(q: &ParsedQuery, catalog: &Catalog) -> Result<Bound, QueryTextError> {
    // Using the text front-end implies both engines are linked; make
    // Algorithm::NprrParallel dispatchable process-wide (idempotent).
    wcoj_exec::install();
    // Variable name → id (= attribute id), in first-occurrence order.
    let mut var_names: Vec<String> = Vec::new();
    let var_id = |name: &str, var_names: &mut Vec<String>| -> u32 {
        if let Some(i) = var_names.iter().position(|v| v == name) {
            i as u32
        } else {
            var_names.push(name.to_owned());
            (var_names.len() - 1) as u32
        }
    };

    // Canonical body shape + relation *base* generations: the plan-cache
    // key. Variables are already normalised (first-occurrence ids),
    // constants are dictionary-encoded values, and the base generation
    // changes on every Catalog::insert (replace) and compaction — so
    // equal keys imply an identical prepared *shape* (reduced bases,
    // plan tree, frozen base indexes). Row mutations do not touch the
    // key: they drift the per-atom delta versions collected alongside,
    // which the cache checks to decide between serving the entry as-is
    // and re-merging only its delta side.
    let mut cache_key = String::new();
    let mut delta_vers = Vec::with_capacity(q.atoms.len());
    let mut atoms: Vec<(String, Vec<Term>)> = Vec::with_capacity(q.atoms.len());
    for atom in &q.atoms {
        let arity = catalog
            .arity(&atom.relation)
            .ok_or_else(|| QueryTextError::UnknownRelation(atom.relation.clone()))?;
        if arity != atom.terms.len() {
            return Err(QueryTextError::ArityMismatch {
                relation: atom.relation.clone(),
                expected: arity,
                got: atom.terms.len(),
            });
        }
        let terms: Vec<Term> = atom
            .terms
            .iter()
            .map(|t| match t {
                ParsedTerm::Var(v) => Term::Var(var_id(v, &mut var_names)),
                ParsedTerm::Int(n) => Term::Const(catalog.dictionary().encode(&Datum::Int(*n))),
                ParsedTerm::Str(s) => Term::Const(catalog.dictionary().encode_str(s)),
            })
            .collect();
        let base_gen = catalog
            .base_generation(&atom.relation)
            .expect("relation present: arity() succeeded above");
        delta_vers.push(
            catalog
                .delta_version(&atom.relation)
                .expect("relation present"),
        );
        let _ = write!(cache_key, "{}@{}(", atom.relation, base_gen);
        for (i, t) in terms.iter().enumerate() {
            if i > 0 {
                cache_key.push(',');
            }
            match t {
                Term::Var(v) => {
                    let _ = write!(cache_key, "?{v}");
                }
                Term::Const(c) => {
                    let _ = write!(cache_key, "={}", c.0);
                }
            }
        }
        cache_key.push_str(");");
        atoms.push((atom.relation.clone(), terms));
    }

    // Head variables must occur in the body.
    let head_ids: Vec<u32> = q
        .head_vars
        .iter()
        .map(|v| {
            var_names
                .iter()
                .position(|x| x == v)
                .map(|i| i as u32)
                .ok_or_else(|| QueryTextError::UnboundHeadVariable(v.clone()))
        })
        .collect::<Result<_, _>>()?;

    // §7.3 reduction + cover LP + base-index construction happen at most
    // once per query shape over the current *bases*: the prepared plan is
    // served from the catalog's shared cache on repeat submissions, and a
    // drift in delta versions re-merges only the small buffer side of the
    // cached shape (O(|delta|), not O(|base|)).
    let plan = catalog
        .plan_cache()
        .get_or_build_versioned(
            &cache_key,
            &delta_vers,
            || build_plan(catalog, &atoms, None),
            |old| build_plan(catalog, &atoms, Some(old)),
        )
        .map_err(|e| QueryTextError::Eval(e.to_string()))?;
    Ok(Bound {
        plan,
        head_attrs: head_ids.into_iter().map(Attr).collect(),
        columns: q.head_vars.clone(),
    })
}

/// Prepares the delta-merged plan for a bound body. Each atom's three
/// components — frozen base, insert buffer, delete buffer — are reduced
/// *separately* per §7.3. The reduction is injective on rows passing its
/// selection (every dropped column is a constant or a duplicate of a kept
/// one), so reducing componentwise preserves the delta invariants
/// (`del ⊆ base`, `ins ∩ base = ∅`) and the merged reduced view equals
/// the reduction of the merged view.
///
/// With `reuse` (a cached plan over the same base generations, stale only
/// in its deltas), the `Arc`-shared reduced-base `JoinQuery` and frozen
/// base `FlatIndex`es are taken from the old plan — the plan tree and
/// per-edge attribute orders are derived from the hypergraph alone, so
/// they are identical — and only the buffers are reduced and indexed.
fn build_plan(
    catalog: &Catalog,
    atoms: &[(String, Vec<Term>)],
    reuse: Option<&CachedPlan>,
) -> Result<CachedPlan, wcoj_core::QueryError> {
    let mut red_ins: Vec<Relation> = Vec::with_capacity(atoms.len());
    let mut red_del: Vec<Relation> = Vec::with_capacity(atoms.len());
    for (name, terms) in atoms {
        let delta = catalog.delta(name).expect("relation bound above");
        red_ins.push(
            Subgoal::new(delta.ins().clone(), terms.clone())
                .expect("arity checked above")
                .reduce(),
        );
        red_del.push(
            Subgoal::new(delta.del().clone(), terms.clone())
                .expect("arity checked above")
                .reduce(),
        );
    }
    let (query, bases): (Arc<JoinQuery>, Vec<Arc<FlatIndex>>) = match reuse {
        Some(old) => (
            Arc::clone(old.shared_query()),
            old.indexes()
                .iter()
                .map(|ix| Arc::clone(ix.base_index()))
                .collect(),
        ),
        None => {
            let red_base: Vec<Relation> = atoms
                .iter()
                .map(|(name, terms)| {
                    let delta = catalog.delta(name).expect("relation bound above");
                    Subgoal::new(delta.base().as_ref().clone(), terms.clone())
                        .expect("arity checked above")
                        .reduce()
                })
                .collect();
            (Arc::new(JoinQuery::new(&red_base)?), Vec::new())
        }
    };
    // Effective merged-view cardinalities: exact because the reduced
    // components keep the disjointness/containment invariants above.
    let sizes: Vec<usize> = query
        .relations()
        .iter()
        .zip(red_ins.iter().zip(&red_del))
        .map(|(base, (ins, del))| base.len() - del.len() + ins.len())
        .collect();
    let rels = Arc::clone(&query);
    let plan = PreparedQuery::<DeltaIndex>::from_shared(query, Some(sizes), |i, order| {
        let base = match bases.get(i) {
            Some(b) => Arc::clone(b),
            None => Arc::new(FlatIndex::build(&rels.relations()[i], order)?),
        };
        DeltaIndex::over(base, &red_ins[i], &red_del[i], order)
    })?;
    Ok(Arc::new(plan))
}

/// Maps an engine error onto the typed HTTP-facing variants.
fn map_engine_error(e: wcoj_core::QueryError) -> QueryTextError {
    match e {
        // Admission-control shed: surface the typed 429 so the front end
        // can distinguish "retry later" from a real evaluation failure
        // (applies to text queries and Datalog program rules alike — both
        // route through here).
        wcoj_core::QueryError::Overloaded => QueryTextError::Overloaded,
        e => QueryTextError::Eval(e.to_string()),
    }
}

/// [`execute`] plus the scheduler's per-query execution profile. The
/// profile is `Some` exactly when the catalog routes through an attached
/// [`Service`](wcoj_service::Service) — the sequential and per-call
/// parallel engines have no scheduler to profile.
///
/// # Errors
/// Same as [`execute`].
pub fn execute_profiled(
    q: &ParsedQuery,
    catalog: &Catalog,
) -> Result<(QueryResult, Option<wcoj_service::QueryProfile>), QueryTextError> {
    let bound = bind(q, catalog)?;

    // The worst-case-optimal join over the cached plan — scheduled on the
    // shared-pool service when one is attached, on the per-call
    // partition-parallel engine when the catalog opted in, sequentially
    // otherwise.
    let mut profile = None;
    let full = if let Some(service) = catalog.service() {
        let (out, query_profile) = service
            .submit(&bound.plan, &service.exec_config())
            .map_err(wcoj_core::QueryError::from)
            .and_then(wcoj_service::QueryHandle::wait_profiled)
            .map_err(map_engine_error)?;
        profile = Some(query_profile);
        out.relation
    } else if let Some(cfg) = catalog.parallel() {
        wcoj_exec::par_join_prepared(&bound.plan, None, cfg)
            .map_err(|e| QueryTextError::Eval(e.to_string()))?
            .relation
    } else {
        bound
            .plan
            .evaluate(None)
            .map_err(|e| QueryTextError::Eval(e.to_string()))?
            .relation
    };

    // Project onto the head (identity for full queries).
    let relation = if bound.identity() {
        full
    } else {
        project(&full, &bound.head_attrs).map_err(|e| QueryTextError::Eval(e.to_string()))?
    };
    Ok((
        QueryResult {
            relation,
            columns: bound.columns,
        },
        profile,
    ))
}

/// The future of a [`submit_query`] submission: yields the result in
/// per-slot batches as the shared pool settles them, instead of blocking
/// for the full relation. The streaming transport behind the HTTP
/// front end's chunked `/query/{id}/rows` endpoint.
///
/// Dropping a `PendingQuery` before draining it cancels the underlying
/// service query (workers skip its remaining shards) — a vanished
/// consumer cannot leak pool capacity.
pub struct PendingQuery {
    columns: Vec<String>,
    head_attrs: Vec<Attr>,
    /// The head projection is the identity (full query, join order).
    identity: bool,
    /// Batches can be pushed to the consumer as they arrive: projection
    /// is the identity AND slot batches concatenate in output order.
    /// Otherwise every batch is buffered and merged into one.
    incremental: bool,
    inner: PendingInner,
}

enum PendingInner {
    /// Live subscription on the shared pool.
    Stream(wcoj_service::RowStream),
    /// Resolved eagerly (no service attached, or degenerate input):
    /// one synthetic batch, already projected.
    Ready(Option<Relation>),
}

impl PendingQuery {
    /// Head variable names, aligned with every batch's columns.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// `true` iff batches stream incrementally: each one is a final,
    /// disjoint, correctly ordered piece of the result, so a front end
    /// can flush it to the client immediately. When `false`,
    /// [`next_batch`](PendingQuery::next_batch) yields the whole result
    /// as a single batch (the merge had to buffer anyway).
    #[must_use]
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// `true` iff every shard has already settled — no further
    /// [`next_batch`](PendingQuery::next_batch) call will block.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            PendingInner::Stream(stream) => stream.is_finished(),
            PendingInner::Ready(..) => true,
        }
    }

    /// Blocks until every shard has settled, without consuming batches.
    pub fn wait_settled(&self) {
        if let PendingInner::Stream(stream) = &self.inner {
            stream.wait_settled();
        }
    }

    /// Blocks until the next batch of result rows is available; `None`
    /// once the result is fully consumed. Batch columns follow
    /// [`columns`](PendingQuery::columns).
    ///
    /// # Errors
    /// Evaluation failures, surfaced on the batch they interrupt.
    ///
    /// # Panics
    /// If a pool worker panicked while running one of this query's
    /// shards (mirrors [`QueryHandle::wait`](wcoj_service::QueryHandle)).
    pub fn next_batch(&mut self) -> Option<Result<Relation, QueryTextError>> {
        match &mut self.inner {
            PendingInner::Ready(slot) => slot.take().map(Ok),
            PendingInner::Stream(stream) => {
                if self.incremental {
                    // identity projection + output-ordered slots: forward
                    // each slot relation untouched.
                    let batch = stream.next_batch()?;
                    Some(batch.map(|b| b.relation).map_err(map_engine_error))
                } else {
                    // Merge path: drain every slot, concatenate, one
                    // final sort+dedup, then project. Yields exactly one
                    // batch; subsequent calls find the stream drained.
                    let mut merged: Option<Relation> = None;
                    while let Some(batch) = stream.next_batch() {
                        let batch = match batch {
                            Ok(b) => b,
                            Err(e) => return Some(Err(map_engine_error(e))),
                        };
                        match &mut merged {
                            None => merged = Some(batch.relation),
                            Some(m) => {
                                for row in batch.relation.iter_rows() {
                                    if let Err(e) = m.push_row(row) {
                                        return Some(Err(QueryTextError::Eval(e.to_string())));
                                    }
                                }
                            }
                        }
                    }
                    let mut full = merged?;
                    full.sort_dedup();
                    let relation = if self.identity {
                        full
                    } else {
                        match project(&full, &self.head_attrs) {
                            Ok(r) => r,
                            Err(e) => return Some(Err(QueryTextError::Eval(e.to_string()))),
                        }
                    };
                    Some(Ok(relation))
                }
            }
        }
    }

    /// Drains every remaining batch into a single [`QueryResult`] —
    /// the convergence point with [`execute`]: for a freshly submitted
    /// query, `submit_query(q, c)?.collect()` equals `execute(q, c)`.
    ///
    /// # Errors
    /// Same as [`next_batch`](PendingQuery::next_batch).
    pub fn collect(mut self) -> Result<QueryResult, QueryTextError> {
        let mut merged: Option<Relation> = None;
        while let Some(batch) = self.next_batch() {
            let batch = batch?;
            match &mut merged {
                None => merged = Some(batch),
                Some(m) => {
                    for row in batch.iter_rows() {
                        m.push_row(row)
                            .map_err(|e| QueryTextError::Eval(e.to_string()))?;
                    }
                }
            }
        }
        let relation = merged.unwrap_or_else(|| {
            // Fully drained before collect: the empty relation over the
            // head schema (duplicate-free by UnboundHeadVariable + the
            // projection having succeeded on every earlier batch).
            Relation::empty(
                self.head_attrs
                    .iter()
                    .copied()
                    .collect::<wcoj_storage::Schema>(),
            )
        });
        Ok(QueryResult {
            relation,
            columns: self.columns.clone(),
        })
    }
}

/// Submits a parsed query for **streaming** execution: binds it against
/// the catalog (same plan cache as [`execute`]), schedules it on the
/// attached [`Service`](wcoj_service::Service) when there is one, and
/// returns a [`PendingQuery`] yielding the result in per-slot batches as
/// the pool settles them. Without a service the query is evaluated
/// eagerly (per-call parallel or sequential) and the pending query holds
/// one ready batch.
///
/// # Errors
/// Binding errors, [`QueryTextError::Overloaded`] when admission sheds
/// the submission, and eager-path evaluation failures.
pub fn submit_query(q: &ParsedQuery, catalog: &Catalog) -> Result<PendingQuery, QueryTextError> {
    let bound = bind(q, catalog)?;
    let identity = bound.identity();
    if let Some(service) = catalog.service() {
        let stream = service
            .submit(&bound.plan, &service.exec_config())
            .map_err(wcoj_core::QueryError::from)
            .map_err(map_engine_error)?
            .into_stream();
        return Ok(PendingQuery {
            columns: bound.columns,
            incremental: identity && stream.ordered(),
            identity,
            head_attrs: bound.head_attrs,
            inner: PendingInner::Stream(stream),
        });
    }
    let full = if let Some(cfg) = catalog.parallel() {
        wcoj_exec::par_join_prepared(&bound.plan, None, cfg)
            .map_err(|e| QueryTextError::Eval(e.to_string()))?
            .relation
    } else {
        bound
            .plan
            .evaluate(None)
            .map_err(|e| QueryTextError::Eval(e.to_string()))?
            .relation
    };
    let relation = if identity {
        full
    } else {
        project(&full, &bound.head_attrs).map_err(|e| QueryTextError::Eval(e.to_string()))?
    };
    Ok(PendingQuery {
        columns: bound.columns,
        head_attrs: bound.head_attrs,
        identity,
        incremental: true,
        inner: PendingInner::Ready(Some(relation)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{load_csv, parse_query};
    use wcoj_storage::{Schema, Value};

    fn catalog_with_triangle() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            "R",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[1, 3]]),
        );
        c.insert(
            "S",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[2, 4], &[3, 4]]),
        );
        c.insert(
            "T",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 4]]),
        );
        c
    }

    #[test]
    fn end_to_end_triangle() {
        let c = catalog_with_triangle();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.columns, vec!["x", "y", "z"]);
        assert_eq!(out.relation.len(), 2);
        assert!(out.relation.contains_row(&[Value(1), Value(2), Value(4)]));
    }

    #[test]
    fn projection_head() {
        let c = catalog_with_triangle();
        let q = parse_query("Ans(x) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.relation.len(), 1);
        assert!(out.relation.contains_row(&[Value(1)]));
    }

    #[test]
    fn reordered_head() {
        let c = catalog_with_triangle();
        let q = parse_query("Ans(z, x) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.columns, vec!["z", "x"]);
        assert!(out.relation.contains_row(&[Value(4), Value(1)]));
    }

    #[test]
    fn constants_in_query() {
        let c = catalog_with_triangle();
        let q = parse_query("Ans(y) :- R(1, y)").unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.relation.len(), 2); // y ∈ {2, 3}
    }

    #[test]
    fn binding_errors() {
        let c = catalog_with_triangle();
        let q = parse_query("Ans(x) :- Nope(x)").unwrap();
        assert!(matches!(
            execute(&q, &c),
            Err(QueryTextError::UnknownRelation(_))
        ));
        let q = parse_query("Ans(x) :- R(x)").unwrap();
        assert!(matches!(
            execute(&q, &c),
            Err(QueryTextError::ArityMismatch { .. })
        ));
        let q = parse_query("Ans(w) :- R(x, y)").unwrap();
        assert!(matches!(
            execute(&q, &c),
            Err(QueryTextError::UnboundHeadVariable(_))
        ));
    }

    #[test]
    fn csv_to_query_pipeline() {
        let mut c = Catalog::new();
        let edges = load_csv("alice,bob\nbob,carol\nalice,carol\n", c.dictionary()).unwrap();
        c.insert("E", edges);
        let q = parse_query("Tri(x, y, z) :- E(x, y), E(y, z), E(x, z).").unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.relation.len(), 1);
        let decoded = out.decoded_rows(&c);
        assert_eq!(
            decoded[0],
            vec![Datum::str("alice"), Datum::str("bob"), Datum::str("carol")]
        );
    }

    #[test]
    fn parallel_catalog_matches_sequential() {
        let mut c = catalog_with_triangle();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let seq = execute(&q, &c).unwrap();
        for threads in [1, 2, 4, 8] {
            c.set_parallel(Some(wcoj_exec::ExecConfig {
                threads,
                shard_min_size: 1,
                ..wcoj_exec::ExecConfig::default()
            }));
            let par = execute(&q, &c).unwrap();
            assert_eq!(par.relation, seq.relation, "{threads} threads");
            assert_eq!(par.columns, seq.columns);
        }
        c.set_parallel(None);
        assert_eq!(execute(&q, &c).unwrap().relation, seq.relation);
    }

    #[test]
    fn service_catalog_matches_sequential_and_wins_over_parallel() {
        use std::sync::Arc;
        use wcoj_service::{Service, ServiceConfig};
        let mut c = catalog_with_triangle();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let seq = execute(&q, &c).unwrap();
        let service = Arc::new(Service::new(ServiceConfig::with_workers(3)));
        // service set alongside parallel: the service takes precedence
        c.set_parallel(Some(wcoj_exec::ExecConfig::with_threads(2)));
        c.set_service(Some(Arc::clone(&service)));
        for _ in 0..4 {
            let out = execute(&q, &c).unwrap();
            assert_eq!(out.relation, seq.relation);
            assert_eq!(out.columns, seq.columns);
        }
        assert_eq!(service.submitted(), 4, "all queries routed to the pool");
        c.set_service(None);
        c.set_parallel(None);
        assert_eq!(execute(&q, &c).unwrap().relation, seq.relation);
    }

    #[test]
    fn hot_key_workload_through_catalog_routes() {
        // A single-hot-key workload through both catalog routes: the
        // per-call parallel engine and the shared service pool. The
        // intra-value sub-shard planner sits under both; outputs must be
        // bit-identical to the sequential run, and WCOJ_HEAVY_SPLIT-style
        // factor overrides (via ExecConfig) must not change them.
        use std::sync::Arc;
        use wcoj_service::{Service, ServiceConfig};
        let rels = wcoj_datagen::hot_key_triangle(17, 64, 4);
        let mut c = Catalog::new();
        for (name, rel) in ["R", "S", "T"].iter().zip(rels) {
            c.insert(*name, rel);
        }
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let seq = execute(&q, &c).unwrap();
        for factor in [0usize, 1, 8] {
            c.set_parallel(Some(wcoj_exec::ExecConfig {
                threads: 4,
                shard_min_size: 1,
                heavy_split_factor: factor,
                ..wcoj_exec::ExecConfig::default()
            }));
            let par = execute(&q, &c).unwrap();
            assert_eq!(par.relation, seq.relation, "parallel, factor {factor}");
        }
        c.set_parallel(None);
        let service = Arc::new(Service::new(ServiceConfig::with_workers(4)));
        c.set_service(Some(Arc::clone(&service)));
        let pooled = execute(&q, &c).unwrap();
        assert_eq!(pooled.relation, seq.relation, "service route");
        assert_eq!(service.submitted(), 1);
    }

    #[test]
    fn profiled_execution_through_catalog_routes() {
        use std::sync::Arc;
        use wcoj_service::{Service, ServiceConfig};
        let mut c = catalog_with_triangle();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();

        // No service attached: same result, no profile to report.
        let (seq, profile) = super::execute_profiled(&q, &c).unwrap();
        assert!(profile.is_none(), "no scheduler, no profile");

        // Service route: the profile arrives complete, covers every
        // scheduled shard, and its row total matches the *pre-projection*
        // join — which for this full query is the output itself.
        let service = Arc::new(Service::new(ServiceConfig::with_workers(2)));
        c.set_service(Some(Arc::clone(&service)));
        let (out, profile) = super::execute_profiled(&q, &c).unwrap();
        assert_eq!(out.relation, seq.relation);
        let profile = profile.expect("service route reports a profile");
        assert!(profile.is_complete());
        assert!(profile.reassembled.is_some());
        assert_eq!(profile.total_rows(), out.relation.len() as u64);
        // execute() is the same path minus the profile.
        assert_eq!(execute(&q, &c).unwrap().relation, seq.relation);
        assert_eq!(service.submitted(), 2);
    }

    #[test]
    fn overloaded_service_surfaces_typed_rejection() {
        // A catalog routed through a bounded 1-worker service whose two
        // admission slots are pinned by long-running 5-cycle queries:
        // executing a text query sheds with the typed Overloaded error
        // (not a panic, not a stringly Eval), and succeeds again once the
        // queue drains.
        use std::sync::Arc;
        let (service, blockers) = crate::test_support::overloaded_service(19);

        let mut c = catalog_with_triangle();
        c.set_service(Some(Arc::clone(&service)));
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        assert!(
            matches!(execute(&q, &c), Err(QueryTextError::Overloaded)),
            "full service queue → typed 429"
        );
        for b in blockers {
            b.wait().unwrap();
        }
        // queue drained: the same query is admitted and evaluates
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.relation.len(), 2);
    }

    #[test]
    fn repeated_submissions_hit_the_plan_cache() {
        let c = catalog_with_triangle();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let first = execute(&q, &c).unwrap();
        assert_eq!(c.plan_cache_stats(), (0, 1), "first submission builds");
        for round in 1..=3 {
            let again = execute(&q, &c).unwrap();
            assert_eq!(again.relation, first.relation);
            assert_eq!(
                c.plan_cache_stats(),
                (round, 1),
                "repeat submissions are served from the cache"
            );
        }
        // Alpha-equivalent shape (renamed variables, different head) maps
        // to the same canonical key — still a hit, projection differs.
        let renamed = parse_query("Out(c, a, b) :- R(a, b), S(b, c), T(a, c).").unwrap();
        let out = execute(&renamed, &c).unwrap();
        assert_eq!(c.plan_cache_stats(), (4, 1));
        assert_eq!(out.columns, vec!["c", "a", "b"]);
        assert_eq!(out.relation.len(), first.relation.len());
        assert!(out.relation.contains_row(&[Value(4), Value(1), Value(2)]));
        // A genuinely different shape (constant in place of a variable)
        // is a new key.
        let narrowed = parse_query("Ans(y) :- R(1, y)").unwrap();
        execute(&narrowed, &c).unwrap();
        assert_eq!(c.plan_cache_stats(), (4, 2));
    }

    #[test]
    fn replacing_a_relation_invalidates_cached_plans() {
        // Satellite bugfix pin: without generation stamps in the cache
        // key, the second query would be served the plan prepared over
        // R's *old* rows — a stale read.
        let mut c = catalog_with_triangle();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let gen_before = c.generation("R").expect("R is registered");
        let before = execute(&q, &c).unwrap();
        assert_eq!(before.relation.len(), 2);
        assert_eq!(c.plan_cache_stats(), (0, 1));
        assert_eq!(
            c.generation("R"),
            Some(gen_before),
            "queries do not advance the generation"
        );

        // Replace R with a single edge that breaks one of the triangles.
        let s_gen = c.generation("S");
        c.insert(
            "R",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2]]),
        );
        let gen_after = c.generation("R").expect("still registered");
        assert!(
            gen_after > gen_before,
            "a replace draws a fresh globally unique generation"
        );
        assert_eq!(c.generation("S"), s_gen, "untouched relations keep theirs");
        let after = execute(&q, &c).unwrap();
        assert_eq!(
            after.relation.len(),
            1,
            "query reflects the replaced relation, not the cached plan"
        );
        assert!(after.relation.contains_row(&[Value(1), Value(2), Value(4)]));
        assert_eq!(
            c.plan_cache_stats(),
            (0, 2),
            "no stale hits: the replace forced a rebuild"
        );

        // The new plan is itself cacheable.
        execute(&q, &c).unwrap();
        assert_eq!(c.plan_cache_stats(), (1, 2));
    }

    #[test]
    fn row_mutations_refresh_cached_plans_without_rebuilding_the_shape() {
        // Appends and deletes must be visible to the very next query, but
        // they only re-merge the cached plan's delta side: same shape key
        // (base generation unchanged), no extra miss, shared reduced-base
        // JoinQuery and frozen base indexes.
        let mut c = catalog_with_triangle();
        c.set_compact_threshold(usize::MAX);
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        let before = execute(&q, &c).unwrap();
        assert_eq!(before.relation.len(), 2);
        assert_eq!(c.plan_cache_stats(), (0, 1));
        assert_eq!(c.plan_cache().refreshes(), 0);

        // Append an edge completing a third triangle: (1,5),(5,4) with
        // T(1,4) already present.
        c.insert_rows("R", &[vec![Value(1), Value(5)]]).unwrap();
        c.insert_rows("S", &[vec![Value(5), Value(4)]]).unwrap();
        let after = execute(&q, &c).unwrap();
        assert_eq!(after.relation.len(), 3, "appends visible immediately");
        assert!(after.relation.contains_row(&[Value(1), Value(5), Value(4)]));
        assert_eq!(
            c.plan_cache_stats(),
            (0, 1),
            "no new build: the cached shape was refreshed"
        );
        assert_eq!(c.plan_cache().refreshes(), 1);

        // Delete one base edge: the first triangle disappears.
        c.delete_rows("R", &[vec![Value(1), Value(2)]]).unwrap();
        let third = execute(&q, &c).unwrap();
        assert_eq!(third.relation.len(), 2);
        assert!(!third.relation.contains_row(&[Value(1), Value(2), Value(4)]));
        assert_eq!(c.plan_cache_stats(), (0, 1));
        assert_eq!(c.plan_cache().refreshes(), 2);

        // Stable deltas: the refreshed entry now hits.
        let again = execute(&q, &c).unwrap();
        assert_eq!(again.relation, third.relation);
        assert_eq!(c.plan_cache_stats(), (1, 1));
        assert_eq!(c.plan_cache().refreshes(), 2);

        // The delta view must agree exactly with a cold catalog holding
        // the materialized contents.
        let mut cold = Catalog::new();
        for name in ["R", "S", "T"] {
            cold.insert(name, c.get(name).unwrap());
        }
        assert_eq!(execute(&q, &cold).unwrap().relation, third.relation);

        // Compaction folds the buffers into a fresh base: new shape key,
        // one genuine rebuild, same rows.
        assert!(c.compact("R"));
        assert!(c.compact("S"));
        let compacted = execute(&q, &c).unwrap();
        assert_eq!(compacted.relation, third.relation);
        assert_eq!(c.plan_cache_stats(), (1, 2));
    }

    #[test]
    fn constants_see_delta_mutations() {
        // Constant selections reduce the buffers per-atom; make sure the
        // reduced delta components line up with the reduced base.
        let mut c = catalog_with_triangle();
        c.set_compact_threshold(usize::MAX);
        let q = parse_query("Ans(y) :- R(1, y)").unwrap();
        assert_eq!(execute(&q, &c).unwrap().relation.len(), 2); // y ∈ {2,3}
        c.insert_rows("R", &[vec![Value(1), Value(9)], vec![Value(7), Value(8)]])
            .unwrap();
        c.delete_rows("R", &[vec![Value(1), Value(3)]]).unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.relation.len(), 2); // y ∈ {2, 9}
        assert!(out.relation.contains_row(&[Value(9)]));
        assert!(!out.relation.contains_row(&[Value(3)]));
        assert_eq!(c.plan_cache().refreshes(), 1);
    }

    #[test]
    fn catalog_clones_share_one_plan_cache() {
        let c = catalog_with_triangle();
        let clone = c.clone();
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        execute(&q, &c).unwrap();
        let out = execute(&q, &clone).unwrap();
        assert_eq!(out.relation.len(), 2);
        assert_eq!(c.plan_cache_stats(), (1, 1), "clone hit the shared entry");
        assert_eq!(clone.plan_cache_stats(), (1, 1));
    }

    #[test]
    fn submit_query_collect_matches_execute_on_every_route() {
        use std::sync::Arc;
        use wcoj_service::{Service, ServiceConfig};
        let mut c = catalog_with_triangle();
        for q in [
            "Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).",
            "Ans(z, x) :- R(x, y), S(y, z), T(x, z).",
            "Ans(y) :- R(1, y)",
        ] {
            let q = parse_query(q).unwrap();
            let expected = execute(&q, &c).unwrap();

            // sequential (eager) route
            let pending = crate::submit_query(&q, &c).unwrap();
            assert!(pending.incremental(), "eager results are one final batch");
            assert_eq!(pending.columns(), expected.columns.as_slice());
            let got = pending.collect().unwrap();
            assert_eq!(got.relation, expected.relation);
            assert_eq!(got.columns, expected.columns);

            // per-call parallel route
            c.set_parallel(Some(wcoj_exec::ExecConfig::with_threads(2)));
            let got = crate::submit_query(&q, &c).unwrap().collect().unwrap();
            assert_eq!(got.relation, expected.relation);
            c.set_parallel(None);

            // service route
            let service = Arc::new(Service::new(ServiceConfig::with_workers(2)));
            c.set_service(Some(Arc::clone(&service)));
            let got = crate::submit_query(&q, &c).unwrap().collect().unwrap();
            assert_eq!(got.relation, expected.relation);
            assert_eq!(got.columns, expected.columns);
            c.set_service(None);
        }
    }

    #[test]
    fn streaming_submission_batches_concatenate_in_order() {
        // A single-atom full query over a service: identity projection +
        // canonical total order → incremental batches whose plain
        // concatenation is the final relation.
        use std::sync::Arc;
        use wcoj_service::{Service, ServiceConfig};
        let mut c = Catalog::new();
        c.insert("E", wcoj_datagen::random_relation(11, &[0, 1], 150, 14));
        // Per-shard minimum forced down so the 150-row root domain splits
        // into several slots — otherwise one shard = one batch.
        let service = Arc::new(Service::new(ServiceConfig {
            exec: wcoj_exec::ExecConfig {
                shard_min_size: 1,
                ..wcoj_exec::ExecConfig::default()
            },
            ..ServiceConfig::with_workers(3)
        }));
        c.set_service(Some(Arc::clone(&service)));
        let q = parse_query("Ans(x, y) :- E(x, y).").unwrap();
        let expected = execute(&q, &c).unwrap();

        let mut pending = crate::submit_query(&q, &c).unwrap();
        assert!(pending.incremental(), "identity head + canonical order");
        let mut merged = wcoj_storage::Relation::empty(expected.relation.schema().clone());
        let mut batches = 0;
        while let Some(batch) = pending.next_batch() {
            for row in batch.unwrap().iter_rows() {
                merged.push_row(row).unwrap();
            }
            batches += 1;
        }
        assert!(
            batches >= 2,
            "multi-shard plan streamed {batches} batch(es)"
        );
        // No final sort: batch order is output order.
        assert_eq!(merged, expected.relation);

        // A projected head through the same service buffers into one
        // batch but still matches execute().
        let q = parse_query("Ans(y) :- E(x, y).").unwrap();
        let expected = execute(&q, &c).unwrap();
        let mut pending = crate::submit_query(&q, &c).unwrap();
        assert!(!pending.incremental(), "projection forces the merge path");
        let only = pending.next_batch().unwrap().unwrap();
        assert_eq!(only, expected.relation);
        assert!(pending.next_batch().is_none());
    }

    #[test]
    fn overloaded_submit_query_surfaces_typed_rejection() {
        use std::sync::Arc;
        let (service, blockers) = crate::test_support::overloaded_service(31);
        let mut c = catalog_with_triangle();
        c.set_service(Some(Arc::clone(&service)));
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        assert!(matches!(
            crate::submit_query(&q, &c),
            Err(QueryTextError::Overloaded)
        ));
        for b in blockers {
            b.wait().unwrap();
        }
        let out = crate::submit_query(&q, &c).unwrap().collect().unwrap();
        assert_eq!(out.relation.len(), 2);
    }

    #[test]
    fn error_to_http_status_mapping() {
        assert_eq!(
            QueryTextError::Parse {
                message: "x".into(),
                at: 0
            }
            .http_status(),
            400
        );
        assert_eq!(
            QueryTextError::UnknownRelation("R".into()).http_status(),
            404
        );
        assert_eq!(
            QueryTextError::ArityMismatch {
                relation: "R".into(),
                expected: 2,
                got: 3
            }
            .http_status(),
            400
        );
        assert_eq!(
            QueryTextError::UnboundHeadVariable("x".into()).http_status(),
            400
        );
        assert_eq!(QueryTextError::Overloaded.http_status(), 429);
        assert_eq!(QueryTextError::Eval("boom".into()).http_status(), 500);
    }

    #[test]
    fn string_constants_filter() {
        let mut c = Catalog::new();
        let r = load_csv("alice,1\nbob,2\n", c.dictionary()).unwrap();
        c.insert("R", r);
        let q = parse_query(r#"Ans(n) :- R("alice", n)"#).unwrap();
        let out = execute(&q, &c).unwrap();
        assert_eq!(out.relation.len(), 1);
        assert!(out.relation.contains_row(&[Value(1)]));
    }
}
