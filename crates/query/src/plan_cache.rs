//! Prepared-query/plan cache: `PreparedQuery` (cover LP, total order,
//! indexes, shard-plan inputs) built once per *query shape over current
//! data* and reused across submissions.
//!
//! ## Key
//!
//! A cache key is the canonical form of the query body: one segment per
//! atom, `name@base_generation(term,…)`, with variables numbered by first
//! occurrence (so `Ans(a,b) :- E(a,b)` and `Ans(x,y) :- E(x,y)` share an
//! entry) and constants by their dictionary-encoded value. The head is
//! *not* part of the key: the cached object is the prepared **join**, and
//! projection happens after evaluation.
//!
//! ## Two-level invalidation
//!
//! Generations are **process-globally unique** stamps assigned by the
//! catalog — not per-name bumps — so two diverged catalog clones can
//! never reach the same `(name, generation)` pair with different data.
//! The cache distinguishes two kinds of staleness:
//!
//! * **Base drift** (replace / compaction) changes a relation's *base
//!   generation*, hence the key itself: the stale entry can never be
//!   served again and ages out of the LRU. This rebuilds everything —
//!   reduction, LP, indexes.
//! * **Delta drift** (row appends / deletes) leaves the key intact but
//!   changes the per-atom *delta versions* stored alongside the entry.
//!   A lookup whose versions disagree keeps the entry's prepared shape —
//!   the `Arc`-shared reduced base relations and frozen base indexes —
//!   and re-merges only the small delta side (counted as a *refresh*,
//!   neither hit nor miss). An append therefore invalidates a cached
//!   plan's weights, not its prepared shape.
//!
//! ## Sharing & metrics
//!
//! The cache itself is behind an `Arc`, so catalog clones (the cheap
//! handle-passing pattern) share one cache and one hit/miss account.
//! Counts are mirrored into the process-wide `wcoj-obs` registry as
//! `wcoj_plan_cache_{hits,misses,refreshes}_total`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use wcoj_core::nprr::PreparedQuery;
use wcoj_core::QueryError;
use wcoj_obs::Counter;
use wcoj_storage::DeltaIndex;

/// Upper bound on cached plans; past it the least-recently-used entry is
/// evicted (stale generations age out this way too).
const CAPACITY: usize = 64;

/// Process-wide generation stamps for catalog versions. Monotone and
/// never reused, so a `(name, generation)` pair identifies one exact
/// relation value for the life of the process.
static GENERATIONS: AtomicU64 = AtomicU64::new(1);

/// Draws the next globally unique relation generation.
pub(crate) fn next_generation() -> u64 {
    GENERATIONS.fetch_add(1, Ordering::Relaxed)
}

/// The cached preparations are delta-merged views over the flat columnar
/// backend — frozen `Arc`-shared base indexes plus the relation's small
/// insert/delete buffers, bit-identical to an index over the materialized
/// view (gated by the release stress suites).
pub type CachedPlan = Arc<PreparedQuery<DeltaIndex>>;

struct Mirror {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    refreshes: Arc<Counter>,
}

impl Mirror {
    fn get() -> &'static Mirror {
        static MIRROR: OnceLock<Mirror> = OnceLock::new();
        MIRROR.get_or_init(|| {
            let r = wcoj_obs::global();
            Mirror {
                hits: r.counter(
                    "wcoj_plan_cache_hits_total",
                    "Catalog queries served from the prepared-plan cache",
                ),
                misses: r.counter(
                    "wcoj_plan_cache_misses_total",
                    "Catalog queries that built (and cached) a fresh PreparedQuery",
                ),
                refreshes: r.counter(
                    "wcoj_plan_cache_refreshes_total",
                    "Cached plans whose delta side was re-merged after row mutations",
                ),
            }
        })
    }
}

struct Entry {
    plan: CachedPlan,
    /// Per-atom delta versions the plan's merged indexes were built at.
    delta_vers: Vec<u64>,
    /// LRU clock value of the last touch; the entry with the smallest
    /// stamp is the eviction victim.
    stamp: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    /// LRU clock: bumped on every touch.
    tick: u64,
}

/// A shared LRU of prepared queries, keyed by canonical query shape +
/// relation base generations, delta-versioned within each entry. Cheap
/// to clone (one `Arc`).
#[derive(Clone)]
pub struct PlanCache {
    inner: Arc<Mutex<Inner>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    refreshes: Arc<AtomicU64>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> PlanCache {
        PlanCache {
            inner: Arc::new(Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
            })),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            refreshes: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Looks up `key`, building and inserting with `build` on a miss.
    /// Equivalent to [`PlanCache::get_or_build_versioned`] with no delta
    /// versions: any cached entry under `key` is served as-is.
    ///
    /// # Errors
    /// Whatever `build` returns.
    pub fn get_or_build(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<CachedPlan, QueryError>,
    ) -> Result<CachedPlan, QueryError> {
        self.get_or_build_versioned(key, &[], build, |old| Ok(Arc::clone(old)))
    }

    /// Looks up `key` and serves the cached plan when its stored delta
    /// versions equal `delta_vers` (a **hit**). On a present-but-drifted
    /// entry, calls `refresh` with the stale plan — which shares its
    /// prepared shape (`Arc`'d reduced bases and base indexes) with the
    /// replacement — and re-inserts under the new versions (a
    /// **refresh**). On an absent key, calls `build` (a **miss**).
    ///
    /// Both closures run outside the cache lock: preparation (LP + index
    /// construction) can be expensive, and concurrent submitters of
    /// *different* shapes shouldn't serialise on it. Two racing
    /// submitters of the same shape may both build; last insert wins,
    /// both results are equivalent. Errors are returned without caching
    /// anything (a failing shape re-attempts on every submission —
    /// failures are cheap and should not occupy capacity; the stale
    /// entry a failing `refresh` left behind stays, still guarded by its
    /// version vector).
    ///
    /// # Errors
    /// Whatever `build` / `refresh` return.
    pub fn get_or_build_versioned(
        &self,
        key: &str,
        delta_vers: &[u64],
        build: impl FnOnce() -> Result<CachedPlan, QueryError>,
        refresh: impl FnOnce(&CachedPlan) -> Result<CachedPlan, QueryError>,
    ) -> Result<CachedPlan, QueryError> {
        let stale = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.tick += 1;
            let tick = inner.tick;
            match inner.entries.get_mut(key) {
                Some(entry) => {
                    entry.stamp = tick;
                    if entry.delta_vers == delta_vers {
                        let plan = Arc::clone(&entry.plan);
                        drop(inner);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        Mirror::get().hits.inc();
                        return Ok(plan);
                    }
                    Some(Arc::clone(&entry.plan))
                }
                None => None,
            }
        };
        let plan = match &stale {
            Some(old) => {
                let plan = refresh(old)?;
                self.refreshes.fetch_add(1, Ordering::Relaxed);
                Mirror::get().refreshes.inc();
                plan
            }
            None => {
                let plan = build()?;
                self.misses.fetch_add(1, Ordering::Relaxed);
                Mirror::get().misses.inc();
                plan
            }
        };
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            key.to_owned(),
            Entry {
                plan: Arc::clone(&plan),
                delta_vers: delta_vers.to_vec(),
                stamp: tick,
            },
        );
        if inner.entries.len() > CAPACITY {
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
            }
        }
        Ok(plan)
    }

    /// `(hits, misses)` accumulated by this cache (shared across catalog
    /// clones holding the same `Arc`). Delta refreshes are counted
    /// separately — see [`PlanCache::refreshes`].
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached plans whose delta side was re-merged after row
    /// mutations (prepared shape reused, weights recomputed).
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }

    /// Number of cached plans right now.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// `true` iff nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::{Relation, Schema};

    fn plan() -> CachedPlan {
        let rels = [
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2]]),
            Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 3]]),
        ];
        Arc::new(PreparedQuery::<DeltaIndex>::new_indexed(&rels).unwrap())
    }

    #[test]
    fn hit_after_miss_and_stats() {
        let cache = PlanCache::new();
        assert!(cache.is_empty());
        let a = cache.get_or_build("k1", || Ok(plan())).unwrap();
        assert_eq!(cache.stats(), (0, 1));
        let b = cache
            .get_or_build("k1", || panic!("must not rebuild on hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_distinct_entries() {
        let cache = PlanCache::new();
        cache.get_or_build("k1", || Ok(plan())).unwrap();
        cache.get_or_build("k2", || Ok(plan())).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = PlanCache::new();
        let r = cache.get_or_build("bad", || Err(QueryError::Overloaded));
        assert!(r.is_err());
        assert!(cache.is_empty());
        // the next attempt re-runs the builder
        cache.get_or_build("bad", || Ok(plan())).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest_beyond_capacity() {
        let cache = PlanCache::new();
        for i in 0..=CAPACITY {
            cache.get_or_build(&format!("k{i}"), || Ok(plan())).unwrap();
        }
        assert_eq!(cache.len(), CAPACITY);
        // k0 was the least recently used → evicted; k1 survived
        let mut rebuilt = false;
        cache
            .get_or_build("k0", || {
                rebuilt = true;
                Ok(plan())
            })
            .unwrap();
        assert!(rebuilt, "k0 was evicted");
        assert_eq!(cache.len(), CAPACITY, "eviction keeps the cache bounded");
        // Recently used entries survive the churn.
        let (hits_before, _) = cache.stats();
        cache
            .get_or_build(&format!("k{CAPACITY}"), || panic!("still cached"))
            .unwrap();
        cache
            .get_or_build("k0", || panic!("just re-inserted"))
            .unwrap();
        assert_eq!(cache.stats().0, hits_before + 2);
    }

    #[test]
    fn generations_are_globally_unique() {
        let a = next_generation();
        let b = next_generation();
        assert!(b > a);
    }

    #[test]
    fn clones_share_entries_and_stats() {
        let cache = PlanCache::new();
        let clone = cache.clone();
        cache.get_or_build("k", || Ok(plan())).unwrap();
        clone
            .get_or_build("k", || panic!("shared with the original"))
            .unwrap();
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(clone.stats(), (1, 1));
    }

    #[test]
    fn version_drift_refreshes_instead_of_missing() {
        let cache = PlanCache::new();
        let a = cache
            .get_or_build_versioned("k", &[0, 0], || Ok(plan()), |_| panic!("empty cache"))
            .unwrap();
        assert_eq!(cache.stats(), (0, 1));
        assert_eq!(cache.refreshes(), 0);
        // Same versions → hit, same Arc.
        let b = cache
            .get_or_build_versioned(
                "k",
                &[0, 0],
                || panic!("cached"),
                |_| panic!("versions match"),
            )
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        // Drifted versions → refresh sees the stale plan, result cached
        // under the new versions.
        let c = cache
            .get_or_build_versioned(
                "k",
                &[0, 7],
                || panic!("present"),
                |old| {
                    assert!(Arc::ptr_eq(old, &a));
                    Ok(plan())
                },
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats(), (1, 1), "a refresh is neither hit nor miss");
        assert_eq!(cache.refreshes(), 1);
        assert_eq!(cache.len(), 1);
        let d = cache
            .get_or_build_versioned(
                "k",
                &[0, 7],
                || panic!("cached"),
                |_| panic!("versions match"),
            )
            .unwrap();
        assert!(Arc::ptr_eq(&c, &d));
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn failed_refresh_keeps_the_guarded_stale_entry() {
        let cache = PlanCache::new();
        let a = cache
            .get_or_build_versioned("k", &[1], || Ok(plan()), |_| panic!("empty"))
            .unwrap();
        let r = cache.get_or_build_versioned(
            "k",
            &[2],
            || panic!("present"),
            |_| Err(QueryError::Overloaded),
        );
        assert!(r.is_err());
        // The stale entry survives, still version-guarded: matching the
        // old versions hits it, the new versions retry the refresh.
        let b = cache
            .get_or_build_versioned("k", &[1], || panic!(), |_| panic!())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache
            .get_or_build_versioned("k", &[2], || panic!("present"), |_| Ok(plan()))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.refreshes(), 1);
    }
}
