//! Prepared-query/plan cache: `PreparedQuery` (cover LP, total order,
//! indexes, shard-plan inputs) built once per *query shape over current
//! data* and reused across submissions.
//!
//! ## Key
//!
//! A cache key is the canonical form of the query body: one segment per
//! atom, `name@generation(term,…)`, with variables numbered by first
//! occurrence (so `Ans(a,b) :- E(a,b)` and `Ans(x,y) :- E(x,y)` share an
//! entry) and constants by their dictionary-encoded value. The head is
//! *not* part of the key: the cached object is the prepared **join**, and
//! projection happens after evaluation.
//!
//! ## Invalidation
//!
//! `generation` is a **process-globally unique** stamp assigned by
//! [`Catalog::insert`](crate::Catalog::insert) on every insert or
//! replace — not a per-name bump. Replacing a relation therefore changes
//! every key that mentions it, so a cached `PreparedQuery` built over the
//! old data can never be served again (it ages out of the LRU). Global
//! uniqueness also covers cloned catalogs: two diverged clones can never
//! reach the same `(name, generation)` pair with different data, which a
//! per-name counter would allow.
//!
//! ## Sharing & metrics
//!
//! The cache itself is behind an `Arc`, so catalog clones (the cheap
//! handle-passing pattern) share one cache and one hit/miss account.
//! Counts are mirrored into the process-wide `wcoj-obs` registry as
//! `wcoj_plan_cache_hits_total` / `wcoj_plan_cache_misses_total`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use wcoj_core::nprr::PreparedQuery;
use wcoj_core::QueryError;
use wcoj_obs::Counter;
use wcoj_storage::FlatIndex;

/// Upper bound on cached plans; past it the least-recently-used entry is
/// evicted (stale generations age out this way too).
const CAPACITY: usize = 64;

/// Process-wide generation stamps for catalog inserts. Monotone and never
/// reused, so a `(name, generation)` pair identifies one exact relation
/// value for the life of the process.
static GENERATIONS: AtomicU64 = AtomicU64::new(1);

/// Draws the next globally unique relation generation.
pub(crate) fn next_generation() -> u64 {
    GENERATIONS.fetch_add(1, Ordering::Relaxed)
}

/// The cached preparations all use the flat columnar backend — the
/// fastest of the three index layouts on the engine hot path, and
/// bit-identical to the others (gated by the release stress suites).
pub type CachedPlan = Arc<PreparedQuery<FlatIndex>>;

struct Mirror {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl Mirror {
    fn get() -> &'static Mirror {
        static MIRROR: OnceLock<Mirror> = OnceLock::new();
        MIRROR.get_or_init(|| {
            let r = wcoj_obs::global();
            Mirror {
                hits: r.counter(
                    "wcoj_plan_cache_hits_total",
                    "Catalog queries served from the prepared-plan cache",
                ),
                misses: r.counter(
                    "wcoj_plan_cache_misses_total",
                    "Catalog queries that built (and cached) a fresh PreparedQuery",
                ),
            }
        })
    }
}

struct Inner {
    entries: HashMap<String, (CachedPlan, u64)>,
    /// LRU clock: bumped on every touch; the entry with the smallest
    /// stamp is the eviction victim.
    tick: u64,
}

/// A shared LRU of prepared queries, keyed by canonical query shape +
/// relation generations. Cheap to clone (one `Arc`).
#[derive(Clone)]
pub struct PlanCache {
    inner: Arc<Mutex<Inner>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> PlanCache {
        PlanCache {
            inner: Arc::new(Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
            })),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Looks up `key`, building and inserting with `build` on a miss.
    /// Build errors are returned without caching anything (a failing
    /// query shape re-attempts on every submission — failures are cheap
    /// and should not occupy capacity).
    ///
    /// # Errors
    /// Whatever `build` returns.
    pub fn get_or_build(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<CachedPlan, QueryError>,
    ) -> Result<CachedPlan, QueryError> {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((plan, stamp)) = inner.entries.get_mut(key) {
                *stamp = tick;
                let plan = Arc::clone(plan);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Mirror::get().hits.inc();
                return Ok(plan);
            }
        }
        // Build outside the lock: preparation (LP + index construction)
        // can be expensive, and concurrent submitters of *different*
        // shapes shouldn't serialise on it. Two racing submitters of the
        // same shape may both build; last insert wins, both results are
        // equivalent.
        let plan = build()?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        Mirror::get().misses.inc();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        inner
            .entries
            .insert(key.to_owned(), (Arc::clone(&plan), tick));
        if inner.entries.len() > CAPACITY {
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
            }
        }
        Ok(plan)
    }

    /// `(hits, misses)` accumulated by this cache (shared across catalog
    /// clones holding the same `Arc`).
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached plans right now.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// `true` iff nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::{Relation, Schema};

    fn plan() -> CachedPlan {
        let rels = [
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2]]),
            Relation::from_u32_rows(Schema::of(&[1, 2]), &[&[2, 3]]),
        ];
        Arc::new(PreparedQuery::<FlatIndex>::new_indexed(&rels).unwrap())
    }

    #[test]
    fn hit_after_miss_and_stats() {
        let cache = PlanCache::new();
        assert!(cache.is_empty());
        let a = cache.get_or_build("k1", || Ok(plan())).unwrap();
        assert_eq!(cache.stats(), (0, 1));
        let b = cache
            .get_or_build("k1", || panic!("must not rebuild on hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_distinct_entries() {
        let cache = PlanCache::new();
        cache.get_or_build("k1", || Ok(plan())).unwrap();
        cache.get_or_build("k2", || Ok(plan())).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = PlanCache::new();
        let r = cache.get_or_build("bad", || Err(QueryError::Overloaded));
        assert!(r.is_err());
        assert!(cache.is_empty());
        // the next attempt re-runs the builder
        cache.get_or_build("bad", || Ok(plan())).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest_beyond_capacity() {
        let cache = PlanCache::new();
        for i in 0..=CAPACITY {
            cache.get_or_build(&format!("k{i}"), || Ok(plan())).unwrap();
        }
        assert_eq!(cache.len(), CAPACITY);
        // k0 was the least recently used → evicted; k1 survived
        let mut rebuilt = false;
        cache
            .get_or_build("k0", || {
                rebuilt = true;
                Ok(plan())
            })
            .unwrap();
        assert!(rebuilt, "k0 was evicted");
        assert_eq!(cache.len(), CAPACITY, "eviction keeps the cache bounded");
        // Recently used entries survive the churn.
        let (hits_before, _) = cache.stats();
        cache
            .get_or_build(&format!("k{CAPACITY}"), || panic!("still cached"))
            .unwrap();
        cache
            .get_or_build("k0", || panic!("just re-inserted"))
            .unwrap();
        assert_eq!(cache.stats().0, hits_before + 2);
    }

    #[test]
    fn generations_are_globally_unique() {
        let a = next_generation();
        let b = next_generation();
        assert!(b > a);
    }

    #[test]
    fn clones_share_entries_and_stats() {
        let cache = PlanCache::new();
        let clone = cache.clone();
        cache.get_or_build("k", || Ok(plan())).unwrap();
        clone
            .get_or_build("k", || panic!("shared with the original"))
            .unwrap();
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(clone.stats(), (1, 1));
    }
}
