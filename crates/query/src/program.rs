//! Non-recursive Datalog programs: a sequence of rules, each defining (or
//! extending, when several rules share a head) a derived relation that
//! later rules may use.
//!
//! ```text
//! # wedges, then triangles built from them
//! wedge(x, y, z)  :- E(x, y), E(y, z).
//! tri(x, y, z)    :- wedge(x, y, z), E(x, z).
//! ```
//!
//! Rules are evaluated top-to-bottom with the worst-case-optimal join;
//! recursion is rejected (a rule whose body mentions its own head — or any
//! head not yet materialised — fails with `UnknownRelation`, except
//! same-head accumulation across *earlier* rules, which is a union).

use crate::exec::{execute, QueryResult};
use crate::parser::{parse_query, ParsedQuery};
use crate::{Catalog, QueryTextError};
use wcoj_storage::ops::union;

/// A parsed multi-rule program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Rules in source order.
    pub rules: Vec<ParsedQuery>,
}

/// Parses a program: one rule per `.`-terminated statement; `#` and `%`
/// start line comments.
///
/// # Errors
/// [`QueryTextError::Parse`] on the first malformed rule.
pub fn parse_program(src: &str) -> Result<Program, QueryTextError> {
    // One quote-aware pass: `.` terminates a statement and `#`/`%` opens
    // a line comment only *outside* string literals. (The old
    // comment-strip + `split('.')` was blind to quotes, so a constant
    // like "v1.2" or "100%" was silently chopped apart.)
    let mut statements: Vec<String> = Vec::new();
    let mut stmt = String::new();
    let mut in_str = false;
    let mut in_comment = false;
    for c in src.chars() {
        if in_comment {
            if c == '\n' {
                in_comment = false;
                stmt.push('\n');
            }
            continue;
        }
        match c {
            '"' => {
                in_str = !in_str;
                stmt.push(c);
            }
            '#' | '%' if !in_str => in_comment = true,
            '.' if !in_str => statements.push(std::mem::take(&mut stmt)),
            _ => stmt.push(c),
        }
    }
    // A trailing statement without a final '.' still parses; if it holds
    // an unterminated string literal, parse_query reports the typed
    // error (the '.'-retaining split cannot mask it).
    if !stmt.trim().is_empty() {
        statements.push(stmt);
    }
    let mut rules = Vec::new();
    for stmt in &statements {
        if stmt.trim().is_empty() {
            continue;
        }
        rules.push(parse_query(stmt)?);
    }
    if rules.is_empty() {
        return Err(QueryTextError::Parse {
            message: "program has no rules".into(),
            at: 0,
        });
    }
    Ok(Program { rules })
}

/// Evaluates a program against (and into) `catalog`: each rule's result is
/// registered under its head name, so later rules can use it. Returns the
/// per-rule results in order.
///
/// # Errors
/// Binding/evaluation errors from any rule, including
/// [`QueryTextError::UnknownRelation`] for recursion or use-before-define.
pub fn run_program(
    program: &Program,
    catalog: &mut Catalog,
) -> Result<Vec<(String, QueryResult)>, QueryTextError> {
    let mut outputs = Vec::with_capacity(program.rules.len());
    for rule in &program.rules {
        let mut result = execute(rule, catalog)?;
        // Canonicalise the derived schema positionally (attrs 0..arity):
        // different rules bind different variable ids, but a stored
        // relation's identity is purely positional.
        result.relation = canonicalize(&result.relation);
        let merged = match catalog.get(&rule.head_name) {
            // A second rule for the same head unions in (schemas agree by
            // construction when arities do; mismatched arity is an error).
            Some(existing) if outputs.iter().any(|(n, _)| n == &rule.head_name) => {
                if existing.arity() != result.relation.arity() {
                    return Err(QueryTextError::ArityMismatch {
                        relation: rule.head_name.clone(),
                        expected: existing.arity(),
                        got: result.relation.arity(),
                    });
                }
                union(&existing, &result.relation)
                    .map_err(|e| QueryTextError::Eval(e.to_string()))?
            }
            _ => result.relation.clone(),
        };
        catalog.insert(rule.head_name.clone(), merged.clone());
        outputs.push((
            rule.head_name.clone(),
            QueryResult {
                relation: merged,
                columns: result.columns,
            },
        ));
    }
    Ok(outputs)
}

/// Rebuilds `rel` with the canonical positional schema `(0, …, arity−1)`.
fn canonicalize(rel: &wcoj_storage::Relation) -> wcoj_storage::Relation {
    use wcoj_storage::{Attr, Relation, Schema};
    let schema =
        Schema::new((0..rel.arity() as u32).map(Attr).collect()).expect("sequential attrs");
    let mut out = Relation::empty(schema);
    for row in rel.iter_rows() {
        out.push_row(row).expect("same arity");
    }
    out.sort_dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wcoj_storage::{Relation, Schema, Value};

    fn edge_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert(
            "E",
            Relation::from_u32_rows(Schema::of(&[0, 1]), &[&[1, 2], &[2, 3], &[1, 3], &[3, 4]]),
        );
        c
    }

    #[test]
    fn two_stage_program() {
        let p = parse_program(
            "# derive wedges, then close them\n\
             wedge(x, y, z) :- E(x, y), E(y, z).\n\
             tri(x, y, z) :- wedge(x, y, z), E(x, z).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        let mut c = edge_catalog();
        let out = run_program(&p, &mut c).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, "wedge");
        assert_eq!(out[1].0, "tri");
        assert_eq!(out[1].1.relation.len(), 1);
        assert!(out[1]
            .1
            .relation
            .contains_row(&[Value(1), Value(2), Value(3)]));
        // derived relations are registered
        assert!(c.get("wedge").is_some());
        assert!(c.get("tri").is_some());
    }

    #[test]
    fn multiple_rules_union_same_head() {
        let p = parse_program(
            "reach(x, y) :- E(x, y).\n\
             reach(x, z) :- E(x, y), E(y, z).",
        )
        .unwrap();
        let mut c = edge_catalog();
        let out = run_program(&p, &mut c).unwrap();
        // 4 direct edges ∪ 2-paths {(1,3),(2,4),(1,4)} → 4 + 2 new = 6
        // ((1,3) already a direct edge)
        assert_eq!(out[1].1.relation.len(), 6);
    }

    #[test]
    fn program_runs_on_parallel_catalog() {
        let p = parse_program(
            "wedge(x, y, z) :- E(x, y), E(y, z).\n\
             tri(x, y, z) :- wedge(x, y, z), E(x, z).",
        )
        .unwrap();
        let mut seq_cat = edge_catalog();
        let seq = run_program(&p, &mut seq_cat).unwrap();
        let mut par_cat = edge_catalog();
        par_cat.set_parallel(Some(wcoj_exec::ExecConfig {
            threads: 4,
            shard_min_size: 1,
            ..wcoj_exec::ExecConfig::default()
        }));
        let par = run_program(&p, &mut par_cat).unwrap();
        assert_eq!(seq.len(), par.len());
        for ((n1, r1), (n2, r2)) in seq.iter().zip(&par) {
            assert_eq!(n1, n2);
            assert_eq!(r1.relation, r2.relation, "rule {n1}");
        }
    }

    #[test]
    fn program_runs_on_service_catalog() {
        use std::sync::Arc;
        use wcoj_service::{Service, ServiceConfig};
        let p = parse_program(
            "wedge(x, y, z) :- E(x, y), E(y, z).\n\
             tri(x, y, z) :- wedge(x, y, z), E(x, z).",
        )
        .unwrap();
        let mut seq_cat = edge_catalog();
        let seq = run_program(&p, &mut seq_cat).unwrap();
        let service = Arc::new(Service::new(ServiceConfig::with_workers(4)));
        let mut svc_cat = edge_catalog();
        svc_cat.set_service(Some(Arc::clone(&service)));
        let svc = run_program(&p, &mut svc_cat).unwrap();
        assert_eq!(seq.len(), svc.len());
        for ((n1, r1), (n2, r2)) in seq.iter().zip(&svc) {
            assert_eq!(n1, n2);
            assert_eq!(r1.relation, r2.relation, "rule {n1}");
        }
        assert_eq!(service.submitted(), 2, "one submission per rule");
    }

    #[test]
    fn program_on_overloaded_service_surfaces_typed_rejection() {
        // The Datalog routing path sheds the same way the text-query path
        // does: a full admission queue aborts the program with the typed
        // Overloaded error instead of panicking mid-rule.
        use std::sync::Arc;
        let (service, blockers) = crate::test_support::overloaded_service(29);

        let p = parse_program("wedge(x, y, z) :- E(x, y), E(y, z).").unwrap();
        let mut c = edge_catalog();
        c.set_service(Some(Arc::clone(&service)));
        assert!(matches!(
            run_program(&p, &mut c),
            Err(crate::QueryTextError::Overloaded)
        ));
        for b in blockers {
            b.wait().unwrap();
        }
        let out = run_program(&p, &mut c).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn recursion_rejected() {
        let p = parse_program("t(x, y) :- t(x, y), E(x, y).").unwrap();
        let mut c = edge_catalog();
        assert!(matches!(
            run_program(&p, &mut c),
            Err(QueryTextError::UnknownRelation(_))
        ));
    }

    #[test]
    fn use_before_define_rejected() {
        let p = parse_program(
            "a(x, y) :- b(x, y).\n\
             b(x, y) :- E(x, y).",
        )
        .unwrap();
        let mut c = edge_catalog();
        assert!(matches!(
            run_program(&p, &mut c),
            Err(QueryTextError::UnknownRelation(_))
        ));
    }

    #[test]
    fn comments_and_whitespace() {
        let p = parse_program(
            "% leading comment\n\
             \n\
             a(x) :- E(x, y). # trailing comment\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 1);
        let mut c = edge_catalog();
        let out = run_program(&p, &mut c).unwrap();
        assert_eq!(out[0].1.relation.len(), 3); // sources {1, 2, 3}
    }

    #[test]
    fn empty_program_rejected() {
        assert!(parse_program("# nothing here\n").is_err());
    }

    #[test]
    fn string_constants_survive_statement_splitting() {
        // Satellite bugfix pin: '.', '#', and '%' inside string literals
        // are data, not statement terminators or comment openers. The
        // line-wise comment strip + split('.') used to corrupt these.
        use crate::parser::ParsedTerm;
        let p = parse_program(r##"a(x) :- R("v1.2", x). b(x) :- R("#80%", x)."##).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].atoms[0].terms[0], ParsedTerm::Str("v1.2".into()));
        assert_eq!(p.rules[1].atoms[0].terms[0], ParsedTerm::Str("#80%".into()));

        // End-to-end: the dotted string constant actually filters.
        let mut c = Catalog::new();
        let r = crate::load_csv("v1.2,10\nv2.0,20\n", c.dictionary()).unwrap();
        c.insert("R", r);
        let p = parse_program(r#"hits(x) :- R("v1.2", x)."#).unwrap();
        let out = run_program(&p, &mut c).unwrap();
        assert_eq!(out[0].1.relation.len(), 1);
        assert!(out[0].1.relation.contains_row(&[Value(10)]));
    }

    #[test]
    fn unterminated_string_is_a_typed_error_not_a_silent_chop() {
        // The '.' sits inside an unterminated literal: the splitter must
        // not treat it as a terminator, and the rule must fail with the
        // parser's typed error instead of something mangled succeeding.
        let e = parse_program(r#"a(x) :- R("v1. , x)"#).unwrap_err();
        assert!(matches!(e, QueryTextError::Parse { .. }), "{e}");
    }

    #[test]
    fn comments_inside_strings_are_data() {
        let p = parse_program(
            "a(x) :- R(\"keep#this\", x). % real comment with \"quote\n\
             b(x) :- R(\"and%this\", x).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn conflicting_arity_union_rejected() {
        let p = parse_program(
            "a(x, y) :- E(x, y).\n\
             a(x) :- E(x, y).",
        )
        .unwrap();
        let mut c = edge_catalog();
        assert!(matches!(
            run_program(&p, &mut c),
            Err(QueryTextError::ArityMismatch { .. })
        ));
    }
}
