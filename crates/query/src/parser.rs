//! A small recursive-descent parser for conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := head ":-" atom ("," atom)* "."?
//! head   := ident "(" termlist? ")"
//! atom   := ident "(" termlist? ")"
//! term   := ident            (variable: starts with a letter)
//!         | integer          (constant)
//!         | '"' chars '"'    (string constant)
//! ```

use crate::QueryTextError;

/// A parsed term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedTerm {
    /// A variable name.
    Var(String),
    /// An integer constant.
    Int(u64),
    /// A string constant.
    Str(String),
}

/// A parsed body atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedAtom {
    /// Relation name.
    pub relation: String,
    /// Terms, one per column.
    pub terms: Vec<ParsedTerm>,
}

/// A parsed conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedQuery {
    /// Head predicate name (informational).
    pub head_name: String,
    /// Head variables, in output order.
    pub head_vars: Vec<String>,
    /// Body atoms.
    pub atoms: Vec<ParsedAtom>,
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, QueryTextError> {
        Err(QueryTextError::Parse {
            message: message.into(),
            at: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), QueryTextError> {
        if self.eat(token) {
            Ok(())
        } else {
            self.err(format!("expected `{token}`"))
        }
    }

    fn ident(&mut self) -> Result<String, QueryTextError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start
            || !self.src[start..].starts_with(|c: char| c.is_alphabetic() || c == '_')
        {
            self.pos = start;
            return self.err("expected identifier");
        }
        Ok(self.src[start..self.pos].to_owned())
    }

    fn term(&mut self) -> Result<ParsedTerm, QueryTextError> {
        self.skip_ws();
        match self.peek() {
            Some('"') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == '"' {
                        let s = self.src[start..self.pos].to_owned();
                        self.pos += 1;
                        return Ok(ParsedTerm::Str(s));
                    }
                    self.pos += c.len_utf8();
                }
                self.err("unterminated string literal")
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.src[start..self.pos]
                    .parse::<u64>()
                    .map(ParsedTerm::Int)
                    .map_err(|_| QueryTextError::Parse {
                        message: "integer literal out of range".into(),
                        at: start,
                    })
            }
            _ => self.ident().map(ParsedTerm::Var),
        }
    }

    fn atom(&mut self) -> Result<ParsedAtom, QueryTextError> {
        let relation = self.ident()?;
        self.expect("(")?;
        let mut terms = Vec::new();
        self.skip_ws();
        if !self.eat(")") {
            loop {
                terms.push(self.term()?);
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        Ok(ParsedAtom { relation, terms })
    }
}

/// Parses a conjunctive query.
///
/// # Errors
/// [`QueryTextError::Parse`] with a byte offset on syntax errors.
pub fn parse_query(src: &str) -> Result<ParsedQuery, QueryTextError> {
    let mut c = Cursor { src, pos: 0 };
    let head = c.atom()?;
    let mut head_vars = Vec::with_capacity(head.terms.len());
    for t in &head.terms {
        match t {
            ParsedTerm::Var(v) => head_vars.push(v.clone()),
            _ => return c.err("head terms must be variables"),
        }
    }
    c.expect(":-")?;
    let mut atoms = Vec::new();
    loop {
        atoms.push(c.atom()?);
        if !c.eat(",") {
            break;
        }
    }
    let _ = c.eat(".");
    c.skip_ws();
    if c.pos != src.len() {
        return c.err("trailing input after query");
    }
    Ok(ParsedQuery {
        head_name: head.relation,
        head_vars,
        atoms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_query_parses() {
        let q = parse_query("Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).").unwrap();
        assert_eq!(q.head_name, "Ans");
        assert_eq!(q.head_vars, vec!["x", "y", "z"]);
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.atoms[0].relation, "R");
        assert_eq!(
            q.atoms[0].terms,
            vec![ParsedTerm::Var("x".into()), ParsedTerm::Var("y".into())]
        );
    }

    #[test]
    fn constants_parse() {
        let q = parse_query(r#"Q(x) :- R(x, 42, "alice")"#).unwrap();
        assert_eq!(
            q.atoms[0].terms,
            vec![
                ParsedTerm::Var("x".into()),
                ParsedTerm::Int(42),
                ParsedTerm::Str("alice".into())
            ]
        );
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse_query("Q(x):-R(x,y),S(y)").unwrap();
        let b = parse_query("  Q( x )  :-  R( x , y ) ,\n S( y ) .  ").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn nullary_atoms() {
        let q = parse_query("Q() :- R(), S(x)").unwrap();
        assert!(q.head_vars.is_empty());
        assert!(q.atoms[0].terms.is_empty());
    }

    #[test]
    fn underscore_identifiers() {
        let q = parse_query("q_out(my_var) :- edge_list(my_var, my_var)").unwrap();
        assert_eq!(q.head_name, "q_out");
        assert_eq!(q.atoms[0].relation, "edge_list");
    }

    #[test]
    fn syntax_errors_have_offsets() {
        for bad in [
            "Q(x)",                 // missing body
            "Q(x) :- ",             // empty body
            "Q(x) :- R(x",          // unclosed paren
            "Q(1) :- R(x)",         // constant head
            "Q(x) :- R(x) garbage", // trailing
            r#"Q(x) :- R("oops)"#,  // unterminated string
            "(x) :- R(x)",          // missing head name
        ] {
            let e = parse_query(bad).unwrap_err();
            assert!(matches!(e, QueryTextError::Parse { .. }), "{bad}");
        }
    }

    #[test]
    fn repeated_vars_allowed() {
        let q = parse_query("Q(x) :- R(x, x)").unwrap();
        assert_eq!(q.atoms[0].terms.len(), 2);
    }
}
