//! Text front-end: Datalog-style conjunctive queries and a CSV loader.
//!
//! ```text
//! Ans(x, y, z) :- R(x, y), S(y, z), T(x, z).
//! ```
//!
//! Queries are parsed into [`ParsedQuery`], bound against a [`Catalog`] of
//! named relations, reduced per §7.3 (constants and repeated variables are
//! allowed), evaluated with the worst-case-optimal join from `wcoj-core`,
//! and finally projected onto the head variables. The paper's machinery is
//! worst-case optimal for *full* queries (head = all body variables); a
//! narrower head is supported as a post-projection for usability.

mod catalog;
mod csv;
mod exec;
mod parser;
mod plan_cache;
mod program;

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::Arc;
    use wcoj_service::{QueryHandle, Service, ServiceConfig};

    /// A 1-worker service with both of its two admission slots pinned by
    /// long-running 5-cycle blockers. The blockers are submitted with a
    /// *precomputed* cover, so submission costs microseconds while each
    /// engine run takes tens of milliseconds — the service is reliably
    /// still overloaded when the caller routes its next query. Wait the
    /// returned handles to drain the queue again.
    pub(crate) fn overloaded_service(seed: u64) -> (Arc<Service>, Vec<QueryHandle>) {
        let service = Arc::new(Service::new(
            ServiceConfig::with_workers(1).with_queue_depth(2),
        ));
        let rels = wcoj_datagen::cycle_instance(seed, 5, 200, 15);
        let prepared = Arc::new(
            wcoj_core::nprr::PreparedQuery::<wcoj_storage::TrieIndex>::new_indexed(&rels)
                .expect("well-formed blocker"),
        );
        let (x, _) = prepared.resolve_cover(None).expect("cover");
        let cfg = wcoj_exec::ExecConfig {
            shard_min_size: 1,
            ..service.exec_config()
        };
        let blockers = (0..2)
            .map(|_| {
                service
                    .submit_with_cover(&prepared, Some(&x), &cfg)
                    .expect("within the bound")
            })
            .collect();
        (service, blockers)
    }
}

pub use catalog::{Catalog, Snapshot};
pub use csv::load_csv;
pub use exec::{execute, execute_profiled, submit_query, PendingQuery, QueryResult};
pub use parser::{parse_query, ParsedAtom, ParsedQuery, ParsedTerm};
pub use plan_cache::{CachedPlan, PlanCache};
pub use program::{parse_program, run_program, Program};
// Re-export so front-end users can opt catalogs into parallel execution
// without naming wcoj-exec directly.
pub use wcoj_exec::ExecConfig;

use std::fmt;

/// Errors from parsing, binding, or executing a text query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryTextError {
    /// Syntax error with a human-readable description and byte offset.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset into the input.
        at: usize,
    },
    /// The query references a relation the catalog does not contain.
    UnknownRelation(String),
    /// An atom's arity differs from its relation's.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity in the catalog.
        expected: usize,
        /// Arity written in the query.
        got: usize,
    },
    /// A head variable does not occur in the body.
    UnboundHeadVariable(String),
    /// The catalog's shared query service shed the query under overload
    /// (its admission queue was full) — the 429 of this front end. The
    /// query was never evaluated; retrying later is safe.
    Overloaded,
    /// Evaluation failure from the join engine.
    Eval(String),
}

impl QueryTextError {
    /// The HTTP status an HTTP front end should answer with: client
    /// mistakes map to `4xx` (`400` malformed query, `404` unknown
    /// relation, `429` shed by admission control — retry later), engine
    /// failures to `500`.
    #[must_use]
    pub fn http_status(&self) -> u16 {
        match self {
            QueryTextError::Parse { .. }
            | QueryTextError::ArityMismatch { .. }
            | QueryTextError::UnboundHeadVariable(_) => 400,
            QueryTextError::UnknownRelation(_) => 404,
            QueryTextError::Overloaded => 429,
            QueryTextError::Eval(_) => 500,
        }
    }
}

impl fmt::Display for QueryTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryTextError::Parse { message, at } => {
                write!(f, "parse error at byte {at}: {message}")
            }
            QueryTextError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            QueryTextError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation {relation} has arity {expected}, used with {got} terms"
            ),
            QueryTextError::UnboundHeadVariable(v) => {
                write!(f, "head variable {v} does not occur in the body")
            }
            QueryTextError::Overloaded => {
                write!(
                    f,
                    "service overloaded: query shed by admission control, retry later"
                )
            }
            QueryTextError::Eval(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for QueryTextError {}
