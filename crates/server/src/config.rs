//! Server configuration, wired through the workspace's `WCOJ_*`
//! environment pattern: malformed values warn **once** per key on stderr,
//! fall back to the default, and are recorded in
//! [`wcoj_exec::malformed_env_warnings`] so a typo never silently
//! reverts a deployment to defaults with no signal.

use std::net::SocketAddr;
use std::time::Duration;
use wcoj_service::ServiceConfig;

/// Default bind address when `WCOJ_BIND` is unset or malformed.
pub const DEFAULT_BIND: &str = "127.0.0.1:7171";

/// How the HTTP front end listens and how much it will read.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`WCOJ_BIND`, default `127.0.0.1:7171`).
    pub bind: SocketAddr,
    /// Connection threads sharing the accept loop (`WCOJ_CONN_THREADS`,
    /// default 4, clamped to ≥ 1). Each serves one connection at a time;
    /// this bounds concurrent *connections*, while the service's own
    /// queue depth bounds concurrent *queries*.
    pub conn_threads: usize,
    /// Per-connection read timeout (`WCOJ_READ_TIMEOUT_MS`, default
    /// 10 000 ms; `0` disables). A client that connects and then stalls
    /// mid-request is answered `408` and dropped instead of pinning a
    /// connection thread forever.
    pub read_timeout: Option<Duration>,
    /// Cap on the request line + headers (fixed 8 KiB): past it the
    /// request is refused with `431`.
    pub max_header_bytes: usize,
    /// Cap on a request body (fixed 1 MiB): a larger `Content-Length`
    /// is refused with `413` before reading the body.
    pub max_body_bytes: usize,
    /// Requests served per connection before the server closes it
    /// (`WCOJ_KEEP_ALIVE_MAX`, default 32). `0` or `1` disables
    /// keep-alive: every response says `Connection: close`. The cap
    /// bounds how long one client can monopolise a connection thread.
    pub keep_alive_max: usize,
    /// Idle timeout between keep-alive requests (`WCOJ_IDLE_TIMEOUT_MS`,
    /// default 5 000 ms; `0` falls back to `read_timeout`). A kept-alive
    /// connection that goes quiet is closed silently — unlike a stall
    /// *mid*-request, which still earns a `408`.
    pub idle_timeout: Option<Duration>,
    /// Configuration for the backing query service (admission bound via
    /// `WCOJ_QUEUE_DEPTH`, trace level via `WCOJ_TRACE` — see
    /// [`ServiceConfig::from_env`]). Used by `Server::start`; ignored
    /// when the caller brings its own catalog + service through
    /// `Server::start_with`.
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: DEFAULT_BIND.parse().expect("default bind parses"),
            conn_threads: 4,
            read_timeout: Some(Duration::from_millis(10_000)),
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            keep_alive_max: 32,
            idle_timeout: Some(Duration::from_millis(5_000)),
            service: ServiceConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Defaults overridden from the environment: `WCOJ_BIND`,
    /// `WCOJ_CONN_THREADS`, `WCOJ_READ_TIMEOUT_MS`,
    /// `WCOJ_KEEP_ALIVE_MAX`, `WCOJ_IDLE_TIMEOUT_MS`, plus everything
    /// [`ServiceConfig::from_env`] reads. Malformed values warn once and
    /// fall back (see the module docs).
    #[must_use]
    pub fn from_env() -> ServerConfig {
        let mut cfg = ServerConfig {
            service: ServiceConfig::from_env(),
            ..ServerConfig::default()
        };
        if let Ok(raw) = std::env::var("WCOJ_BIND") {
            match raw.trim().parse::<SocketAddr>() {
                Ok(addr) => cfg.bind = addr,
                Err(_) => wcoj_exec::note_malformed_env(
                    "WCOJ_BIND",
                    &format!("value {raw:?} is not a socket address (host:port)"),
                ),
            }
        }
        if let Some(n) = wcoj_exec::read_env_usize("WCOJ_CONN_THREADS") {
            cfg.conn_threads = n.max(1);
        }
        if let Some(ms) = wcoj_exec::read_env_usize("WCOJ_READ_TIMEOUT_MS") {
            cfg.read_timeout = if ms == 0 {
                None
            } else {
                Some(Duration::from_millis(ms as u64))
            };
        }
        if let Some(n) = wcoj_exec::read_env_usize("WCOJ_KEEP_ALIVE_MAX") {
            cfg.keep_alive_max = n;
        }
        if let Some(ms) = wcoj_exec::read_env_usize("WCOJ_IDLE_TIMEOUT_MS") {
            cfg.idle_timeout = if ms == 0 {
                None
            } else {
                Some(Duration::from_millis(ms as u64))
            };
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One sequential test for every env knob: `std::env::set_var` is
    // process-global, so probing the knobs from parallel tests would
    // race (edition 2021: set_var itself is safe).
    #[test]
    fn env_overrides_and_warn_once_fallbacks() {
        // Well-formed overrides apply.
        std::env::set_var("WCOJ_BIND", "127.0.0.1:0");
        std::env::set_var("WCOJ_CONN_THREADS", "2");
        std::env::set_var("WCOJ_READ_TIMEOUT_MS", "250");
        std::env::set_var("WCOJ_KEEP_ALIVE_MAX", "8");
        std::env::set_var("WCOJ_IDLE_TIMEOUT_MS", "750");
        let cfg = ServerConfig::from_env();
        assert_eq!(cfg.bind, "127.0.0.1:0".parse().unwrap());
        assert_eq!(cfg.conn_threads, 2);
        assert_eq!(cfg.read_timeout, Some(Duration::from_millis(250)));
        assert_eq!(cfg.keep_alive_max, 8);
        assert_eq!(cfg.idle_timeout, Some(Duration::from_millis(750)));

        // `0` disables the read/idle timeouts; thread counts clamp to
        // ≥ 1; a zero keep-alive budget turns keep-alive off.
        std::env::set_var("WCOJ_READ_TIMEOUT_MS", "0");
        std::env::set_var("WCOJ_CONN_THREADS", "0");
        std::env::set_var("WCOJ_KEEP_ALIVE_MAX", "0");
        std::env::set_var("WCOJ_IDLE_TIMEOUT_MS", "0");
        let cfg = ServerConfig::from_env();
        assert_eq!(cfg.read_timeout, None);
        assert_eq!(cfg.conn_threads, 1);
        assert_eq!(cfg.keep_alive_max, 0);
        assert_eq!(cfg.idle_timeout, None);

        // Malformed values fall back to the defaults *and* land in the
        // warn-once registry.
        std::env::set_var("WCOJ_BIND", "not-an-address");
        std::env::set_var("WCOJ_CONN_THREADS", "many");
        let cfg = ServerConfig::from_env();
        assert_eq!(cfg.bind, DEFAULT_BIND.parse().unwrap());
        assert_eq!(cfg.conn_threads, 4);
        let warned = wcoj_exec::malformed_env_warnings();
        assert!(warned.iter().any(|k| k == "WCOJ_BIND"), "{warned:?}");
        assert!(
            warned.iter().any(|k| k == "WCOJ_CONN_THREADS"),
            "{warned:?}"
        );
        // Warn-once: a second malformed read adds no duplicate entry.
        let _ = ServerConfig::from_env();
        let again = wcoj_exec::malformed_env_warnings();
        assert_eq!(
            again.iter().filter(|k| *k == "WCOJ_BIND").count(),
            1,
            "{again:?}"
        );

        std::env::remove_var("WCOJ_BIND");
        std::env::remove_var("WCOJ_CONN_THREADS");
        std::env::remove_var("WCOJ_READ_TIMEOUT_MS");
        std::env::remove_var("WCOJ_KEEP_ALIVE_MAX");
        std::env::remove_var("WCOJ_IDLE_TIMEOUT_MS");
    }
}
