//! # wcoj-server
//!
//! A std-only TCP/HTTP front end over the shared query service: a
//! blocking accept loop on [`std::net::TcpListener`] with a small pool
//! of connection threads, speaking just enough HTTP/1.1 for the query
//! protocol. No async runtime, no external crates.
//!
//! ## Endpoints
//!
//! | method & path                 | purpose                                           |
//! |-------------------------------|---------------------------------------------------|
//! | `PUT /relation/{name}`        | load a CSV body as a named relation (replace)     |
//! | `POST /relation/{name}/rows`  | append CSV rows to an existing relation (delta)   |
//! | `DELETE /relation/{name}/rows`| delete the CSV rows in the body from the relation |
//! | `DELETE /relation/{name}`     | unregister a relation                             |
//! | `POST /query`                 | submit a text query (streamed) or Datalog program |
//! | `GET /query/{id}`             | job status; `?block=1` waits until settled        |
//! | `GET /query/{id}/rows`        | fetch rows as chunked CSV, incrementally when the plan allows |
//! | `GET /metrics`                | Prometheus exposition of the global registry      |
//! | `GET /healthz`                | liveness probe                                    |
//!
//! ## Snapshot isolation
//!
//! `POST /query` pins a copy-on-write [`wcoj_query::Snapshot`] of the
//! catalog at admission and plans against it; the snapshot stays pinned
//! inside the job until its rows are fetched, so appends, deletes,
//! replacements, and compactions that land *after* admission never
//! change what an admitted query returns — even mid-stream.
//!
//! ## Keep-alive
//!
//! Connections serve up to `keep_alive_max` requests each (default 32,
//! `WCOJ_KEEP_ALIVE_MAX`), with `idle_timeout` between requests
//! (`WCOJ_IDLE_TIMEOUT_MS`); responses advertise `Connection:
//! keep-alive` until the budget's last request or a client
//! `Connection: close`. An idle expiry or FIN between requests closes
//! the connection silently; a stall mid-request is still a `408`.
//!
//! ## Streaming model
//!
//! Shard reassembly in the service is slot-ordered: output slots
//! partition the result into disjoint `(root, anchor)` rectangles in
//! ascending slot order. When the plan's total order starts with the
//! output schema (so concatenating settled slots reproduces the final
//! output byte-for-byte — `PreparedQuery::slots_stream_sorted`), each
//! root slot's rows go out as an HTTP chunk the moment that slot
//! settles, *before* later shards finish. Otherwise rows are merged and
//! sent as one chunk; the `X-Streaming` response header says which mode
//! was used.
//!
//! ## Status mapping
//!
//! Admission rejections (`SubmitError::Overloaded`) surface as `429`
//! with `Retry-After`; parse failures as `400`; unknown relations as
//! `404`; protocol edge cases per [`http::RequestError`].

mod config;
mod handlers;
pub mod http;
mod jobs;

pub use config::{ServerConfig, DEFAULT_BIND};
pub use jobs::{Job, Jobs};

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;
use wcoj_obs::{Counter, Histogram};
use wcoj_query::Catalog;
use wcoj_service::Service;
use wcoj_storage::Dictionary;

/// Server-side counters/histograms, registered once in the global
/// observability registry (shared with the service's own metrics, so
/// `GET /metrics` exposes both).
pub struct ServerMetrics {
    /// Requests read and dispatched (any route, any outcome).
    pub requests_total: Arc<Counter>,
    /// `POST /query` submissions (accepted or not).
    pub queries_total: Arc<Counter>,
    /// Requests answered with a non-overload error status.
    pub errors_total: Arc<Counter>,
    /// Submissions shed with `429` at the HTTP layer.
    pub overloaded_total: Arc<Counter>,
    /// Result rows that went over the wire.
    pub rows_streamed_total: Arc<Counter>,
    /// End-to-end request latency in microseconds (read → response).
    pub request_us: Arc<Histogram>,
}

impl ServerMetrics {
    /// The process-wide instance (idempotent registration).
    pub fn global() -> &'static ServerMetrics {
        static INSTANCE: OnceLock<ServerMetrics> = OnceLock::new();
        INSTANCE.get_or_init(|| {
            let reg = wcoj_obs::global();
            ServerMetrics {
                requests_total: reg.counter(
                    "wcoj_server_http_requests_total",
                    "HTTP requests dispatched",
                ),
                queries_total: reg.counter(
                    "wcoj_server_queries_total",
                    "query submissions via POST /query",
                ),
                errors_total: reg.counter(
                    "wcoj_server_http_errors_total",
                    "requests answered with a non-429 error status",
                ),
                overloaded_total: reg.counter(
                    "wcoj_server_http_overloaded_total",
                    "submissions shed with HTTP 429",
                ),
                rows_streamed_total: reg.counter(
                    "wcoj_server_rows_streamed_total",
                    "result rows streamed to clients",
                ),
                request_us: reg.histogram(
                    "wcoj_server_request_us",
                    "end-to-end HTTP request latency (microseconds)",
                ),
            }
        })
    }
}

/// Everything the connection threads share.
pub(crate) struct ServerState {
    pub(crate) catalog: RwLock<Catalog>,
    pub(crate) dict: Arc<Dictionary>,
    pub(crate) jobs: Jobs,
    pub(crate) metrics: &'static ServerMetrics,
}

/// A running server: the bound listener plus its connection threads.
/// Dropping it shuts the threads down and cancels any jobs still
/// pending in the table.
pub struct Server {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `cfg.bind` and starts serving a fresh catalog routed
    /// through a new [`Service`] built from `cfg.service`.
    ///
    /// # Errors
    /// Bind failures.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let service = Arc::new(Service::new(cfg.service.clone()));
        let mut catalog = Catalog::new();
        catalog.set_service(Some(service));
        Server::start_with(cfg, catalog)
    }

    /// Binds `cfg.bind` and serves `catalog` as-is — the caller decides
    /// whether (and how) a service is attached, and may keep its own
    /// handle on that service for inspection.
    ///
    /// # Errors
    /// Bind failures.
    pub fn start_with(cfg: ServerConfig, catalog: Catalog) -> std::io::Result<Server> {
        let listener = TcpListener::bind(cfg.bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(ServerState {
            dict: catalog.dictionary_handle(),
            catalog: RwLock::new(catalog),
            jobs: Jobs::new(),
            metrics: ServerMetrics::global(),
        });
        let mut threads = Vec::with_capacity(cfg.conn_threads);
        for i in 0..cfg.conn_threads {
            let listener = listener.try_clone()?;
            let shutdown = Arc::clone(&shutdown);
            let state = Arc::clone(&state);
            let cfg = cfg.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("wcoj-http-{i}"))
                    .spawn(move || accept_loop(&listener, &shutdown, &state, &cfg))
                    .expect("spawn connection thread"),
            );
        }
        Ok(Server {
            addr,
            shutdown,
            threads,
            state,
        })
    }

    /// The actually bound address (resolves port `0`).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Live entries in the job table (for tests and introspection).
    #[must_use]
    pub fn jobs_len(&self) -> usize {
        self.state.jobs.len()
    }

    /// Stops accepting, wakes every connection thread, and joins them.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // A blocked `accept` only wakes on a connection: poke one per
        // thread. Failures are fine — a thread mid-request re-checks the
        // flag before the next accept.
        for _ in 0..self.threads.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    state: &ServerState,
    cfg: &ServerConfig,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((mut stream, _)) = listener.accept() else {
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(cfg.read_timeout);
        let _ = stream.set_nodelay(true);
        serve_connection(state, &mut stream, cfg);
        // The serve loop decided the connection's fate — just drop it.
    }
}

/// Serves one connection: up to `cfg.keep_alive_max` requests with an
/// idle timeout between them, stopping early when the client asks for
/// `Connection: close`, a request fails to parse, or the stream ends.
///
/// Timing of the close matters: a stall or FIN on a connection's *first*
/// request is a `408` or `400`, but a stall or FIN once at least one
/// request was served is a routine end-of-conversation — closed
/// silently, no error counter (unless pipelined bytes prove the client
/// had started another request).
fn serve_connection(state: &ServerState, stream: &mut TcpStream, cfg: &ServerConfig) {
    let budget = cfg.keep_alive_max.max(1);
    let mut carry: Vec<u8> = Vec::new();
    for served in 0..budget {
        if served > 0 {
            // Requests after the first wait under the idle timeout (the
            // client may simply hold the connection open and walk away).
            let _ = stream.set_read_timeout(cfg.idle_timeout.or(cfg.read_timeout));
        }
        let started = Instant::now();
        let had_carry = !carry.is_empty();
        match http::read_request(stream, cfg.max_header_bytes, cfg.max_body_bytes, &mut carry) {
            Ok(req) => {
                state.metrics.requests_total.inc();
                let keep = served + 1 < budget && !req.wants_close();
                let mut conn = http::Conn {
                    stream,
                    keep_alive: keep,
                };
                let answered = handlers::handle(state, &req, &mut conn).is_ok();
                state
                    .metrics
                    .request_us
                    .observe_duration_us(started.elapsed());
                // Transport errors (client vanished mid-response) end
                // the connection regardless of the keep-alive budget.
                if !answered || !conn.keep_alive {
                    return;
                }
            }
            Err(e) => {
                // An idle kept-alive connection timing out or ending
                // cleanly between requests is not an error. (With
                // pipelined bytes already in `carry` the client *did*
                // start another request — fall through and report.)
                let idle_end = served > 0
                    && !had_carry
                    && matches!(
                        e,
                        http::RequestError::TimedOut | http::RequestError::Disconnected
                    );
                if idle_end {
                    return;
                }
                if let Some((status, _reason, message)) = e.status() {
                    state.metrics.requests_total.inc();
                    state.metrics.errors_total.inc();
                    let mut conn = http::Conn {
                        stream,
                        keep_alive: false,
                    };
                    let _ = handlers::error_response(&mut conn, status, &message);
                    // Lingering close: the request was refused *before*
                    // reading everything the client sent (oversized
                    // headers, refused body). Closing with unread bytes
                    // in the receive buffer would RST the connection and
                    // can discard the in-flight error response — drain
                    // (bounded by the read timeout and a byte cap) first.
                    use std::io::Read as _;
                    let _ = stream.shutdown(std::net::Shutdown::Write);
                    let mut sink = [0u8; 1024];
                    let mut drained = 0;
                    while drained < 64 * 1024 {
                        match stream.read(&mut sink) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => drained += n,
                        }
                    }
                }
                // Disconnected / transport errors: nothing to answer.
                return;
            }
        }
    }
}
