//! The server-side job table: submitted queries waiting for their rows
//! to be fetched, keyed by a monotonically increasing id.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use wcoj_query::{PendingQuery, Snapshot};
use wcoj_storage::Relation;

/// Oldest jobs are evicted past this many live entries, so a client that
/// submits and never fetches cannot grow the table without bound.
const MAX_JOBS: usize = 256;

/// One submitted query's lifecycle.
pub enum Job {
    /// Submitted; rows not yet requested. Holds the live handle — if the
    /// job is evicted or the table dropped, the handle's drop cancels
    /// any still-queued shards and frees the admission slot.
    Pending {
        /// The live query handle.
        query: PendingQuery,
        /// The copy-on-write catalog snapshot the query was admitted
        /// against, pinned until the rows are fetched so catalog
        /// mutations after admission cannot touch what it reads.
        snapshot: Arc<Snapshot>,
    },
    /// A `/rows` fetch is in progress on some connection thread; a
    /// second concurrent fetch is refused (`409`).
    Streaming,
    /// Rows were streamed to completion.
    Done {
        /// Head column names, for the status endpoint.
        columns: Vec<String>,
        /// Total rows that went over the wire.
        rows: u64,
    },
    /// Result already materialized in-process (Datalog programs run
    /// eagerly); `/rows` serves it as a single chunk.
    Materialized {
        /// Head column names of the final rule.
        columns: Vec<String>,
        /// The final rule's result.
        relation: Relation,
    },
    /// The query (or its row stream) failed.
    Failed {
        /// HTTP status the failure maps to.
        status: u16,
        /// Human-readable message.
        message: String,
    },
}

/// Concurrent job table. A plain mutexed map: every operation is a quick
/// insert/replace — the long-running row streaming happens *outside* the
/// lock after swapping the job to [`Job::Streaming`].
pub struct Jobs {
    next_id: AtomicU64,
    map: Mutex<BTreeMap<u64, Job>>,
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs::new()
    }
}

impl Jobs {
    /// An empty table; ids start at 1.
    #[must_use]
    pub fn new() -> Jobs {
        Jobs {
            next_id: AtomicU64::new(1),
            map: Mutex::new(BTreeMap::new()),
        }
    }

    /// Inserts a job, returning its id. Evicts the oldest entries past
    /// the cap (dropping an evicted [`Job::Pending`] cancels it).
    pub fn insert(&self, job: Job) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().expect("jobs mutex");
        map.insert(id, job);
        while map.len() > MAX_JOBS {
            let oldest = *map.keys().next().expect("non-empty past cap");
            map.remove(&oldest);
        }
        id
    }

    /// Runs `f` on the locked map (lookups, state swaps). Keep `f` quick.
    pub fn with<R>(&self, f: impl FnOnce(&mut BTreeMap<u64, Job>) -> R) -> R {
        f(&mut self.map.lock().expect("jobs mutex"))
    }

    /// Number of live jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("jobs mutex").len()
    }

    /// `true` when no jobs are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_drops_the_oldest_jobs() {
        let jobs = Jobs::new();
        let first = jobs.insert(Job::Done {
            columns: vec![],
            rows: 0,
        });
        for _ in 0..MAX_JOBS {
            jobs.insert(Job::Done {
                columns: vec![],
                rows: 0,
            });
        }
        assert_eq!(jobs.len(), MAX_JOBS);
        assert!(jobs.with(|m| !m.contains_key(&first)), "oldest evicted");
    }
}
