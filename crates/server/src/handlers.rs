//! Route handlers. Each takes the shared [`ServerState`], the parsed
//! request, and the connection (responses — fixed or chunked — are
//! written directly, advertising the serve loop's keep-alive decision).

use crate::http::{json_escape, write_response, ChunkedWriter, Conn, Request};
use crate::jobs::Job;
use crate::ServerState;
use std::time::{Duration, Instant};
use wcoj_query::{load_csv, parse_program, parse_query, run_program, submit_query, QueryTextError};
use wcoj_storage::Relation;

/// How long `GET /query/{id}?block=1` waits before reporting the state
/// as-is. Bounded so a stuck query cannot pin a connection thread.
const BLOCK_DEADLINE: Duration = Duration::from_secs(10);

/// Dispatches one request. Transport errors bubble up (the connection is
/// closed either way); protocol-level failures are answered in-band.
pub(crate) fn handle(
    state: &ServerState,
    req: &Request,
    conn: &mut Conn<'_>,
) -> std::io::Result<()> {
    let path = req.path.trim_end_matches('/');
    let segments: Vec<&str> = path.split('/').skip(1).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => write_response(conn, 200, "OK", "text/plain", &[], b"ok\n"),
        ("GET", ["metrics"]) => {
            let body = wcoj_obs::global().render_prometheus();
            write_response(
                conn,
                200,
                "OK",
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
            )
        }
        ("PUT", ["relation", name]) => put_relation(state, req, name, conn),
        ("POST", ["relation", name, "rows"]) => mutate_relation_rows(state, req, name, conn, true),
        ("DELETE", ["relation", name, "rows"]) => {
            mutate_relation_rows(state, req, name, conn, false)
        }
        ("DELETE", ["relation", name]) => delete_relation(state, name, conn),
        ("POST", ["query"]) => post_query(state, req, conn),
        ("GET", ["query", id]) => match id.parse::<u64>() {
            Ok(id) => query_status(state, req, id, conn),
            Err(_) => error_response(conn, 404, "job ids are integers"),
        },
        ("GET", ["query", id, "rows"]) => match id.parse::<u64>() {
            Ok(id) => query_rows(state, id, conn),
            Err(_) => error_response(conn, 404, "job ids are integers"),
        },
        _ => error_response(conn, 404, "no such route"),
    }
}

/// Writes a uniform JSON error body.
pub(crate) fn error_response(
    conn: &mut Conn<'_>,
    status: u16,
    message: &str,
) -> std::io::Result<()> {
    let reason = reason_for(status);
    let body = format!("{{\"error\":\"{}\"}}\n", json_escape(message));
    let retry: &[(&str, String)] = if status == 429 {
        &[("Retry-After", String::from("1"))]
    } else {
        &[]
    };
    write_response(
        conn,
        status,
        reason,
        "application/json",
        retry,
        body.as_bytes(),
    )
}

fn reason_for(status: u16) -> &'static str {
    match status {
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        411 => "Length Required",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        499 => "Client Closed Request",
        _ => "Internal Server Error",
    }
}

/// `PUT /relation/{name}`: CSV body → relation in the catalog.
fn put_relation(
    state: &ServerState,
    req: &Request,
    name: &str,
    conn: &mut Conn<'_>,
) -> std::io::Result<()> {
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return error_response(conn, 400, "relation names are [A-Za-z0-9_]+");
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return error_response(conn, 400, "CSV body must be UTF-8");
    };
    let rel = match load_csv(text, &state.dict) {
        Ok(rel) => rel,
        Err(e) => return error_response(conn, 400, &format!("CSV: {e}")),
    };
    let rows = rel.len();
    state
        .catalog
        .write()
        .expect("catalog lock")
        .insert(name, rel);
    let body = format!(
        "{{\"relation\":\"{}\",\"rows\":{rows}}}\n",
        json_escape(name)
    );
    write_response(conn, 200, "OK", "application/json", &[], body.as_bytes())
}

/// `POST /relation/{name}/rows` (append) and `DELETE
/// /relation/{name}/rows` (delete): the CSV body's rows become a delta
/// against the named relation. Queries admitted *before* the mutation
/// keep their pinned snapshot; queries admitted after see the new rows.
fn mutate_relation_rows(
    state: &ServerState,
    req: &Request,
    name: &str,
    conn: &mut Conn<'_>,
    append: bool,
) -> std::io::Result<()> {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return error_response(conn, 400, "CSV body must be UTF-8");
    };
    let rel = match load_csv(text, &state.dict) {
        Ok(rel) => rel,
        Err(e) => return error_response(conn, 400, &format!("CSV: {e}")),
    };
    let rows: Vec<Vec<wcoj_storage::Value>> = rel.iter_rows().map(<[_]>::to_vec).collect();
    let changed = {
        let mut catalog = state.catalog.write().expect("catalog lock");
        let res = if append {
            catalog.insert_rows(name, &rows)
        } else {
            catalog.delete_rows(name, &rows)
        };
        match res {
            Ok(Some(n)) => Ok((n, catalog.row_count(name).unwrap_or(0))),
            Ok(None) => Err((404, format!("no relation named {name:?}"))),
            Err(e) => Err((400, e.to_string())),
        }
    };
    match changed {
        Ok((n, total)) => {
            let verb = if append { "appended" } else { "deleted" };
            let body = format!(
                "{{\"relation\":\"{}\",\"{verb}\":{n},\"rows\":{total}}}\n",
                json_escape(name)
            );
            write_response(conn, 200, "OK", "application/json", &[], body.as_bytes())
        }
        Err((status, message)) => {
            state.metrics.errors_total.inc();
            error_response(conn, status, &message)
        }
    }
}

/// `DELETE /relation/{name}`: unregisters the relation. Snapshots pinned
/// by in-flight queries still hold their copy.
fn delete_relation(state: &ServerState, name: &str, conn: &mut Conn<'_>) -> std::io::Result<()> {
    let removed = state.catalog.write().expect("catalog lock").remove(name);
    if removed {
        let body = format!(
            "{{\"relation\":\"{}\",\"removed\":true}}\n",
            json_escape(name)
        );
        write_response(conn, 200, "OK", "application/json", &[], body.as_bytes())
    } else {
        state.metrics.errors_total.inc();
        error_response(conn, 404, &format!("no relation named {name:?}"))
    }
}

/// `POST /query`: a single conjunctive query is submitted through the
/// service for streaming; a multi-statement Datalog program runs eagerly
/// and the last rule's result is materialized.
///
/// Submission pins a copy-on-write [`wcoj_query::Snapshot`] of the
/// catalog taken at admission: the query plans and streams against that
/// snapshot, and the job holds it until the rows are fetched, so later
/// catalog mutations cannot change what this query returns.
fn post_query(state: &ServerState, req: &Request, conn: &mut Conn<'_>) -> std::io::Result<()> {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return error_response(conn, 400, "query body must be UTF-8");
    };
    state.metrics.queries_total.inc();
    match parse_query(text) {
        Ok(q) => {
            let snapshot = state.catalog.read().expect("catalog lock").freeze();
            snapshot.record_age();
            match submit_query(&q, snapshot.catalog()) {
                Ok(pending) => {
                    let columns = pending.columns().to_vec();
                    let streaming = pending.incremental();
                    let id = state.jobs.insert(Job::Pending {
                        query: pending,
                        snapshot,
                    });
                    let body = format!(
                        "{{\"id\":{id},\"columns\":[{}],\"streaming\":{streaming}}}\n",
                        columns_json(&columns)
                    );
                    write_response(
                        conn,
                        202,
                        "Accepted",
                        "application/json",
                        &[],
                        body.as_bytes(),
                    )
                }
                Err(e) => query_error(state, conn, &e),
            }
        }
        // Not a single query — maybe a program. If the program parse
        // fails too, report *its* error (a superset grammar).
        Err(_) => match parse_program(text) {
            Ok(program) => {
                let ran = {
                    let mut catalog = state.catalog.write().expect("catalog lock");
                    run_program(&program, &mut catalog)
                };
                match ran {
                    Ok(outputs) => {
                        let (name, last) = outputs.last().expect("programs have ≥ 1 rule");
                        let id = state.jobs.insert(Job::Materialized {
                            columns: last.columns.clone(),
                            relation: last.relation.clone(),
                        });
                        let body = format!(
                            "{{\"id\":{id},\"head\":\"{}\",\"rules\":{},\"columns\":[{}],\"streaming\":false}}\n",
                            json_escape(name),
                            outputs.len(),
                            columns_json(&last.columns)
                        );
                        write_response(
                            conn,
                            202,
                            "Accepted",
                            "application/json",
                            &[],
                            body.as_bytes(),
                        )
                    }
                    Err(e) => query_error(state, conn, &e),
                }
            }
            Err(e) => query_error(state, conn, &e),
        },
    }
}

/// Maps a [`QueryTextError`] onto the wire, bumping the right counters.
fn query_error(
    state: &ServerState,
    conn: &mut Conn<'_>,
    e: &QueryTextError,
) -> std::io::Result<()> {
    let status = e.http_status();
    if status == 429 {
        state.metrics.overloaded_total.inc();
    } else {
        state.metrics.errors_total.inc();
    }
    error_response(conn, status, &e.to_string())
}

fn columns_json(columns: &[String]) -> String {
    columns
        .iter()
        .map(|c| format!("\"{}\"", json_escape(c)))
        .collect::<Vec<_>>()
        .join(",")
}

/// `GET /query/{id}` (+`?block=1`): the job's current state as JSON.
fn query_status(
    state: &ServerState,
    req: &Request,
    id: u64,
    conn: &mut Conn<'_>,
) -> std::io::Result<()> {
    let deadline = Instant::now() + BLOCK_DEADLINE;
    let block = req.query_flag("block");
    loop {
        // `PendingQuery` is `Send` but not `Sync`, so a blocking wait
        // would pin the jobs lock; poll `is_finished` briefly instead.
        let status: Option<(String, bool)> = state.jobs.with(|map| {
            map.get(&id).map(|job| match job {
                Job::Pending { query: p, .. } => (
                    format!(
                        "{{\"id\":{id},\"state\":\"pending\",\"finished\":{},\"columns\":[{}],\"streaming\":{}}}\n",
                        p.is_finished(),
                        columns_json(p.columns()),
                        p.incremental()
                    ),
                    p.is_finished(),
                ),
                Job::Streaming => (
                    format!("{{\"id\":{id},\"state\":\"streaming\"}}\n"),
                    true,
                ),
                Job::Done { columns, rows } => (
                    format!(
                        "{{\"id\":{id},\"state\":\"done\",\"columns\":[{}],\"rows\":{rows}}}\n",
                        columns_json(columns)
                    ),
                    true,
                ),
                Job::Materialized { columns, relation } => (
                    format!(
                        "{{\"id\":{id},\"state\":\"done\",\"columns\":[{}],\"rows\":{}}}\n",
                        columns_json(columns),
                        relation.len()
                    ),
                    true,
                ),
                Job::Failed { status, message } => (
                    format!(
                        "{{\"id\":{id},\"state\":\"failed\",\"status\":{status},\"error\":\"{}\"}}\n",
                        json_escape(message)
                    ),
                    true,
                ),
            })
        });
        match status {
            None => return error_response(conn, 404, "no such job"),
            Some((body, settled)) => {
                if block && !settled && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                return write_response(conn, 200, "OK", "application/json", &[], body.as_bytes());
            }
        }
    }
}

/// Records a row-stream failure in the job table and — unless chunked
/// headers already went out (`mid_stream`) — answers with the status.
fn fail_job(
    state: &ServerState,
    conn: &mut Conn<'_>,
    id: u64,
    status: u16,
    message: &str,
    mid_stream: bool,
) -> std::io::Result<()> {
    if status == 429 {
        state.metrics.overloaded_total.inc();
    } else {
        state.metrics.errors_total.inc();
    }
    state.jobs.with(|map| {
        map.insert(
            id,
            Job::Failed {
                status,
                message: message.to_owned(),
            },
        );
    });
    if mid_stream {
        // Chunked headers are on the wire and the stream is truncated:
        // the connection's framing is unusable, close it.
        conn.keep_alive = false;
        Ok(())
    } else {
        error_response(conn, status, message)
    }
}

/// Decodes one row to a CSV line through the shared dictionary.
fn csv_line(state: &ServerState, row: &[wcoj_storage::Value]) -> String {
    let mut line = String::new();
    for (i, &v) in row.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        match state.dict.decode(v) {
            Some(d) => {
                use std::fmt::Write as _;
                let _ = write!(line, "{d}");
            }
            None => {
                use std::fmt::Write as _;
                let _ = write!(line, "{}", v.0);
            }
        }
    }
    line.push('\n');
    line
}

fn relation_csv(state: &ServerState, rel: &Relation) -> String {
    let mut out = String::new();
    for row in rel.iter_rows() {
        out.push_str(&csv_line(state, row));
    }
    out
}

/// `GET /query/{id}/rows`: streams the result as chunked CSV. For an
/// incrementally streamable plan each root slot's rows go out as a chunk
/// the moment that slot settles; otherwise one merged chunk at the end.
fn query_rows(state: &ServerState, id: u64, conn: &mut Conn<'_>) -> std::io::Result<()> {
    // Take ownership of the pending query (or a terminal answer) while
    // holding the lock only for the swap.
    enum Fetch {
        Pending(
            wcoj_query::PendingQuery,
            std::sync::Arc<wcoj_query::Snapshot>,
        ),
        Materialized(Relation),
        Answer(u16, String),
    }
    let fetch = state.jobs.with(|map| match map.remove(&id) {
        None => Fetch::Answer(404, "no such job".to_owned()),
        Some(Job::Pending { query, snapshot }) => {
            map.insert(id, Job::Streaming);
            Fetch::Pending(query, snapshot)
        }
        Some(Job::Materialized { columns, relation }) => {
            map.insert(
                id,
                Job::Done {
                    columns: columns.clone(),
                    rows: relation.len() as u64,
                },
            );
            Fetch::Materialized(relation)
        }
        Some(job @ Job::Streaming) => {
            map.insert(id, job);
            Fetch::Answer(409, "rows are already being streamed".to_owned())
        }
        Some(job @ Job::Done { .. }) => {
            map.insert(id, job);
            Fetch::Answer(410, "rows were already streamed".to_owned())
        }
        Some(Job::Failed { status, message }) => {
            let answer = Fetch::Answer(status, message.clone());
            map.insert(id, Job::Failed { status, message });
            answer
        }
    });

    match fetch {
        Fetch::Answer(status, message) => error_response(conn, status, &message),
        Fetch::Materialized(relation) => {
            let body = relation_csv(state, &relation);
            let mut w = ChunkedWriter::start(
                conn,
                200,
                "OK",
                "text/csv",
                &[("X-Streaming", "buffered".to_owned())],
            )?;
            w.chunk(body.as_bytes())?;
            w.finish()?;
            state.metrics.rows_streamed_total.add(relation.len() as u64);
            Ok(())
        }
        Fetch::Pending(mut pending, snapshot) => {
            // The snapshot stays pinned for the whole stream: the rows
            // going out were planned against it, and concurrent catalog
            // mutations must not be able to retire its storage.
            let _pinned = snapshot;
            let columns = pending.columns().to_vec();
            let mode = if pending.incremental() {
                "incremental"
            } else {
                "buffered"
            };
            // The first batch decides the response shape: an error here
            // can still be answered with a plain status; past it the
            // chunked headers are on the wire.
            let first = match pending.next_batch() {
                Some(Err(e)) => {
                    drop(pending);
                    return fail_job(state, conn, id, e.http_status(), &e.to_string(), false);
                }
                other => other.map(|r| r.expect("Err handled above")),
            };
            let mut w = match ChunkedWriter::start(
                conn,
                200,
                "OK",
                "text/csv",
                &[("X-Streaming", mode.to_owned())],
            ) {
                Ok(w) => w,
                Err(e) => {
                    drop(pending);
                    let _ = fail_job(
                        state,
                        conn,
                        id,
                        499,
                        "client disconnected before the stream started",
                        true,
                    );
                    return Err(e);
                }
            };
            let mut rows: u64 = 0;
            let mut batch = first;
            while let Some(rel) = batch {
                let data = relation_csv(state, &rel);
                if let Err(e) = w.chunk(data.as_bytes()) {
                    // Client vanished mid-stream. Dropping `pending`
                    // cancels still-queued shards and frees the
                    // admission slot.
                    drop(pending);
                    let _ = fail_job(state, conn, id, 499, "client disconnected mid-stream", true);
                    return Err(e);
                }
                rows += rel.len() as u64;
                batch = match pending.next_batch() {
                    Some(Ok(rel)) => Some(rel),
                    None => None,
                    Some(Err(e)) => {
                        // Headers already sent: the only honest signal
                        // is a truncated chunked stream (no terminator).
                        drop(pending);
                        return fail_job(state, conn, id, e.http_status(), &e.to_string(), true);
                    }
                };
            }
            if let Err(e) = w.finish() {
                let _ = fail_job(
                    state,
                    conn,
                    id,
                    499,
                    "client disconnected at stream end",
                    true,
                );
                return Err(e);
            }
            state.metrics.rows_streamed_total.add(rows);
            state.jobs.with(|map| {
                map.insert(id, Job::Done { columns, rows });
            });
            Ok(())
        }
    }
}
